"""Smoke tests: every example script runs end to end.

Each example is executed as a subprocess (exactly how a user would run it)
with a bounded wall-clock budget; stdout is checked for its headline
output so silent regressions surface.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"


def run_example(name, *args, timeout=420):
    return subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True, text=True, timeout=timeout)


@pytest.mark.slow
class TestExamples:
    def test_quickstart(self):
        result = run_example("quickstart.py")
        assert result.returncode == 0, result.stderr
        assert "chosen:" in result.stdout
        assert "[hivemind]" in result.stdout
        assert "items found" in result.stdout

    def test_search_and_rescue(self):
        result = run_example("search_and_rescue.py")
        assert result.returncode == 0, result.stderr
        assert "field covered  : yes" in result.stdout
        assert "field covered  : NO" in result.stdout

    def test_crowd_monitoring(self):
        result = run_example("crowd_monitoring.py")
        assert result.returncode == 0, result.stderr
        for mode in ("none", "self", "swarm"):
            assert f"[retraining={mode}]" in result.stdout
        assert "unique people counted" in result.stdout

    def test_custom_application(self):
        result = run_example("custom_application.py")
        assert result.returncode == 0, result.stderr
        assert "execution models" in result.stdout
        assert "thrift_rpc" in result.stdout
        assert "colocated=True" in result.stdout

    def test_robotic_cars(self):
        result = run_example("robotic_cars.py")
        assert result.returncode == 0, result.stderr
        assert "treasure_hunt" in result.stdout
        assert "maze" in result.stdout

    def test_scalability_sweep(self):
        result = run_example("scalability_sweep.py", "32")
        assert result.returncode == 0, result.stderr
        assert "hivemind" in result.stdout
        assert "cloud share" in result.stdout
