"""Tests for FPGA fabric, remote memory, RPC offload, and reconfiguration."""

import pytest

from repro.config import AccelerationConstants, WirelessConstants
from repro.hardware import (
    AcceleratedClusterRpc,
    AcceleratedEdgeRpc,
    FpgaFabric,
    HardConfig,
    ReconfigController,
    RemoteMemoryFabric,
    SoftConfig,
)
from repro.network import EdgeCloudRpc, WirelessNetwork
from repro.sim import Environment


@pytest.fixture
def env():
    return Environment()


class TestFpgaFabric:
    def test_default_partitioning_matches_paper(self):
        fabric = FpgaFabric()
        constants = AccelerationConstants()
        remote = fabric.region("remote_memory")
        rpc = fabric.region("rpc_offload")
        assert remote.lut_count == int(
            constants.lut_total * constants.remote_mem_lut_fraction)
        assert rpc.lut_count == int(
            constants.lut_total * constants.rpc_lut_fraction)
        # Paper: 18% + 24% fit with headroom to spare.
        assert fabric.utilization == pytest.approx(0.42, abs=0.01)

    def test_over_allocation_rejected(self):
        fabric = FpgaFabric()
        with pytest.raises(ValueError):
            fabric.allocate_region("huge", fabric.free_luts + 1, "blue")

    def test_duplicate_region_rejected(self):
        fabric = FpgaFabric()
        with pytest.raises(ValueError):
            fabric.allocate_region("rpc_offload", 10, "green")

    def test_release_region(self):
        fabric = FpgaFabric()
        used = fabric.used_luts
        fabric.release_region("rpc_offload")
        assert fabric.used_luts < used
        assert not fabric.has_region("rpc_offload")
        with pytest.raises(KeyError):
            fabric.release_region("rpc_offload")


class TestRemoteMemory:
    def test_write_then_read(self, env):
        fabric = RemoteMemoryFabric(env)

        def run():
            handle = yield env.process(fabric.write("server0", 4.0))
            assert fabric.exists(handle)
            assert fabric.home_of(handle) == "server0"
            size = yield env.process(fabric.read("server3", handle))
            return size

        assert env.run(env.process(run())) == 4.0
        assert fabric.reads == 1 and fabric.writes == 1

    def test_read_unknown_handle(self, env):
        fabric = RemoteMemoryFabric(env)
        process = env.process(fabric.read("server0", "nope"))
        with pytest.raises(KeyError):
            env.run(process)

    def test_transfer_time_far_below_couchdb(self, env):
        """The fabric must be orders of magnitude faster than CouchDB."""
        fabric = RemoteMemoryFabric(env)

        def run():
            handle = yield env.process(fabric.write("server0", 1.0))
            yield env.process(fabric.read("server1", handle))
            return env.now

        took = env.run(env.process(run()))
        # Two fabric ops on 1 MB: ~0.25 ms; CouchDB would be tens of ms.
        assert took < 0.002

    def test_eviction_and_accounting(self, env):
        fabric = RemoteMemoryFabric(env)

        def run():
            handle = yield env.process(fabric.write("server0", 2.0))
            return handle

        handle = env.run(env.process(run()))
        assert fabric.object_count == 1
        assert fabric.resident_mb == 2.0
        fabric.evict(handle)
        assert fabric.object_count == 0
        fabric.evict(handle)  # idempotent


class TestAcceleratedRpc:
    def test_paper_rtt_for_small_rpc(self, env):
        rpc = AcceleratedClusterRpc(env)

        def run():
            result = yield env.process(rpc.call("s0", "s1", 64e-6, 64e-6))
            return result

        result = env.run(env.process(run()))
        # 2.1 us RTT plus tiny payload time: stays within ~3 us.
        assert result.total_s < 3.5e-6
        assert rpc.calls == 1

    def test_loopback_has_no_wire_time(self, env):
        rpc = AcceleratedClusterRpc(env)

        def run():
            result = yield env.process(rpc.call("s0", "s0", 1.0, 1.0))
            return result

        assert env.run(env.process(run())).wire_s == 0.0

    def test_residual_cpu_far_below_software(self, env):
        rpc = AcceleratedClusterRpc(env)
        assert rpc.per_call_cpu_s < 0.1 * 2 * 45e-6

    def test_throughput_bound(self, env):
        """Back-to-back small RPCs cannot exceed the 12.4 Mrps engine."""
        rpc = AcceleratedClusterRpc(env)
        n_calls = 1000

        def caller():
            yield env.process(rpc.call("s0", "s1", 64e-6, 64e-6))

        for _ in range(n_calls):
            env.process(caller())
        env.run()
        min_time = n_calls / (AccelerationConstants().accel_mrps * 1e6)
        assert env.now >= min_time

    def test_accelerated_edge_rpc_cheaper_processing(self, env):
        wireless = WirelessNetwork(env, WirelessConstants(loss_rate=0.0))
        software = EdgeCloudRpc(env, wireless)
        accelerated = AcceleratedEdgeRpc(env, wireless)

        def run(rpc):
            result = yield env.process(rpc.call("d0", 2.0, 0.01))
            return result

        soft_result = env.run(env.process(run(software)))
        accel_result = env.run(env.process(run(accelerated)))
        assert accel_result.processing_s < soft_result.processing_s


class TestReconfig:
    def test_hard_config_validation(self):
        with pytest.raises(ValueError):
            HardConfig(interface="usb")
        with pytest.raises(ValueError):
            HardConfig(transport="sctp")

    def test_soft_config_validation(self):
        with pytest.raises(ValueError):
            SoftConfig(ccip_batch_size=0)
        with pytest.raises(ValueError):
            SoftConfig(load_balance="random_walk")
        with pytest.raises(ValueError):
            SoftConfig(queue_depth=0)

    def test_hard_reconfig_costs_seconds(self, env):
        controller = ReconfigController(env)

        def run():
            yield env.process(controller.apply_hard(HardConfig(
                transport="udp")))
            return env.now

        took = env.run(env.process(run()))
        assert took == pytest.approx(AccelerationConstants().hard_reconfig_s)
        assert controller.hard_reconfigs == 1

    def test_noop_reconfig_is_free(self, env):
        controller = ReconfigController(env)

        def run():
            yield env.process(controller.apply_hard(HardConfig()))
            yield env.process(controller.apply_soft(SoftConfig()))
            return env.now

        assert env.run(env.process(run())) == 0.0
        assert controller.hard_reconfigs == 0
        assert controller.soft_reconfigs == 0

    def test_soft_reconfig_is_microseconds(self, env):
        controller = ReconfigController(env)

        def run():
            yield env.process(controller.apply_soft(
                SoftConfig(ccip_batch_size=16)))
            return env.now

        assert env.run(env.process(run())) < 1e-3
        assert controller.soft_reconfigs == 1

    def test_tune_for_payload_tiers(self, env):
        controller = ReconfigController(env)
        small = controller.tune_for_payload(0.001)
        medium = controller.tune_for_payload(0.5)
        bulk = controller.tune_for_payload(8.0)
        assert small.ccip_batch_size > medium.ccip_batch_size > \
            bulk.ccip_batch_size
        assert bulk.queue_depth > small.queue_depth
        with pytest.raises(ValueError):
            controller.tune_for_payload(-1)


class TestDynamicRepartition:
    def test_resize_costs_hard_reconfig(self, env):
        fabric = FpgaFabric()
        before = fabric.region("rpc_offload").lut_count

        def run():
            region = yield env.process(fabric.repartition(
                env, "rpc_offload", before + 10_000))
            return region

        region = env.run(env.process(run()))
        assert region.lut_count == before + 10_000
        assert env.now == pytest.approx(
            AccelerationConstants().hard_reconfig_s)

    def test_resize_validation(self, env):
        fabric = FpgaFabric()
        with pytest.raises(ValueError):
            env.run(env.process(fabric.repartition(env, "rpc_offload", 0)))
        huge = fabric.constants.lut_total
        process = env.process(fabric.repartition(env, "rpc_offload", huge))
        with pytest.raises(ValueError):
            env.run(process)
