"""Edge-case tests for paths the mainline suites do not reach."""

import pytest

from repro.cluster import Cluster
from repro.config import ClusterConstants, DroneConstants
from repro.core import HiveMindController, LoadBalancer
from repro.edge import Drone
from repro.routing import Maze, WallFollower, generate_maze
from repro.serverless import FunctionSpec, InvocationRequest, OpenWhiskPlatform
from repro.sim import Environment, RandomStreams


@pytest.fixture
def env():
    return Environment()


class TestControllerWithoutSubsystems:
    def test_dispatch_without_mitigation_or_monitoring(self, env):
        cluster = Cluster(env, ClusterConstants(servers=2,
                                                cores_per_server=4))
        platform = OpenWhiskPlatform(env, cluster, RandomStreams(2))
        controller = HiveMindController(
            env, cluster, platform,
            enable_monitoring=False,
            enable_straggler_mitigation=False,
            enable_fault_tolerance=False)
        assert controller.monitoring is None
        assert controller.straggler is None
        assert controller.failure_detector is None

        def run():
            invocation = yield env.process(controller.dispatch(
                InvocationRequest(FunctionSpec("f"), service_s=0.05)))
            return invocation

        assert env.run(env.process(run())).t_complete > 0


class TestBatteryWeightedAssign:
    def test_most_charged_device_chosen(self, env):
        balancer = LoadBalancer("battery_weighted")
        drones = [Drone(env, f"d{i}", DroneConstants()) for i in range(3)]
        drones[0].energy.draw_power("motion", 42, 200)
        drones[2].energy.draw_power("motion", 42, 100)
        # d1 is untouched: the fullest battery wins.
        assert balancer.assign(drones).device_id == "d1"


class TestWallFollowerLimits:
    def test_step_limit_enforced(self):
        # A 2x2 maze where the goal is intentionally unreachable within
        # the tiny step budget.
        import numpy as np
        maze = generate_maze(6, 6, np.random.default_rng(4))
        follower = WallFollower(maze, (0, 0), (5, 5))
        with pytest.raises(RuntimeError):
            follower.solve(max_steps=1)

    def test_sealed_cell_detected(self):
        maze = Maze(3, 3)  # no passages carved at all
        follower = WallFollower(maze, (0, 0), (2, 2))
        with pytest.raises(RuntimeError):
            follower.step()


class TestMemoryStarvation:
    def test_cold_start_waits_for_memory_without_warm_victims(self, env):
        """A server with no reclaimable memory delays (not deadlocks) a
        new container until a running one finishes."""
        constants = ClusterConstants(servers=1, cores_per_server=4,
                                     ram_gb_per_server=0.26)  # ~1 container
        cluster = Cluster(env, constants)
        platform = OpenWhiskPlatform(env, cluster, RandomStreams(3),
                                     keepalive_s=0.05)
        completions = []

        def task(name):
            invocation = yield env.process(platform.invoke(
                InvocationRequest(FunctionSpec(name, image=f"{name}-img"),
                                  service_s=0.4)))
            completions.append((name, env.now))

        env.process(task("first"))
        env.process(task("second"))
        env.run(until=30.0)
        assert len(completions) == 2
        # The second had to wait for the first container's memory.
        assert completions[1][1] > completions[0][1] + 0.3


class TestDistributionSummaryRoundTrip:
    def test_windowed_counts_horizon_padding(self):
        from repro.telemetry import MetricSeries
        series = MetricSeries()
        series.add(1.0, time=0.5)
        counts = series.windowed_counts(window_s=1.0, horizon_s=5.0)
        assert list(counts) == [1, 0, 0, 0, 0]

    def test_iqr(self):
        from repro.telemetry import MetricSeries
        series = MetricSeries()
        series.extend(range(101))
        assert series.iqr() == pytest.approx(50.0)
