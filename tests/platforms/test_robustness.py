"""Robustness: multi-tenancy and seed stability of the headline results."""

import pytest

from repro.apps import SCENARIO_A, app
from repro.cluster import Cluster
from repro.config import DEFAULT, ClusterConstants
from repro.platforms import ScenarioRunner, SingleTierRunner, platform_config
from repro.serverless import FunctionSpec, InvocationRequest, OpenWhiskPlatform
from repro.sim import Environment, RandomStreams


class TestMultiTenancy:
    """Section 2.1: "the platform supports multi-tenancy" — two tenants
    share the serverless cloud; core pinning keeps them from corrupting
    each other's latency beyond the modeled interference."""

    def test_two_tenants_share_the_platform(self):
        env = Environment()
        cluster = Cluster(env, ClusterConstants(servers=4,
                                                cores_per_server=16))
        platform = OpenWhiskPlatform(env, cluster, RandomStreams(31),
                                     keepalive_s=20.0)
        latencies = {"a": [], "b": []}

        def tenant(name, service_s, n_tasks):
            spec = FunctionSpec(f"tenant-{name}", image=f"{name}-image")
            for _ in range(n_tasks):
                invocation = yield env.process(platform.invoke(
                    InvocationRequest(spec, service_s=service_s)))
                latencies[name].append(invocation.latency_s)
                yield env.timeout(0.2)

        env.process(tenant("a", 0.1, 40))
        env.process(tenant("b", 0.4, 40))
        env.run()
        assert len(latencies["a"]) == len(latencies["b"]) == 40
        # Tenant A's light tasks are not dragged to tenant B's weight:
        # cores are pinned, never shared.
        import numpy as np
        assert np.median(latencies["a"]) < 0.5 * np.median(latencies["b"])

    def test_tenants_never_share_a_core(self):
        """Total concurrent executions never exceed total cores."""
        env = Environment()
        constants = ClusterConstants(servers=1, cores_per_server=4)
        cluster = Cluster(env, constants)
        platform = OpenWhiskPlatform(env, cluster, RandomStreams(32))
        overcommit = []

        def watchdog():
            while True:
                busy = sum(s.busy_cores for s in cluster.servers.values())
                if busy > 4:
                    overcommit.append(busy)
                yield env.timeout(0.05)

        def tenant(name):
            spec = FunctionSpec(name, image=f"{name}-image")
            for _ in range(10):
                yield env.process(platform.invoke(
                    InvocationRequest(spec, service_s=0.3)))

        env.process(watchdog())
        for name in ("a", "b", "c"):
            env.process(tenant(name))
        env.run(until=30.0)
        assert not overcommit


class TestSeedStability:
    """The headline orderings must hold across seeds, not just seed 0."""

    @pytest.mark.parametrize("seed", [0, 101, 9999])
    def test_fig1_ordering_stable(self, seed):
        makespans = {}
        for platform in ("centralized_faas", "distributed_edge",
                         "hivemind"):
            result = ScenarioRunner(platform_config(platform), SCENARIO_A,
                                    seed=seed).run()
            makespans[platform] = result.extras["makespan_s"]
        assert makespans["hivemind"] < makespans["centralized_faas"]
        assert makespans["hivemind"] < makespans["distributed_edge"]

    @pytest.mark.parametrize("seed", [0, 77])
    def test_heavy_app_ordering_stable(self, seed):
        cloud = SingleTierRunner(platform_config("centralized_faas"),
                                 app("S1"), seed=seed,
                                 duration_s=30.0).run()
        edge = SingleTierRunner(platform_config("distributed_edge"),
                                app("S1"), seed=seed,
                                duration_s=30.0).run()
        assert edge.median_latency_s > 2 * cloud.median_latency_s

    def test_identical_seed_identical_results(self):
        """Full determinism: same seed, same numbers, to the last bit."""
        first = SingleTierRunner(platform_config("hivemind"), app("S1"),
                                 seed=5, duration_s=20.0).run()
        second = SingleTierRunner(platform_config("hivemind"), app("S1"),
                                  seed=5, duration_s=20.0).run()
        assert list(first.task_latencies.values) == \
            list(second.task_latencies.values)
        assert first.battery_summary() == second.battery_summary()
