"""Integration tests for the single-tier runner across platforms."""

import pytest

from repro.apps import app
from repro.platforms import SingleTierRunner, platform_config


def run(platform, app_key, **kwargs):
    defaults = dict(seed=7, duration_s=30.0, load_fraction=0.6)
    defaults.update(kwargs)
    return SingleTierRunner(platform_config(platform), app(app_key),
                            **defaults).run()


class TestConfigs:
    def test_unknown_platform(self):
        with pytest.raises(KeyError):
            platform_config("skynet")

    def test_validation(self):
        with pytest.raises(ValueError):
            SingleTierRunner(platform_config("hivemind"), app("S1"),
                             n_devices=0)
        with pytest.raises(ValueError):
            SingleTierRunner(platform_config("hivemind"), app("S1"),
                             load_fraction=0)
        with pytest.raises(ValueError):
            SingleTierRunner(platform_config("hivemind"), app("S1"),
                             iaas_headroom=0)
        with pytest.raises(ValueError):
            SingleTierRunner(platform_config("hivemind"), app("S1"),
                             rate_override=0)

    def test_hivemind_config_flags(self):
        config = platform_config("hivemind")
        assert config.net_accel and config.remote_mem
        assert config.scheduler == "hivemind"
        assert config.sharing == "remote_memory"
        assert config.container_keepalive_s == 20.0

    def test_stock_keepalive_is_aggressive(self):
        assert platform_config("centralized_faas").container_keepalive_s \
            < platform_config("hivemind").container_keepalive_s


class TestRunnerBasics:
    def test_produces_tasks_and_breakdowns(self):
        result = run("centralized_faas", "S1")
        assert len(result.task_latencies) > 50
        assert len(result.breakdowns) == len(result.task_latencies)
        assert result.extras["invocations"] >= len(result.task_latencies)

    def test_rate_respects_network_budget(self):
        runner = SingleTierRunner(platform_config("centralized_faas"),
                                  app("S1"), load_fraction=0.5)
        rate = runner.task_rate_hz()
        offered = rate * runner.n_devices * runner.input_mb
        assert offered <= 0.51 * runner.constants.wireless.total_mbs

    def test_rate_override(self):
        runner = SingleTierRunner(platform_config("centralized_faas"),
                                  app("S1"), rate_override=0.05)
        assert runner.task_rate_hz() == 0.05

    def test_tiny_inputs_keep_app_rate(self):
        runner = SingleTierRunner(platform_config("centralized_faas"),
                                  app("S7"))
        assert runner.task_rate_hz() == app("S7").rate_hz

    def test_resolution_override(self):
        runner = SingleTierRunner(platform_config("centralized_faas"),
                                  app("S1"), frame_mb=8.0)
        assert runner.input_mb == 64.0  # 8 fps x 8 MB

    def test_process_tier_per_platform(self):
        assert run("distributed_edge", "S1",
                   duration_s=10).extras["process_tier"] == "edge"
        assert run("centralized_faas", "S1",
                   duration_s=10).extras["process_tier"] == "cloud"

    def test_hivemind_places_pinned_app_at_edge(self):
        assert run("hivemind", "S4",
                   duration_s=10).extras["process_tier"] == "edge"

    def test_hivemind_places_heavy_app_in_cloud(self):
        assert run("hivemind", "S10",
                   duration_s=10).extras["process_tier"] == "cloud"


class TestExpectedShapes:
    def test_edge_slower_than_cloud_for_heavy_app(self):
        cloud = run("centralized_faas", "S1")
        edge = run("distributed_edge", "S1")
        assert edge.median_latency_s > 3 * cloud.median_latency_s

    def test_edge_comparable_for_light_app(self):
        cloud = run("centralized_faas", "S7")
        edge = run("distributed_edge", "S7")
        assert edge.median_latency_s < 2.5 * cloud.median_latency_s

    def test_hivemind_beats_centralized(self):
        hivemind = run("hivemind", "S1")
        centralized = run("centralized_faas", "S1")
        assert hivemind.median_latency_s < centralized.median_latency_s

    def test_hivemind_ships_fewer_bytes(self):
        hivemind = run("hivemind", "S1")
        centralized = run("centralized_faas", "S1")
        assert hivemind.wireless_meter.total_mb < \
            0.6 * centralized.wireless_meter.total_mb

    def test_network_share_substantial_when_centralized(self):
        result = run("centralized_faas", "S1", duration_s=60)
        assert result.breakdowns.mean_fraction("network") > 0.2

    def test_distributed_burns_most_battery(self):
        edge = run("distributed_edge", "S1", duration_s=60)
        hivemind = run("hivemind", "S1", duration_s=60)
        assert edge.battery_summary()[0] > hivemind.battery_summary()[0]

    def test_intra_task_parallelism_speeds_up(self):
        serial = run("centralized_faas", "S9")
        parallel = run("centralized_faas", "S9",
                       intra_task_parallelism=True)
        assert parallel.median_latency_s < 0.6 * serial.median_latency_s

    def test_fault_injection_respawns(self):
        result = run("centralized_faas", "S1", fault_rate=0.15)
        assert result.extras["respawns"] > 0
        # All tasks still completed (OpenWhisk respawns failed tasks).
        assert len(result.task_latencies) > 50

    def test_saturation_explodes_tail(self):
        modest = run("centralized_faas", "S1", load_fraction=0.4,
                     duration_s=40)
        saturated = run("centralized_faas", "S1", load_fraction=3.0,
                        duration_s=40)
        assert saturated.tail_latency_s > 3 * modest.tail_latency_s

    def test_load_profile_limits_activity(self):
        quiet = run("centralized_faas", "S1",
                    load_profile=lambda t: 0.10)
        busy = run("centralized_faas", "S1")
        assert len(quiet.task_latencies) < 0.5 * len(busy.task_latencies)


class TestPublicCloudMode:
    """Section 4.7: HiveMind without full system control."""

    def test_config_shape(self):
        config = platform_config("hivemind_public_cloud")
        assert config.execution == "hybrid"        # keeps task placement
        assert config.edge_filtering               # keeps hybrid filtering
        assert not config.net_accel                # no provider FPGAs
        assert not config.remote_mem
        assert config.scheduler == "openwhisk"     # no placement control

    def test_keeps_placement_benefit_but_loses_acceleration(self):
        public = run("hivemind_public_cloud", "S1")
        full = run("hivemind", "S1")
        centralized = run("centralized_faas", "S1")
        # Still better than plain centralized (hybrid filtering), but
        # behind the fully controlled deployment.
        assert public.median_latency_s < centralized.median_latency_s
        assert full.median_latency_s <= public.median_latency_s * 1.02
