"""Integration tests for scenario and car runners."""

import pytest

from repro.apps import CAR_MAZE, SCENARIO_A, SCENARIO_B, TREASURE_HUNT
from repro.platforms import (
    CarScenarioRunner,
    ScenarioRunner,
    platform_config,
)


def run_scenario(platform, scenario, **kwargs):
    return ScenarioRunner(platform_config(platform), scenario,
                          seed=5, **kwargs).run()


class TestScenarioRunner:
    def test_validation(self):
        with pytest.raises(ValueError):
            ScenarioRunner(platform_config("hivemind"), SCENARIO_A,
                           passes=0)
        with pytest.raises(ValueError):
            ScenarioRunner(platform_config("hivemind"), SCENARIO_A,
                           iaas_baseline_devices=0)

    def test_scenario_a_finds_items(self):
        result = run_scenario("hivemind", SCENARIO_A)
        assert result.completed
        found = result.extras["items_found"]
        assert found >= 0.8 * result.extras["targets"]

    def test_scenario_b_counts_people(self):
        # Two coverage passes: moving people can dodge a single sweep.
        result = run_scenario("hivemind", SCENARIO_B, passes=2)
        unique = result.extras["unique_people"]
        targets = result.extras["targets"]
        assert targets - 5 <= unique <= targets + 2

    def test_fig1_execution_time_ordering(self):
        makespans = {
            platform: run_scenario(platform, SCENARIO_A).extras[
                "makespan_s"]
            for platform in ("centralized_faas", "distributed_edge",
                             "hivemind")
        }
        assert makespans["hivemind"] < makespans["centralized_faas"]
        assert makespans["hivemind"] < makespans["distributed_edge"]

    def test_fig1_battery_ordering(self):
        batteries = {
            platform: run_scenario(platform, SCENARIO_A).battery_summary()[0]
            for platform in ("centralized_faas", "distributed_edge",
                             "hivemind")
        }
        assert batteries["hivemind"] < batteries["centralized_faas"]
        assert batteries["hivemind"] < batteries["distributed_edge"]

    def test_device_failure_repartitions_and_completes(self):
        result = run_scenario("hivemind", SCENARIO_A,
                              fail_device_at=(3, 10.0))
        assert "drone0003" in result.extras["failed_devices"]
        # The failed drone's region was inherited: mission still covers
        # the field and completes.
        assert result.completed

    def test_device_failure_without_global_view_loses_coverage(self):
        result = run_scenario("distributed_edge", SCENARIO_A,
                              fail_device_at=(3, 10.0))
        assert not result.completed

    def test_retraining_mode_override(self):
        result = run_scenario("hivemind", SCENARIO_A, retraining="none",
                              passes=2)
        tally = result.extras["tally"]
        assert tally.decisions > 0

    def test_multiple_passes_extend_mission(self):
        single = run_scenario("hivemind", SCENARIO_A)
        double = run_scenario("hivemind", SCENARIO_A, passes=2)
        assert double.extras["makespan_s"] > 1.5 * \
            single.extras["makespan_s"]

    def test_swarm_scaling_keeps_hivemind_flat(self):
        small = run_scenario("hivemind", SCENARIO_A)
        large = run_scenario("hivemind", SCENARIO_A, n_devices=64)
        assert large.extras["makespan_s"] < 1.6 * \
            small.extras["makespan_s"]


class TestCarRunner:
    def test_validation(self):
        with pytest.raises(ValueError):
            CarScenarioRunner(platform_config("hivemind"), TREASURE_HUNT,
                              n_devices=0)

    def test_treasure_hunt_completes_all_cars(self):
        result = CarScenarioRunner(platform_config("hivemind"),
                                   TREASURE_HUNT, seed=3).run()
        jobs = result.extras["job_latencies"]
        assert len(jobs) == 14

    def test_maze_completes(self):
        result = CarScenarioRunner(platform_config("hivemind"),
                                   CAR_MAZE, seed=3).run()
        assert len(result.extras["job_latencies"]) == 14

    def test_hivemind_beats_distributed_for_cars(self):
        hivemind = CarScenarioRunner(platform_config("hivemind"),
                                     TREASURE_HUNT, seed=3).run()
        edge = CarScenarioRunner(platform_config("distributed_edge"),
                                 TREASURE_HUNT, seed=3).run()
        assert hivemind.extras["job_latencies"].median < \
            edge.extras["job_latencies"].median


class TestPersistDirective:
    def test_persisted_outputs_stored(self):
        result = run_scenario("hivemind", SCENARIO_B)
        # Listing 3 persists recognition and aggregate outputs.
        assert result.extras["persisted_documents"] > 100

    def test_distributed_platform_has_no_cloud_store(self):
        result = run_scenario("distributed_edge", SCENARIO_B)
        assert result.extras["persisted_documents"] == 0
