"""Tests for the application suite and scenario specs."""

import numpy as np
import pytest

from repro.apps import (
    CAR_MAZE,
    SCENARIO_A,
    SCENARIO_B,
    SUITE,
    TREASURE_HUNT,
    AppSpec,
    all_apps,
    app,
    car_scenario,
    scenario,
)
from repro.dsl import HiveMindCompiler, validate_graph


class TestSuite:
    def test_ten_applications(self):
        assert len(SUITE) == 10
        assert list(SUITE) == [f"S{i}" for i in range(1, 11)]

    def test_unknown_app(self):
        with pytest.raises(KeyError):
            app("S99")

    def test_app_lookup(self):
        assert app("S1").name == "face_recognition"
        assert len(all_apps()) == 10

    def test_validation(self):
        with pytest.raises(ValueError):
            AppSpec("X", "x", "x", cloud_service_s=0, service_sigma=0.1,
                    edge_slowdown=1, input_mb=1, output_mb=1, parallelism=1)
        with pytest.raises(ValueError):
            AppSpec("X", "x", "x", cloud_service_s=1, service_sigma=0.1,
                    edge_slowdown=0, input_mb=1, output_mb=1, parallelism=1)

    def test_light_apps_have_small_edge_slowdown(self):
        """S3/S4/S7 behave comparably on cloud and edge (Fig 4a)."""
        for key in ("S3", "S4", "S7"):
            assert SUITE[key].edge_slowdown < 2.0
        for key in ("S1", "S2", "S5", "S9", "S10"):
            assert SUITE[key].edge_slowdown >= 8.0

    def test_obstacle_avoidance_edge_pinned(self):
        assert SUITE["S4"].edge_pinned
        assert not SUITE["S1"].edge_pinned

    def test_maze_low_rate(self):
        """S6: drones move slowly in the maze -> fewer tasks per second."""
        assert SUITE["S6"].rate_hz < 0.5

    def test_sampling_distribution(self):
        rng = np.random.default_rng(3)
        spec = SUITE["S1"]
        samples = [spec.sample_cloud_service(rng) for _ in range(500)]
        assert np.median(samples) == pytest.approx(
            spec.cloud_service_s, rel=0.15)
        assert all(s > 0 for s in samples)

    def test_edge_service_scaling(self):
        spec = SUITE["S1"]
        assert spec.edge_service_for(1.0) == pytest.approx(8.0)
        # A car (4/9 of the drone slowdown ratio) runs it faster.
        assert spec.edge_service_for(1.0, 4.0 / 9.0) == \
            pytest.approx(8.0 * 4.0 / 9.0)

    def test_function_specs_unique_images(self):
        images = {spec.function_spec().image for spec in all_apps()}
        assert len(images) == 10

    def test_dsl_graph_valid_and_compilable(self):
        for spec in all_apps():
            graph, directives = spec.dsl_graph()
            validate_graph(graph, directives)
            result = HiveMindCompiler(n_devices=4).compile(
                graph, directives)
            assert result.chosen is not None

    def test_pinned_app_compiles_to_edge(self):
        graph, directives = SUITE["S4"].dsl_graph()
        result = HiveMindCompiler(n_devices=4).compile(graph, directives)
        assert result.placement.tier_of("process") == "edge"

    def test_heavy_app_compiles_to_cloud(self):
        graph, directives = SUITE["S10"].dsl_graph()
        result = HiveMindCompiler(n_devices=4).compile(graph, directives)
        assert result.placement.tier_of("process") == "cloud"


class TestScenarios:
    def test_lookup(self):
        assert scenario("ScA") is SCENARIO_A
        assert scenario("ScB") is SCENARIO_B
        with pytest.raises(KeyError):
            scenario("ScC")

    def test_scenario_b_has_dedup(self):
        assert SCENARIO_B.dedup is SUITE["S5"]
        assert SCENARIO_B.moving_targets
        assert SCENARIO_A.dedup is None

    def test_scenario_graphs_match_listing3(self):
        for spec in (SCENARIO_A, SCENARIO_B):
            graph, directives = spec.dsl_graph()
            assert set(graph.task_names) == {
                "createRoute", "collectImage", "obstacleAvoidance",
                "recognition", "aggregate"}
            warnings = validate_graph(graph, directives)
            assert warnings == []
            assert ("obstacleAvoidance", "recognition") in \
                graph.parallel_pairs
            assert ("recognition", "aggregate") in graph.serial_pairs
            assert graph.sync_points["aggregate"] == "all"
            assert directives.learning["recognition"] == "global"
            assert directives.placements["obstacleAvoidance"] == "edge"
            assert "recognition" in directives.persisted

    def test_scenario_graph_compiles_hybrid(self):
        graph, directives = SCENARIO_B.dsl_graph()
        result = HiveMindCompiler(n_devices=16).compile(graph, directives)
        placement = result.placement
        assert placement.tier_of("collectImage") == "edge"
        assert placement.tier_of("obstacleAvoidance") == "edge"
        assert placement.tier_of("aggregate") == "cloud"


class TestCarScenarios:
    def test_lookup(self):
        assert car_scenario("TreasureHunt") is TREASURE_HUNT
        assert car_scenario("Maze") is CAR_MAZE
        with pytest.raises(KeyError):
            car_scenario("Rally")

    def test_treasure_hunt_uses_ocr(self):
        assert TREASURE_HUNT.perception is SUITE["S9"]
        assert TREASURE_HUNT.panels == 10

    def test_maze_spec(self):
        assert CAR_MAZE.perception is SUITE["S6"]
        assert CAR_MAZE.maze_side > 0
