"""Shape tests for the figure harnesses (DESIGN.md criteria).

These run reduced configurations of each experiment and assert the
qualitative results the paper reports — who wins, rough factors, where
crossovers fall.
"""

import numpy as np
import pytest

from repro.experiments import (
    ExperimentResult,
    experiment_ids,
    run_experiment,
)
from repro.experiments import (
    fig01_treasure_hunt,
    fig03_network_overheads,
    fig05_serverless_opportunities,
    fig06_serverless_challenges,
    fig15_learning,
    fig16_cars,
    fig17_scalability,
    fig18_validation,
)


class TestRegistry:
    def test_all_figures_registered(self):
        expected = {"chaos", "chaos-workers", "fig01", "fig03a",
                    "fig03b", "fig04",
                    "fig05a", "fig05b", "fig05c", "fig06a", "fig06b",
                    "fig06c", "fig11", "fig12", "fig13", "fig14", "fig15",
                    "fig16", "fig17a", "fig17b", "fig17c", "fig17d",
                    "fig18", "fig19", "sweep", "sweep-validate"}
        assert set(experiment_ids()) == expected

    def test_unknown_experiment(self):
        with pytest.raises(KeyError):
            run_experiment("fig99")


class TestExperimentResult:
    def test_accessors(self):
        result = ExperimentResult(
            "figX", "title", ["key", "value"], [["a", 1], ["b", 2]])
        assert result.column("value") == [1, 2]
        assert result.cell("a", "value") == 1
        with pytest.raises(KeyError):
            result.row_for("z")
        assert "figX" in result.render()


class TestFig01:
    @pytest.fixture(scope="class")
    def result(self):
        return fig01_treasure_hunt.run(repeats=1, n_small=16, n_large=128)

    def test_hivemind_fastest_small(self, result):
        small = {name: result.data[f"16:{name}"]["exec_time_s"]
                 for name in fig01_treasure_hunt.PLATFORM_ORDER}
        assert small["hivemind"] == min(small.values())
        assert small["centralized_faas"] < small["distributed_edge"]
        assert small["centralized_faas"] <= small["centralized_iaas"]

    def test_hivemind_best_battery(self, result):
        batteries = {name: result.data[f"16:{name}"]["battery_pct"]
                     for name in fig01_treasure_hunt.PLATFORM_ORDER}
        assert batteries["hivemind"] == min(batteries.values())

    def test_gap_grows_with_scale(self, result):
        small_gap = (result.data["16:centralized_faas"]["exec_time_s"] /
                     result.data["16:hivemind"]["exec_time_s"])
        large_gap = (result.data["128:centralized_faas"]["exec_time_s"] /
                     result.data["128:hivemind"]["exec_time_s"])
        assert large_gap > 0.9 * small_gap  # never shrinks materially

    def test_static_iaas_collapses_at_scale(self, result):
        assert result.data["128:centralized_iaas"]["exec_time_s"] > \
            2 * result.data["128:hivemind"]["exec_time_s"]


class TestFig03:
    def test_networking_at_least_22_percent(self):
        result = fig03_network_overheads.run_breakdown(duration_s=40.0)
        shares = [result.data[key]["median"]["network"]
                  for key in result.data]
        assert all(share >= 0.18 for share in shares)
        assert float(np.mean(shares)) >= 0.27

    def test_saturation_knee(self):
        result = fig03_network_overheads.run_saturation(
            drone_counts=(2, 8, 16), frame_mbs=(2.0, 8.0),
            duration_s=30.0)
        # 8 MB at 16 drones must be catastrophically slower than at 2.
        low = result.data["8.0MB:2"]["tail_ms"]
        high = result.data["8.0MB:16"]["tail_ms"]
        assert high > 5 * low
        # Higher resolution saturates earlier: at 8 drones, 8 MB is far
        # worse than 2 MB.
        assert result.data["8.0MB:8"]["tail_ms"] > \
            2 * result.data["2.0MB:8"]["tail_ms"]


class TestFig05:
    def test_serverless_beats_fixed_intra_beats_both(self):
        result = fig05_serverless_opportunities.run_concurrency(
            duration_s=40.0)
        for key in ("S1", "S9", "S10"):
            entry = result.data[key]
            assert entry["serverless_s"] < entry["fixed_s"]
            assert entry["intra_s"] < 0.7 * entry["fixed_s"]
        # Low-parallelism jobs benefit little from intra-task fan-out.
        weather = result.data["S7"]
        assert weather["intra_s"] > 0.5 * weather["serverless_s"]

    def test_elasticity(self):
        result = fig05_serverless_opportunities.run_elasticity()
        assert result.data["serverless"]["p99_s"] < \
            result.data["fixed_avg"]["p99_s"]
        # Max-provisioned keeps latency but wastes resources.
        assert result.data["fixed_max"]["utilization"] < 0.6

    def test_fault_tolerance_hides_failures(self):
        result = fig05_serverless_opportunities.run_fault_tolerance(
            fault_rates=(0.0, 0.20))
        clean = result.data["0%"]
        faulty = result.data["20%"]
        assert faulty["respawns"] > 0
        # Completed work stays on the no-fault trajectory.
        assert faulty["completed"] >= 0.95 * clean["completed"]
        assert faulty["peak_active"] >= clean["peak_active"]


class TestFig06:
    def test_serverless_more_variable(self):
        result = fig06_serverless_challenges.run_variability(
            duration_s=40.0)
        worse = sum(1 for entry in result.data.values()
                    if entry["serverless_cv"] > entry["reserved_cv"])
        assert worse >= 8  # consistently higher variability

    def test_instantiation_shares(self):
        result = fig06_serverless_challenges.run_breakdown(n_tasks=80)
        shares = {key: entry["instantiation_pct"]
                  for key, entry in result.data.items()}
        assert 15 <= float(np.mean(list(shares.values()))) <= 45
        assert shares["S7"] > 40     # short tasks dominated by cold start
        assert shares["S6"] < 20     # long maze tasks are not

    def test_sharing_protocol_ordering(self):
        result = fig06_serverless_challenges.run_sharing(n_tasks=30)
        for key, entry in result.data.items():
            couch = entry["couchdb.share"].median
            rpc = entry["rpc.share"].median
            inmem = entry["in_memory.share"].median
            assert couch > rpc > inmem
            # CouchDB's exchange dominates its end-to-end tail.
            assert entry["couchdb"].p99 > entry["in_memory"].median


class TestFig15:
    def test_swarm_retraining_best(self):
        result = fig15_learning.run(passes=3)
        for scenario in ("ScA", "ScB"):
            none = result.data[f"{scenario}:none"]["correct_pct"]
            self_mode = result.data[f"{scenario}:self"]["correct_pct"]
            swarm = result.data[f"{scenario}:swarm"]["correct_pct"]
            assert swarm > self_mode > none
            assert swarm > 90
            errors = (result.data[f"{scenario}:swarm"]["fn_pct"] +
                      result.data[f"{scenario}:swarm"]["fp_pct"])
            assert errors < 10


class TestFig16:
    def test_car_swarm_orderings(self):
        result = fig16_cars.run()
        for scenario in ("TreasureHunt", "Maze"):
            hivemind = result.data[f"{scenario}:hivemind"]
            edge = result.data[f"{scenario}:distributed_edge"]
            assert hivemind["job_median_s"] <= edge["job_median_s"]
            assert hivemind["battery_mean_pct"] <= \
                edge["battery_mean_pct"]


class TestFig17:
    def test_hivemind_does_not_saturate_at_max_resolution(self):
        result = fig17_scalability.run_resolution()
        base = result.data["ScA:0.5MB@8fps"]
        maximum = result.data["ScA:8.0MB@32fps"]
        # Latency stays within a small factor even at 64x the raw data.
        assert maximum["tail_s"] < 4 * base["tail_s"]
        assert maximum["bandwidth_mbs"] < \
            0.9 * 64 * max(1e-9, base["bandwidth_mbs"])

    def test_sublinear_bandwidth_growth(self):
        result = fig17_scalability.run_swarm_size(
            sizes=(16, 512), include_centralized_upto=0)
        bw16 = result.data["ScA:hivemind:16"]["bandwidth_mbs"]
        bw512 = result.data["ScA:hivemind:512"]["bandwidth_mbs"]
        assert bw512 < 32 * 0.8 * bw16  # sublinear in devices
        # Latency stays near flat (runtime remapping trades a little
        # on-board latency for the bandwidth cap).
        assert result.data["ScA:hivemind:512"]["makespan_s"] < \
            1.6 * result.data["ScA:hivemind:16"]["makespan_s"]


class TestFig18:
    def test_deviation_below_five_percent(self):
        result = fig18_validation.run(min_samples=2500)
        deviations = [abs(entry["tail_deviation_pct"])
                      for entry in result.data.values()]
        assert max(deviations) < 5.0


class TestCommonHelpers:
    def test_summarize_runs_validation(self):
        from repro.experiments.common import mean_over_seeds, summarize_runs
        with pytest.raises(ValueError):
            summarize_runs(lambda seed: seed, repeats=0)
        with pytest.raises(ValueError):
            mean_over_seeds([])
        assert summarize_runs(lambda seed: seed, repeats=3) == \
            [0, 1000, 2000]
        assert mean_over_seeds([1.0, 3.0]) == 2.0


class TestCli:
    def test_list(self, capsys):
        from repro.experiments.__main__ import main
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "fig01" in out and "fig18" in out

    def test_no_args_lists(self, capsys):
        from repro.experiments.__main__ import main
        assert main([]) == 0
        assert "Available experiments" in capsys.readouterr().out

    def test_unknown_figure_raises(self):
        from repro.experiments.__main__ import main
        with pytest.raises(KeyError):
            main(["fig99"])

    def test_runs_one_figure(self, capsys):
        from repro.experiments.__main__ import main
        assert main(["fig06b"]) == 0
        out = capsys.readouterr().out
        assert "fig06b" in out and "instantiation_pct" in out

    def test_csv_export(self, tmp_path, capsys):
        from repro.experiments.__main__ import main, write_csv
        from repro.experiments import ExperimentResult
        result = ExperimentResult("figX", "t", ["a", "b"], [[1, 2]])
        path = write_csv(result, str(tmp_path))
        content = open(path).read()
        assert "a,b" in content and "1,2" in content
        assert main(["fig06b", "--csv", str(tmp_path)]) == 0
        assert (tmp_path / "fig06b.csv").exists()
