"""Shape tests for the platform-comparison figures (fig04/11/12/13/14).

These run each harness at reduced cost and assert the paper's headline
shapes (the benchmarks run the full configurations).
"""

import numpy as np
import pytest

from repro.experiments import (
    fig04_centralized_vs_distributed,
    fig11_performance,
    fig12_breakdown,
    fig13_ablation,
    fig14_power_bandwidth,
)

APP_KEYS = [f"S{i}" for i in range(1, 11)]


@pytest.fixture(scope="module")
def fig11_result():
    return fig11_performance.run(duration_s=40.0)


@pytest.fixture(scope="module")
def fig13_result():
    return fig13_ablation.run(duration_s=40.0, include_scenarios=False)


class TestFig04:
    def test_exceptions_hold(self):
        result = fig04_centralized_vs_distributed.run(
            duration_s=40.0, scenario_repeats=1)
        assert result.data["S4:distributed_edge"].median < \
            result.data["S4:centralized_faas"].median
        assert result.data["S1:distributed_edge"].median > \
            2 * result.data["S1:centralized_faas"].median


class TestFig11:
    def test_hivemind_wins_every_heavy_job(self, fig11_result):
        for key in ("S1", "S2", "S5", "S6", "S8", "S9", "S10"):
            hivemind = fig11_result.data[f"{key}:hivemind"].median
            centralized = fig11_result.data[
                f"{key}:centralized_faas"].median
            assert hivemind < centralized

    def test_hivemind_tighter_distribution(self, fig11_result):
        tighter = sum(
            1 for key in APP_KEYS
            if fig11_result.data[f"{key}:hivemind"].std <
            fig11_result.data[f"{key}:centralized_faas"].std)
        assert tighter >= 8

    def test_average_improvement_magnitude(self, fig11_result):
        ratios = [fig11_result.data[f"{k}:centralized_faas"].median /
                  fig11_result.data[f"{k}:hivemind"].median
                  for k in APP_KEYS]
        assert float(np.mean(ratios)) > 1.2


class TestFig12:
    def test_network_share_collapses(self):
        result = fig12_breakdown.run(duration_s=40.0)
        centralized = np.mean([
            result.data[f"{k}:centralized_faas"]["mean_network"]
            for k in APP_KEYS])
        hivemind = np.mean([
            result.data[f"{k}:hivemind"]["mean_network"]
            for k in APP_KEYS])
        assert hivemind < 0.6 * centralized


class TestFig13:
    def test_no_single_technique_suffices(self, fig13_result):
        def mean(config):
            return np.mean([fig13_result.data[f"{k}:{config}"]["median_s"]
                            for k in APP_KEYS])

        hivemind = mean("hivemind")
        assert hivemind <= mean("centralized_net_accel") * 1.02
        assert hivemind <= mean("hivemind_no_accel") * 1.02
        assert hivemind <= mean("distributed_net_accel") * 1.02

    def test_acceleration_useless_for_distributed(self, fig13_result):
        def mean(config):
            return np.mean([fig13_result.data[f"{k}:{config}"]["median_s"]
                            for k in APP_KEYS])

        assert abs(mean("distributed_net_accel") -
                   mean("distributed_edge")) < 0.1 * mean(
                       "distributed_edge")


class TestFig14:
    def test_bandwidth_and_battery_orderings(self):
        result = fig14_power_bandwidth.run(duration_s=40.0)
        bw_centralized = np.mean([
            result.data[f"{k}:centralized_faas"]["bandwidth_mean_mbs"]
            for k in APP_KEYS])
        bw_hivemind = np.mean([
            result.data[f"{k}:hivemind"]["bandwidth_mean_mbs"]
            for k in APP_KEYS])
        bw_distributed = np.mean([
            result.data[f"{k}:distributed_edge"]["bandwidth_mean_mbs"]
            for k in APP_KEYS])
        assert bw_centralized > bw_hivemind > bw_distributed
        battery_distributed = np.mean([
            result.data[f"{k}:distributed_edge"]["battery_mean_pct"]
            for k in APP_KEYS])
        battery_hivemind = np.mean([
            result.data[f"{k}:hivemind"]["battery_mean_pct"]
            for k in APP_KEYS])
        assert battery_distributed > battery_hivemind
