"""Tests for the BENCH_kernel.json trajectory helpers."""

import json

import pytest

from repro.experiments.bench import bench_path, load_bench, record_bench

pytestmark = pytest.mark.quick


def test_record_appends_to_trajectory(tmp_path):
    target = tmp_path / "BENCH_kernel.json"
    first = record_bench("unit:first", 2.0, 1000, path=str(target))
    assert first["events_per_s"] == 500
    record_bench("unit:second", 1.0, 300, path=str(target))
    stored = json.loads(target.read_text())
    assert [r["label"] for r in stored["runs"]] == [
        "unit:first", "unit:second"]
    assert stored["runs"][0]["wall_s"] == 2.0
    assert stored["runs"][0]["cores"] >= 1


def test_zero_event_run_records_null_rate(tmp_path):
    """Closed-form runs have no events/s figure: null, never 0 (a 0
    would read as a catastrophic regression to the bench checker)."""
    target = tmp_path / "BENCH_kernel.json"
    record = record_bench("unit:closed-form", 2.0, 0, path=str(target))
    assert record["events_per_s"] is None
    assert record["sim_events"] == 0
    stored = json.loads(target.read_text())
    assert stored["runs"][0]["events_per_s"] is None


def test_load_missing_file_is_empty(tmp_path):
    assert load_bench(str(tmp_path / "absent.json")) == {"runs": []}


def test_env_var_redirects_path(monkeypatch, tmp_path):
    redirected = tmp_path / "custom.json"
    monkeypatch.setenv("REPRO_BENCH_FILE", str(redirected))
    assert bench_path() == redirected


def test_default_path_is_repo_root(monkeypatch):
    monkeypatch.delenv("REPRO_BENCH_FILE", raising=False)
    assert bench_path().name == "BENCH_kernel.json"
