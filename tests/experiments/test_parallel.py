"""Tests for the parallel experiment executor.

The contract under test: identical values in identical order no matter the
worker count or whether the pool is usable at all — parallelism may only
change wall-clock, never numbers.
"""

import pytest

from repro.experiments import parallel
from repro.experiments.common import summarize_runs
from repro.experiments.parallel import (
    TaskResult,
    default_workers,
    replica_seeds,
    run_replicas,
    run_sweep,
    run_tasks,
)
from repro.sim import Environment

pytestmark = pytest.mark.quick


def _simulate(seed, scale=1):
    """Tiny deterministic simulation — module-level, hence picklable."""
    env = Environment()

    def proc():
        total = 0.0
        for step in range(5):
            yield env.timeout((seed % 7 + 1) * scale)
            total += env.now
        return total

    return env.run(env.process(proc()))


class TestSeedSchedule:
    def test_matches_documented_fanout(self):
        assert replica_seeds(4, base_seed=3) == [3, 1003, 2003, 3003]

    def test_rejects_non_positive_repeats(self):
        with pytest.raises(ValueError):
            replica_seeds(0)

    def test_summarize_runs_keeps_legacy_schedule(self):
        seen = []

        def factory(seed):
            seen.append(seed)
            return seed

        values = summarize_runs(factory, 3, base_seed=10, max_workers=1)
        assert seen == [10, 1010, 2010]
        assert values == [10, 1010, 2010]


class TestRunTasks:
    def test_results_ordered_by_index(self):
        calls = [(_simulate, (seed,), {}) for seed in (5, 1, 3)]
        results = run_tasks(calls, max_workers=1)
        assert [r.index for r in results] == [0, 1, 2]
        assert [r.value for r in results] == [
            _simulate(5), _simulate(1), _simulate(3)]

    def test_serial_and_parallel_values_identical(self):
        calls = [(_simulate, (seed,), {"scale": 2}) for seed in range(6)]
        serial = run_tasks(calls, max_workers=1)
        pooled = run_tasks(calls, max_workers=2)
        assert [r.value for r in serial] == [r.value for r in pooled]
        assert [r.index for r in pooled] == list(range(6))

    def test_unpicklable_calls_fall_back_to_serial(self):
        state = []
        calls = [(lambda seed: state.append(seed) or seed, (s,), {})
                 for s in (1, 2)]
        results = run_tasks(calls, max_workers=4)
        assert [r.value for r in results] == [1, 2]
        assert state == [1, 2]  # ran in this process

    def test_captures_wall_time_and_events(self):
        results = run_tasks([(_simulate, (3,), {})], max_workers=1)
        assert isinstance(results[0], TaskResult)
        assert results[0].wall_s >= 0
        assert results[0].sim_events > 0

    def test_empty_calls(self):
        assert run_tasks([], max_workers=2) == []

    def test_rejects_zero_workers(self):
        with pytest.raises(ValueError):
            run_tasks([(_simulate, (1,), {})], max_workers=0)


class TestReplicasAndSweep:
    def test_run_replicas_fans_out_seeds(self):
        results = run_replicas(_simulate, 3, base_seed=2, max_workers=1)
        assert [r.value for r in results] == [
            _simulate(2), _simulate(1002), _simulate(2002)]

    def test_run_replicas_forwards_extra_args(self):
        results = run_replicas(_simulate, 2, base_seed=0, max_workers=1,
                               args=(3,))
        assert [r.value for r in results] == [
            _simulate(0, 3), _simulate(1000, 3)]

    def test_run_sweep_preserves_cell_order(self):
        cells = [(seed, scale) for seed in (4, 2) for scale in (1, 2)]
        results = run_sweep(_simulate, cells, max_workers=2)
        assert [r.value for r in results] == [
            _simulate(s, c) for s, c in cells]


class TestWorkers:
    def test_env_var_overrides_core_count(self, monkeypatch):
        monkeypatch.setenv("REPRO_MAX_WORKERS", "3")
        assert default_workers() == 3

    def test_default_is_core_count(self, monkeypatch):
        monkeypatch.delenv("REPRO_MAX_WORKERS", raising=False)
        assert default_workers() >= 1


class TestEventAccounting:
    def test_pool_events_feed_total(self):
        before = parallel.total_events_consumed()
        run_tasks([(_simulate, (seed,), {}) for seed in range(3)],
                  max_workers=2)
        assert parallel.total_events_consumed() - before > 0


class TestRegistryTelemetry:
    def test_run_experiment_fills_elapsed_and_events(self):
        from repro.experiments import registry

        def dummy(base_seed=0):
            from repro.experiments.common import ExperimentResult
            _simulate(base_seed)
            return ExperimentResult(figure="dummy", title="t",
                                    headers=["k"], rows=[["v"]])

        registry.EXPERIMENTS["_dummy"] = dummy
        try:
            result = registry.run_experiment("_dummy")
        finally:
            del registry.EXPERIMENTS["_dummy"]
        assert result.elapsed_s > 0
        assert result.sim_events > 0


class TestPoolDegradation:
    """A broken process pool must fall back *loudly*: logged once,
    recorded for the RunManifest — never a silent serial run."""

    @pytest.fixture(autouse=True)
    def fresh_log(self, monkeypatch):
        monkeypatch.setattr(parallel, "_DEGRADATIONS", [])

    def test_pool_failure_recorded_once_and_results_intact(
            self, monkeypatch):
        def broken_pool(*args, **kwargs):
            raise OSError("fork unavailable")

        monkeypatch.setattr(parallel, "ProcessPoolExecutor", broken_pool)
        tasks = [(_simulate, (seed,), {}) for seed in range(3)]
        for _ in range(2):  # second failure must not duplicate the record
            results = run_tasks(tasks, max_workers=2)
            assert [r.value for r in results] == [
                _simulate(0), _simulate(1), _simulate(2)]
        assert parallel.pool_degradations() == [
            "OSError: fork unavailable"]

    def test_degradation_lands_in_the_run_manifest(self, monkeypatch):
        from repro.experiments import registry
        from repro.experiments.common import ExperimentResult

        monkeypatch.setattr(parallel, "_DEGRADATIONS",
                            ["OSError: fork unavailable"])

        def dummy(base_seed=0):
            return ExperimentResult(figure="dummy", title="t",
                                    headers=["k"], rows=[["v"]])

        registry.EXPERIMENTS["_dummy"] = dummy
        try:
            result = registry.run_experiment("_dummy")
        finally:
            del registry.EXPERIMENTS["_dummy"]
        assert result.manifest.extra["pool_degradations"] == [
            "OSError: fork unavailable"]

    def test_healthy_runs_record_nothing(self):
        run_tasks([(_simulate, (1,), {})], max_workers=1)
        assert parallel.pool_degradations() == []
