"""Closed-form sweep: grid shape, physics sanity, and exact-sim parity."""

import pytest

from repro.apps import app
from repro.experiments import sweep

pytestmark = pytest.mark.quick


class TestPredict:
    def test_cell_fields_and_determinism(self):
        cell = sweep.predict(app("S1"), "centralized_faas", 64)
        for field in ("median_s", "p99_s", "bw_mbs", "uplink_rho",
                      "cluster_rho", "rate_hz"):
            assert field in cell
        assert cell == sweep.predict(app("S1"), "centralized_faas", 64)
        assert 0.0 < cell["median_s"] <= cell["p99_s"]

    def test_centralized_saturates_with_swarm_growth(self):
        spec = app("S1")
        tails = [sweep.predict(spec, "centralized_faas", n,
                               rate_hz=spec.rate_hz)["p99_s"]
                 for n in (16, 256, 4096, 8192)]
        assert tails == sorted(tails)  # monotone in N
        assert tails[-1] > 2 * tails[0]  # the fixed cluster bends it

    def test_edge_tier_has_no_cluster_load(self):
        cell = sweep.predict(app("S1"), "distributed_edge", 1024)
        assert cell["cluster_rho"] == 0.0

    def test_rejects_nonpositive_swarm(self):
        with pytest.raises(ValueError):
            sweep.predict(app("S1"), "hivemind", 0)


class TestGrid:
    def test_grid_shape_and_zero_kernel_events(self):
        from repro.experiments.parallel import total_events_consumed
        before = total_events_consumed()
        result = sweep.run(sizes=(16, 64), apps=[app("S1"), app("S4")],
                           platforms=("hivemind", "centralized_faas"))
        assert total_events_consumed() == before  # no kernel stepped
        assert len(result.rows) == 2 * 2 * 2
        assert result.figure == "sweep"
        assert result.headers[0] == "key"
        assert "S1:hivemind:16" in result.data


class TestValidation:
    def test_analytic_matches_exact_sim_at_small_n(self):
        result = sweep.validate(app_keys=("S4",),
                                platforms=("hivemind",),
                                min_samples=600)
        assert result.data["all_within_tolerance"], result.rows
        assert result.data["max_abs_deviation_pct"] <= \
            result.data["tolerance_pct"]
