"""Per-replica profiling under the parallel executor.

``REPRO_PROFILE_OUT=<path>`` makes every executor task dump its own
cProfile stats to ``<path>.r<index>`` — the fix for ``--profile`` runs
where all pool workers used to clobber one file.
"""

import pstats

import pytest

from repro.experiments.parallel import run_tasks

pytestmark = pytest.mark.quick


def _work(n):
    return sum(range(n))


class TestProfileOut:
    def test_each_replica_gets_its_own_dump(self, tmp_path, monkeypatch):
        target = tmp_path / "prof"
        monkeypatch.setenv("REPRO_PROFILE_OUT", str(target))
        results = run_tasks([(_work, (1000,), {}),
                             (_work, (2000,), {}),
                             (_work, (3000,), {})], max_workers=1)
        assert [r.value for r in results] == [_work(1000), _work(2000),
                                              _work(3000)]
        for index in range(3):
            dump = tmp_path / f"prof.r{index}"
            assert dump.exists(), f"missing per-replica dump {dump}"
            # The dump is a readable pstats file, not just a touch.
            stats = pstats.Stats(str(dump))
            assert stats.total_calls > 0

    def test_no_env_means_no_dumps(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_PROFILE_OUT", raising=False)
        run_tasks([(_work, (1000,), {})], max_workers=1)
        assert list(tmp_path.iterdir()) == []

    def test_nested_profiler_declines_gracefully(self, tmp_path,
                                                 monkeypatch):
        # When the coordinating process already profiles (--profile),
        # the per-task profiler must stand down instead of raising.
        import cProfile

        monkeypatch.setenv("REPRO_PROFILE_OUT", str(tmp_path / "prof"))
        outer = cProfile.Profile()
        outer.enable()
        try:
            results = run_tasks([(_work, (1000,), {})], max_workers=1)
        finally:
            outer.disable()
        assert results[0].value == _work(1000)
