"""Tests for grid, A*, coverage planning, partitioning, and mazes."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.routing import (
    GridMap,
    Maze,
    NoPathError,
    Region,
    WallFollower,
    astar,
    coverage_route,
    coverage_time,
    generate_maze,
    neighbors_of,
    partition_field,
    path_length,
    repartition_on_failure,
    route_length,
)


class TestGridMap:
    def test_validation(self):
        with pytest.raises(ValueError):
            GridMap(0, 5)

    def test_block_and_free(self):
        grid = GridMap(4, 4)
        assert grid.is_free((1, 1))
        grid.block((1, 1))
        assert not grid.is_free((1, 1))
        grid.unblock((1, 1))
        assert grid.is_free((1, 1))

    def test_block_out_of_bounds(self):
        with pytest.raises(ValueError):
            GridMap(2, 2).block((5, 5))

    def test_neighbors_respect_bounds_and_blocks(self):
        grid = GridMap(3, 3, blocked=[(1, 0)])
        neighbors = set(grid.neighbors((0, 0)))
        assert neighbors == {(0, 1)}

    def test_free_cells_count(self):
        grid = GridMap(3, 3, blocked=[(0, 0), (2, 2)])
        assert len(list(grid.free_cells())) == 7


class TestAstar:
    def test_trivial_path(self):
        grid = GridMap(5, 5)
        assert astar(grid, (2, 2), (2, 2)) == [(2, 2)]

    def test_straight_line(self):
        grid = GridMap(5, 5)
        path = astar(grid, (0, 0), (4, 0))
        assert path[0] == (0, 0) and path[-1] == (4, 0)
        assert path_length(path) == 4

    def test_detour_around_wall(self):
        grid = GridMap(5, 5, blocked=[(2, 0), (2, 1), (2, 2), (2, 3)])
        path = astar(grid, (0, 0), (4, 0))
        assert path_length(path) > 4
        assert all(grid.is_free(cell) for cell in path)

    def test_no_path_raises(self):
        grid = GridMap(3, 3, blocked=[(1, 0), (1, 1), (1, 2)])
        with pytest.raises(NoPathError):
            astar(grid, (0, 0), (2, 0))

    def test_blocked_endpoints_rejected(self):
        grid = GridMap(3, 3, blocked=[(0, 0)])
        with pytest.raises(ValueError):
            astar(grid, (0, 0), (2, 2))
        with pytest.raises(ValueError):
            astar(grid, (2, 2), (0, 0))

    def test_path_steps_are_adjacent(self):
        grid = GridMap(8, 8, blocked=[(3, y) for y in range(7)])
        path = astar(grid, (0, 0), (7, 7))
        for a, b in zip(path, path[1:]):
            assert abs(a[0] - b[0]) + abs(a[1] - b[1]) == 1

    @settings(max_examples=25)
    @given(st.integers(0, 7), st.integers(0, 7),
           st.integers(0, 7), st.integers(0, 7))
    def test_optimality_on_open_grid(self, x0, y0, x1, y1):
        """On an empty grid A* must return the Manhattan distance."""
        grid = GridMap(8, 8)
        path = astar(grid, (x0, y0), (x1, y1))
        assert path_length(path) == abs(x1 - x0) + abs(y1 - y0)


class TestCoverage:
    def test_region_validation(self):
        with pytest.raises(ValueError):
            Region(0, 0, 0, 5)

    def test_route_covers_all_legs(self):
        region = Region(0, 0, 100, 30)
        route = coverage_route(region, swath_m=10)
        # 30 m span / 10 m swath = 3 legs, two endpoints each.
        assert len(route) == 6
        assert all(region.contains(p) for p in route)

    def test_route_alternates_direction(self):
        region = Region(0, 0, 100, 20)
        route = coverage_route(region, swath_m=10)
        assert route[0][0] == 0 and route[1][0] == 100
        assert route[2][0] == 100 and route[3][0] == 0

    def test_swath_validation(self):
        with pytest.raises(ValueError):
            coverage_route(Region(0, 0, 1, 1), 0)

    def test_route_length(self):
        assert route_length([(0, 0), (3, 4)]) == pytest.approx(5.0)
        assert route_length([(0, 0)]) == 0.0

    def test_coverage_time_scales_with_area(self):
        small = coverage_time(Region(0, 0, 50, 50), 7, 4.0)
        large = coverage_time(Region(0, 0, 100, 100), 7, 4.0)
        assert large > 1.8 * small

    def test_coverage_time_turn_penalty(self):
        region = Region(0, 0, 100, 30)
        without = coverage_time(region, 10, 4.0, turn_time_s=0)
        with_turns = coverage_time(region, 10, 4.0, turn_time_s=2)
        assert with_turns == pytest.approx(without + 2 * 2)

    @settings(max_examples=25)
    @given(st.floats(10, 200), st.floats(10, 200), st.floats(2, 20))
    def test_route_stays_inside_region(self, width, height, swath):
        region = Region(0, 0, width, height)
        route = coverage_route(region, swath)
        assert all(region.contains(p) for p in route)


class TestPartition:
    def test_validation(self):
        with pytest.raises(ValueError):
            partition_field(100, 100, 0)
        with pytest.raises(ValueError):
            partition_field(0, 100, 4)

    @pytest.mark.parametrize("n", [1, 2, 4, 7, 16, 33])
    def test_partition_area_conserved(self, n):
        regions = partition_field(110, 110, n)
        assert len(regions) == n
        total = sum(r.area for r in regions)
        assert total == pytest.approx(110 * 110)

    def test_partition_near_equal_areas(self):
        regions = partition_field(100, 100, 16)
        areas = [r.area for r in regions]
        assert max(areas) / min(areas) < 1.5

    def test_neighbors_of_grid(self):
        regions = dict(zip("abcd", partition_field(100, 100, 4)))
        # 2x2 grid: 'a' touches 'b' (right) and 'c' (above).
        assert set(neighbors_of("a", regions)) == {"b", "c"}

    def test_neighbors_unknown_device(self):
        with pytest.raises(KeyError):
            neighbors_of("ghost", {})

    def test_repartition_preserves_total_area(self):
        regions = dict(zip("abcdefghi", partition_field(90, 90, 9)))
        new_assignment = repartition_on_failure(regions, "e")
        assert "e" not in new_assignment
        total = sum(r.area for regions_list in new_assignment.values()
                    for r in regions_list)
        assert total == pytest.approx(90 * 90)

    def test_repartition_gives_failed_area_to_neighbors(self):
        regions = dict(zip("abcd", partition_field(100, 100, 4)))
        new_assignment = repartition_on_failure(regions, "a")
        gainers = [d for d, rs in new_assignment.items() if len(rs) > 1]
        assert set(gainers) <= {"b", "c"}
        assert gainers  # someone inherited

    def test_repartition_unknown_device(self):
        with pytest.raises(KeyError):
            repartition_on_failure({"a": Region(0, 0, 1, 1)}, "z")

    def test_repartition_no_survivors(self):
        with pytest.raises(ValueError):
            repartition_on_failure({"a": Region(0, 0, 1, 1)}, "a")


class TestMaze:
    def test_maze_validation(self):
        with pytest.raises(ValueError):
            Maze(0, 3)

    def test_carve_validation(self):
        maze = Maze(3, 3)
        with pytest.raises(ValueError):
            maze.carve((0, 0), (2, 2))  # not adjacent
        with pytest.raises(ValueError):
            maze.carve((0, 0), (0, -1))  # out of bounds

    def test_generated_maze_is_fully_connected(self):
        rng = np.random.default_rng(7)
        maze = generate_maze(8, 8, rng)
        # BFS from (0,0) must reach every cell.
        seen = {(0, 0)}
        frontier = [(0, 0)]
        while frontier:
            cell = frontier.pop()
            for direction in maze.open_directions(cell):
                dx, dy = [(0, -1), (1, 0), (0, 1), (-1, 0)][direction]
                neighbor = (cell[0] + dx, cell[1] + dy)
                if neighbor not in seen:
                    seen.add(neighbor)
                    frontier.append(neighbor)
        assert len(seen) == 64

    def test_generated_maze_is_perfect(self):
        """A perfect maze has exactly cells-1 passages (spanning tree)."""
        rng = np.random.default_rng(3)
        maze = generate_maze(6, 6, rng)
        assert len(maze._passages) == 35

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_wall_follower_always_reaches_goal(self, seed):
        rng = np.random.default_rng(seed)
        maze = generate_maze(10, 10, rng)
        follower = WallFollower(maze, (0, 0), (9, 9))
        trail = follower.solve()
        assert trail[-1] == (9, 9)
        assert follower.done

    def test_wall_follower_step_bound(self):
        rng = np.random.default_rng(11)
        maze = generate_maze(12, 12, rng)
        follower = WallFollower(maze, (0, 0), (11, 11))
        follower.solve()
        assert follower.steps <= 4 * 12 * 12

    def test_wall_follower_validation(self):
        maze = Maze(3, 3)
        with pytest.raises(ValueError):
            WallFollower(maze, (0, 0), (9, 9))

    def test_wall_follower_at_goal_is_noop(self):
        rng = np.random.default_rng(1)
        maze = generate_maze(4, 4, rng)
        follower = WallFollower(maze, (2, 2), (2, 2))
        assert follower.done
        assert follower.step() == (2, 2)
        assert follower.steps == 0
