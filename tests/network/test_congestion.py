"""Tests for the wireless congestion-collapse model."""

import pytest

from repro.config import WirelessConstants
from repro.network import Link, WirelessNetwork
from repro.sim import Environment


@pytest.fixture
def env():
    return Environment()


class TestContentionCollapse:
    def test_validation(self, env):
        with pytest.raises(ValueError):
            Link(env, "l", 10, contention_penalty=-1)
        with pytest.raises(ValueError):
            Link(env, "l", 10, max_collapse=0.5)

    def test_no_penalty_when_unqueued(self, env):
        link = Link(env, "l", bandwidth_mbs=10, contention_penalty=0.1)

        def run():
            took = yield env.process(link.transfer(10))
            return took

        assert env.run(env.process(run())) == pytest.approx(1.0)

    def test_backlog_inflates_service(self, env):
        fast = Link(env, "clean", 10, contention_penalty=0.0)
        slow = Link(env, "congested", 10, contention_penalty=0.1)
        finish = {}

        def burst(link, label):
            done = []

            def one():
                yield env.process(link.transfer(5))
                done.append(env.now)

            for _ in range(10):
                env.process(one())
            finish[label] = done

        burst(fast, "clean")
        burst(slow, "congested")
        env.run()
        assert max(finish["congested"]) > max(finish["clean"])

    def test_collapse_is_capped(self, env):
        link = Link(env, "l", 10, contention_penalty=1.0, max_collapse=1.5)
        durations = []

        def one():
            took = yield env.process(link.transfer(10))
            durations.append(took)

        for _ in range(20):
            env.process(one())
        env.run()
        # Even the most-backlogged transfer serializes at most 1.5x slower
        # (plus queueing ahead of it).
        longest_service = durations[-1] - durations[-2] \
            if len(durations) > 1 else durations[0]
        assert longest_service <= 1.5 * 1.0 + 1e-6

    def test_wireless_inherits_collapse_settings(self, env):
        constants = WirelessConstants(contention_penalty=0.05,
                                      max_collapse=2.0)
        network = WirelessNetwork(env, constants)
        ap = network.attach("d0")
        assert ap.uplink.contention_penalty == 0.05
        assert ap.uplink.max_collapse == 2.0

    def test_goodput_degrades_past_saturation(self, env):
        """Offered load beyond capacity delivers less than capacity."""
        constants = WirelessConstants(access_points=1, loss_rate=0.0)
        network = WirelessNetwork(env, constants)
        horizon = 20.0

        def device(device_id):
            while env.now < horizon:
                yield env.process(network.upload(device_id, 20.0))

        for index in range(16):  # heavy oversubscription
            env.process(device(f"d{index}"))
        env.run(until=horizon * 3)
        delivered = network.meter.total_mb / env.now
        assert delivered < constants.ap_mbs  # collapse, not just saturation


class TestConservation:
    def test_meter_records_exactly_what_was_sent(self, env):
        """Byte conservation: the meter total equals the sum of payloads."""
        constants = WirelessConstants(access_points=2, loss_rate=0.0)
        network = WirelessNetwork(env, constants)
        payloads = [1.5, 4.0, 0.25, 16.0, 8.0]

        def device(index, mb):
            yield env.process(network.upload(f"d{index}", mb))

        for index, mb in enumerate(payloads):
            env.process(device(index, mb))
        env.run()
        assert network.meter.total_mb == pytest.approx(sum(payloads))

    def test_round_trip_meters_both_directions(self, env):
        constants = WirelessConstants(access_points=1, loss_rate=0.0)
        network = WirelessNetwork(env, constants)

        def device():
            yield env.process(network.round_trip("d0", 4.0, 1.0))

        env.process(device())
        env.run()
        assert network.meter.total_mb == pytest.approx(5.0)
