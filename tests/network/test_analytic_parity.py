"""Parity suite for the analytic virtual-clock queueing path.

The network and serverless service layers run two executions of the same
queue disciplines (see DESIGN.md, "Virtual-clock queueing"): the default
analytic path computes departures in closed form, and the legacy
Resource-based machinery survives behind ``REPRO_ANALYTIC_NET=0`` /
``analytic=False`` as the parity oracle. The contract is *exact* float
equality at fixed seeds — mirroring ``tests/edge/test_engine_parity.py``
— across platforms, scenarios, and failure injection.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps import SCENARIO_A, SCENARIO_B, app
from repro.config import ServerlessConstants
from repro.network import Link
from repro.platforms import SingleTierRunner, platform_config
from repro.platforms.scenario_runner import ScenarioRunner
from repro.serverless import CouchDB
from repro.sim import Environment
from repro.sim.kernel import events_consumed


# -- single-link property tests ----------------------------------------------

def _link_departures(analytic: bool, seed: int, *, bandwidth: float,
                     latency: float, loss: float, penalty: float,
                     schedule) -> list:
    """Run one randomized offered-load schedule through a Link and return
    each transfer's (start, duration) pair, in arrival order."""
    env = Environment()
    rng = np.random.default_rng(seed) if loss else None
    link = Link(env, "l", bandwidth_mbs=bandwidth, latency_s=latency,
                loss_rate=loss, rng=rng, contention_penalty=penalty,
                analytic=analytic)
    results = {}

    def one(index, arrive_at, megabytes, extra):
        yield env.timeout(arrive_at)
        start = env.now
        took = yield from link.transfer(megabytes, extra_delay_s=extra)
        results[index] = (start, took)

    for index, (arrive_at, megabytes, extra) in enumerate(schedule):
        env.process(one(index, arrive_at, megabytes, extra))
    env.run()
    return [results[i] for i in range(len(schedule))]


def _random_schedule(seed: int, n: int = 60):
    """Bursty arrivals: enough same-instant and back-to-back transfers to
    exercise the backlog/contention paths, not just the idle fast path."""
    rng = np.random.default_rng(seed)
    schedule, t = [], 0.0
    for _ in range(n):
        # ~1/3 of arrivals land at the same instant as the previous one.
        if rng.random() > 0.35:
            t += float(rng.exponential(0.02))
        megabytes = float(rng.uniform(0.01, 4.0))
        extra = float(rng.choice([0.0, 0.0, 0.05]))
        schedule.append((t, megabytes, extra))
    return schedule


class TestLinkProperty:
    """Randomized offered load: analytic departures == legacy departures."""

    @pytest.mark.parametrize("seed", range(5))
    def test_deterministic_link(self, seed):
        schedule = _random_schedule(seed)
        kwargs = dict(bandwidth=20.0, latency=0.004, loss=0.0,
                      penalty=0.0, schedule=schedule)
        assert (_link_departures(True, seed, **kwargs) ==
                _link_departures(False, seed, **kwargs))

    @pytest.mark.parametrize("seed", range(5))
    def test_lossy_contended_link(self, seed):
        """The wireless shape: shared-RNG retry draws + CSMA collapse."""
        schedule = _random_schedule(seed + 100)
        kwargs = dict(bandwidth=3.4, latency=0.008, loss=0.08,
                      penalty=0.12, schedule=schedule)
        assert (_link_departures(True, seed, **kwargs) ==
                _link_departures(False, seed, **kwargs))

    def test_busy_accounting_matches(self):
        schedule = _random_schedule(7)
        for loss in (0.0, 0.08):
            links = {}
            for analytic in (True, False):
                env = Environment()
                rng = np.random.default_rng(3) if loss else None
                link = Link(env, "l", bandwidth_mbs=10.0, latency_s=0.002,
                            loss_rate=loss, rng=rng, contention_penalty=0.1,
                            analytic=analytic)

                def feed(link=link, env=env):
                    for arrive_at, megabytes, extra in schedule:
                        if arrive_at > env.now:
                            yield env.timeout(arrive_at - env.now)
                        env.process(link.transfer(megabytes))
                env.process(feed())
                env.run()
                links[analytic] = link
            assert (links[True].busy_fraction(10.0) ==
                    links[False].busy_fraction(10.0))


class TestMeterAtSerializationEnd:
    """Satellite: the meter records when the payload leaves the wire (not
    after propagation), so utilization windows line up with busy_s."""

    @pytest.mark.parametrize("analytic", [True, False])
    def test_record_excludes_propagation(self, analytic):
        from repro.telemetry import BandwidthMeter
        env = Environment()
        meter = BandwidthMeter("m", window_s=1.0)
        # 10 MB/s link, 1.0 s propagation: a 5 MB transfer at t=0
        # serializes over [0, 0.5] and lands at t=1.5.
        link = Link(env, "l", bandwidth_mbs=10.0, latency_s=1.0,
                    meter=meter, analytic=analytic)
        env.run(env.process(link.transfer(5.0)))
        assert env.now == 1.5
        times = [t for t, _ in meter.events]
        assert times == [0.5]  # serialization end, not propagation end

    @pytest.mark.parametrize("analytic", [True, False])
    def test_metered_bytes_align_with_busy_fraction(self, analytic):
        from repro.telemetry import BandwidthMeter
        env = Environment()
        meter = BandwidthMeter("m", window_s=1.0)
        link = Link(env, "l", bandwidth_mbs=10.0, latency_s=2.0,
                    meter=meter, analytic=analytic)

        # Four transfers offered at t=0 serialize back-to-back over
        # [0, 4]; each then propagates for 2 s more.
        for _ in range(4):
            env.process(link.transfer(10.0))
        env.run()
        horizon = 4.0
        assert link.busy_fraction(horizon) == 1.0
        assert all(t <= horizon for t, _ in meter.events)
        assert sum(mb for _, mb in meter.events) == 40.0


class TestCouchDBParity:
    def test_contended_store_parity(self):
        durations = {}
        for analytic in (True, False):
            env = Environment()
            store = CouchDB(env, ServerlessConstants(),
                            rng=np.random.default_rng(11),
                            concurrency=3, analytic=analytic)
            results = []

            def client(delay, megabytes):
                yield env.timeout(delay)
                took = yield from store.access(megabytes)
                results.append((env.now, took))

            for index in range(24):
                env.process(client(0.001 * (index % 5), 0.2 * (index % 7)))
            env.run()
            durations[analytic] = sorted(results)
        assert durations[True] == durations[False]


# -- full-scenario seed sweep -------------------------------------------------

def _scenario_fingerprint(**kwargs):
    result = ScenarioRunner(**kwargs).run()
    return {
        "makespan": result.extras["makespan_s"],
        "found": result.extras.get("items_found",
                                   result.extras.get("unique_people")),
        "latencies": tuple(result.task_latencies.values),
        "failed": tuple(result.extras["failed_devices"]),
        "energy": tuple(tuple(sorted(account.by_category().items()))
                        for account in result.energy_accounts),
    }


def _cell_fingerprint(**kwargs):
    result = SingleTierRunner(**kwargs).run()
    return {
        "latencies": tuple(result.task_latencies.values),
        "bandwidth": result.bandwidth_summary(),
        "tail": result.tail_latency_s,
    }


SCENARIO_CASES = [
    # (config, scenario, extra kwargs) — centralized FaaS exercises the
    # full wireless/RPC/Kafka/CouchDB/invoker pipeline; hivemind adds the
    # accelerated fabric; the failure case covers fault detection and
    # respawn under both queue executions.
    ("centralized_faas", SCENARIO_A, {}),
    ("hivemind", SCENARIO_A, {"fail_device_at": (2, 10.0)}),
    ("hivemind", SCENARIO_B, {}),
]


class TestScenarioSeedSweep:
    """≥5 seeds × ≥3 scenarios: every figure row byte-identical between
    the analytic and legacy paths."""

    @pytest.mark.parametrize("seed", range(5))
    @pytest.mark.parametrize(
        "platform,scenario,extra",
        SCENARIO_CASES,
        ids=[f"{p}-{s.key}{'-fail' if e else ''}"
             for p, s, e in SCENARIO_CASES])
    def test_scenario_rows_identical(self, platform, scenario, extra, seed):
        base = dict(config=platform_config(platform), scenario=scenario,
                    seed=seed, n_devices=6, **extra)
        legacy = _scenario_fingerprint(analytic_net=False, **base)
        analytic = _scenario_fingerprint(analytic_net=True, **base)
        assert legacy == analytic

    @pytest.mark.parametrize("seed", range(5))
    def test_cell_rows_identical_with_faults(self, seed):
        base = dict(config=platform_config("centralized_faas"),
                    app=app("S3"), seed=seed, duration_s=20.0,
                    load_fraction=0.8, fault_rate=0.05)
        legacy = _cell_fingerprint(analytic_net=False, **base)
        analytic = _cell_fingerprint(analytic_net=True, **base)
        assert legacy == analytic

    def test_analytic_path_reduces_events(self):
        base = dict(config=platform_config("centralized_faas"),
                    app=app("S3"), seed=0, duration_s=30.0,
                    load_fraction=0.6)
        counts = {}
        for analytic in (False, True):
            before = events_consumed()
            SingleTierRunner(analytic_net=analytic, **base).run()
            counts[analytic] = events_consumed() - before
        assert counts[True] < counts[False] / 1.5


class TestEnvKillSwitch:
    def test_env_kill_switch(self, monkeypatch):
        monkeypatch.setenv("REPRO_ANALYTIC_NET", "0")
        env = Environment()
        assert Link(env, "l", 10.0).analytic is False
        monkeypatch.setenv("REPRO_ANALYTIC_NET", "1")
        assert Link(Environment(), "l", 10.0).analytic is True
        # Explicit argument wins over the environment.
        monkeypatch.setenv("REPRO_ANALYTIC_NET", "1")
        assert Link(Environment(), "l", 10.0, analytic=False).analytic is False
        monkeypatch.setenv("REPRO_ANALYTIC_NET", "0")
        assert Link(Environment(), "l", 10.0, analytic=True).analytic is True

    def test_runner_kwarg_resolution(self, monkeypatch):
        monkeypatch.setenv("REPRO_ANALYTIC_NET", "0")
        runner = ScenarioRunner(platform_config("hivemind"), SCENARIO_A)
        assert runner.analytic_net is None  # resolved by the leaves
        env = Environment()
        assert Link(env, "l", 10.0).analytic is False
