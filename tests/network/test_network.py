"""Tests for links, wireless medium, cluster network, and RPC transports."""

import pytest

from repro.config import DEFAULT, ClusterConstants, WirelessConstants
from repro.network import (
    ClusterNetwork,
    EdgeCloudRpc,
    Link,
    SoftwareClusterRpc,
    WirelessNetwork,
    build_fabric,
)
from repro.sim import Environment, RandomStreams
from repro.telemetry import BandwidthMeter


@pytest.fixture
def env():
    return Environment()


class TestLink:
    def test_validation(self, env):
        with pytest.raises(ValueError):
            Link(env, "l", bandwidth_mbs=0)
        with pytest.raises(ValueError):
            Link(env, "l", 10, latency_s=-1)
        with pytest.raises(ValueError):
            Link(env, "l", 10, loss_rate=1.0)

    def test_serialization_time(self, env):
        link = Link(env, "l", bandwidth_mbs=100)
        assert link.serialization_time(50) == pytest.approx(0.5)

    def test_loss_inflates_serialization(self, env):
        lossy = Link(env, "l", 100, loss_rate=0.5)
        assert lossy.serialization_time(50) == pytest.approx(1.0)

    def test_transfer_takes_serialization_plus_latency(self, env):
        link = Link(env, "l", bandwidth_mbs=10, latency_s=0.5)

        def sender():
            took = yield env.process(link.transfer(20))
            return took

        took = env.run(env.process(sender()))
        assert took == pytest.approx(2.5)

    def test_transfers_serialize_fifo(self, env):
        link = Link(env, "l", bandwidth_mbs=10)
        finish_times = []

        def sender():
            yield env.process(link.transfer(10))
            finish_times.append(env.now)

        env.process(sender())
        env.process(sender())
        env.run()
        assert finish_times == [pytest.approx(1.0), pytest.approx(2.0)]

    def test_meter_records(self, env):
        meter = BandwidthMeter()
        link = Link(env, "l", 10, meter=meter)
        env.run(env.process(link.transfer(5)))
        assert meter.total_mb == 5

    def test_busy_fraction(self, env):
        link = Link(env, "l", bandwidth_mbs=10)
        env.run(env.process(link.transfer(10)))  # busy 1s
        assert link.busy_fraction(2.0) == pytest.approx(0.5)
        with pytest.raises(ValueError):
            link.busy_fraction(0)

    def test_negative_size_rejected(self, env):
        link = Link(env, "l", 10)
        process = env.process(link.transfer(-1))
        with pytest.raises(ValueError):
            env.run(process)


class TestWireless:
    def test_round_robin_attachment(self, env):
        network = WirelessNetwork(env, WirelessConstants(access_points=2))
        ap_a = network.attach("d0")
        ap_b = network.attach("d1")
        ap_c = network.attach("d2")
        assert ap_a is not ap_b
        assert ap_a is ap_c  # wraps around
        assert network.attach("d0") is ap_a  # stable

    def test_access_point_of_unattached(self, env):
        network = WirelessNetwork(env, WirelessConstants())
        with pytest.raises(KeyError):
            network.access_point_of("ghost")

    def test_upload_duration_scales_with_size(self, env):
        constants = WirelessConstants(access_points=1, loss_rate=0.0)
        durations = []

        def uploader(network, mb):
            took = yield network.env.process(network.upload("d0", mb))
            durations.append(took)

        for mb in (1, 100):
            fresh_env = Environment()
            network = WirelessNetwork(fresh_env, constants)
            fresh_env.process(uploader(network, mb))
            fresh_env.run()
        assert durations[1] > durations[0]

    def test_saturation_queues(self, env):
        """Offered load beyond AP capacity must produce queueing delay."""
        constants = WirelessConstants(access_points=1, loss_rate=0.0)
        network = WirelessNetwork(env, constants)
        per_transfer = 50.0  # MB; ~0.46s each at 108.375 MB/s
        durations = []

        def device(device_id):
            took = yield env.process(network.upload(device_id, per_transfer))
            durations.append(took)

        for i in range(10):
            env.process(device("d0"))  # same AP, concurrent
        env.run()
        base = per_transfer / constants.ap_mbs
        assert max(durations) > 5 * base  # the last one queued a while

    def test_total_capacity(self, env):
        constants = WirelessConstants(access_points=2, ap_mbps=800)
        network = WirelessNetwork(env, constants)
        expected = 2 * 100.0 * constants.mac_efficiency
        assert network.total_capacity_mbs == pytest.approx(expected)

    def test_utilization(self, env):
        constants = WirelessConstants(access_points=1, loss_rate=0.0)
        network = WirelessNetwork(env, constants)
        env.run(env.process(network.upload("d0", constants.ap_mbs)))
        assert network.utilization(2.0) == pytest.approx(0.5)


class TestClusterNetwork:
    def test_register_and_duplicate(self, env):
        network = ClusterNetwork(env, ClusterConstants())
        network.register_server("s0")
        assert network.has_server("s0")
        with pytest.raises(ValueError):
            network.register_server("s0")

    def test_transfer_unknown_server(self, env):
        network = ClusterNetwork(env, ClusterConstants())
        network.register_server("s0")
        process = env.process(network.transfer("s0", "nope", 1))
        with pytest.raises(KeyError):
            env.run(process)

    def test_loopback_is_free(self, env):
        network = ClusterNetwork(env, ClusterConstants())
        network.register_server("s0")

        def run():
            took = yield env.process(network.transfer("s0", "s0", 100))
            return took

        assert env.run(env.process(run())) == 0.0

    def test_cross_server_transfer_timing(self, env):
        constants = ClusterConstants(nic_mbps=8000, tor_mbps=80000,
                                     tor_latency_s=0)
        network = ClusterNetwork(env, constants)
        network.register_server("s0")
        network.register_server("s1")

        def run():
            took = yield env.process(network.transfer("s0", "s1", 1000))
            return took

        # 1000 MB over 1000MB/s NIC twice + 10000MB/s ToR once.
        assert env.run(env.process(run())) == pytest.approx(2.1)


class TestRpc:
    def test_edge_cloud_rpc_result(self, env):
        network = WirelessNetwork(env, WirelessConstants(loss_rate=0.0))
        rpc = EdgeCloudRpc(env, network)

        def run():
            result = yield env.process(rpc.call("d0", 2.0, 0.01))
            return result

        result = env.run(env.process(run()))
        assert result.total_s == pytest.approx(
            result.wire_s + result.processing_s)
        assert result.request_mb == 2.0

    def test_edge_push_one_way(self, env):
        network = WirelessNetwork(env, WirelessConstants(loss_rate=0.0))
        rpc = EdgeCloudRpc(env, network)

        def run():
            result = yield env.process(rpc.push("d0", 2.0))
            return result

        result = env.run(env.process(run()))
        assert result.response_mb == 0.0

    def test_software_cluster_rpc(self, env):
        cluster = ClusterNetwork(env, ClusterConstants())
        cluster.register_server("s0")
        cluster.register_server("s1")
        rpc = SoftwareClusterRpc(env, cluster)
        assert rpc.per_call_cpu_s == pytest.approx(
            2 * ClusterConstants().sw_rpc_overhead_s)

        def run():
            result = yield env.process(rpc.call("s0", "s1", 0.001, 0.001))
            return result

        result = env.run(env.process(run()))
        assert result.total_s > 0
        assert result.processing_s == rpc.per_call_cpu_s


class TestFabric:
    def test_build_fabric_registers_servers(self, env):
        fabric = build_fabric(env, DEFAULT, RandomStreams(1))
        assert len(fabric.server_ids) == DEFAULT.cluster.servers
        assert all(fabric.cluster.has_server(s) for s in fabric.server_ids)

    def test_fabric_wireless_matches_constants(self, env):
        fabric = build_fabric(env, DEFAULT, RandomStreams(1))
        assert len(fabric.wireless.access_points) == \
            DEFAULT.wireless.access_points
