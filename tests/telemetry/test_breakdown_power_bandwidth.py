"""Tests for latency breakdowns, energy accounts, and bandwidth meters."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.telemetry import (
    BandwidthMeter,
    BatteryDepleted,
    BreakdownAggregate,
    EnergyAccount,
    LatencyBreakdown,
    fleet_consumed_percent,
)


class TestLatencyBreakdown:
    def test_charge_and_total(self):
        breakdown = LatencyBreakdown()
        breakdown.charge("network", 0.2)
        breakdown.charge("execution", 0.8)
        assert breakdown.total == pytest.approx(1.0)

    def test_unknown_component_rejected(self):
        with pytest.raises(KeyError):
            LatencyBreakdown().charge("gpu", 1.0)

    def test_negative_charge_rejected(self):
        with pytest.raises(ValueError):
            LatencyBreakdown().charge("network", -0.1)

    def test_fractions_sum_to_one(self):
        breakdown = LatencyBreakdown(network=1, management=1,
                                     data_io=1, execution=1)
        fractions = breakdown.fractions()
        assert sum(fractions.values()) == pytest.approx(1.0)
        assert fractions["network"] == pytest.approx(0.25)

    def test_fractions_of_zero_total(self):
        assert all(v == 0 for v in LatencyBreakdown().fractions().values())

    def test_addition(self):
        a = LatencyBreakdown(network=1)
        b = LatencyBreakdown(execution=2)
        combined = a + b
        assert combined.network == 1 and combined.execution == 2

    @given(st.lists(st.floats(min_value=0, max_value=100), min_size=4,
                    max_size=4))
    def test_fractions_property(self, parts):
        breakdown = LatencyBreakdown(*parts)
        fractions = breakdown.fractions()
        if breakdown.total > 0:
            assert sum(fractions.values()) == pytest.approx(1.0)
        assert all(0 <= v <= 1 for v in fractions.values())


class TestBreakdownAggregate:
    def _populate(self, aggregate, n=100):
        for i in range(n):
            aggregate.add(LatencyBreakdown(
                network=0.1 * (i + 1), execution=0.3 * (i + 1)))

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            BreakdownAggregate().at_percentile(50)

    def test_median_fractions(self):
        aggregate = BreakdownAggregate()
        self._populate(aggregate)
        fractions = aggregate.median_fractions()
        assert fractions["network"] == pytest.approx(0.25, abs=0.01)
        assert fractions["execution"] == pytest.approx(0.75, abs=0.01)

    def test_tail_band_larger_than_median_band(self):
        aggregate = BreakdownAggregate()
        self._populate(aggregate)
        median_seconds = sum(aggregate.at_percentile(50).values())
        tail_seconds = sum(aggregate.at_percentile(99).values())
        assert tail_seconds > median_seconds

    def test_mean_fraction(self):
        aggregate = BreakdownAggregate()
        self._populate(aggregate)
        assert aggregate.mean_fraction("network") == pytest.approx(0.25)

    def test_mean_fraction_unknown_component(self):
        with pytest.raises(KeyError):
            BreakdownAggregate().mean_fraction("gpu")


class TestEnergyAccount:
    def test_capacity_positive(self):
        with pytest.raises(ValueError):
            EnergyAccount(0)

    def test_draw_power_accumulates(self):
        account = EnergyAccount(capacity_wh=10)
        account.draw_power("motion", watts=36.0, seconds=100.0)  # 1 Wh
        assert account.consumed_wh == pytest.approx(1.0)
        assert account.consumed_percent == pytest.approx(10.0)

    def test_draw_energy_joules(self):
        account = EnergyAccount(capacity_wh=1)
        account.draw_energy("radio_tx", joules=3600)
        assert account.consumed_wh == pytest.approx(1.0)

    def test_unknown_category(self):
        with pytest.raises(KeyError):
            EnergyAccount(1).draw_power("warp", 1, 1)

    def test_negative_rejected(self):
        account = EnergyAccount(1)
        with pytest.raises(ValueError):
            account.draw_power("motion", -1, 1)
        with pytest.raises(ValueError):
            account.draw_energy("motion", -1)

    def test_strict_mode_raises_on_depletion(self):
        account = EnergyAccount(capacity_wh=0.001, device="drone0",
                                strict=True)
        with pytest.raises(BatteryDepleted):
            account.draw_power("compute", watts=100, seconds=100)

    def test_nonstrict_can_exceed_100(self):
        account = EnergyAccount(capacity_wh=0.001)
        account.draw_power("compute", watts=100, seconds=100)
        assert account.consumed_percent > 100

    def test_remaining_clamped_at_zero(self):
        account = EnergyAccount(capacity_wh=0.001)
        account.draw_power("compute", watts=100, seconds=100)
        assert account.remaining_wh == 0.0
        assert account.depleted

    def test_by_category(self):
        account = EnergyAccount(10)
        account.draw_power("motion", 36, 100)
        account.draw_power("radio_tx", 36, 50)
        categories = account.by_category()
        assert categories["motion"] == pytest.approx(1.0)
        assert categories["radio_tx"] == pytest.approx(0.5)
        assert account.category_percent("motion") == pytest.approx(10.0)

    def test_fleet_summary(self):
        accounts = [EnergyAccount(10), EnergyAccount(10)]
        accounts[0].draw_power("motion", 36, 100)   # 10%
        accounts[1].draw_power("motion", 36, 300)   # 30%
        mean, worst = fleet_consumed_percent(accounts)
        assert mean == pytest.approx(20.0)
        assert worst == pytest.approx(30.0)

    def test_fleet_summary_empty(self):
        with pytest.raises(ValueError):
            fleet_consumed_percent([])


class TestBandwidthMeter:
    def test_window_must_be_positive(self):
        with pytest.raises(ValueError):
            BandwidthMeter(window_s=0)

    def test_total(self):
        meter = BandwidthMeter()
        meter.record(0.5, 10)
        meter.record(1.5, 20)
        assert meter.total_mb == 30

    def test_mean_mbs(self):
        meter = BandwidthMeter(window_s=1.0)
        meter.record(0.5, 10)
        meter.record(1.5, 30)
        assert meter.mean_mbs(horizon_s=2.0) == pytest.approx(20.0)

    def test_percentile_and_peak(self):
        meter = BandwidthMeter(window_s=1.0)
        for t in range(10):
            meter.record(t + 0.5, 1.0)
        meter.record(5.2, 99.0)
        assert meter.peak_mbs(horizon_s=10) == pytest.approx(100.0)
        assert meter.percentile_mbs(50, horizon_s=10) == pytest.approx(1.0)

    def test_empty_meter(self):
        meter = BandwidthMeter()
        assert meter.mean_mbs() == 0.0
        assert len(meter) == 0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            BandwidthMeter().record(0, -1)
