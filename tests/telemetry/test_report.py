"""Tests for the table/series renderers."""

import pytest

from repro.telemetry import format_value, render_series, render_table


class TestFormatValue:
    def test_plain_values(self):
        assert format_value(True) == "True"
        assert format_value("text") == "text"
        assert format_value(0.0) == "0"

    def test_float_precision(self):
        assert format_value(3.14159) == "3.14"
        assert format_value(0.000012) == "1.20e-05"

    def test_thousands_grouping(self):
        assert format_value(123456.7) == "123,457"
        assert format_value(98765) == "98,765"


class TestRenderTable:
    def test_alignment_and_separator(self):
        text = render_table(["name", "value"],
                            [["alpha", 1], ["b", 22]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1] and "value" in lines[1]
        assert set(lines[2]) <= {"-", "+"}
        # All rows share the same width.
        assert len({len(line) for line in lines[1:]}) == 1

    def test_row_width_mismatch(self):
        with pytest.raises(ValueError):
            render_table(["a", "b"], [[1]])

    def test_render_series(self):
        text = render_series("x", [1, 2],
                             {"y1": [10, 20], "y2": [30, 40]})
        assert "y1" in text and "y2" in text
        assert "10" in text and "40" in text

    def test_series_pads_missing(self):
        text = render_series("x", [1, 2, 3], {"y": [10]})
        assert text  # renders without raising
