"""The incremental percentile must be bit-identical to numpy's linear one.

MetricSeries.percentile() is on the straggler watchdog's hot path and was
rewritten around an incrementally maintained sorted list; any deviation
from ``np.percentile(..., method="linear")`` would silently shift p90
thresholds and with them every mitigation decision downstream.
"""

import numpy as np
import pytest

from repro.telemetry import MetricSeries

pytestmark = pytest.mark.quick

QUANTILES = (0, 1, 5, 25, 50, 75, 90, 95, 99, 99.9, 100)


def _assert_bit_identical(values):
    series = MetricSeries("exactness")
    for value in values:
        series.add(value)
    data = np.asarray(values, dtype=float)
    for q in QUANTILES:
        assert series.percentile(q) == float(np.percentile(data, q)), \
            f"q={q} diverges on {len(values)} samples"


def test_small_series():
    _assert_bit_identical([3.0])
    _assert_bit_identical([2.0, 1.0])
    _assert_bit_identical([5.5, -1.25, 3.0])


def test_random_series_across_sizes():
    rng = np.random.default_rng(7)
    for size in (4, 17, 64, 257, 1000):
        _assert_bit_identical(list(rng.lognormal(0.0, 1.5, size)))


def test_incremental_queries_interleaved_with_adds():
    # The watchdog pattern: query after every add. The insort path and
    # the bulk re-sort path must agree with numpy at every prefix.
    rng = np.random.default_rng(11)
    samples = list(rng.normal(10.0, 3.0, 300))
    series = MetricSeries("interleaved")
    for index, value in enumerate(samples):
        series.add(value)
        if index % 7 == 0:
            prefix = np.asarray(samples[:index + 1])
            assert series.percentile(90) == float(np.percentile(prefix, 90))


def test_duplicates_and_constant_series():
    _assert_bit_identical([2.0] * 50)
    _assert_bit_identical([1.0, 1.0, 2.0, 2.0, 2.0, 3.0])


def test_empty_and_out_of_range():
    series = MetricSeries("empty")
    with pytest.raises(ValueError):
        series.percentile(50)
    series.add(1.0)
    with pytest.raises(ValueError):
        series.percentile(101)
    with pytest.raises(ValueError):
        series.percentile(-1)
