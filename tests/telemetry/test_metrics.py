"""Tests for MetricSeries / MetricRegistry."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.telemetry import MetricRegistry, MetricSeries


class TestMetricSeries:
    def test_empty_series_raises(self):
        series = MetricSeries("empty")
        with pytest.raises(ValueError):
            _ = series.median

    def test_len_and_bool(self):
        series = MetricSeries()
        assert not series
        series.add(1.0)
        assert series and len(series) == 1

    def test_median_of_known_values(self):
        series = MetricSeries()
        series.extend([1, 2, 3, 4, 5])
        assert series.median == 3

    def test_percentiles_monotone(self):
        series = MetricSeries()
        series.extend(range(100))
        assert series.percentile(5) <= series.median <= series.p99

    def test_mean_std(self):
        series = MetricSeries()
        series.extend([2, 4, 6, 8])
        assert series.mean == 5
        assert series.std == pytest.approx(np.std([2, 4, 6, 8]))

    def test_cv_zero_mean(self):
        series = MetricSeries()
        series.extend([0, 0])
        assert series.cv == 0.0

    def test_cv_positive(self):
        series = MetricSeries()
        series.extend([1, 3])
        assert series.cv == pytest.approx(1.0 / 2.0)

    def test_summary_fields_consistent(self):
        series = MetricSeries()
        series.extend(np.linspace(0, 10, 101))
        summary = series.summary()
        assert summary.count == 101
        assert summary.minimum == 0
        assert summary.maximum == 10
        assert summary.p25 <= summary.median <= summary.p75
        assert set(summary.as_dict()) == {
            "count", "mean", "std", "min", "p5", "p25", "median",
            "p75", "p90", "p95", "p99", "max"}

    def test_histogram_total(self):
        series = MetricSeries()
        series.extend(range(50))
        counts, edges = series.histogram(bins=10)
        assert counts.sum() == 50
        assert len(edges) == 11

    def test_windowed_counts(self):
        series = MetricSeries()
        for t in (0.1, 0.2, 1.5, 2.9):
            series.add(1.0, time=t)
        counts = series.windowed_counts(window_s=1.0, horizon_s=4.0)
        assert list(counts) == [2, 1, 1, 0]

    def test_windowed_counts_no_times(self):
        series = MetricSeries()
        series.add(1.0)  # NaN time
        assert series.windowed_counts(1.0).size == 0

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6,
                              allow_nan=False), min_size=1, max_size=200))
    def test_percentile_bounds_property(self, values):
        series = MetricSeries()
        series.extend(values)
        assert series.minimum <= series.median <= series.maximum
        assert series.minimum <= series.p99 <= series.maximum

    @given(st.lists(st.floats(min_value=0, max_value=1e6,
                              allow_nan=False), min_size=1, max_size=200))
    def test_mean_within_bounds_property(self, values):
        series = MetricSeries()
        series.extend(values)
        assert series.minimum - 1e-9 <= series.mean <= series.maximum + 1e-9


class TestMetricRegistry:
    def test_lazy_creation(self):
        registry = MetricRegistry()
        assert "latency" not in registry
        registry.add("latency", 1.0)
        assert "latency" in registry
        assert registry["latency"].mean == 1.0

    def test_same_series_returned(self):
        registry = MetricRegistry()
        assert registry.series("x") is registry.series("x")

    def test_names_sorted(self):
        registry = MetricRegistry()
        registry.add("b", 1)
        registry.add("a", 1)
        assert list(registry.names()) == ["a", "b"]
