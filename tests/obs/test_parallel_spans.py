"""Span shipping through the parallel experiment executor.

Each executor task's span delta travels back in its ``TaskResult`` and
is re-absorbed by the coordinator under the task's replica index, so a
merged trace keeps one process lane per replica and ids never collide.
"""

import pytest

from repro import obs
from repro.experiments.parallel import run_tasks

pytestmark = pytest.mark.quick


def _traced_job(seed):
    """Module-level (hence picklable) job that emits one tiny trace."""
    ctx = obs.root_span("task", "task", 0.0, seed=seed)
    ctx.emit("execute", "execution", 0.0, 1.0)
    ctx.close(1.0)
    return seed * 2


class TestSpanShipping:
    def test_serial_path_tags_replicas(self):
        obs.install()
        results = run_tasks([(_traced_job, (s,), {}) for s in range(3)],
                            max_workers=1)
        assert [r.value for r in results] == [0, 2, 4]
        tracer = obs.active_tracer()
        roots = tracer.roots()
        assert sorted(s.replica for s in roots) == [0, 1, 2]
        # Ids stayed unique through absorption, parents intact.
        assert len({s.span_id for s in tracer.spans}) == len(tracer)
        assert len(tracer.traces()) == 3
        for root in roots:
            children = [s for s in tracer.spans
                        if s.parent_id == root.span_id]
            assert [c.name for c in children] == ["execute"]

    def test_pool_path_ships_spans_back(self, monkeypatch):
        # Workers arm their tracer from the environment; whether the
        # pool is actually usable or the serial fallback runs, every
        # task's spans must land in the coordinator's tracer.
        monkeypatch.setenv("REPRO_TRACE", "1")
        obs.install()
        results = run_tasks([(_traced_job, (s,), {}) for s in range(4)],
                            max_workers=2)
        assert [r.value for r in results] == [0, 2, 4, 6]
        assert all(r.spans for r in results)
        tracer = obs.active_tracer()
        assert sorted(s.replica for s in tracer.roots()) == [0, 1, 2, 3]
        assert len(tracer.traces()) == 4

    def test_untraced_tasks_ship_nothing(self):
        results = run_tasks([(_traced_job, (1,), {})], max_workers=1)
        assert results[0].spans is None
        assert obs.active_tracer() is None
