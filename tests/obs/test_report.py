"""Latency-breakdown reports: the exact-sum partition property.

The contract: for every trace, the per-layer seconds sum to the root
span's end-to-end latency — nothing double-counted, nothing dropped —
and the critical path is a gapless, time-ordered tiling of the root
window. Checked on hand-built traces here and on a full simulated S1
run in TestRealRun.
"""

import pytest

from repro import obs
from repro.obs import (SpanTracer, aggregate_breakdown, latency_reports,
                       trace_report)

pytestmark = pytest.mark.quick


def _build(events, tracer=None):
    """Build spans from (name, layer, start, end, parent_index|None)."""
    tracer = tracer if tracer is not None else SpanTracer()
    contexts = []
    for name, layer, start, end, parent in events:
        if parent is None:
            ctx = tracer.start_trace(name, layer, start)
        else:
            ctx = contexts[parent].span(name, layer, start)
        contexts.append(ctx)
        ctx.close(end)
    return tracer.spans


class TestTraceReport:
    def test_deepest_span_wins_each_interval(self):
        # task [0,10] > upload [1,4] > serialize [2,3]:
        # task keeps [0,1)+[4,10)=7s, network [1,2)+[3,4)=2s, exec 1s.
        spans = _build([
            ("task", "task", 0.0, 10.0, None),
            ("upload", "network", 1.0, 4.0, 0),
            ("serialize", "execution", 2.0, 3.0, 1),
        ])
        report = trace_report(spans)
        assert report.layers == {"task": 7.0, "network": 2.0,
                                 "execution": 1.0}
        assert report.latency_s == 10.0
        assert report.breakdown_sum_s == pytest.approx(10.0, abs=0)

    def test_critical_path_tiles_the_root_window(self):
        spans = _build([
            ("task", "task", 0.0, 10.0, None),
            ("upload", "network", 1.0, 4.0, 0),
            ("execute", "execution", 4.0, 9.0, 0),
        ])
        path = trace_report(spans).critical_path
        # Gapless and ordered: each segment starts where the last ended.
        assert path[0][2] == 0.0 and path[-1][3] == 10.0
        for (_, _, _, prev_end), (_, _, start, _) in zip(path, path[1:]):
            assert start == prev_end
        assert [name for name, _, _, _ in path] == \
            ["task", "upload", "execute", "task"]

    def test_tie_breaks_to_latest_started_span(self):
        # Two same-depth children overlap on [2,3): the later-started
        # one (the innermost work at that instant) wins the overlap.
        spans = _build([
            ("task", "task", 0.0, 4.0, None),
            ("early", "network", 1.0, 3.0, 0),
            ("late", "execution", 2.0, 3.0, 0),
        ])
        report = trace_report(spans)
        assert report.layers["execution"] == 1.0
        assert report.layers["network"] == 1.0

    def test_adjacent_same_name_segments_merge(self):
        spans = _build([
            ("task", "task", 0.0, 6.0, None),
            ("upload", "network", 1.0, 2.0, 0),
        ])
        path = trace_report(spans).critical_path
        assert path == [("task", "task", 0.0, 1.0),
                        ("upload", "network", 1.0, 2.0),
                        ("task", "task", 2.0, 6.0)]

    def test_zero_length_root(self):
        spans = _build([("task", "task", 5.0, 5.0, None)])
        report = trace_report(spans)
        assert report.latency_s == 0.0
        assert report.breakdown_sum_s == 0.0

    def test_no_root_returns_none(self):
        spans = _build([
            ("task", "task", 0.0, 1.0, None),
            ("upload", "network", 0.0, 1.0, 0),
        ])
        children_only = [s for s in spans if s.parent_id is not None]
        assert trace_report(children_only) is None


class TestAggregates:
    def test_latency_reports_sorted_by_start(self):
        tracer = SpanTracer()
        late = tracer.start_trace("task", "task", 5.0)
        early = tracer.start_trace("task", "task", 1.0)
        late.close(7.0)
        early.close(2.0)
        reports = latency_reports(tracer.spans)
        assert [r.root.start for r in reports] == [1.0, 5.0]

    def test_aggregate_fractions_sum_to_one(self):
        tracer = SpanTracer()  # shared: distinct trace ids per root
        spans = _build([
            ("task", "task", 0.0, 10.0, None),
            ("upload", "network", 1.0, 4.0, 0),
        ], tracer) + _build([
            ("task", "task", 0.0, 2.0, None),
            ("execute", "execution", 0.5, 1.5, 0),
        ], tracer)
        agg = aggregate_breakdown(spans, root_name="task")
        assert agg["traces"] == 2
        assert agg["total_latency_s"] == pytest.approx(12.0)
        assert sum(agg["layer_fractions"].values()) == pytest.approx(1.0)
        assert sum(agg["layer_seconds"].values()) == \
            pytest.approx(agg["total_latency_s"])

    def test_root_name_filter(self):
        tracer = SpanTracer()
        spans = _build([("task", "task", 0.0, 1.0, None)], tracer) + \
            _build([("flight", "edge", 0.0, 30.0, None)], tracer)
        assert aggregate_breakdown(spans, root_name="task")["traces"] == 1
        assert aggregate_breakdown(spans)["traces"] == 2


class TestRealRun:
    """The acceptance property on a real simulated S1 run: every
    request's per-layer breakdown sums to its end-to-end latency."""

    def test_s1_breakdowns_sum_exactly(self):
        from repro.apps import app
        from repro.platforms import SingleTierRunner, platform_config

        obs.install()
        SingleTierRunner(platform_config("centralized_faas"), app("S1"),
                         seed=0, duration_s=20.0,
                         load_fraction=0.6).run()
        tracer = obs.active_tracer()
        reports = [r for r in latency_reports(tracer.spans)
                   if r.root.name == "task"]
        assert len(reports) > 10  # the run actually produced requests
        for report in reports:
            tolerance = 1e-9 * max(1.0, report.latency_s)
            assert abs(report.breakdown_sum_s - report.latency_s) \
                <= tolerance
        # Roots are unique per trace and every span joined a trace.
        assert len(tracer.roots()) == len(tracer.traces())
