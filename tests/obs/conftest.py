"""Shared isolation for the observability tests.

``repro.obs`` keeps a process-global tracer plus a cached decision about
the ``REPRO_TRACE`` environment variable. Every test here starts from
the pristine "tracing off, environment unread" state and restores it on
the way out, so tests cannot leak spans (or an armed tracer) into each
other or into the rest of the suite.
"""

import pytest

from repro import obs


@pytest.fixture(autouse=True)
def clean_obs(monkeypatch):
    monkeypatch.delenv("REPRO_TRACE", raising=False)
    obs.reset()
    yield
    obs.reset()
