"""Span model: contexts, ids, the null handle, and worker absorption."""

import pickle

import pytest

from repro import obs
from repro.obs import NULL_CONTEXT, Span, SpanTracer

pytestmark = pytest.mark.quick


class TestNullContext:
    """The tracing-off handle: falsy, inert, and closed under chaining."""

    def test_falsy(self):
        assert not NULL_CONTEXT
        assert bool(NULL_CONTEXT) is False

    def test_span_chain_returns_the_singleton(self):
        child = NULL_CONTEXT.span("a", "network", 0.0).span("b", "edge", 1.0)
        assert child is NULL_CONTEXT

    def test_all_operations_are_noops(self):
        NULL_CONTEXT.emit("x", "network", 0.0, 1.0, mb=4)
        NULL_CONTEXT.annotate(lost=True)
        NULL_CONTEXT.close(2.0)
        # Nothing to assert beyond "did not raise and allocated nothing":
        # there is no tracer to have recorded into.

    def test_root_span_returns_null_when_tracing_off(self):
        assert obs.active_tracer() is None
        assert obs.root_span("task", "task", 0.0) is NULL_CONTEXT


class TestTraceContext:
    def test_root_and_child_linkage(self):
        tracer = SpanTracer()
        root = tracer.start_trace("task", "task", 0.0, app="S1")
        assert root  # open contexts are truthy (the `if trace:` guard)
        child = root.span("upload", "network", 1.0)
        child.close(3.0, mb=2.5)
        root.close(5.0)
        assert len(tracer) == 2
        upload, task = tracer.spans
        assert upload.parent_id == task.span_id
        assert upload.trace_id == task.trace_id
        assert task.parent_id is None
        assert (upload.start, upload.end) == (1.0, 3.0)
        assert upload.attr_dict() == {"mb": 2.5}
        assert task.attr_dict() == {"app": "S1"}

    def test_emit_records_finished_child(self):
        tracer = SpanTracer()
        root = tracer.start_trace("task", "task", 0.0)
        root.emit("serialize", "network", 2.0, 2.5, link="uplink")
        span = tracer.spans[0]
        assert span.name == "serialize"
        assert span.parent_id == root.span_id
        assert span.duration == 0.5
        assert span.attr_dict() == {"link": "uplink"}

    def test_close_is_idempotent(self):
        # A straggler race can reach both completion paths; only the
        # first close may record.
        tracer = SpanTracer()
        root = tracer.start_trace("task", "task", 0.0)
        root.close(4.0, winner="original")
        root.close(9.0, winner="duplicate")
        assert len(tracer) == 1
        assert tracer.spans[0].end == 4.0
        assert tracer.spans[0].attr_dict() == {"winner": "original"}

    def test_annotate_lands_on_close(self):
        tracer = SpanTracer()
        root = tracer.start_trace("task", "task", 0.0)
        root.annotate(lost=True)
        root.close(1.0)
        assert tracer.spans[0].attr_dict() == {"lost": True}

    def test_ids_are_unique_across_traces(self):
        tracer = SpanTracer()
        a = tracer.start_trace("task", "task", 0.0)
        b = tracer.start_trace("task", "task", 0.0)
        assert a.trace_id != b.trace_id
        assert a.span_id != b.span_id

    def test_spans_are_picklable(self):
        # Pool workers ship spans back inside TaskResult.
        span = Span(1, 2, None, "task", "task", 0.0, 1.0,
                    attrs=(("app", "S1"),))
        assert pickle.loads(pickle.dumps(span)) == span


class TestTracerPlumbing:
    def test_take_from_pops_the_delta(self):
        tracer = SpanTracer()
        tracer.start_trace("task", "task", 0.0).close(1.0)
        mark = len(tracer)
        tracer.start_trace("task", "task", 2.0).close(3.0)
        delta = tracer.take_from(mark)
        assert [s.start for s in delta] == [2.0]
        assert len(tracer) == 1  # the pre-mark span stays

    def test_absorb_remaps_ids_and_tags_replica(self):
        main = SpanTracer()
        main.start_trace("task", "task", 0.0).close(1.0)
        worker = SpanTracer()  # fresh counters: ids collide with main's
        w_root = worker.start_trace("task", "task", 0.0)
        w_root.emit("upload", "network", 0.2, 0.4)
        w_root.close(1.0)
        main.absorb(worker.spans, replica=3)
        assert len(main) == 3
        absorbed = main.spans[1:]
        assert all(s.replica == 3 for s in absorbed)
        # Ids re-mapped into main's space: no collision with the
        # pre-existing span, and the parent link survives the re-map.
        existing = main.spans[0]
        assert {s.trace_id for s in absorbed} != {existing.trace_id}
        upload = next(s for s in absorbed if s.name == "upload")
        task = next(s for s in absorbed if s.name == "task")
        assert upload.parent_id == task.span_id
        assert task.parent_id is None

    def test_absorb_of_nothing_is_a_noop(self):
        main = SpanTracer()
        main.absorb([], replica=1)
        assert len(main) == 0

    def test_env_arms_the_global_tracer(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE", "1")
        obs.reset()
        assert obs.tracing_enabled()
        ctx = obs.root_span("task", "task", 0.0)
        assert ctx is not NULL_CONTEXT
        ctx.close(1.0)
        assert len(obs.active_tracer()) == 1

    def test_env_zero_means_off(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE", "0")
        obs.reset()
        assert not obs.tracing_enabled()
