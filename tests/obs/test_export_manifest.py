"""Chrome trace-event exporter shape and run-manifest round-trips."""

import datetime
import json

import pytest

from repro.obs import (RunManifest, Span, SpanTracer, git_revision,
                       runtime_flags, to_chrome_trace, write_chrome_trace,
                       write_trace_files)

pytestmark = pytest.mark.quick


def _sample_spans(replicas=(0,)):
    spans = []
    for replica in replicas:
        tracer = SpanTracer()
        root = tracer.start_trace("task", "task", 0.0, app="S1")
        root.emit("upload", "network", 0.1, 0.4, mb=2.0)
        root.emit("execute", "execution", 0.4, 0.9)
        root.close(1.0)
        for span in tracer.spans:
            spans.append(Span(span.trace_id, span.span_id, span.parent_id,
                              span.name, span.layer, span.start, span.end,
                              span.attrs, replica=replica))
    return spans


class TestChromeTrace:
    def test_schema_shape(self):
        doc = to_chrome_trace(_sample_spans())
        assert isinstance(doc["traceEvents"], list)
        assert doc["displayTimeUnit"] == "ms"
        phases = {event["ph"] for event in doc["traceEvents"]}
        assert phases <= {"X", "M"}
        complete = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert len(complete) == 3
        for event in complete:
            assert isinstance(event["name"], str)
            assert event["dur"] >= 0.0
            assert {"pid", "tid", "ts", "cat", "args"} <= set(event)
            assert "trace_id" in event["args"]
            assert "span_id" in event["args"]

    def test_timestamps_are_microseconds(self):
        doc = to_chrome_trace(_sample_spans())
        upload = next(e for e in doc["traceEvents"]
                      if e.get("name") == "upload")
        assert upload["ts"] == pytest.approx(0.1e6)
        assert upload["dur"] == pytest.approx(0.3e6)

    def test_track_metadata_names_layers(self):
        doc = to_chrome_trace(_sample_spans())
        meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        names = {e["name"] for e in meta}
        assert names == {"process_name", "thread_name"}
        threads = {e["args"]["name"] for e in meta
                   if e["name"] == "thread_name"}
        assert threads == {"task", "network", "execution"}

    def test_parent_id_travels_in_args(self):
        doc = to_chrome_trace(_sample_spans())
        upload = next(e for e in doc["traceEvents"]
                      if e.get("name") == "upload")
        task = next(e for e in doc["traceEvents"]
                    if e.get("name") == "task")
        assert upload["args"]["parent_id"] == task["args"]["span_id"]

    def test_write_is_valid_json(self, tmp_path):
        path = write_chrome_trace(str(tmp_path / "trace.json"),
                                  _sample_spans())
        with open(path) as handle:
            doc = json.load(handle)
        assert doc["traceEvents"]

    def test_single_replica_writes_one_file(self, tmp_path):
        written = write_trace_files(str(tmp_path / "trace.json"),
                                    _sample_spans())
        assert len(written) == 1

    def test_multi_replica_writes_siblings(self, tmp_path):
        spans = _sample_spans(replicas=(0, 1))
        written = write_trace_files(str(tmp_path / "trace.json"), spans)
        assert [p.rsplit("/", 1)[-1] for p in written] == \
            ["trace.json", "trace.r0.json", "trace.r1.json"]
        with open(written[2]) as handle:
            doc = json.load(handle)
        pids = {e["pid"] for e in doc["traceEvents"]}
        assert pids == {1}


class TestManifest:
    def test_collect_stamps_provenance(self):
        manifest = RunManifest.collect("fig11", seed=7, sim_events=123)
        assert manifest.figure == "fig11"
        assert manifest.seed == 7
        assert manifest.sim_events == 123
        assert manifest.git_rev == git_revision()
        assert set(manifest.flags) == {"vector_edge", "analytic_net",
                                       "fast_dispatch", "batched_rng",
                                       "trace"}
        assert manifest.created  # ISO timestamp, non-empty
        # Timezone-aware UTC, not a naive local time: manifests from
        # different hosts must be comparable.
        created = datetime.datetime.fromisoformat(manifest.created)
        assert created.tzinfo is not None
        assert created.utcoffset() == datetime.timedelta(0)

    def test_runtime_flags_reflect_tracer(self):
        from repro import obs
        assert runtime_flags()["trace"] is False
        obs.install()
        assert runtime_flags()["trace"] is True

    def test_json_round_trip(self):
        manifest = RunManifest.collect(
            "fig17a", seed=3, elapsed_s=1.25, sim_events=99,
            layer_events={"network": 40}, spans=12,
            trace_files=["trace.json"])
        clone = RunManifest.from_json(manifest.to_json())
        assert clone == manifest

    def test_unknown_keys_survive_in_extra(self):
        payload = json.loads(RunManifest.collect("fig01").to_json())
        payload["future_field"] = {"nested": 1}
        clone = RunManifest.from_dict(payload)
        assert clone.extra["future_field"] == {"nested": 1}
        assert clone.figure == "fig01"

    def test_write_and_read_back(self, tmp_path):
        manifest = RunManifest.collect("fig04", seed=0)
        path = manifest.write(str(tmp_path / "run.manifest.json"))
        with open(path) as handle:
            clone = RunManifest.from_json(handle.read())
        assert clone == manifest
