"""The zero-overhead contract: tracing never perturbs the simulation.

Spans are recorded after the fact with explicit timestamps, so an armed
tracer must consume zero extra kernel events and zero extra RNG draws —
a traced run produces byte-identical figure rows to an untraced one, on
the analytic fast paths and on the legacy fallbacks alike. (The
companion check against the frozen seed-commit CSVs lives in the PR
verification; these tests enforce the on/off half of the contract
forever after.)
"""

import pytest

from repro import obs
from repro.apps import SCENARIO_A, app
from repro.platforms import (ScenarioRunner, SingleTierRunner,
                             platform_config)
from repro.sim.kernel import events_consumed


def _cell_fingerprint(**kwargs):
    before = events_consumed()
    result = SingleTierRunner(platform_config("centralized_faas"),
                              app("S3"), seed=0, duration_s=20.0,
                              load_fraction=0.6, **kwargs).run()
    return {
        "latencies": tuple(result.task_latencies.values),
        "tail": result.tail_latency_s,
        "events": events_consumed() - before,
    }


def _scenario_fingerprint():
    before = events_consumed()
    result = ScenarioRunner(platform_config("hivemind"), SCENARIO_A,
                            seed=0, n_devices=6).run()
    return {
        "makespan": result.extras["makespan_s"],
        "latencies": tuple(result.task_latencies.values),
        "events": events_consumed() - before,
    }


class TestTracingOnEqualsTracingOff:
    """Same numbers, same event count, with and without a tracer —
    identical RNG streams are implied by identical outputs (every draw
    shifts every later sample)."""

    def test_single_tier_cell_identical(self):
        untraced = _cell_fingerprint()
        obs.install()
        traced = _cell_fingerprint()
        assert len(obs.active_tracer()) > 0  # tracing actually happened
        assert traced == untraced

    def test_single_tier_legacy_fallback_identical(self):
        untraced = _cell_fingerprint(analytic_net=False)
        obs.install()
        traced = _cell_fingerprint(analytic_net=False)
        assert len(obs.active_tracer()) > 0
        assert traced == untraced

    def test_scenario_with_flights_identical(self):
        untraced = _scenario_fingerprint()
        obs.install()
        traced = _scenario_fingerprint()
        tracer = obs.active_tracer()
        # Both request traces and synthesized flight-leg spans exist...
        names = {span.name for span in tracer.spans}
        assert "task" in names
        assert "flight" in names
        # ...and the simulation never noticed.
        assert traced == untraced

    def test_unarmed_spans_cost_nothing(self):
        # With tracing off the handles are NULL_CONTEXT end to end: two
        # identical untraced runs dispatch identical event counts, and
        # no tracer ever materializes.
        first = _cell_fingerprint()
        second = _cell_fingerprint()
        assert first == second
        assert obs.active_tracer() is None


@pytest.mark.slow
class TestFigureRowsIdentical:
    """Whole-figure rows with tracing armed match the untraced rows."""

    def test_fig17a_rows_identical(self):
        from repro.experiments.registry import run_experiment

        untraced = run_experiment("fig17a", max_workers=1)
        obs.install()
        traced = run_experiment("fig17a", max_workers=1)
        assert traced.rows == untraced.rows
        assert traced.manifest.flags["trace"] is True
        assert untraced.manifest.flags["trace"] is False
        assert traced.manifest.spans > 0
