"""Regression tests for scripts/check_bench_regression.py.

The headline case is the ratchet-down bug: the old checker compared
the newest record only against the *second-newest*, so a regression
that survived one bench run became the next run's baseline and the
throughput could decay 30% per run without ever failing. The checker
now baselines against the best of the last K records; the two-step
regression sequence the old logic waved through must fail.

The script is exercised the way CI runs it — as a subprocess — so
argument parsing and exit codes are covered too.
"""

import json
import pathlib
import subprocess
import sys

import pytest

pytestmark = pytest.mark.quick

SCRIPT = (pathlib.Path(__file__).resolve().parents[2]
          / "scripts" / "check_bench_regression.py")


def _record(events_per_s, sim_events=100_000, label="smoke:total"):
    return {"label": label, "date": "2026-01-01", "wall_s": 1.0,
            "sim_events": sim_events, "events_per_s": events_per_s}


def run_checker(tmp_path, records, *extra_args):
    path = tmp_path / "BENCH_kernel.json"
    path.write_text(json.dumps({"runs": records}))
    return subprocess.run(
        [sys.executable, str(SCRIPT), str(path), *extra_args],
        capture_output=True, text=True)


class TestRatchetDown:
    #: One big drop that survived a run, then a small one: each pairwise
    #: step is within the default 30% allowance, but the newest record
    #: sits at 64% of the true baseline.
    SEQUENCE = [1000, 650, 640]

    def test_two_step_regression_fails(self, tmp_path):
        proc = run_checker(tmp_path,
                           [_record(v) for v in self.SEQUENCE])
        assert proc.returncode == 1
        assert "REGRESSION" in proc.stdout
        assert "best of last" in proc.stdout

    def test_window_1_restores_the_old_pairwise_blind_spot(self, tmp_path):
        proc = run_checker(tmp_path,
                           [_record(v) for v in self.SEQUENCE],
                           "--window", "1")
        assert proc.returncode == 0, proc.stdout

    def test_noise_within_allowance_passes(self, tmp_path):
        proc = run_checker(tmp_path,
                           [_record(v) for v in (1000, 950, 980)])
        assert proc.returncode == 0, proc.stdout
        assert "OK" in proc.stdout

    def test_rebaseline_after_window_scrolls_past(self, tmp_path):
        """A legitimate scale shift re-baselines once the window no
        longer sees the old records."""
        records = [_record(1000)] + [_record(500)] * 6
        proc = run_checker(tmp_path, records)
        assert proc.returncode == 0, proc.stdout

    def test_window_must_be_positive(self, tmp_path):
        proc = run_checker(tmp_path, [_record(1000), _record(900)],
                           "--window", "0")
        assert proc.returncode == 2


class TestSkippedRecords:
    def test_zero_event_records_are_skipped_and_counted(self, tmp_path):
        records = [
            _record(1000),
            # New-style closed-form run (events_per_s: null) and an
            # old-style one (0): neither has an events/s figure.
            _record(None, sim_events=0),
            _record(0, sim_events=0),
            _record(990),
        ]
        proc = run_checker(tmp_path, records)
        assert proc.returncode == 0, proc.stdout
        assert "skipping 2 zero-event" in proc.stdout

    def test_seed_era_records_are_skipped(self, tmp_path):
        records = [{"label": "smoke:total", "wall_s": 1.0,
                    "sim_events": None},
                   _record(1000), _record(990)]
        proc = run_checker(tmp_path, records)
        assert proc.returncode == 0, proc.stdout
        assert "seed-era" in proc.stdout

    def test_too_few_records_skips_cleanly(self, tmp_path):
        proc = run_checker(tmp_path, [_record(1000),
                                      _record(None, sim_events=0)])
        assert proc.returncode == 0
        assert "need >=2" in proc.stdout
