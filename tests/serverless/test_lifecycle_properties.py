"""Property-based tests on the serverless platform's bookkeeping."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import Cluster
from repro.config import ClusterConstants
from repro.serverless import FunctionSpec, InvocationRequest, OpenWhiskPlatform
from repro.sim import Environment, RandomStreams


def run_workload(seed, services, gaps, keepalive_s, fault_rate=0.0):
    env = Environment()
    cluster = Cluster(env, ClusterConstants(servers=3, cores_per_server=8))
    platform = OpenWhiskPlatform(env, cluster, RandomStreams(seed),
                                 keepalive_s=keepalive_s,
                                 fault_rate=fault_rate)
    spec = FunctionSpec("job")

    def driver():
        for service, gap in zip(services, gaps):
            yield env.process(platform.invoke(
                InvocationRequest(spec, service_s=service)))
            yield env.timeout(gap)

    env.run(env.process(driver()))
    return platform


class TestPlatformInvariants:
    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 100),
           st.lists(st.floats(0.01, 0.5), min_size=1, max_size=25),
           st.floats(0.1, 10.0))
    def test_start_accounting_conserved(self, seed, services, keepalive):
        """Every invocation is exactly one cold or one warm start."""
        gaps = [0.3] * len(services)
        platform = run_workload(seed, services, gaps, keepalive)
        assert platform.cold_starts + platform.warm_starts == len(services)
        assert platform.cold_starts >= 1  # the first is always cold

    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 100),
           st.lists(st.floats(0.01, 0.4), min_size=1, max_size=20))
    def test_active_tasks_return_to_zero(self, seed, services):
        platform = run_workload(seed, services, [0.2] * len(services), 5.0)
        assert platform.active_tasks == 0
        counts = [count for _, count in platform.active_samples]
        assert min(counts) == 0
        assert all(count >= 0 for count in counts)

    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 100),
           st.floats(0.01, 0.25))
    def test_faults_never_lose_tasks(self, seed, fault_rate):
        services = [0.1] * 25
        platform = run_workload(seed, services, [0.05] * 25, 10.0,
                                fault_rate=fault_rate)
        assert len(platform.invocations) == 25
        assert all(inv.t_complete >= inv.t_arrive
                   for inv in platform.invocations)
        assert platform.respawns == sum(inv.failures
                                        for inv in platform.invocations)

    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 100))
    def test_latency_decomposition_consistent(self, seed):
        """Breakdown components sum to at most the end-to-end latency
        (queueing for cores is the only uncharged slice)."""
        platform = run_workload(seed, [0.2] * 15, [0.1] * 15, 5.0)
        for invocation in platform.invocations:
            assert invocation.breakdown.total <= \
                invocation.latency_s + 1e-9
            assert invocation.instantiation_s <= \
                invocation.breakdown.management + 1e-9
