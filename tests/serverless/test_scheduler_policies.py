"""Focused tests for scheduling policies, memory pressure, and limits."""

import pytest

from repro.cluster import Cluster
from repro.config import ClusterConstants, ServerlessConstants
from repro.serverless import (
    FunctionSpec,
    HiveMindScheduler,
    InvocationRequest,
    Invoker,
    OpenWhiskPlatform,
    OpenWhiskScheduler,
)
from repro.sim import Environment, RandomStreams


@pytest.fixture
def env():
    return Environment()


def make_invokers(env, servers=3, cores=4, ram_gb=1.0):
    cluster = Cluster(env, ClusterConstants(
        servers=servers, cores_per_server=cores,
        ram_gb_per_server=ram_gb))
    streams = RandomStreams(9)
    return cluster, [
        Invoker(env, server, ServerlessConstants(),
                rng=streams.stream(server_id))
        for server_id, server in sorted(cluster.servers.items())
    ]


class TestSchedulerPolicies:
    def test_empty_invoker_list_rejected(self):
        with pytest.raises(ValueError):
            OpenWhiskScheduler([])

    def test_least_loaded_when_no_warm(self, env):
        cluster, invokers = make_invokers(env)
        scheduler = OpenWhiskScheduler(invokers)

        def occupy():
            server = cluster.server("server0")
            grant = yield env.process(server.acquire_cores(3))
            yield env.timeout(100)
            grant.release()

        env.process(occupy())
        env.run(until=1)
        placement = scheduler.place(InvocationRequest(
            FunctionSpec("f"), service_s=0.1))
        assert placement.invoker.server.server_id != "server0"

    def test_probation_skipped(self, env):
        _, invokers = make_invokers(env, servers=2)
        scheduler = OpenWhiskScheduler(invokers)
        invokers[0].server.put_on_probation(60)
        placement = scheduler.place(InvocationRequest(
            FunctionSpec("f"), service_s=0.1))
        assert placement.invoker is invokers[1]

    def test_all_on_probation_falls_back(self, env):
        _, invokers = make_invokers(env, servers=2)
        scheduler = OpenWhiskScheduler(invokers)
        for invoker in invokers:
            invoker.server.put_on_probation(60)
        assert scheduler.place(InvocationRequest(
            FunctionSpec("f"), service_s=0.1)) is not None

    def test_hivemind_ignores_dead_parent_container(self, env):
        """A parent whose container expired cannot be colocated with."""
        cluster, invokers = make_invokers(env)
        scheduler = HiveMindScheduler(invokers)
        platform_env = env

        # Fabricate a parent invocation pointing at a container that was
        # never registered warm.
        from repro.serverless import Invocation
        parent = Invocation(request=InvocationRequest(
            FunctionSpec("f"), service_s=0.1))
        parent.server_id = "server0"
        parent.container_id = "ghost"
        placement = scheduler.place(InvocationRequest(
            FunctionSpec("f"), service_s=0.1, parent=parent))
        assert placement.container is None


class TestMemoryPressure:
    def test_warm_eviction_frees_memory(self, env):
        """Cold starts under memory pressure evict stale warm pools."""
        cluster = Cluster(env, ClusterConstants(
            servers=1, cores_per_server=4, ram_gb_per_server=0.6))
        platform = OpenWhiskPlatform(env, cluster, RandomStreams(2),
                                     keepalive_s=300.0)

        def run():
            # Two 256 MB functions fill the 614 MB server.
            for name in ("a", "b"):
                yield env.process(platform.invoke(InvocationRequest(
                    FunctionSpec(name, image=f"{name}-img"),
                    service_s=0.05)))
            # A third image forces eviction of a warm container.
            final = yield env.process(platform.invoke(InvocationRequest(
                FunctionSpec("c", image="c-img"), service_s=0.05)))
            return final

        final = env.run(env.process(run()))
        assert final.t_complete > 0
        total_warm = sum(inv.warm_count for inv in platform.invokers)
        assert total_warm <= 2


class TestConcurrencyLimit:
    def test_limit_throttles_admission(self, env):
        cluster = Cluster(env, ClusterConstants(
            servers=2, cores_per_server=16))
        platform = OpenWhiskPlatform(
            env, cluster, RandomStreams(4),
            constants=ServerlessConstants(concurrency_limit=4))
        done = []

        def task():
            yield env.process(platform.invoke(InvocationRequest(
                FunctionSpec("f"), service_s=1.0)))
            done.append(env.now)

        for _ in range(8):
            env.process(task())
        env.run()
        # Two admission waves of 4: the second wave completes roughly one
        # service time after the first.
        assert len(done) == 8
        assert max(done) > min(done) + 0.8
        peak = max(count for _, count in platform.active_samples)
        assert peak <= 4
