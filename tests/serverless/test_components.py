"""Tests for serverless building blocks: functions, containers, CouchDB,
Kafka, data sharing."""

import pytest

from repro.config import ServerlessConstants
from repro.hardware import RemoteMemoryFabric
from repro.serverless import (
    ContainerState,
    CouchDB,
    CouchDBSharing,
    FunctionContainer,
    FunctionSpec,
    InMemorySharing,
    InvocationRequest,
    KafkaBus,
    RemoteMemorySharing,
)
from repro.sim import Environment, RandomStreams


@pytest.fixture
def env():
    return Environment()


class TestFunctionSpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            FunctionSpec(name="")
        with pytest.raises(ValueError):
            FunctionSpec(name="f", memory_mb=0)

    def test_request_validation(self):
        spec = FunctionSpec("f")
        with pytest.raises(ValueError):
            InvocationRequest(spec, service_s=-1)
        with pytest.raises(ValueError):
            InvocationRequest(spec, service_s=1, input_mb=-1)


class TestContainer:
    def test_lifecycle(self):
        container = FunctionContainer("s0", "image-a", 256)
        assert container.state is ContainerState.COLD_STARTING
        container.mark_running()
        assert container.state is ContainerState.RUNNING
        container.mark_warm(now=10.0, keepalive_s=20.0)
        assert container.is_warm(now=15.0)
        assert not container.is_warm(now=31.0)
        assert container.is_expired(now=31.0)

    def test_warm_requires_running(self):
        container = FunctionContainer("s0", "image-a", 256)
        with pytest.raises(RuntimeError):
            container.mark_warm(0, 10)

    def test_terminated_cannot_run(self):
        container = FunctionContainer("s0", "image-a", 256)
        container.mark_terminated()
        with pytest.raises(RuntimeError):
            container.mark_running()

    def test_compatibility(self):
        container = FunctionContainer("s0", "image-a", 256)
        assert container.compatible_with(FunctionSpec("f", image="image-a"))
        assert not container.compatible_with(
            FunctionSpec("f", image="image-b"))
        assert not container.compatible_with(
            FunctionSpec("f", memory_mb=512, image="image-a"))

    def test_unique_ids(self):
        a = FunctionContainer("s0", "i", 1)
        b = FunctionContainer("s0", "i", 1)
        assert a.container_id != b.container_id


class TestCouchDB:
    def test_access_cost_scales_with_size(self, env):
        db = CouchDB(env, ServerlessConstants())
        durations = []

        def run(mb):
            took = yield env.process(db.access(mb))
            durations.append(took)

        env.run(env.process(run(0.1)))
        env.run(env.process(run(50.0)))
        assert durations[1] > durations[0]
        assert db.operations == 2

    def test_negative_size_rejected(self, env):
        db = CouchDB(env)
        process = env.process(db.access(-1))
        with pytest.raises(ValueError):
            env.run(process)

    def test_authentication_cost(self, env):
        constants = ServerlessConstants()
        db = CouchDB(env, constants)

        def run():
            took = yield env.process(db.authenticate())
            return took

        assert env.run(env.process(run())) == \
            pytest.approx(constants.auth_check_s)

    def test_store_and_load(self, env):
        db = CouchDB(env)

        def run():
            yield env.process(db.store("result", 4.0))
            size = yield env.process(db.load("result"))
            return size

        assert env.run(env.process(run())) == 4.0
        assert db.has_document("result")
        assert db.document_count == 1

    def test_load_unknown(self, env):
        db = CouchDB(env)
        process = env.process(db.load("ghost"))
        with pytest.raises(KeyError):
            env.run(process)

    def test_pareto_tail_present(self, env):
        """With an RNG the latency distribution must be tail-heavy."""
        db = CouchDB(env, rng=RandomStreams(3).stream("couch"))
        samples = []

        def run():
            for _ in range(400):
                took = yield env.process(db.access(0.1))
                samples.append(took)

        env.run(env.process(run()))
        import numpy as np
        p99 = np.percentile(samples, 99)
        median = np.percentile(samples, 50)
        assert p99 > 2.0 * median


class TestKafka:
    def test_publish_consume(self, env):
        bus = KafkaBus(env)
        received = []

        def consumer():
            message = yield env.process(bus.consume("activations"))
            received.append((env.now, message))

        def producer():
            yield env.process(bus.publish("activations", {"id": 1}))

        env.process(consumer())
        env.process(producer())
        env.run()
        assert received[0][1] == {"id": 1}
        assert received[0][0] == pytest.approx(
            ServerlessConstants().kafka_hop_s)
        assert bus.published == 1

    def test_topic_depth(self, env):
        bus = KafkaBus(env)
        env.run(env.process(bus.publish("t", "m")))
        assert bus.depth("t") == 1


class TestDataSharing:
    def test_couchdb_slowest_inmem_fastest(self, env):
        """Fig 6c ordering: CouchDB > RPC > in-memory latency."""
        db = CouchDB(env, ServerlessConstants())
        couch = CouchDBSharing(env, db)
        inmem = InMemorySharing(env)
        remote = RemoteMemorySharing(env, RemoteMemoryFabric(env))
        durations = {}

        def run(name, protocol, src, dst):
            took = yield env.process(protocol.share(src, dst, 1.0))
            durations[name] = took

        env.run(env.process(run("couch", couch, "s0", "s1")))
        env.run(env.process(run("inmem", inmem, "s0", "s0")))
        env.run(env.process(run("remote", remote, "s0", "s1")))
        assert durations["couch"] > durations["remote"] > durations["inmem"]

    def test_inmem_requires_same_server(self, env):
        inmem = InMemorySharing(env)
        process = env.process(inmem.share("s0", "s1", 1.0))
        with pytest.raises(ValueError):
            env.run(process)
