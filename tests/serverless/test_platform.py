"""Integration tests for the OpenWhisk platform pipeline."""

import pytest

from repro.cluster import Cluster
from repro.config import ClusterConstants, ServerlessConstants
from repro.hardware import RemoteMemoryFabric
from repro.network import ClusterNetwork
from repro.serverless import (
    FunctionSpec,
    InvocationRequest,
    OpenWhiskPlatform,
)
from repro.sim import Environment, RandomStreams


def make_platform(env, servers=2, **kwargs):
    constants = ClusterConstants(servers=servers, cores_per_server=8)
    cluster = Cluster(env, constants)
    return OpenWhiskPlatform(env, cluster, RandomStreams(11), **kwargs)


@pytest.fixture
def env():
    return Environment()


class TestInvoke:
    def test_validation(self, env):
        with pytest.raises(ValueError):
            make_platform(env, sharing="carrier_pigeon")
        with pytest.raises(ValueError):
            make_platform(env, n_controllers=0)

    def test_single_invocation_completes(self, env):
        platform = make_platform(env)
        spec = FunctionSpec("face-rec")

        def run():
            invocation = yield env.process(platform.invoke(
                InvocationRequest(spec, service_s=0.2, input_mb=2.0)))
            return invocation

        invocation = env.run(env.process(run()))
        assert invocation.t_complete > invocation.t_arrive
        assert invocation.cold_start
        assert invocation.latency_s > 0.2  # service + overheads
        # Execution is the requested service time modulo bounded jitter.
        assert invocation.breakdown.execution == pytest.approx(0.2, rel=0.3)
        assert invocation.breakdown.management > 0
        assert platform.cold_starts == 1
        assert len(platform.invocations) == 1

    def test_warm_reuse_on_second_invocation(self, env):
        platform = make_platform(env)
        spec = FunctionSpec("face-rec")

        def run():
            first = yield env.process(platform.invoke(
                InvocationRequest(spec, service_s=0.1)))
            second = yield env.process(platform.invoke(
                InvocationRequest(spec, service_s=0.1)))
            return first, second

        first, second = env.run(env.process(run()))
        assert first.cold_start
        assert not second.cold_start
        assert second.instantiation_s < first.instantiation_s
        assert platform.warm_starts == 1

    def test_keepalive_expiry_forces_cold_start(self, env):
        platform = make_platform(env, keepalive_s=5.0)
        spec = FunctionSpec("f")

        def run():
            yield env.process(platform.invoke(
                InvocationRequest(spec, service_s=0.1)))
            yield env.timeout(60.0)  # way past keep-alive
            second = yield env.process(platform.invoke(
                InvocationRequest(spec, service_s=0.1)))
            return second

        assert env.run(env.process(run())).cold_start

    def test_concurrent_tasks_use_parallel_cores(self, env):
        platform = make_platform(env, servers=2)
        spec = FunctionSpec("f")
        completions = []

        def task():
            invocation = yield env.process(platform.invoke(
                InvocationRequest(spec, service_s=1.0)))
            completions.append(env.now)

        for _ in range(8):
            env.process(task())
        env.run()
        # 8 tasks, 16 cores: all finish in ~1 service time + overheads,
        # far below the 8 s a serial execution would take.
        assert max(completions) < 4.0

    def test_faults_respawn_and_finish(self, env):
        platform = make_platform(env, fault_rate=0.3)
        spec = FunctionSpec("f")
        done = []

        def task():
            invocation = yield env.process(platform.invoke(
                InvocationRequest(spec, service_s=0.2)))
            done.append(invocation)

        for _ in range(40):
            env.process(task())
        env.run()
        assert len(done) == 40  # every task completed despite faults
        assert platform.respawns > 0
        assert sum(inv.failures for inv in done) == platform.respawns

    def test_active_task_accounting_returns_to_zero(self, env):
        platform = make_platform(env)
        spec = FunctionSpec("f")

        def task():
            yield env.process(platform.invoke(
                InvocationRequest(spec, service_s=0.1)))

        for _ in range(5):
            env.process(task())
        env.run()
        assert platform.active_tasks == 0
        peak = max(count for _, count in platform.active_samples)
        assert peak == 5

    def test_parent_child_couchdb_sharing_charged(self, env):
        platform = make_platform(env, sharing="couchdb")
        parent_spec = FunctionSpec("parent")
        child_spec = FunctionSpec("child", image="other")  # no colocation

        def run():
            parent = yield env.process(platform.invoke(
                InvocationRequest(parent_spec, service_s=0.05,
                                  output_mb=4.0)))
            child = yield env.process(platform.invoke(
                InvocationRequest(child_spec, service_s=0.05,
                                  parent=parent,
                                  colocate_with_parent=False)))
            return child

        child = env.run(env.process(run()))
        assert child.data_share_s > 0
        assert child.breakdown.data_io == pytest.approx(child.data_share_s)

    def test_hivemind_scheduler_colocates_child(self, env):
        platform = make_platform(env, scheduler="hivemind")
        spec = FunctionSpec("stage")  # same image for parent and child

        def run():
            parent = yield env.process(platform.invoke(
                InvocationRequest(spec, service_s=0.05, output_mb=4.0)))
            child = yield env.process(platform.invoke(
                InvocationRequest(spec, service_s=0.05, parent=parent)))
            return parent, child

        parent, child = env.run(env.process(run()))
        assert child.colocated
        assert child.container_id == parent.container_id
        assert child.server_id == parent.server_id
        # In-memory sharing is far cheaper than CouchDB.
        assert child.data_share_s < 0.005

    def test_remote_memory_sharing(self, env):
        fabric = RemoteMemoryFabric(env)
        platform = make_platform(env, sharing="remote_memory",
                                 remote_memory=fabric,
                                 scheduler="openwhisk")
        parent_spec = FunctionSpec("parent")
        child_spec = FunctionSpec("child", image="other")

        def run():
            parent = yield env.process(platform.invoke(
                InvocationRequest(parent_spec, service_s=0.05,
                                  output_mb=4.0)))
            child = yield env.process(platform.invoke(
                InvocationRequest(child_spec, service_s=0.05,
                                  parent=parent,
                                  colocate_with_parent=False)))
            return child

        child = env.run(env.process(run()))
        assert 0 < child.data_share_s < 0.01  # microsecond-scale fabric
        assert fabric.writes == 1 and fabric.reads == 1

    def test_rpc_sharing_requires_network(self, env):
        platform = make_platform(env, sharing="rpc")
        parent_spec = FunctionSpec("parent")
        child_spec = FunctionSpec("child", image="other")

        def run():
            parent = yield env.process(platform.invoke(
                InvocationRequest(parent_spec, service_s=0.01,
                                  output_mb=1.0)))
            child = yield env.process(platform.invoke(
                InvocationRequest(child_spec, service_s=0.01,
                                  parent=parent,
                                  colocate_with_parent=False)))
            return child

        process = env.process(run())
        with pytest.raises(RuntimeError):
            env.run(process)

    def test_rpc_sharing_with_network(self, env):
        cluster_constants = ClusterConstants(servers=2, cores_per_server=8)
        cluster = Cluster(env, cluster_constants)
        network = ClusterNetwork(env, cluster_constants)
        for server_id in cluster.servers:
            network.register_server(server_id)
        platform = OpenWhiskPlatform(
            env, cluster, RandomStreams(5), sharing="rpc",
            cluster_network=network)
        parent_spec = FunctionSpec("parent")
        child_spec = FunctionSpec("child", image="other")

        def run():
            parent = yield env.process(platform.invoke(
                InvocationRequest(parent_spec, service_s=0.01,
                                  output_mb=1.0)))
            child = yield env.process(platform.invoke(
                InvocationRequest(child_spec, service_s=0.01,
                                  parent=parent,
                                  colocate_with_parent=False)))
            return child

        child = env.run(env.process(run()))
        assert child.data_share_s > 0


class TestIntraTaskParallelism:
    def test_parallel_speeds_up_task(self, env):
        platform = make_platform(env, servers=2)
        spec = FunctionSpec("slam")
        durations = {}

        def run(ways, key):
            start = env.now
            yield env.process(platform.invoke_parallel(
                InvocationRequest(spec, service_s=2.0, input_mb=8.0), ways))
            durations[key] = env.now - start

        env.run(env.process(run(1, "serial")))
        env.run(env.process(run(8, "parallel")))
        assert durations["parallel"] < durations["serial"]

    def test_parallel_validation(self, env):
        platform = make_platform(env)
        process = env.process(platform.invoke_parallel(
            InvocationRequest(FunctionSpec("f"), service_s=1.0), 0))
        with pytest.raises(ValueError):
            env.run(process)

    def test_parallel_returns_all_shards(self, env):
        platform = make_platform(env)
        spec = FunctionSpec("f")

        def run():
            shards = yield env.process(platform.invoke_parallel(
                InvocationRequest(spec, service_s=0.4), 4))
            return shards

        shards = env.run(env.process(run()))
        assert len(shards) == 4
        assert all(s.t_complete > 0 for s in shards)


class TestIsolateDirective:
    def test_isolated_requests_always_cold_and_never_reused(self, env):
        platform = make_platform(env, keepalive_s=60.0)
        spec = FunctionSpec("secure")

        def run():
            results = []
            for _ in range(3):
                invocation = yield env.process(platform.invoke(
                    InvocationRequest(spec, service_s=0.05, isolate=True)))
                results.append(invocation)
            return results

        results = env.run(env.process(run()))
        assert all(r.cold_start for r in results)
        assert len({r.container_id for r in results}) == 3
        assert platform.warm_starts == 0

    def test_isolated_child_never_colocates(self, env):
        platform = make_platform(env, scheduler="hivemind")
        spec = FunctionSpec("stage")

        def run():
            parent = yield env.process(platform.invoke(
                InvocationRequest(spec, service_s=0.05, output_mb=1.0)))
            child = yield env.process(platform.invoke(
                InvocationRequest(spec, service_s=0.05, parent=parent,
                                  isolate=True)))
            return child

        child = env.run(env.process(run()))
        assert not child.colocated
        assert child.cold_start


class TestTracing:
    def test_tracer_records_invocations(self, env):
        from repro.sim import Tracer
        tracer = Tracer()
        platform = make_platform(env, tracer=tracer)
        spec = FunctionSpec("traced")

        def run():
            for _ in range(3):
                yield env.process(platform.invoke(
                    InvocationRequest(spec, service_s=0.05)))

        env.run(env.process(run()))
        assert tracer.count("invocation") == 3
        records = list(tracer.records("invocation"))
        assert records[0].payload["function"] == "traced"
        assert records[0].payload["cold"] is True
        assert records[1].payload["cold"] is False
        assert all(r.payload["latency_s"] > 0 for r in records)
