"""End-to-end integration of the HiveMind controller's subsystems.

One deployment exercising, together: dispatch with straggler mitigation
and monitoring overhead, heartbeat-driven failure detection with region
repartitioning, swarm-wide continuous learning, and controller failover —
the composition the platform runners rely on.
"""

import numpy as np
import pytest

from repro.cluster import Cluster
from repro.config import DEFAULT, ClusterConstants, PaperConstants
from repro.core import HiveMindController
from repro.dsl import DirectiveSet, Learn
from repro.learning import IdentitySpace
from repro.serverless import FunctionSpec, InvocationRequest, OpenWhiskPlatform
from repro.sim import Environment, RandomStreams
from repro.edge import build_drone_swarm


@pytest.fixture
def deployment():
    env = Environment()
    cluster = Cluster(env, ClusterConstants(servers=3, cores_per_server=8))
    platform = OpenWhiskPlatform(env, cluster, RandomStreams(17),
                                 scheduler="hivemind", keepalive_s=20.0)
    swarm = build_drone_swarm(env, DEFAULT, RandomStreams(18))
    swarm.assign_regions(DEFAULT.field_width_m, DEFAULT.field_height_m)
    controller = HiveMindController(
        env, cluster, platform, swarm=swarm,
        constants=PaperConstants(),
        rng=np.random.default_rng(19))
    return env, controller, platform, swarm


class TestControllerIntegration:
    def test_full_stack_mission(self, deployment):
        env, controller, platform, swarm = deployment

        # Register swarm-wide learning for the recognition task, per the
        # Learn(recognition, 'Global') directive.
        directives = DirectiveSet()
        directives.learning["recognition"] = "global"
        space = IdentitySpace(8, rng=np.random.default_rng(20))
        recognizer = controller.learning.register_task(
            "recognition", space, directives)

        spec = FunctionSpec("recognition")
        completions = []

        def device_stream(device_id, n_tasks):
            for index in range(n_tasks):
                invocation = yield env.process(controller.dispatch(
                    InvocationRequest(spec, service_s=0.1,
                                      input_mb=2.0, output_mb=0.1)))
                recognizer.sight(device_id, index % len(space))
                completions.append(invocation)
                yield env.timeout(0.5)

        for device_id in list(swarm.devices)[:6]:
            env.process(device_stream(device_id, 12))

        # Crash a drone mid-run; the detector must repartition.
        swarm.fail_device_at("drone0002", at_time=3.0)
        env.run(until=40.0)

        assert len(completions) == 6 * 12
        assert "drone0002" in controller.failure_detector.failed
        assert "drone0002" not in swarm.regions
        assert controller.route_updates  # heirs got new routes
        # Learning accumulated swarm-wide.
        assert recognizer.training_observations("drone0000") > 30
        # Monitoring sampled throughout.
        assert controller.monitoring.registry.series("swarm.alive")

    def test_failover_midstream_keeps_serving(self, deployment):
        env, controller, platform, swarm = deployment
        spec = FunctionSpec("job")
        results = []

        def workload():
            for _ in range(5):
                invocation = yield env.process(controller.dispatch(
                    InvocationRequest(spec, service_s=0.05)))
                results.append(invocation)
            yield env.process(controller.fail_over())
            for _ in range(5):
                invocation = yield env.process(controller.dispatch(
                    InvocationRequest(spec, service_s=0.05)))
                results.append(invocation)

        env.run(env.process(workload()))
        assert len(results) == 10
        assert controller.failovers == 1
        assert controller.standbys_remaining == 1
