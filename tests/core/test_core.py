"""Tests for the HiveMind controller subsystems."""

import numpy as np
import pytest

from repro.cluster import Cluster
from repro.config import (
    DEFAULT,
    ClusterConstants,
    ControlConstants,
    DroneConstants,
    PaperConstants,
)
from repro.core import (
    ContinuousLearningManager,
    FailureDetector,
    HiveMindController,
    LoadBalancer,
    MonitoringSystem,
    RuntimePlacementManager,
    StragglerMitigator,
)
from repro.dsl import DirectiveSet, Learn, LatencyConstraint, HiveMindCompiler
from repro.edge import Drone, Swarm, build_drone_swarm
from repro.learning import IdentitySpace, RetrainingMode
from repro.serverless import FunctionSpec, InvocationRequest, OpenWhiskPlatform
from repro.sim import Environment, RandomStreams
from tests.dsl.test_dsl import scenario_b_graph


@pytest.fixture
def env():
    return Environment()


def small_platform(env, **kwargs):
    cluster = Cluster(env, ClusterConstants(servers=2, cores_per_server=8))
    platform = OpenWhiskPlatform(env, cluster, RandomStreams(3), **kwargs)
    return cluster, platform


class TestLoadBalancer:
    def _drones(self, env, n=4):
        return [Drone(env, f"d{i}", DroneConstants()) for i in range(n)]

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            LoadBalancer("coin_flip")

    def test_round_robin_cycles(self, env):
        balancer = LoadBalancer("round_robin")
        drones = self._drones(env, 3)
        picks = [balancer.assign(drones).device_id for _ in range(6)]
        assert picks == ["d0", "d1", "d2", "d0", "d1", "d2"]

    def test_skips_dead_devices(self, env):
        balancer = LoadBalancer("round_robin")
        drones = self._drones(env, 3)
        drones[1].fail()
        picks = {balancer.assign(drones).device_id for _ in range(4)}
        assert "d1" not in picks

    def test_no_alive_devices(self, env):
        balancer = LoadBalancer()
        drones = self._drones(env, 1)
        drones[0].fail()
        with pytest.raises(ValueError):
            balancer.assign(drones)

    def test_least_loaded(self, env):
        balancer = LoadBalancer("least_loaded")
        drones = self._drones(env, 2)
        first = balancer.assign(drones)
        second = balancer.assign(drones)
        assert first.device_id != second.device_id
        balancer.complete(first.device_id)
        third = balancer.assign(drones)
        assert third.device_id == first.device_id

    def test_complete_without_outstanding(self):
        with pytest.raises(ValueError):
            LoadBalancer().complete("ghost")

    def test_split_even(self, env):
        balancer = LoadBalancer()
        shares = balancer.split(10, self._drones(env, 3))
        assert sum(shares.values()) == 10
        assert max(shares.values()) - min(shares.values()) <= 1

    def test_split_battery_weighted(self, env):
        balancer = LoadBalancer("battery_weighted")
        drones = self._drones(env, 2)
        drones[0].energy.draw_power("motion", 42, 600)  # drain ~60%
        shares = balancer.split(10, drones)
        assert shares["d1"] > shares["d0"]
        assert sum(shares.values()) == 10

    def test_split_validation(self, env):
        with pytest.raises(ValueError):
            LoadBalancer().split(-1, self._drones(env, 1))


class TestMonitoring:
    def test_worker_monitors_sample(self, env):
        cluster, platform = small_platform(env)
        monitoring = MonitoringSystem(env, cluster)
        env.run(until=5.5)
        for monitor in monitoring.worker_monitors.values():
            assert monitor.samples == 6

    def test_overhead_within_paper_bound(self, env):
        cluster, _ = small_platform(env)
        monitoring = MonitoringSystem(env, cluster)
        assert monitoring.overhead_factor() - 1.0 <= 0.001

    def test_least_utilized_server(self, env):
        cluster, _ = small_platform(env)
        monitoring = MonitoringSystem(env, cluster)

        def occupy():
            grant = yield env.process(
                cluster.server("server0").acquire_cores(4))
            yield env.timeout(100)
            grant.release()

        env.process(occupy())
        env.run(until=3)
        assert monitoring.least_utilized_server() == "server1"

    def test_edge_monitor_tracks_alive(self, env):
        cluster, _ = small_platform(env)
        swarm = build_drone_swarm(env, DEFAULT, RandomStreams(1))
        monitoring = MonitoringSystem(env, cluster, swarm)
        swarm.devices["drone0000"].fail()
        env.run(until=2.5)
        series = monitoring.registry.series("swarm.alive")
        assert series.values[-1] == 15


class TestStragglerMitigation:
    def test_no_threshold_without_history(self, env):
        _, platform = small_platform(env)
        mitigator = StragglerMitigator(env, platform)
        assert mitigator.threshold_for("fresh") is None

    def test_duplicate_launched_for_straggler(self, env):
        _, platform = small_platform(env)
        mitigator = StragglerMitigator(env, platform)
        spec = FunctionSpec("job")

        def run():
            # Build history of fast tasks.
            for _ in range(mitigator.MIN_HISTORY):
                yield env.process(mitigator.invoke(
                    InvocationRequest(spec, service_s=0.05)))
            # Now a pathological task 100x slower than p90.
            yield env.process(mitigator.invoke(
                InvocationRequest(spec, service_s=5.0)))

        env.run(env.process(run()))
        assert mitigator.stragglers_detected >= 1
        assert mitigator.duplicates_launched >= 1

    def test_fast_tasks_launch_no_duplicates(self, env):
        _, platform = small_platform(env)
        mitigator = StragglerMitigator(env, platform)
        spec = FunctionSpec("job")

        def run():
            for _ in range(40):
                yield env.process(mitigator.invoke(
                    InvocationRequest(spec, service_s=0.05)))

        env.run(env.process(run()))
        assert mitigator.duplicates_launched <= 4  # only rare tail jitter


class TestFailureDetector:
    def test_silent_device_declared_failed(self, env):
        swarm = build_drone_swarm(env, DEFAULT, RandomStreams(1))
        swarm.assign_regions(110, 110)
        swarm.start_heartbeats()
        detector = FailureDetector(env, swarm)
        swarm.fail_device_at("drone0003", at_time=10.0)
        env.run(until=20.0)
        assert "drone0003" in detector.failed
        assert detector.alive_count == 15

    def test_failed_region_reassigned(self, env):
        swarm = build_drone_swarm(env, DEFAULT, RandomStreams(1))
        swarm.assign_regions(110, 110)
        swarm.start_heartbeats()
        failures = []
        detector = FailureDetector(
            env, swarm,
            on_failure=lambda d, assignment: failures.append(d))
        total_area_before = sum(
            r.area for regions in swarm.regions.values() for r in regions)
        swarm.fail_device_at("drone0005", at_time=5.0)
        env.run(until=15.0)
        assert failures == ["drone0005"]
        assert "drone0005" not in swarm.regions
        total_area_after = sum(
            r.area for regions in swarm.regions.values() for r in regions)
        assert total_area_after == pytest.approx(total_area_before)

    def test_healthy_swarm_no_failures(self, env):
        swarm = build_drone_swarm(env, DEFAULT, RandomStreams(1))
        swarm.assign_regions(110, 110)
        swarm.start_heartbeats()
        detector = FailureDetector(env, swarm)
        env.run(until=30.0)
        assert detector.failed == []


class TestLearningManager:
    def test_scope_mapping(self):
        assert ContinuousLearningManager.mode_for_scope("Global") is \
            RetrainingMode.SWARM
        assert ContinuousLearningManager.mode_for_scope("local") is \
            RetrainingMode.SELF
        assert ContinuousLearningManager.mode_for_scope("off") is \
            RetrainingMode.NONE
        with pytest.raises(ValueError):
            ContinuousLearningManager.mode_for_scope("sideways")

    def test_register_with_directives(self):
        graph = scenario_b_graph()
        directives = DirectiveSet()
        Learn(directives, graph, "faceRecognition", "Global")
        manager = ContinuousLearningManager(
            ["d0", "d1"], np.random.default_rng(1))
        space = IdentitySpace(5, rng=np.random.default_rng(2))
        recognizer = manager.register_task(
            "faceRecognition", space, directives)
        assert recognizer.mode is RetrainingMode.SWARM
        assert manager.recognizer_for("faceRecognition") is recognizer
        with pytest.raises(KeyError):
            manager.recognizer_for("ghost")


class TestPlacementManager:
    def _result(self):
        return HiveMindCompiler(n_devices=16).compile(scenario_b_graph())

    def test_starts_on_chosen_plan(self):
        result = self._result()
        manager = RuntimePlacementManager(result)
        assert manager.active_plan is result.chosen

    def test_remap_after_sustained_violation(self):
        result = self._result()
        manager = RuntimePlacementManager(
            result, constraints=[LatencyConstraint(0.001)])
        remapped = False
        for _ in range(manager.VIOLATION_WINDOW):
            remapped = manager.observe(latency_s=10.0)
        assert remapped
        assert manager.remaps == 1
        assert manager.active_plan is not result.chosen

    def test_good_measurements_reset_violations(self):
        result = self._result()
        manager = RuntimePlacementManager(
            result, constraints=[LatencyConstraint(1.0)])
        for _ in range(manager.VIOLATION_WINDOW - 1):
            manager.observe(latency_s=10.0)
        manager.observe(latency_s=0.1)  # reset
        for _ in range(manager.VIOLATION_WINDOW - 1):
            assert not manager.observe(latency_s=10.0)

    def test_no_constraints_never_remaps(self):
        result = self._result()
        manager = RuntimePlacementManager(result, constraints=[])
        for _ in range(20):
            assert not manager.observe(latency_s=1e9)


class TestController:
    def test_dispatch_completes(self, env):
        cluster, platform = small_platform(env)
        controller = HiveMindController(env, cluster, platform,
                                        constants=PaperConstants())

        def run():
            invocation = yield env.process(controller.dispatch(
                InvocationRequest(FunctionSpec("f"), service_s=0.1)))
            return invocation

        invocation = env.run(env.process(run()))
        assert invocation.t_complete > 0

    def test_failover_consumes_standby(self, env):
        cluster, platform = small_platform(env)
        controller = HiveMindController(env, cluster, platform)

        def run():
            remaining = yield env.process(controller.fail_over())
            return remaining

        assert env.run(env.process(run())) == \
            ControlConstants().hot_standbys - 1
        assert controller.failovers == 1

    def test_failover_exhaustion(self, env):
        cluster, platform = small_platform(env)
        controller = HiveMindController(env, cluster, platform)
        controller.standbys_remaining = 0
        process = env.process(controller.fail_over())
        with pytest.raises(RuntimeError):
            env.run(process)

    def test_device_failure_triggers_route_updates(self, env):
        cluster, platform = small_platform(env)
        swarm = build_drone_swarm(env, DEFAULT, RandomStreams(2))
        swarm.assign_regions(110, 110)
        controller = HiveMindController(
            env, cluster, platform, swarm=swarm,
            rng=np.random.default_rng(5))
        swarm.fail_device_at("drone0002", at_time=3.0)
        env.run(until=12.0)
        assert controller.route_updates  # neighbours got new routes
