"""Tests for the calibration constants and swarm scaling."""

import pytest

from repro.config import DEFAULT, PaperConstants, WirelessConstants


class TestPaperStatedConstants:
    """Constants the paper states explicitly must match it exactly."""

    def test_swarm_sizes(self):
        assert DEFAULT.drone.count == 16
        assert DEFAULT.car.count == 14

    def test_camera_defaults(self):
        assert DEFAULT.drone.frames_per_second == 8.0
        assert DEFAULT.drone.frame_mb == 2.0
        assert DEFAULT.drone.fov_width_m == 6.7
        assert DEFAULT.drone.fov_depth_m == 8.75

    def test_drone_speed(self):
        assert DEFAULT.drone.speed_mps == 4.0

    def test_cluster_shape(self):
        assert DEFAULT.cluster.servers == 12
        assert DEFAULT.cluster.cores_per_server == 40

    def test_wireless_rating(self):
        assert DEFAULT.wireless.access_points == 2
        assert DEFAULT.wireless.ap_mbps == 867.0

    def test_acceleration_headline_numbers(self):
        assert DEFAULT.accel.accel_rtt_s == pytest.approx(2.1e-6)
        assert DEFAULT.accel.accel_mrps == pytest.approx(12.4)
        assert DEFAULT.accel.remote_mem_lut_fraction == 0.18
        assert DEFAULT.accel.rpc_lut_fraction == 0.24

    def test_control_plane_policies(self):
        assert DEFAULT.control.heartbeat_period_s == 1.0
        assert DEFAULT.control.heartbeat_timeout_s == 3.0
        assert DEFAULT.control.straggler_percentile == 90.0
        assert DEFAULT.control.hot_standbys == 2

    def test_keepalive_window(self):
        assert DEFAULT.serverless.keepalive_min_s == 10.0
        assert DEFAULT.serverless.keepalive_max_s == 30.0

    def test_scenario_targets(self):
        assert DEFAULT.scenario_a_items == 15
        assert DEFAULT.scenario_b_people == 25


class TestWirelessDerived:
    def test_goodput_below_phy(self):
        constants = WirelessConstants()
        phy_mbs = constants.ap_mbps / 8.0
        assert constants.ap_mbs < phy_mbs
        assert constants.total_mbs == pytest.approx(
            constants.access_points * constants.ap_mbs)


class TestSwarmScaling:
    def test_validation(self):
        with pytest.raises(ValueError):
            DEFAULT.scaled_for_swarm(0)

    def test_identity_at_base_count(self):
        scaled = DEFAULT.scaled_for_swarm(16)
        assert scaled.drone.count == 16
        assert scaled.field_width_m == pytest.approx(DEFAULT.field_width_m)

    def test_area_per_device_conserved(self):
        scaled = DEFAULT.scaled_for_swarm(1000)
        base_density = (DEFAULT.field_width_m * DEFAULT.field_height_m /
                        DEFAULT.drone.count)
        scaled_density = (scaled.field_width_m * scaled.field_height_m /
                          scaled.drone.count)
        assert scaled_density == pytest.approx(base_density, rel=0.01)

    def test_access_points_scale(self):
        scaled = DEFAULT.scaled_for_swarm(160)
        assert scaled.wireless.access_points == 20

    def test_targets_scale(self):
        scaled = DEFAULT.scaled_for_swarm(160)
        assert scaled.scenario_a_items == 150
        assert scaled.scenario_b_people == 250

    def test_cluster_stays_fixed(self):
        """The backend does not grow — that's the scalability story."""
        scaled = DEFAULT.scaled_for_swarm(1000)
        assert scaled.cluster.servers == DEFAULT.cluster.servers

    def test_frozen_constants(self):
        with pytest.raises(Exception):
            DEFAULT.drone.count = 99
