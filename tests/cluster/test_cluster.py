"""Tests for the server/cluster models and fixed IaaS pools."""

import pytest

from repro.cluster import Cluster, FixedPool, Server
from repro.config import ClusterConstants
from repro.sim import Environment


@pytest.fixture
def env():
    return Environment()


class TestServer:
    def test_validation(self, env):
        with pytest.raises(ValueError):
            Server(env, "s0", cores=0)

    def test_acquire_and_release_cores(self, env):
        server = Server(env, "s0", cores=4)

        def run():
            grant = yield env.process(server.acquire_cores(2))
            assert server.busy_cores == 2
            assert server.utilization == 0.5
            grant.release()
            assert server.busy_cores == 0

        env.run(env.process(run()))

    def test_double_release_rejected(self, env):
        server = Server(env, "s0", cores=2)

        def run():
            grant = yield env.process(server.acquire_cores(1))
            grant.release()
            with pytest.raises(RuntimeError):
                grant.release()

        env.run(env.process(run()))

    def test_acquire_more_than_capacity_rejected(self, env):
        server = Server(env, "s0", cores=2)
        process = env.process(server.acquire_cores(3))
        with pytest.raises(ValueError):
            env.run(process)

    def test_acquire_zero_rejected(self, env):
        server = Server(env, "s0", cores=2)
        process = env.process(server.acquire_cores(0))
        with pytest.raises(ValueError):
            env.run(process)

    def test_cores_block_when_exhausted(self, env):
        server = Server(env, "s0", cores=1)
        order = []

        def user(name, hold):
            grant = yield env.process(server.acquire_cores(1))
            order.append((env.now, name))
            yield env.process(server.compute(grant, hold))
            grant.release()

        env.process(user("first", 5))
        env.process(user("second", 1))
        env.run()
        assert order == [(0, "first"), (5, "second")]

    def test_memory_reservation(self, env):
        server = Server(env, "s0", cores=1, ram_gb=1)  # 1024 MB
        assert server.reserve_memory(1000)
        assert not server.reserve_memory(100)
        server.free_memory(1000)
        assert server.free_memory_mb == pytest.approx(1024)

    def test_probation(self, env):
        server = Server(env, "s0")
        assert not server.on_probation
        server.put_on_probation(60)
        assert server.on_probation

    def test_mean_utilization(self, env):
        server = Server(env, "s0", cores=2)

        def run():
            grant = yield env.process(server.acquire_cores(1))
            yield env.process(server.compute(grant, 10))
            grant.release()

        env.run(env.process(run()))
        assert server.mean_utilization(10.0) == pytest.approx(0.5)
        with pytest.raises(ValueError):
            server.mean_utilization(0)


class TestCluster:
    def test_default_shape(self, env):
        cluster = Cluster(env)
        constants = ClusterConstants()
        assert len(cluster) == constants.servers
        assert cluster.total_cores == \
            constants.servers * constants.cores_per_server

    def test_unknown_server(self, env):
        with pytest.raises(KeyError):
            Cluster(env).server("ghost")

    def test_least_loaded_prefers_idle(self, env):
        cluster = Cluster(env, ClusterConstants(servers=2))

        def occupy():
            server = cluster.server("server0")
            grant = yield env.process(server.acquire_cores(10))
            yield env.timeout(100)
            grant.release()

        env.process(occupy())
        env.run(until=1)
        assert cluster.least_loaded().server_id == "server1"

    def test_least_loaded_skips_probation(self, env):
        cluster = Cluster(env, ClusterConstants(servers=2))
        cluster.server("server0").put_on_probation(60)
        assert cluster.least_loaded().server_id == "server1"

    def test_least_loaded_all_on_probation_falls_back(self, env):
        cluster = Cluster(env, ClusterConstants(servers=2))
        for server in cluster.servers.values():
            server.put_on_probation(60)
        assert cluster.least_loaded() is not None


class TestFixedPool:
    def test_validation(self, env):
        with pytest.raises(ValueError):
            FixedPool(env, cores=0)

    def test_execute_no_wait_under_capacity(self, env):
        pool = FixedPool(env, cores=2)

        def run():
            wait, service = yield env.process(pool.execute(1.0))
            return wait

        assert env.run(env.process(run())) == 0.0

    def test_saturation_queues_tasks(self, env):
        pool = FixedPool(env, cores=1)
        waits = []

        def task():
            wait, _ = yield env.process(pool.execute(2.0))
            waits.append(wait)

        for _ in range(3):
            env.process(task())
        env.run()
        assert waits == [0.0, 2.0, 4.0]

    def test_resize_growth_pays_delay(self, env):
        pool = FixedPool(env, cores=1)

        def run():
            yield env.process(pool.resize(4))
            return env.now

        assert env.run(env.process(run())) == \
            pytest.approx(FixedPool.PROVISION_DELAY_S)
        assert pool.cores == 4

    def test_resize_shrink_is_instant(self, env):
        pool = FixedPool(env, cores=4)

        def run():
            yield env.process(pool.resize(2))
            return env.now

        assert env.run(env.process(run())) == 0.0

    def test_utilization(self, env):
        pool = FixedPool(env, cores=2)

        def run():
            yield env.process(pool.execute(5.0))

        env.process(run())
        env.run()
        assert pool.utilization(5.0) == pytest.approx(0.5)
