"""Tests for the closed-form queueing models."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analytical import (
    erlang_c,
    fork_join_response,
    lognormal_percentile,
    mm1_inflation,
    mm1_response_time,
    mmc_wait_time,
)


class TestMM1:
    def test_zero_load_no_inflation(self):
        assert mm1_inflation(0.0) == 1.0

    def test_half_load(self):
        assert mm1_inflation(0.5) == pytest.approx(2.0)

    def test_saturation_capped(self):
        assert mm1_inflation(0.999) == 50.0
        assert mm1_inflation(5.0) == 50.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            mm1_inflation(-0.1)
        with pytest.raises(ValueError):
            mm1_response_time(-1, 0.5)

    def test_response_time(self):
        assert mm1_response_time(2.0, 0.5) == pytest.approx(4.0)

    @given(st.floats(0, 0.97))
    def test_monotone_in_load(self, rho):
        assert mm1_inflation(rho + 0.01) >= mm1_inflation(rho)


class TestErlangC:
    def test_validation(self):
        with pytest.raises(ValueError):
            erlang_c(0, 1.0)
        with pytest.raises(ValueError):
            erlang_c(4, -1.0)

    def test_single_server_equals_rho(self):
        # For M/M/1, P(wait) = rho.
        assert erlang_c(1, 0.6) == pytest.approx(0.6)

    def test_saturated_always_waits(self):
        assert erlang_c(4, 4.0) == 1.0
        assert erlang_c(4, 9.0) == 1.0

    def test_known_value(self):
        # Classic table value: c=2, offered=1 Erlang -> P(wait)=1/3.
        assert erlang_c(2, 1.0) == pytest.approx(1.0 / 3.0)

    @given(st.integers(1, 40), st.floats(0.01, 0.95))
    def test_probability_bounds(self, servers, rho):
        probability = erlang_c(servers, rho * servers)
        assert 0.0 <= probability <= 1.0

    @given(st.integers(1, 20), st.floats(0.1, 0.9))
    def test_more_servers_less_waiting(self, servers, rho):
        offered = rho * servers
        assert erlang_c(servers + 1, offered) <= \
            erlang_c(servers, offered) + 1e-12


class TestMMcWait:
    def test_no_load_no_wait(self):
        assert mmc_wait_time(4, 0.0, 1.0) == 0.0
        assert mmc_wait_time(4, 1.0, 0.0) == 0.0

    def test_saturated_infinite(self):
        assert mmc_wait_time(2, 4.0, 1.0) == float("inf")

    def test_wait_positive_under_load(self):
        wait = mmc_wait_time(2, 1.5, 1.0)
        assert wait > 0

    def test_validation(self):
        with pytest.raises(ValueError):
            mmc_wait_time(2, -1, 1)

    @given(st.integers(1, 10), st.floats(0.1, 0.8))
    def test_wait_decreases_with_servers(self, servers, rho):
        arrival = rho * servers
        assert mmc_wait_time(servers + 2, arrival, 1.0) <= \
            mmc_wait_time(servers, arrival, 1.0) + 1e-12


class TestForkJoin:
    def test_single_way_is_service(self):
        assert fork_join_response(4.0, 1) == 4.0

    def test_validation(self):
        with pytest.raises(ValueError):
            fork_join_response(1.0, 0)

    def test_fanout_reduces_latency(self):
        assert fork_join_response(8.0, 8) < 8.0

    def test_straggle_term_grows_with_ways(self):
        # Normalized by the ideal shard time, the join penalty grows.
        penalty4 = fork_join_response(1.0, 4) * 4
        penalty16 = fork_join_response(1.0, 16) * 16
        assert penalty16 > penalty4

    @given(st.floats(0.01, 100), st.integers(1, 64))
    def test_never_worse_than_serial(self, service, ways):
        assert fork_join_response(service, ways) <= service * 1.0001 or \
            ways == 1


class TestLognormalPercentile:
    def test_median_is_median(self):
        assert lognormal_percentile(3.0, 0.5, 50) == pytest.approx(3.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            lognormal_percentile(0, 0.5, 50)
        with pytest.raises(ValueError):
            lognormal_percentile(1, 0.5, 0)
        with pytest.raises(ValueError):
            lognormal_percentile(1, 0.5, 100)

    def test_p99_known_value(self):
        # exp(sigma * z99), z99 = 2.3263...
        assert lognormal_percentile(1.0, 1.0, 99) == pytest.approx(
            math.exp(2.3263478740408408), rel=1e-4)

    def test_extreme_tails(self):
        low = lognormal_percentile(1.0, 0.5, 1)
        high = lognormal_percentile(1.0, 0.5, 99.9)
        assert low < 1.0 < high

    @given(st.floats(0.1, 10), st.floats(0.05, 1.5),
           st.floats(1, 98.9))
    def test_monotone_in_percentile(self, median, sigma, q):
        assert lognormal_percentile(median, sigma, q + 1) >= \
            lognormal_percentile(median, sigma, q)
