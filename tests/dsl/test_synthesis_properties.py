"""Property-based tests: synthesis and codegen over random task graphs."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dsl import (
    HiveMindCompiler,
    Task,
    TaskGraph,
    TaskProfile,
    enumerate_placements,
    generate_apis,
    validate_graph,
)


@st.composite
def random_graphs(draw):
    """Random layered DAGs with random pinning, <= 10 free tasks."""
    n_tasks = draw(st.integers(2, 8))
    pins = draw(st.lists(
        st.sampled_from(["free", "edge", "cloud"]),
        min_size=n_tasks, max_size=n_tasks))
    graph = TaskGraph("random")
    names = [f"t{i}" for i in range(n_tasks)]
    for index, name in enumerate(names):
        # Parents drawn only from earlier tasks: guaranteed acyclic.
        n_parents = draw(st.integers(0, min(2, index)))
        parents = draw(st.permutations(names[:index]))[:n_parents] \
            if index else []
        profile = TaskProfile(
            cloud_service_s=draw(st.floats(0.01, 0.5)),
            input_mb=draw(st.floats(0, 8)),
            output_mb=draw(st.floats(0.001, 4)),
            edge_only=(pins[index] == "edge"),
            cloud_only=(pins[index] == "cloud"),
        )
        graph.add_task(Task(name, profile=profile, parents=list(parents)))
    return graph


class TestSynthesisProperties:
    @settings(max_examples=40, deadline=None)
    @given(random_graphs())
    def test_placements_are_unique_and_respect_pins(self, graph):
        placements = enumerate_placements(graph)
        seen = set()
        for placement in placements:
            assert placement.assignment not in seen
            seen.add(placement.assignment)
            for task in graph.tasks:
                tier = placement.tier_of(task.name)
                if task.profile.edge_only:
                    assert tier == "edge"
                if task.profile.cloud_only:
                    assert tier == "cloud"

    @settings(max_examples=40, deadline=None)
    @given(random_graphs())
    def test_placement_count_bounded_by_free_tasks(self, graph):
        free = sum(1 for t in graph.tasks
                   if not (t.profile.edge_only or t.profile.cloud_only))
        placements = enumerate_placements(graph)
        assert 1 <= len(placements) <= 2 ** free

    @settings(max_examples=40, deadline=None)
    @given(random_graphs())
    def test_no_surviving_bounce(self, graph):
        """No unpinned edge task squeezed between cloud stages survives."""
        for placement in enumerate_placements(graph):
            for task in graph.tasks:
                if task.profile.edge_only or task.profile.cloud_only:
                    continue
                if placement.tier_of(task.name) != "edge":
                    continue
                parents = graph.parents_of(task.name)
                children = graph.children_of(task.name)
                if parents and children:
                    all_cloud = (
                        all(placement.tier_of(p) == "cloud"
                            for p in parents) and
                        all(placement.tier_of(c) == "cloud"
                            for c in children))
                    assert not all_cloud

    @settings(max_examples=25, deadline=None)
    @given(random_graphs())
    def test_codegen_covers_every_edge(self, graph):
        placements = enumerate_placements(graph)
        bundle = generate_apis(graph, placements[0])
        assert len(bundle.artifacts) == len(graph.edges())
        for artifact in bundle.artifacts:
            assert artifact.kind in ("thrift_rpc", "openwhisk", "local")
            assert artifact.source  # never empty

    @settings(max_examples=20, deadline=None)
    @given(random_graphs())
    def test_compiler_chooses_feasible_when_one_exists(self, graph):
        validate_graph(graph)
        compiler = HiveMindCompiler(n_devices=4)
        result = compiler.compile(graph)
        feasible = [p for p in result.plans if p.estimate.feasible]
        if feasible:
            assert result.chosen.estimate.feasible
        # Ranking is consistent: chosen is first.
        assert result.chosen is result.plans[0]

    @settings(max_examples=20, deadline=None)
    @given(random_graphs())
    def test_estimates_are_finite_and_positive(self, graph):
        compiler = HiveMindCompiler(n_devices=4)
        for plan in compiler.compile(graph).plans:
            estimate = plan.estimate
            assert estimate.latency_s > 0
            assert estimate.latency_s < float("inf")
            assert estimate.device_power_w >= 0
            assert estimate.network_mbs >= 0
            assert estimate.cloud_core_demand >= 0
