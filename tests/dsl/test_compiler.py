"""Tests for codegen and the HiveMind compiler."""

import pytest

from repro.config import PaperConstants
from repro.dsl import (
    CostConstraint,
    ExecTimeConstraint,
    HiveMindCompiler,
    LatencyConstraint,
    Placement,
    PowerConstraint,
    Task,
    TaskGraph,
    TaskProfile,
    ThroughputConstraint,
    generate_apis,
)
from tests.dsl.test_dsl import scenario_b_graph


class TestCodegen:
    def test_api_kinds_match_tiers(self):
        graph = scenario_b_graph()
        placement = Placement.of({
            "createRoute": "cloud", "collectImage": "edge",
            "obstacleAvoidance": "edge", "faceRecognition": "cloud",
            "deduplication": "cloud"})
        bundle = generate_apis(graph, placement)
        assert bundle.artifact_for(
            "createRoute", "collectImage").kind == "thrift_rpc"
        assert bundle.artifact_for(
            "collectImage", "faceRecognition").kind == "thrift_rpc"
        assert bundle.artifact_for(
            "collectImage", "obstacleAvoidance").kind == "local"
        assert bundle.artifact_for(
            "faceRecognition", "deduplication").kind == "openwhisk"

    def test_thrift_idl_structure(self):
        graph = scenario_b_graph()
        placement = Placement.of({
            "createRoute": "cloud", "collectImage": "edge",
            "obstacleAvoidance": "edge", "faceRecognition": "cloud",
            "deduplication": "cloud"})
        bundle = generate_apis(graph, placement)
        idl = bundle.artifact_for("collectImage", "faceRecognition").source
        assert "service CollectImageToFaceRecognition" in idl
        assert "oneway void submit" in idl
        assert bundle.artifact_for(
            "collectImage", "faceRecognition").language == "cpp"

    def test_openwhisk_wrapper_mentions_handles(self):
        graph = scenario_b_graph()
        placement = Placement.of({name: "cloud"
                                  for name in graph.task_names})
        # collectImage is edge-only, but codegen itself is placement-
        # agnostic; synthesis enforces pinning upstream.
        bundle = generate_apis(graph, placement)
        wrapper = bundle.artifact_for(
            "faceRecognition", "deduplication").source
        assert "handle" in wrapper
        assert "def main(params):" in wrapper

    def test_count_by_kind(self):
        graph = scenario_b_graph()
        placement = Placement.of({
            "createRoute": "cloud", "collectImage": "edge",
            "obstacleAvoidance": "edge", "faceRecognition": "cloud",
            "deduplication": "cloud"})
        counts = generate_apis(graph, placement).count_by_kind()
        assert counts == {"thrift_rpc": 2, "local": 1, "openwhisk": 1}

    def test_unknown_artifact_lookup(self):
        graph = scenario_b_graph()
        placement = Placement.of({
            "createRoute": "cloud", "collectImage": "edge",
            "obstacleAvoidance": "edge", "faceRecognition": "cloud",
            "deduplication": "cloud"})
        bundle = generate_apis(graph, placement)
        with pytest.raises(KeyError):
            bundle.artifact_for("deduplication", "createRoute")


class TestCompiler:
    def test_device_kind_validation(self):
        with pytest.raises(ValueError):
            HiveMindCompiler(device_kind="submarine")
        with pytest.raises(ValueError):
            HiveMindCompiler(n_devices=0)

    def test_compile_ranks_feasible_first(self):
        compiler = HiveMindCompiler(n_devices=16)
        result = compiler.compile(scenario_b_graph())
        assert result.chosen is result.plans[0]
        assert result.chosen.estimate.feasible
        latencies = [p.estimate.latency_s for p in result.plans
                     if p.estimate.feasible]
        assert latencies == sorted(latencies)

    def test_hybrid_beats_pure_edge_for_heavy_compute(self):
        """The chosen plan must offload face recognition to the cloud."""
        compiler = HiveMindCompiler(n_devices=16)
        result = compiler.compile(scenario_b_graph())
        assert result.placement.tier_of("faceRecognition") == "cloud"

    def test_missing_profile_rejected(self):
        graph = TaskGraph()
        graph.add_task(Task("a"))
        with pytest.raises(ValueError):
            HiveMindCompiler().compile(graph)

    def test_estimates_scale_with_devices(self):
        graph = scenario_b_graph()
        small = HiveMindCompiler(n_devices=4)
        large = HiveMindCompiler(n_devices=1000)
        all_cloud = Placement.of({
            "createRoute": "cloud", "collectImage": "edge",
            "obstacleAvoidance": "cloud", "faceRecognition": "cloud",
            "deduplication": "cloud"})
        estimate_small = small.estimate(graph, all_cloud)
        estimate_large = large.estimate(graph, all_cloud)
        assert estimate_large.network_mbs > estimate_small.network_mbs
        assert estimate_large.latency_s > estimate_small.latency_s

    def test_acceleration_reduces_latency(self):
        graph = scenario_b_graph()
        fast = HiveMindCompiler(n_devices=16, accelerated=True)
        slow = HiveMindCompiler(n_devices=16, accelerated=False)
        placement = fast.compile(graph).placement
        assert fast.estimate(graph, placement).latency_s < \
            slow.estimate(graph, placement).latency_s

    def test_constraint_filtering(self):
        graph = scenario_b_graph()
        graph.constraints = [ExecTimeConstraint(10.0)]
        result = HiveMindCompiler(n_devices=16).compile(graph)
        satisfying = result.plans_satisfying(graph.constraints)
        assert result.chosen in satisfying

    def test_constraint_validation(self):
        with pytest.raises(ValueError):
            LatencyConstraint(0)
        with pytest.raises(ValueError):
            ExecTimeConstraint(-1)
        with pytest.raises(ValueError):
            PowerConstraint(0)
        with pytest.raises(ValueError):
            CostConstraint(-1)
        with pytest.raises(ValueError):
            ThroughputConstraint(0)

    def test_cost_constraint_prefers_edge_leaning_plans(self):
        graph = scenario_b_graph()
        result = HiveMindCompiler(n_devices=16).compile(graph)
        tight_cost = CostConstraint(max_cloud_cores=1.0)
        cheap_plans = [p for p in result.plans
                       if tight_cost.satisfied_by(p.estimate)]
        for plan in cheap_plans:
            assert plan.estimate.cloud_core_demand <= 1.0

    def test_warnings_propagated(self):
        graph = TaskGraph()
        graph.add_task(Task("producer", data_out="frames",
                            profile=TaskProfile(0.1, output_mb=1)))
        graph.add_task(Task("consumer", data_in="frames",
                            profile=TaskProfile(0.1)))
        result = HiveMindCompiler().compile(graph)
        assert result.warnings
