"""Tests for the DSL: AST, directives, validation, synthesis."""

import pytest

from repro.dsl import (
    DirectiveSet,
    Isolate,
    Learn,
    Overlap,
    Parallel,
    Persist,
    Place,
    Placement,
    Restore,
    Schedule,
    Serial,
    Synchronize,
    SynthesisError,
    Task,
    TaskGraph,
    TaskProfile,
    ValidationError,
    enumerate_placements,
    validate_graph,
)


def scenario_b_graph():
    """The paper's Listing 3 graph: people recognition + deduplication."""
    graph = TaskGraph("scenario_b")
    graph.add_task(Task(
        "createRoute", data_in="map", data_out="route",
        profile=TaskProfile(0.02, output_mb=0.01),
        children=["collectImage"]))
    graph.add_task(Task(
        "collectImage", data_out="sensorData",
        profile=TaskProfile(0.01, input_mb=10.0, output_mb=10.0,
                            edge_only=True),
        parents=["createRoute"],
        children=["obstacleAvoidance", "faceRecognition"]))
    graph.add_task(Task(
        "obstacleAvoidance", data_in="sensorData", data_out="adjustRoute",
        profile=TaskProfile(0.06, input_mb=4.0, output_mb=0.01),
        parents=["collectImage"]))
    graph.add_task(Task(
        "faceRecognition", data_in="sensorData", data_out="recognitionStats",
        profile=TaskProfile(0.3, input_mb=10.0, output_mb=0.5,
                            parallelism=8),
        parents=["collectImage"], children=["deduplication"]))
    graph.add_task(Task(
        "deduplication", data_in="recognitionStats", data_out="dedupList",
        profile=TaskProfile(0.5, input_mb=0.5, output_mb=0.05,
                            cloud_only=True),
        parents=["faceRecognition"]))
    Parallel(graph, "obstacleAvoidance", "faceRecognition")
    Serial(graph, "faceRecognition", "deduplication")
    Synchronize(graph, "deduplication", "all")
    return graph


class TestTaskGraph:
    def test_task_validation(self):
        with pytest.raises(ValueError):
            Task("")
        with pytest.raises(ValueError):
            Task("t", parents=["t"])

    def test_duplicate_task_rejected(self):
        graph = TaskGraph()
        graph.add_task(Task("a"))
        with pytest.raises(ValueError):
            graph.add_task(Task("a"))

    def test_edges_deduplicated_across_directions(self):
        graph = TaskGraph()
        graph.add_task(Task("a", children=["b"]))
        graph.add_task(Task("b", parents=["a"]))
        assert graph.edges() == [("a", "b")]

    def test_roots_and_lookups(self):
        graph = scenario_b_graph()
        assert [t.name for t in graph.roots()] == ["createRoute"]
        assert graph.children_of("collectImage") == [
            "obstacleAvoidance", "faceRecognition"]
        assert graph.parents_of("deduplication") == ["faceRecognition"]

    def test_topological_order(self):
        order = scenario_b_graph().topological_order()
        assert order.index("createRoute") < order.index("collectImage")
        assert order.index("faceRecognition") < order.index("deduplication")

    def test_cycle_detected(self):
        graph = TaskGraph()
        graph.add_task(Task("a", children=["b"]))
        graph.add_task(Task("b", children=["a"]))
        with pytest.raises(ValueError):
            graph.topological_order()

    def test_unknown_task_lookup(self):
        with pytest.raises(KeyError):
            TaskGraph().task("ghost")


class TestTaskProfile:
    def test_validation(self):
        with pytest.raises(ValueError):
            TaskProfile(-1)
        with pytest.raises(ValueError):
            TaskProfile(1, parallelism=0)
        with pytest.raises(ValueError):
            TaskProfile(1, rate_hz=0)
        with pytest.raises(ValueError):
            TaskProfile(1, edge_only=True, cloud_only=True)


class TestDirectives:
    def test_parallel_serial_conflict(self):
        graph = scenario_b_graph()
        with pytest.raises(ValueError):
            Serial(graph, "obstacleAvoidance", "faceRecognition")
        with pytest.raises(ValueError):
            Parallel(graph, "faceRecognition", "deduplication")

    def test_unknown_task_rejected(self):
        graph = scenario_b_graph()
        directives = DirectiveSet()
        with pytest.raises(KeyError):
            Parallel(graph, "ghost", "createRoute")
        with pytest.raises(KeyError):
            Place(directives, graph, "ghost", "edge")

    def test_place_parses_scope(self):
        graph = scenario_b_graph()
        directives = DirectiveSet()
        Place(directives, graph, "obstacleAvoidance", "Edge:all")
        assert directives.placements["obstacleAvoidance"] == "edge"
        with pytest.raises(ValueError):
            Place(directives, graph, "createRoute", "moon")

    def test_learn_scopes(self):
        graph = scenario_b_graph()
        directives = DirectiveSet()
        Learn(directives, graph, "faceRecognition", "Global")
        assert directives.learning["faceRecognition"] == "global"
        with pytest.raises(ValueError):
            Learn(directives, graph, "faceRecognition", "sideways")

    def test_restore_policies(self):
        graph = scenario_b_graph()
        directives = DirectiveSet()
        Restore(directives, graph, "collectImage", "repartition")
        with pytest.raises(ValueError):
            Restore(directives, graph, "collectImage", "pray")

    def test_persist_isolate_idempotent(self):
        graph = scenario_b_graph()
        directives = DirectiveSet()
        Persist(directives, graph, "deduplication")
        Persist(directives, graph, "deduplication")
        Isolate(directives, graph, "deduplication")
        Isolate(directives, graph, "deduplication")
        assert directives.persisted == ["deduplication"]
        assert directives.isolated == ["deduplication"]

    def test_schedule_and_overlap_and_sync(self):
        graph = scenario_b_graph()
        directives = DirectiveSet()
        Schedule(directives, graph, "faceRecognition", priority=1)
        Overlap(graph, "createRoute", "collectImage")
        assert directives.priorities["faceRecognition"] == 1
        assert ("createRoute", "collectImage") in graph.overlap_pairs
        with pytest.raises(ValueError):
            Synchronize(graph, "deduplication", "")


class TestValidation:
    def test_valid_graph_passes(self):
        warnings = validate_graph(scenario_b_graph())
        assert warnings == []

    def test_empty_graph_rejected(self):
        with pytest.raises(ValidationError):
            validate_graph(TaskGraph())

    def test_unknown_edge_target_rejected(self):
        graph = TaskGraph()
        graph.add_task(Task("a", children=["ghost"]))
        with pytest.raises(ValidationError):
            validate_graph(graph)

    def test_cycle_rejected(self):
        graph = TaskGraph()
        graph.add_task(Task("a", children=["b"]))
        graph.add_task(Task("b", children=["a"]))
        with pytest.raises(ValidationError):
            validate_graph(graph)

    def test_placement_conflicts_with_pinning(self):
        graph = scenario_b_graph()
        directives = DirectiveSet()
        Place(directives, graph, "collectImage", "cloud")  # edge_only task
        with pytest.raises(ValidationError):
            validate_graph(graph, directives)

    def test_missing_parent_warning(self):
        graph = TaskGraph()
        graph.add_task(Task("producer", data_out="frames"))
        graph.add_task(Task("consumer", data_in="frames"))
        warnings = validate_graph(graph)
        assert any("consumer" in w for w in warnings)


class TestSynthesis:
    def test_two_tier_graph_yields_four_models(self):
        """The paper's A->B example composes 4 end-to-end scenarios."""
        graph = TaskGraph()
        graph.add_task(Task("A", profile=TaskProfile(0.1, output_mb=1),
                            children=["B"]))
        graph.add_task(Task("B", profile=TaskProfile(0.1),
                            parents=["A"]))
        placements = enumerate_placements(graph)
        assert len(placements) == 4

    def test_pinned_tasks_respected(self):
        graph = scenario_b_graph()
        placements = enumerate_placements(graph)
        for placement in placements:
            assert placement.tier_of("collectImage") == "edge"
            assert placement.tier_of("deduplication") == "cloud"

    def test_directive_pins_respected(self):
        graph = scenario_b_graph()
        directives = DirectiveSet()
        Place(directives, graph, "obstacleAvoidance", "Edge:all")
        placements = enumerate_placements(graph, directives)
        assert all(p.tier_of("obstacleAvoidance") == "edge"
                   for p in placements)

    def test_bounce_models_pruned(self):
        """cloud -> edge -> cloud for an unpinned task is not meaningful."""
        graph = TaskGraph()
        graph.add_task(Task("a", profile=TaskProfile(0.1, cloud_only=True),
                            children=["b"]))
        graph.add_task(Task("b", profile=TaskProfile(0.1, output_mb=1),
                            parents=["a"], children=["c"]))
        graph.add_task(Task("c", profile=TaskProfile(0.1, cloud_only=True),
                            parents=["b"]))
        placements = enumerate_placements(graph)
        assert len(placements) == 1
        assert placements[0].tier_of("b") == "cloud"

    def test_explosion_guard(self):
        graph = TaskGraph()
        previous = None
        for index in range(16):
            name = f"t{index}"
            graph.add_task(Task(
                name, profile=TaskProfile(0.1),
                parents=[previous] if previous else []))
            previous = name
        with pytest.raises(SynthesisError):
            enumerate_placements(graph)


class TestPlacement:
    def test_of_and_accessors(self):
        placement = Placement.of({"a": "cloud", "b": "edge"})
        assert placement.tier_of("a") == "cloud"
        assert placement.cloud_tasks == ["a"]
        assert placement.edge_tasks == ["b"]
        assert "a@cloud" in str(placement)

    def test_unknown_tier_rejected(self):
        with pytest.raises(ValueError):
            Placement.of({"a": "fog"})

    def test_unknown_task_lookup(self):
        with pytest.raises(KeyError):
            Placement.of({"a": "cloud"}).tier_of("z")
