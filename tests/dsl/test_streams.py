"""Tests for data-stream support in the DSL."""

import pytest

from repro.dsl import (
    HiveMindCompiler,
    Placement,
    Stream,
    Task,
    TaskGraph,
    TaskProfile,
    generate_apis,
)


def stream_graph(stream=None):
    stream = stream if stream is not None else Stream(
        "telemetry", rate_hz=8.0, item_mb=2.0)
    graph = TaskGraph("streaming")
    graph.add_task(Task(
        "capture", data_out=stream,
        profile=TaskProfile(0.005, input_mb=16.0, output_mb=16.0,
                            edge_only=True),
        children=["analyze"]))
    graph.add_task(Task(
        "analyze", data_in="telemetry", data_out="report",
        profile=TaskProfile(0.2, input_mb=16.0, output_mb=0.1,
                            parallelism=4),
        parents=["capture"]))
    return graph, stream


class TestStream:
    def test_validation(self):
        with pytest.raises(ValueError):
            Stream("", 1, 1)
        with pytest.raises(ValueError):
            Stream("s", 0, 1)
        with pytest.raises(ValueError):
            Stream("s", 1, -1)
        with pytest.raises(ValueError):
            Stream("s", 1, 1, window_s=0)

    def test_derived_rates(self):
        stream = Stream("frames", rate_hz=8.0, item_mb=2.0, window_s=1.0)
        assert stream.mbs == 16.0
        assert stream.window_mb == 16.0

    def test_task_stream_accessors(self):
        graph, stream = stream_graph()
        capture = graph.task("capture")
        assert capture.output_stream is stream
        assert capture.data_out_name == "telemetry"
        analyze = graph.task("analyze")
        assert analyze.output_stream is None
        assert analyze.data_out_name == "report"


class TestStreamCodegen:
    def test_crossing_gets_subscription_api(self):
        graph, stream = stream_graph()
        placement = Placement.of({"capture": "edge", "analyze": "cloud"})
        bundle = generate_apis(graph, placement)
        artifact = bundle.artifact_for("capture", "analyze")
        assert artifact.kind == "thrift_stream"
        assert "subscribe" in artifact.source
        assert "deliver" in artifact.source
        assert "TelemetryWindow" in artifact.source

    def test_same_tier_stream_stays_local(self):
        graph, _ = stream_graph()
        placement = Placement.of({"capture": "edge", "analyze": "edge"})
        bundle = generate_apis(graph, placement)
        assert bundle.artifact_for("capture", "analyze").kind == "local"


class TestStreamCompiler:
    def test_stream_bandwidth_budgeted(self):
        graph, stream = stream_graph()
        compiler = HiveMindCompiler(n_devices=16)
        crossing = Placement.of({"capture": "edge", "analyze": "cloud"})
        estimate = compiler.estimate(graph, crossing)
        # 16 devices x 16 MB/s stream = 256 MB/s demanded.
        assert estimate.network_mbs == pytest.approx(
            16 * stream.mbs, rel=0.01)

    def test_oversubscribed_stream_marked_infeasible(self):
        heavy = Stream("video", rate_hz=32.0, item_mb=8.0)  # 256 MB/s each
        graph, _ = stream_graph(heavy)
        compiler = HiveMindCompiler(n_devices=16)
        crossing = Placement.of({"capture": "edge", "analyze": "cloud"})
        assert not compiler.estimate(graph, crossing).feasible

    def test_compiler_prefers_edge_for_oversubscribed_stream(self):
        """A light consumer of a heavy stream belongs at the edge: the
        stream would drown the radio, while the device can absorb the
        compute."""
        heavy = Stream("video", rate_hz=32.0, item_mb=8.0)
        graph = TaskGraph("streaming")
        graph.add_task(Task(
            "capture", data_out=heavy,
            profile=TaskProfile(0.005, input_mb=16.0, output_mb=16.0,
                                edge_only=True),
            children=["analyze"]))
        graph.add_task(Task(
            "analyze", data_in="video", data_out="report",
            profile=TaskProfile(0.05, input_mb=16.0, output_mb=0.1),
            parents=["capture"]))
        result = HiveMindCompiler(n_devices=16).compile(graph)
        assert result.placement.tier_of("analyze") == "edge"
        assert result.chosen.estimate.feasible
