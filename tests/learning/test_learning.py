"""Tests for the learning substrate."""

import numpy as np
import pytest

from repro.learning import (
    DeduplicationEngine,
    DetectionTally,
    IdentitySpace,
    NearestCentroidClassifier,
    OnlineRecognizer,
    RetrainingMode,
)


@pytest.fixture
def rng():
    return np.random.default_rng(7)


@pytest.fixture
def space(rng):
    return IdentitySpace(n_identities=10, dim=16, rng=rng)


class TestIdentitySpace:
    def test_validation(self):
        with pytest.raises(ValueError):
            IdentitySpace(0)
        with pytest.raises(ValueError):
            IdentitySpace(5, dim=1)

    def test_centroids_unit_norm(self, space):
        for centroid in space.centroids.values():
            assert np.linalg.norm(centroid) == pytest.approx(1.0)

    def test_observation_noise(self, space):
        clean = space.observe(0, noise_sigma=0.0)
        assert np.allclose(clean, space.centroids[0])
        noisy = space.observe(0, noise_sigma=0.5)
        assert not np.allclose(noisy, space.centroids[0])

    def test_observe_unknown_identity(self, space):
        with pytest.raises(KeyError):
            space.observe(999, 0.1)

    def test_negative_noise_rejected(self, space):
        with pytest.raises(ValueError):
            space.observe(0, -0.1)

    def test_min_separation_positive(self, space):
        assert space.min_centroid_separation() > 0

    def test_clutter_norm(self, space):
        assert np.linalg.norm(space.clutter()) == pytest.approx(1.0)


class TestNearestCentroid:
    def test_validation(self):
        with pytest.raises(ValueError):
            NearestCentroidClassifier(0)
        with pytest.raises(ValueError):
            NearestCentroidClassifier(4, accept_radius=0)

    def test_predict_empty_model_is_unknown(self):
        model = NearestCentroidClassifier(4)
        assert model.predict(np.zeros(4)) is None

    def test_learns_identity(self, space):
        model = NearestCentroidClassifier(space.dim, accept_radius=0.5)
        for identity in space.identities:
            model.add_observation(identity, space.centroids[identity])
        for identity in space.identities:
            assert model.predict(space.centroids[identity]) == identity

    def test_out_of_radius_is_unknown(self, space):
        model = NearestCentroidClassifier(space.dim, accept_radius=0.1)
        model.add_observation(0, space.centroids[0])
        far = space.centroids[0] + 5.0
        assert model.predict(far) is None

    def test_centroid_estimate_converges(self, space):
        """More observations -> estimate closer to the true centroid."""
        model = NearestCentroidClassifier(space.dim)
        errors = []
        for n in (2, 200):
            fresh = NearestCentroidClassifier(space.dim)
            for _ in range(n):
                fresh.add_observation(0, space.observe(0, 0.5))
            errors.append(float(np.linalg.norm(
                fresh.centroid_estimate(0) - space.centroids[0])))
        assert errors[1] < errors[0]

    def test_shape_validation(self):
        model = NearestCentroidClassifier(4)
        with pytest.raises(ValueError):
            model.add_observation(0, np.zeros(5))

    def test_unknown_centroid_estimate(self):
        with pytest.raises(KeyError):
            NearestCentroidClassifier(4).centroid_estimate(0)


class TestDeduplication:
    def test_validation(self):
        with pytest.raises(ValueError):
            DeduplicationEngine(merge_radius=0)

    def test_exact_duplicates_merge(self, space):
        engine = DeduplicationEngine(merge_radius=0.3)
        for _ in range(5):
            engine.add(space.centroids[0])
        assert engine.unique_count == 1
        assert engine.cluster_sizes() == [5]

    def test_distinct_identities_stay_apart(self, space):
        engine = DeduplicationEngine(merge_radius=0.3)
        for identity in space.identities:
            engine.add(space.centroids[identity])
        assert engine.unique_count == len(space)

    def test_noisy_multi_device_count(self, space, rng):
        """Multiple noisy sightings per person still count ~25 people."""
        people = IdentitySpace(25, dim=16, rng=rng)
        engine = DeduplicationEngine(merge_radius=0.75)
        for identity in people.identities:
            for _ in range(6):  # photographed by several drones
                engine.add(people.observe(identity, noise_sigma=0.12))
        assert engine.unique_count == pytest.approx(25, abs=3)

    def test_observation_counter(self, space):
        engine = DeduplicationEngine()
        engine.add_all([space.centroids[0], space.centroids[1]])
        assert engine.observations == 2


class TestDetectionTally:
    def test_percentages(self):
        tally = DetectionTally()
        for _ in range(8):
            tally.record_correct()
        tally.record_false_negative()
        tally.record_false_positive()
        assert tally.correct_pct == pytest.approx(80.0)
        assert tally.false_negative_pct == pytest.approx(10.0)
        assert tally.false_positive_pct == pytest.approx(10.0)
        assert sum(tally.as_row()) == pytest.approx(100.0)

    def test_empty_tally_raises(self):
        with pytest.raises(ValueError):
            _ = DetectionTally().correct_pct

    def test_true_negatives_excluded_from_decisions(self):
        tally = DetectionTally()
        tally.record_correct()
        tally.record_true_negative()
        assert tally.decisions == 1


class TestOnlineRecognizer:
    def _run(self, mode, rng, sightings=400):
        space = IdentitySpace(10, dim=16,
                              rng=np.random.default_rng(123))
        devices = [f"d{i}" for i in range(16)]
        recognizer = OnlineRecognizer(
            space, devices, mode, rng=rng,
            sensor_noise=0.40, pretrain_noise=0.65, pretrain_samples=1)
        for step in range(sightings):
            device = devices[step % len(devices)]
            identity = int(rng.integers(len(space)))
            recognizer.sight(device, identity)
        return recognizer

    def test_validation(self, space, rng):
        with pytest.raises(ValueError):
            OnlineRecognizer(space, [], RetrainingMode.NONE, rng)
        with pytest.raises(ValueError):
            OnlineRecognizer(space, ["d0"], RetrainingMode.NONE, rng,
                             clutter_rate=1.5)

    def test_swarm_shares_one_model(self, space, rng):
        recognizer = OnlineRecognizer(
            space, ["d0", "d1"], RetrainingMode.SWARM, rng)
        assert recognizer.model_of("d0") is recognizer.model_of("d1")

    def test_self_mode_separate_models(self, space, rng):
        recognizer = OnlineRecognizer(
            space, ["d0", "d1"], RetrainingMode.SELF, rng)
        assert recognizer.model_of("d0") is not recognizer.model_of("d1")

    def test_unknown_device(self, space, rng):
        recognizer = OnlineRecognizer(
            space, ["d0"], RetrainingMode.NONE, rng)
        with pytest.raises(KeyError):
            recognizer.model_of("ghost")

    def test_none_mode_never_accumulates(self, space, rng):
        recognizer = OnlineRecognizer(
            space, ["d0"], RetrainingMode.NONE, rng,
            pretrain_samples=2, clutter_rate=0.0)
        before = recognizer.training_observations("d0")
        for _ in range(50):
            recognizer.sight("d0", 0)
        assert recognizer.training_observations("d0") == before

    def test_swarm_accumulates_fastest(self, rng):
        """Fig 15 mechanism: swarm-wide feedback trains models faster."""
        space = IdentitySpace(10, dim=16, rng=np.random.default_rng(5))
        devices = [f"d{i}" for i in range(16)]
        modes = {}
        for mode in (RetrainingMode.SELF, RetrainingMode.SWARM):
            recognizer = OnlineRecognizer(
                space, devices, mode,
                rng=np.random.default_rng(9), clutter_rate=0.0)
            for step in range(160):
                recognizer.sight(devices[step % 16], step % 10)
            modes[mode] = recognizer.training_observations("d0")
        assert modes[RetrainingMode.SWARM] > 5 * modes[RetrainingMode.SELF]

    def test_accuracy_ordering_swarm_best(self):
        """Swarm retraining must beat self, which must beat none."""
        accuracies = {}
        for mode in RetrainingMode:
            recognizer = self._run(mode, np.random.default_rng(31))
            accuracies[mode] = recognizer.tally.correct_pct
        assert accuracies[RetrainingMode.SWARM] > \
            accuracies[RetrainingMode.NONE]
        assert accuracies[RetrainingMode.SWARM] >= \
            accuracies[RetrainingMode.SELF] - 1.0  # allow statistical tie
        assert accuracies[RetrainingMode.SWARM] > 80.0
