"""Regression tests for the telemetry tracer's record/series accessors."""

import pytest

from repro.sim.trace import NullTracer, Tracer

pytestmark = pytest.mark.quick


class TestSeries:
    def test_series_skips_records_missing_the_key(self):
        # Mixed payload shapes within one category are legal: a record
        # without the requested key is skipped, not a KeyError.
        tracer = Tracer()
        tracer.emit(1.0, "net", mb=4.0)
        tracer.emit(2.0, "net", dropped=True)  # no "mb"
        tracer.emit(3.0, "net", mb=8.0)
        assert tracer.series("net", "mb") == [(1.0, 4.0), (3.0, 8.0)]

    def test_series_keeps_falsy_values(self):
        # Present-but-falsy payloads (0.0, None) are real samples.
        tracer = Tracer()
        tracer.emit(1.0, "battery", level=0.0)
        tracer.emit(2.0, "battery", level=None)
        assert tracer.series("battery", "level") == [(1.0, 0.0),
                                                     (2.0, None)]

    def test_records_accepts_no_category(self):
        tracer = Tracer()
        tracer.emit(1.0, "a", x=1)
        tracer.emit(2.0, "b", x=2)
        assert len(list(tracer.records())) == 2
        assert len(list(tracer.records("a"))) == 1

    def test_null_tracer_mirrors_the_interface(self):
        null = NullTracer()
        null.emit(1.0, "net", mb=4.0)
        assert null.series("net", "mb") == []
        assert list(null.records()) == []
        assert list(null.records("net")) == []
