"""Regression tests for the kernel fast paths.

The fast paths (slotted events, zero-delay FIFO lanes, pooled timeouts,
recycled callback lists) must preserve the documented dispatch contract —
(time, priority, insertion order) — exactly. These tests pin that contract
plus the two bug fixes that rode along: double-trigger detection and
condition defusing of late constituent failures.
"""

import pytest

from repro.sim import Environment, Event, Timeout
from repro.sim import kernel


pytestmark = pytest.mark.quick


class TestDoubleTrigger:
    def test_trigger_on_already_triggered_target_raises(self):
        env = Environment()
        source = Event(env)
        source.succeed("payload")
        target = Event(env)
        target.succeed("already here")
        with pytest.raises(RuntimeError):
            target.trigger(source)

    def test_trigger_copies_outcome(self):
        env = Environment()
        source = Event(env)
        source.succeed("payload")
        target = Event(env)
        target.trigger(source)
        env.run()
        assert target.value == "payload"


class TestConditionDefuse:
    def test_late_loser_failure_does_not_crash_run(self):
        # any_of triggers on the fast event; the slow constituent then
        # fails *after* the condition was decided. The failure must be
        # defused (the condition result already propagated), not crash
        # the whole simulation as an unhandled failed event.
        env = Environment()
        fast = env.timeout(1, value="fast")
        loser = Event(env)

        def fail_later():
            yield env.timeout(5)
            loser.fail(RuntimeError("late failure"))

        def waiter():
            results = yield env.any_of([fast, loser])
            return list(results.values())

        env.process(fail_later())
        process = env.process(waiter())
        env.run()  # must not raise the loser's RuntimeError
        assert process.value == ["fast"]

    def test_failure_before_decision_still_propagates(self):
        env = Environment()
        never = Event(env)
        failing = Event(env)

        def fail_now():
            yield env.timeout(1)
            failing.fail(RuntimeError("boom"))

        def waiter():
            yield env.any_of([never, failing])

        env.process(fail_now())
        env.process(waiter())
        with pytest.raises(RuntimeError, match="boom"):
            env.run()


class TestTimeoutPooling:
    def test_timeouts_are_recycled(self):
        env = Environment()

        def ticker():
            for _ in range(50):
                yield env.timeout(0.5)

        env.run(env.process(ticker()))
        assert env._timeout_pool  # consumed timeouts returned to the pool
        pooled = env._timeout_pool[-1]
        fresh = env.timeout(1.0, value="reused")
        assert fresh is pooled  # reissued, not reallocated

    def test_recycled_timeout_behaves_like_new(self):
        env = Environment()

        def ticker():
            for index in range(10):
                value = yield env.timeout(1.0, value=index)
                assert value == index
            return env.now

        assert env.run(env.process(ticker())) == 10.0

    def test_pool_is_bounded(self):
        env = Environment()

        def burst():
            yield env.all_of([env.timeout(0) for _ in range(1000)])

        env.run(env.process(burst()))
        assert len(env._timeout_pool) <= kernel._POOL_LIMIT


class TestDispatchOrderContract:
    def test_zero_delay_fifo_matches_insertion_order(self):
        env = Environment()
        order = []
        events = [Event(env) for _ in range(5)]
        # Succeed out of storage order: dispatch must follow trigger
        # (insertion) order, not creation order.
        for index in (3, 0, 4, 1, 2):
            events[index].callbacks.append(
                lambda e, i=index: order.append(i))
            events[index].succeed()
        env.run()
        assert order == [3, 0, 4, 1, 2]

    def test_same_instant_heap_and_fifo_interleave_by_insertion(self):
        env = Environment()
        order = []

        def schedule():
            # A delayed timeout landing at t=1 ...
            def late():
                yield env.timeout(1)
                order.append("heap")
            env.process(late())

            def zero_after():
                yield env.timeout(1)
                yield env.timeout(0)
                order.append("fifo")
            env.process(zero_after())
            yield env.timeout(0)

        env.process(schedule())
        env.run()
        # Both resume at t=1; the zero-delay leg was scheduled *at* t=1
        # and therefore dispatches after the pre-scheduled heap event.
        assert order == ["heap", "fifo"]

    def test_events_consumed_counter_advances(self):
        before = kernel.events_consumed()
        env = Environment()

        def proc():
            yield env.timeout(1)
            yield env.timeout(1)

        env.run(env.process(proc()))
        assert kernel.events_consumed() - before >= 3
        assert env.dispatched >= 3


class TestSeedStability:
    @staticmethod
    def _trace(seed):
        """A workload touching timeouts, conditions and shared events."""
        from repro.sim import RandomStreams
        env = Environment()
        rng = RandomStreams(seed).stream("fastpath")
        trace = []

        def worker(wid):
            for _ in range(20):
                delay = float(rng.uniform(0, 2))
                yield env.timeout(delay)
                trace.append((round(env.now, 9), wid))

        for wid in range(5):
            env.process(worker(wid))
        env.run()
        return trace

    def test_same_seed_same_trace(self):
        assert self._trace(42) == self._trace(42)

    def test_different_seed_different_trace(self):
        assert self._trace(1) != self._trace(2)


class TestSlots:
    def test_events_reject_arbitrary_attributes(self):
        env = Environment()
        event = Event(env)
        with pytest.raises(AttributeError):
            event.arbitrary = 1
        timeout = Timeout(env, 1.0)
        with pytest.raises(AttributeError):
            timeout.arbitrary = 1
