"""Stream-name derivation audit.

Every named stream maps to a generator seeded by
``sha256(f"{seed}:{name}")`` and fork children by
``sha256(f"{seed}:fork:{label}")`` — all in one namespace. This audit is
grep-driven: it scans ``src/`` for every ``stream(...)`` /
``buffered(...)`` call site, checks the names against a registry of
known patterns, expands the patterns to realistic swarm scales, and
asserts the derived seeds collide nowhere (including fork children and
across the fork namespace boundary).
"""

import pathlib
import re

import pytest

from repro.sim.rng import RandomStreams

pytestmark = pytest.mark.quick

SRC = pathlib.Path(__file__).resolve().parents[2] / "src" / "repro"

#: Every stream-name pattern the codebase may request. f-string
#: placeholders are expanded over the ranges below; a new call site that
#: doesn't match any entry fails test_all_call_sites_registered, which is
#: the prompt to extend this registry (and rerun the collision audit).
REGISTRY = (
    "network.loss",
    "network.wifi",             # rng.py docstring example
    "serverless.couchdb",
    "serverless.invoker.server{i}",
    "runner.workload",
    "runner.drone{i}",
    "scenario.workload",
    "scenario.world",
    "scenario.identities",
    "scenario.recognizer",
    "scenario.drone{i}",
    "edge.drone{i}",
    "cars.workload",
    "cars.car{i}",
    "cars.maze{i}",
    "fig06b.gaps",
    "keepalive.gaps",
    "faults.injector",
    # Serving tenants interpolate the tenant *name* (a string); the
    # integer expansion below stands in for arbitrary names, and the
    # registry itself lives under its own seed offset (+314_159).
    "serving.{i}",
)

#: Expansion width for ``{i}`` patterns — past the largest fig17 sweep.
EXPAND = 2048

_CALL_RE = re.compile(r"\.(?:stream|buffered)\(\s*(f?)\"([^\"]+)\"")


def _call_sites():
    found = set()
    for path in SRC.rglob("*.py"):
        for is_f, name in _CALL_RE.findall(path.read_text()):
            if is_f:
                # Normalize any f-string placeholder to the {i} slot.
                name = re.sub(r"\{[^}]+\}", "{i}", name)
            found.add(name)
    return found


def _expanded_names():
    names = []
    for pattern in REGISTRY:
        if "{i}" in pattern:
            names.extend(pattern.format(i=i) for i in range(EXPAND))
        else:
            names.append(pattern)
    return names


class TestCallSiteCoverage:
    def test_scan_finds_call_sites(self):
        found = _call_sites()
        assert "network.loss" in found  # the grep itself works
        assert len(found) >= 10

    def test_all_call_sites_registered(self):
        registry_slots = {re.sub(r"\{[^}]+\}", "{i}", p) for p in REGISTRY}
        # openwhisk interpolates the whole server id ("server0", ...), so
        # its slot collapses further than the registry pattern spells out.
        registry_slots.add("serverless.invoker.{i}")
        unknown = _call_sites() - registry_slots
        assert not unknown, (
            f"unregistered stream name(s) {sorted(unknown)}: add them to "
            f"REGISTRY in {__file__} so the collision audit covers them")


class TestDerivationCollisions:
    @pytest.mark.parametrize("seed", (0, 1, 17))
    def test_no_seed_collisions_across_all_names(self, seed):
        streams = RandomStreams(seed)
        names = _expanded_names()
        derived = [streams._derive(name) for name in names]
        assert len(set(derived)) == len(names)

    def test_fork_children_disjoint_from_parent_streams(self):
        parent = RandomStreams(0)
        parent_seeds = {parent._derive(n) for n in _expanded_names()}
        fork_seeds = {parent._derive(f"fork:worker{i}")
                      for i in range(EXPAND)}
        assert not parent_seeds & fork_seeds
        # A fork child's *streams* must also miss the parent's streams.
        child = parent.fork("worker0")
        child_seeds = {child._derive(n) for n in _expanded_names()}
        assert not parent_seeds & child_seeds

    def test_no_registered_name_shadows_fork_namespace(self):
        # fork("x") derives from "fork:x"; a stream literally named
        # "fork:x" would alias it. Keep the namespaces disjoint.
        assert not any(name.startswith("fork:")
                       for name in _expanded_names())

    def test_same_name_same_seed_is_stable(self):
        assert RandomStreams(9)._derive("network.loss") == \
            RandomStreams(9)._derive("network.loss")
        assert RandomStreams(9)._derive("network.loss") != \
            RandomStreams(10)._derive("network.loss")
