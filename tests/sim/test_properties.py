"""Property-based tests for the simulation kernel invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Environment, RandomStreams, Resource, Store, Tracer


class TestClockInvariants:
    @settings(max_examples=40)
    @given(st.lists(st.floats(0, 100, allow_nan=False), min_size=1,
                    max_size=30))
    def test_clock_is_monotone(self, delays):
        env = Environment()
        observed = []

        def proc():
            for delay in delays:
                yield env.timeout(delay)
                observed.append(env.now)

        env.run(env.process(proc()))
        assert observed == sorted(observed)
        assert env.now == sum(delays)

    @settings(max_examples=40)
    @given(st.lists(st.floats(0.01, 50, allow_nan=False), min_size=1,
                    max_size=20))
    def test_parallel_processes_end_at_max(self, delays):
        env = Environment()
        for delay in delays:
            env.process(iter_timeout(env, delay))
        env.run()
        assert env.now == max(delays)


def iter_timeout(env, delay):
    yield env.timeout(delay)


class TestResourceInvariants:
    @settings(max_examples=40)
    @given(st.integers(1, 8),
           st.lists(st.floats(0.01, 5, allow_nan=False), min_size=1,
                    max_size=40))
    def test_capacity_never_exceeded(self, capacity, holds):
        env = Environment()
        resource = Resource(env, capacity=capacity)
        violations = []

        def user(hold):
            with resource.request() as grant:
                yield grant
                if resource.count > resource.capacity:
                    violations.append(resource.count)
                yield env.timeout(hold)

        for hold in holds:
            env.process(user(hold))
        env.run()
        assert not violations
        assert resource.count == 0  # everything released

    @settings(max_examples=40)
    @given(st.integers(1, 4),
           st.lists(st.floats(0.01, 3, allow_nan=False), min_size=2,
                    max_size=20))
    def test_work_conserving_total_time(self, capacity, holds):
        """A FIFO resource must finish no later than serial execution."""
        env = Environment()
        resource = Resource(env, capacity=capacity)

        def user(hold):
            with resource.request() as grant:
                yield grant
                yield env.timeout(hold)

        for hold in holds:
            env.process(user(hold))
        env.run()
        assert env.now <= sum(holds) + 1e-9


class TestStoreInvariants:
    @settings(max_examples=40)
    @given(st.lists(st.integers(), min_size=1, max_size=40))
    def test_fifo_order_preserved(self, items):
        env = Environment()
        store = Store(env)
        received = []

        def producer():
            for item in items:
                yield store.put(item)
                yield env.timeout(0.1)

        def consumer():
            for _ in items:
                value = yield store.get()
                received.append(value)

        env.process(producer())
        env.process(consumer())
        env.run()
        assert received == items


class TestRandomStreams:
    @given(st.integers(0, 2**31), st.text(min_size=1, max_size=30))
    def test_same_name_same_stream(self, seed, name):
        a = RandomStreams(seed)
        b = RandomStreams(seed)
        assert a.stream(name).random() == b.stream(name).random()

    def test_order_independence(self):
        a = RandomStreams(7)
        b = RandomStreams(7)
        first_a = a.stream("x").random()
        b.stream("y")  # touch another stream first
        first_b = b.stream("x").random()
        assert first_a == first_b

    def test_different_names_differ(self):
        streams = RandomStreams(7)
        assert streams.stream("a").random() != streams.stream("b").random()

    def test_fork_disjoint(self):
        parent = RandomStreams(7)
        child = parent.fork("child")
        assert parent.stream("x").random() != child.stream("x").random()

    def test_cached_stream_identity(self):
        streams = RandomStreams(1)
        assert streams.stream("s") is streams.stream("s")


class TestTracer:
    def test_emit_and_filter(self):
        tracer = Tracer()
        tracer.emit(1.0, "task", name="a")
        tracer.emit(2.0, "net", mb=4)
        tracer.emit(3.0, "task", name="b")
        assert tracer.count("task") == 2
        assert len(tracer) == 3
        assert [r.payload["name"] for r in tracer.records("task")] == \
            ["a", "b"]
        assert tracer.series("net", "mb") == [(2.0, 4)]
        tracer.clear()
        assert len(tracer) == 0
