"""Unit tests for the discrete-event kernel."""

import pytest

from repro.sim import Environment, Interrupt


def test_clock_starts_at_zero():
    env = Environment()
    assert env.now == 0.0


def test_clock_starts_at_initial_time():
    env = Environment(initial_time=42.5)
    assert env.now == 42.5


def test_timeout_advances_clock():
    env = Environment()

    def proc():
        yield env.timeout(3.0)
        return env.now

    process = env.process(proc())
    assert env.run(process) == 3.0
    assert env.now == 3.0


def test_timeout_negative_delay_rejected():
    env = Environment()
    with pytest.raises(ValueError):
        env.timeout(-1)


def test_timeout_carries_value():
    env = Environment()

    def proc():
        value = yield env.timeout(1, value="payload")
        return value

    assert env.run(env.process(proc())) == "payload"


def test_run_until_time_advances_clock_past_last_event():
    env = Environment()

    def short():
        yield env.timeout(1)

    env.process(short())
    env.run(until=100.0)
    assert env.now == 100.0


def test_run_until_past_time_rejected():
    env = Environment(initial_time=10.0)
    with pytest.raises(ValueError):
        env.run(until=5.0)


def test_processes_interleave_in_time_order():
    env = Environment()
    log = []

    def worker(name, delay):
        yield env.timeout(delay)
        log.append((env.now, name))

    env.process(worker("slow", 2.0))
    env.process(worker("fast", 1.0))
    env.run()
    assert log == [(1.0, "fast"), (2.0, "slow")]


def test_same_time_events_fire_in_creation_order():
    env = Environment()
    log = []

    def worker(name):
        yield env.timeout(1.0)
        log.append(name)

    for name in "abc":
        env.process(worker(name))
    env.run()
    assert log == ["a", "b", "c"]


def test_process_return_value():
    env = Environment()

    def child():
        yield env.timeout(1)
        return 99

    def parent():
        result = yield env.process(child())
        return result + 1

    assert env.run(env.process(parent())) == 100


def test_process_waiting_on_finished_process():
    env = Environment()

    def child():
        yield env.timeout(1)
        return "done"

    def parent(child_proc):
        yield env.timeout(5)
        result = yield child_proc
        return result

    child_proc = env.process(child())
    assert env.run(env.process(parent(child_proc))) == "done"
    assert env.now == 5


def test_uncaught_process_exception_propagates():
    env = Environment()

    def boom():
        yield env.timeout(1)
        raise RuntimeError("boom")

    env.process(boom())
    with pytest.raises(RuntimeError, match="boom"):
        env.run()


def test_caught_child_exception_does_not_crash():
    env = Environment()

    def boom():
        yield env.timeout(1)
        raise ValueError("boom")

    def parent():
        try:
            yield env.process(boom())
        except ValueError as exc:
            return str(exc)

    assert env.run(env.process(parent())) == "boom"


def test_event_succeed_and_value():
    env = Environment()
    event = env.event()

    def waiter():
        value = yield event
        return value

    def trigger():
        yield env.timeout(2)
        event.succeed("hello")

    env.process(trigger())
    assert env.run(env.process(waiter())) == "hello"


def test_event_double_trigger_rejected():
    env = Environment()
    event = env.event()
    event.succeed(1)
    with pytest.raises(RuntimeError):
        event.succeed(2)


def test_event_fail_raises_in_waiter():
    env = Environment()
    event = env.event()

    def waiter():
        try:
            yield event
        except KeyError:
            return "caught"

    def trigger():
        yield env.timeout(1)
        event.fail(KeyError("k"))

    env.process(trigger())
    assert env.run(env.process(waiter())) == "caught"


def test_event_value_before_trigger_raises():
    env = Environment()
    event = env.event()
    with pytest.raises(RuntimeError):
        _ = event.value
    with pytest.raises(RuntimeError):
        _ = event.ok


def test_all_of_collects_all_values():
    env = Environment()
    timeouts = [env.timeout(t, value=t) for t in (1, 2, 3)]

    def waiter():
        results = yield env.all_of(timeouts)
        return sorted(results.values())

    assert env.run(env.process(waiter())) == [1, 2, 3]
    assert env.now == 3


def test_any_of_returns_on_first():
    env = Environment()
    fast = env.timeout(1, value="fast")
    slow = env.timeout(10, value="slow")

    def waiter():
        results = yield env.any_of([fast, slow])
        return list(results.values())

    assert env.run(env.process(waiter())) == ["fast"]
    assert env.now == 1


def test_all_of_empty_is_immediate():
    env = Environment()

    def waiter():
        results = yield env.all_of([])
        return results

    assert env.run(env.process(waiter())) == {}


def test_interrupt_raises_in_target():
    env = Environment()

    def victim():
        try:
            yield env.timeout(100)
        except Interrupt as interrupt:
            return ("interrupted", interrupt.cause, env.now)

    def attacker(target):
        yield env.timeout(5)
        target.interrupt(cause="preempted")

    target = env.process(victim())
    env.process(attacker(target))
    assert env.run(target) == ("interrupted", "preempted", 5.0)


def test_interrupt_dead_process_rejected():
    env = Environment()

    def quick():
        yield env.timeout(1)

    process = env.process(quick())
    env.run()
    with pytest.raises(RuntimeError):
        process.interrupt()


def test_interrupted_process_can_rewait():
    env = Environment()

    def victim():
        try:
            yield env.timeout(100)
        except Interrupt:
            yield env.timeout(3)
        return env.now

    def attacker(target):
        yield env.timeout(5)
        target.interrupt()

    target = env.process(victim())
    env.process(attacker(target))
    assert env.run(target) == 8.0


def test_run_until_event():
    env = Environment()
    event = env.event()

    def trigger():
        yield env.timeout(7)
        event.succeed("fired")

    env.process(trigger())
    assert env.run(until=event) == "fired"
    assert env.now == 7


def test_run_out_of_events_before_until_event():
    env = Environment()
    event = env.event()  # nobody will trigger it
    with pytest.raises(RuntimeError):
        env.run(until=event)


def test_peek_empty_queue_is_inf():
    env = Environment()
    env.run()
    assert env.peek() == float("inf")


def test_is_alive_lifecycle():
    env = Environment()

    def proc():
        yield env.timeout(1)

    process = env.process(proc())
    assert process.is_alive
    env.run()
    assert not process.is_alive


def test_yield_non_event_raises():
    env = Environment()

    def bad():
        yield 42

    env.process(bad())
    with pytest.raises(TypeError):
        env.run()


def test_nested_process_chain():
    env = Environment()

    def level(n):
        if n == 0:
            yield env.timeout(1)
            return 1
        result = yield env.process(level(n - 1))
        return result + 1

    assert env.run(env.process(level(10))) == 11
