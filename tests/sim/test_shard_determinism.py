"""Sharded runtime determinism: byte-identical results at any shard count.

The contract of ``repro.sim.shard`` is that the cell decomposition — and
therefore every RNG stream, every merge, every output row — depends only
on ``(n_devices, cell_devices, seed)``, never on how many shard workers
the cells are scheduled onto. These tests pin that with exact ``==``
across 1/2/4 shards for S1-S3 recognition workloads, and pin the unarmed
path (no ``REPRO_SHARDS``) to the seed's frozen observables.
"""

import dataclasses

import pytest

from repro.apps import SCENARIO_A
from repro.apps.suite import SUITE
from repro.platforms import platform_config
from repro.sim import flags
from repro.sim.shard import plan_cells, run_sharded

N_DEVICES = 16
CELL_DEVICES = 4  # four cells, so 1/2/4 shards all divide the work


def scenario_variant(app_key):
    """SCENARIO_A's flight/field shell around one suite recognition app."""
    return dataclasses.replace(
        SCENARIO_A, key=f"ScA-{app_key}", recognition=SUITE[app_key])


def result_bytes(result):
    """Everything observable, exactly."""
    return (
        tuple(result.task_latencies.values),
        tuple(result.task_latencies.times),
        result.extras["makespan_s"],
        result.duration_s,
        tuple(result.wireless_meter.events),
        result.extras["targets"],
        result.extras["cloud_completions"],
    )


class TestShardCountInvariance:
    @pytest.mark.parametrize("app_key", ["S1", "S2", "S3"])
    def test_rows_identical_at_1_2_4_shards(self, app_key):
        scenario = scenario_variant(app_key)
        config = platform_config("hivemind")
        reference = None
        for shards in (1, 2, 4):
            result = run_sharded(config, scenario, N_DEVICES, seed=0,
                                 shards=shards, cell_devices=CELL_DEVICES)
            observed = result_bytes(result)
            if reference is None:
                reference = observed
            else:
                assert observed == reference, (
                    f"{app_key}: rows differ at {shards} shards")

    def test_seed_changes_rows(self):
        scenario = scenario_variant("S1")
        config = platform_config("hivemind")
        a = run_sharded(config, scenario, N_DEVICES, seed=0,
                        shards=2, cell_devices=CELL_DEVICES)
        b = run_sharded(config, scenario, N_DEVICES, seed=1,
                        shards=2, cell_devices=CELL_DEVICES)
        assert result_bytes(a) != result_bytes(b)


class TestCellPlan:
    def test_plan_is_shard_count_free(self):
        specs = plan_cells(130, seed=5, cell_devices=64)
        assert [s.n_devices for s in specs] == [64, 64, 2]
        assert [s.device_id_base for s in specs] == [0, 64, 128]
        assert [s.seed for s in specs] == [5, 1005, 2005]

    def test_fault_routing(self):
        specs = plan_cells(128, cell_devices=64,
                           device_faults=[(70, 12.5), (3, 1.0)])
        assert specs[0].fail_devices_at == ((3, 1.0),)
        assert specs[1].fail_devices_at == ((6, 12.5),)

    def test_fault_outside_swarm_rejected(self):
        with pytest.raises(ValueError):
            plan_cells(64, device_faults=[(64, 1.0)])


class TestUnarmedPath:
    """No REPRO_SHARDS / REPRO_MEANFIELD -> the seed's exact numbers."""

    def test_unarmed_swarm_cell_matches_seed(self, monkeypatch):
        monkeypatch.delenv("REPRO_SHARDS", raising=False)
        monkeypatch.delenv("REPRO_MEANFIELD", raising=False)
        from repro.experiments.fig17_scalability import _swarm_cell
        # Frozen seed observables (hivemind, Scenario A, 16 devices,
        # seed 0) — any drift here means the unarmed path changed.
        assert _swarm_cell("hivemind", "ScA", 16, 0) == (
            70.06315789473685, 1.299728340651617, 56.07499999999999)

    def test_flag_resolution(self, monkeypatch):
        monkeypatch.delenv("REPRO_SHARDS", raising=False)
        monkeypatch.delenv("REPRO_MEANFIELD", raising=False)
        assert flags.shard_count() == 1
        assert flags.meanfield_enabled() is False
        monkeypatch.setenv("REPRO_SHARDS", "4")
        monkeypatch.setenv("REPRO_MEANFIELD", "1")
        assert flags.shard_count() == 4
        assert flags.meanfield_enabled() is True
        # Explicit overrides always beat the environment.
        assert flags.shard_count(2) == 2
        assert flags.meanfield_enabled(False) is False
        with pytest.raises(ValueError):
            flags.shard_count(0)
