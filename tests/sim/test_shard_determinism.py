"""Sharded runtime determinism: byte-identical results at any shard count.

The contract of ``repro.sim.shard`` is that the cell decomposition — and
therefore every RNG stream, every merge, every output row — depends only
on ``(n_devices, cell_devices, seed)``, never on how many shard workers
the cells are scheduled onto. These tests pin that with exact ``==``
across 1/2/4 shards for S1-S3 recognition workloads, and pin the unarmed
path (no ``REPRO_SHARDS``) to the seed's frozen observables.
"""

import dataclasses

import pytest

from repro.apps import SCENARIO_A
from repro.apps.suite import SUITE
from repro.platforms import platform_config
from repro.sim import flags
from repro.sim.shard import plan_cells, run_sharded

N_DEVICES = 16
CELL_DEVICES = 4  # four cells, so 1/2/4 shards all divide the work


def scenario_variant(app_key):
    """SCENARIO_A's flight/field shell around one suite recognition app."""
    return dataclasses.replace(
        SCENARIO_A, key=f"ScA-{app_key}", recognition=SUITE[app_key])


def result_bytes(result):
    """Everything observable, exactly."""
    return (
        tuple(result.task_latencies.values),
        tuple(result.task_latencies.times),
        result.extras["makespan_s"],
        result.duration_s,
        tuple(result.wireless_meter.events),
        result.extras["targets"],
        result.extras["cloud_completions"],
    )


class TestShardCountInvariance:
    @pytest.mark.parametrize("app_key", ["S1", "S2", "S3"])
    def test_rows_identical_at_1_2_4_shards(self, app_key):
        scenario = scenario_variant(app_key)
        config = platform_config("hivemind")
        reference = None
        for shards in (1, 2, 4):
            result = run_sharded(config, scenario, N_DEVICES, seed=0,
                                 shards=shards, cell_devices=CELL_DEVICES)
            observed = result_bytes(result)
            if reference is None:
                reference = observed
            else:
                assert observed == reference, (
                    f"{app_key}: rows differ at {shards} shards")


#: (shards, cloud_shards) worker-grouping combinations — regions are a
#: pure function of the plan, so every armed combo must merge to the
#: exact same rows.
CLOUD_COMBOS = ((1, 1), (2, 1), (2, 2), (4, 2))


class TestCloudShardInvariance:
    """Armed cloud tier: rows identical at any (shards, cloud_shards)."""

    @pytest.mark.parametrize("app_key", ["S1", "S2", "S3"])
    def test_rows_identical_across_combos(self, app_key):
        scenario = scenario_variant(app_key)
        config = platform_config("hivemind")
        reference = None
        for shards, cloud_shards in CLOUD_COMBOS:
            result = run_sharded(config, scenario, N_DEVICES, seed=0,
                                 shards=shards, cell_devices=CELL_DEVICES,
                                 cloud_shards=cloud_shards,
                                 region_devices=8)
            observed = result_bytes(result)
            if reference is None:
                reference = observed
            else:
                assert observed == reference, (
                    f"{app_key}: rows differ at shards={shards}, "
                    f"cloud_shards={cloud_shards}")

    def test_region_stats_surface_in_extras(self):
        result = run_sharded(platform_config("hivemind"),
                             scenario_variant("S1"), N_DEVICES, seed=0,
                             shards=2, cell_devices=CELL_DEVICES,
                             cloud_shards=2, region_devices=8)
        assert result.extras["cloud_regions"] == 2
        assert result.extras["cloud_shards"] == 2
        assert result.extras["warm_starts"] + result.extras[
            "cold_starts"] > 0

    def test_negative_cloud_shards_rejected(self):
        with pytest.raises(ValueError):
            run_sharded(platform_config("hivemind"),
                        scenario_variant("S1"), N_DEVICES,
                        cloud_shards=-1)


class TestHybridDeterminism:
    """Hybrid exact/mean-field runs: fixed seed -> fixed rows."""

    def test_same_seed_same_rows_any_grouping(self):
        scenario = scenario_variant("S1")
        config = platform_config("hivemind")
        a = run_sharded(config, scenario, 64, seed=0, shards=2,
                        cell_devices=16, exact_devices=16,
                        region_devices=32)
        b = run_sharded(config, scenario, 64, seed=0, shards=1,
                        cell_devices=16, exact_devices=16,
                        region_devices=32)
        assert result_bytes(a) == result_bytes(b)
        # The exact focus carries the rows; the background swarm shows
        # up in the synthetic cloud counters.
        assert a.extras["exact_devices"] == 16
        assert a.extras["meanfield_cells"] == 3
        assert a.extras["background_completions"] > 0

    def test_hybrid_auto_arms_cloud_tier(self):
        result = run_sharded(platform_config("hivemind"),
                             scenario_variant("S1"), 32, seed=0,
                             cell_devices=16, exact_devices=16,
                             region_devices=32)
        assert result.extras["cloud_shards"] == 1

    def test_hybrid_needs_positive_exact_devices(self):
        with pytest.raises(ValueError):
            run_sharded(platform_config("hivemind"),
                        scenario_variant("S1"), 32, exact_devices=0)

    def test_seed_changes_rows(self):
        scenario = scenario_variant("S1")
        config = platform_config("hivemind")
        a = run_sharded(config, scenario, N_DEVICES, seed=0,
                        shards=2, cell_devices=CELL_DEVICES)
        b = run_sharded(config, scenario, N_DEVICES, seed=1,
                        shards=2, cell_devices=CELL_DEVICES)
        assert result_bytes(a) != result_bytes(b)


class TestCellPlan:
    def test_plan_is_shard_count_free(self):
        specs = plan_cells(130, seed=5, cell_devices=64)
        assert [s.n_devices for s in specs] == [64, 64, 2]
        assert [s.device_id_base for s in specs] == [0, 64, 128]
        assert [s.seed for s in specs] == [5, 1005, 2005]

    def test_fault_routing(self):
        specs = plan_cells(128, cell_devices=64,
                           device_faults=[(70, 12.5), (3, 1.0)])
        assert specs[0].fail_devices_at == ((3, 1.0),)
        assert specs[1].fail_devices_at == ((6, 12.5),)

    def test_fault_outside_swarm_rejected(self):
        with pytest.raises(ValueError):
            plan_cells(64, device_faults=[(64, 1.0)])


class TestUnarmedPath:
    """No REPRO_SHARDS / REPRO_MEANFIELD -> the seed's exact numbers."""

    def test_unarmed_swarm_cell_matches_seed(self, monkeypatch):
        monkeypatch.delenv("REPRO_SHARDS", raising=False)
        monkeypatch.delenv("REPRO_MEANFIELD", raising=False)
        monkeypatch.delenv("REPRO_CLOUD_SHARDS", raising=False)
        monkeypatch.delenv("REPRO_HYBRID_EXACT", raising=False)
        from repro.experiments.fig17_scalability import _swarm_cell
        # Frozen seed observables (hivemind, Scenario A, 16 devices,
        # seed 0) — any drift here means the unarmed path changed.
        assert _swarm_cell("hivemind", "ScA", 16, 0) == (
            70.06315789473685, 1.299728340651617, 56.07499999999999)

    def test_flag_resolution(self, monkeypatch):
        monkeypatch.delenv("REPRO_SHARDS", raising=False)
        monkeypatch.delenv("REPRO_MEANFIELD", raising=False)
        assert flags.shard_count() == 1
        assert flags.meanfield_enabled() is False
        monkeypatch.setenv("REPRO_SHARDS", "4")
        monkeypatch.setenv("REPRO_MEANFIELD", "1")
        assert flags.shard_count() == 4
        assert flags.meanfield_enabled() is True
        # Explicit overrides always beat the environment.
        assert flags.shard_count(2) == 2
        assert flags.meanfield_enabled(False) is False
        with pytest.raises(ValueError):
            flags.shard_count(0)

    def test_cloud_flag_resolution(self, monkeypatch):
        monkeypatch.delenv("REPRO_CLOUD_SHARDS", raising=False)
        monkeypatch.delenv("REPRO_HYBRID_EXACT", raising=False)
        # Default off: monolithic cloud, every device exact.
        assert flags.cloud_shard_count() == 0
        assert flags.hybrid_exact_devices() == 0
        monkeypatch.setenv("REPRO_CLOUD_SHARDS", "4")
        monkeypatch.setenv("REPRO_HYBRID_EXACT", "256")
        assert flags.cloud_shard_count() == 4
        assert flags.hybrid_exact_devices() == 256
        assert flags.cloud_shard_count(2) == 2
        assert flags.hybrid_exact_devices(64) == 64
        with pytest.raises(ValueError):
            flags.cloud_shard_count(-1)
        with pytest.raises(ValueError):
            flags.hybrid_exact_devices(-8)
