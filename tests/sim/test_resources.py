"""Unit tests for Resource / PriorityResource / Container / Store."""

import pytest

from repro.sim import Container, Environment, PriorityResource, Resource, Store


@pytest.fixture
def env():
    return Environment()


class TestResource:
    def test_capacity_must_be_positive(self, env):
        with pytest.raises(ValueError):
            Resource(env, capacity=0)

    def test_grant_within_capacity_is_immediate(self, env):
        res = Resource(env, capacity=2)
        log = []

        def user(name):
            with res.request() as req:
                yield req
                log.append((env.now, name))
                yield env.timeout(1)

        env.process(user("a"))
        env.process(user("b"))
        env.run()
        assert log == [(0, "a"), (0, "b")]

    def test_queueing_beyond_capacity(self, env):
        res = Resource(env, capacity=1)
        log = []

        def user(name, hold):
            with res.request() as req:
                yield req
                log.append((env.now, name))
                yield env.timeout(hold)

        env.process(user("a", 5))
        env.process(user("b", 1))
        env.run()
        assert log == [(0, "a"), (5, "b")]

    def test_utilization_and_count(self, env):
        res = Resource(env, capacity=4)

        def user():
            with res.request() as req:
                yield req
                yield env.timeout(10)

        for _ in range(3):
            env.process(user())
        env.run(until=1)
        assert res.count == 3
        assert res.utilization == 0.75

    def test_release_without_grant_rejected(self, env):
        res = Resource(env)
        req = res.request()
        res.release(req)
        with pytest.raises(RuntimeError):
            res.release(req)

    def test_cancel_queued_request(self, env):
        res = Resource(env, capacity=1)
        first = res.request()
        second = res.request()
        assert not second.triggered
        second.cancel()
        res.release(first)
        env.run()
        assert not second.triggered

    def test_resize_grows_grants_waiters(self, env):
        res = Resource(env, capacity=1)
        first = res.request()
        second = res.request()
        assert first.triggered and not second.triggered
        res.resize(2)
        assert second.triggered

    def test_resize_shrink_does_not_evict(self, env):
        res = Resource(env, capacity=2)
        first = res.request()
        second = res.request()
        res.resize(1)
        assert res.count == 2
        third = res.request()
        res.release(first)
        assert not third.triggered  # still at capacity 1 with one user
        res.release(second)
        assert third.triggered


class TestPriorityResource:
    def test_lower_priority_value_served_first(self, env):
        res = PriorityResource(env, capacity=1)
        log = []

        def user(name, priority, start):
            yield env.timeout(start)
            with res.request(priority=priority) as req:
                yield req
                log.append(name)
                yield env.timeout(10)

        env.process(user("holder", 0, 0))
        env.process(user("low", 5, 1))
        env.process(user("high", 1, 2))
        env.run()
        assert log == ["holder", "high", "low"]

    def test_queued_counter(self, env):
        res = PriorityResource(env, capacity=1)
        res.request(priority=0)
        res.request(priority=1)
        res.request(priority=2)
        assert res.queued == 2


class TestContainer:
    def test_initial_level(self, env):
        tank = Container(env, capacity=10, init=4)
        assert tank.level == 4

    def test_init_bounds_checked(self, env):
        with pytest.raises(ValueError):
            Container(env, capacity=10, init=11)
        with pytest.raises(ValueError):
            Container(env, capacity=0)

    def test_get_blocks_until_put(self, env):
        tank = Container(env, capacity=10, init=0)
        log = []

        def consumer():
            yield tank.get(5)
            log.append(env.now)

        def producer():
            yield env.timeout(3)
            yield tank.put(5)

        env.process(consumer())
        env.process(producer())
        env.run()
        assert log == [3]
        assert tank.level == 0

    def test_put_blocks_at_capacity(self, env):
        tank = Container(env, capacity=10, init=10)
        log = []

        def producer():
            yield tank.put(1)
            log.append(env.now)

        def consumer():
            yield env.timeout(2)
            yield tank.get(4)

        env.process(producer())
        env.process(consumer())
        env.run()
        assert log == [2]
        assert tank.level == 7

    def test_try_get_success_and_shortfall(self, env):
        tank = Container(env, capacity=10, init=3)
        assert tank.try_get(2)
        assert tank.level == 1
        assert not tank.try_get(2)
        assert tank.level == 1

    def test_negative_amount_rejected(self, env):
        tank = Container(env, capacity=10, init=5)
        with pytest.raises(ValueError):
            tank.get(-1)
        with pytest.raises(ValueError):
            tank.put(-1)


class TestStore:
    def test_put_then_get_fifo(self, env):
        store = Store(env)
        results = []

        def producer():
            for item in ("x", "y", "z"):
                yield store.put(item)

        def consumer():
            for _ in range(3):
                item = yield store.get()
                results.append(item)

        env.process(producer())
        env.process(consumer())
        env.run()
        assert results == ["x", "y", "z"]

    def test_get_blocks_until_item(self, env):
        store = Store(env)
        log = []

        def consumer():
            item = yield store.get()
            log.append((env.now, item))

        def producer():
            yield env.timeout(4)
            yield store.put("late")

        env.process(consumer())
        env.process(producer())
        env.run()
        assert log == [(4, "late")]

    def test_capacity_blocks_put(self, env):
        store = Store(env, capacity=1)
        log = []

        def producer():
            yield store.put(1)
            yield store.put(2)
            log.append(env.now)

        def consumer():
            yield env.timeout(5)
            yield store.get()

        env.process(producer())
        env.process(consumer())
        env.run()
        assert log == [5]

    def test_get_where_selects_matching(self, env):
        store = Store(env)
        results = []

        def consumer():
            item = yield store.get_where(lambda i: i % 2 == 0)
            results.append(item)

        def producer():
            yield store.put(1)
            yield store.put(3)
            yield store.put(4)

        env.process(producer())
        env.process(consumer())
        env.run()
        assert results == [4]
        assert list(store.items) == [1, 3]

    def test_predicate_getter_does_not_block_plain_getter(self, env):
        store = Store(env)
        results = []

        def pred_consumer():
            item = yield store.get_where(lambda i: i == "never")
            results.append(("pred", item))

        def plain_consumer():
            item = yield store.get()
            results.append(("plain", item))

        env.process(pred_consumer())
        env.process(plain_consumer())

        def producer():
            yield env.timeout(1)
            yield store.put("hello")

        env.process(producer())
        env.run()
        assert results == [("plain", "hello")]

    def test_len(self, env):
        store = Store(env)
        store.put("a")
        store.put("b")
        assert len(store) == 2


class TestStoreNoneItems:
    def test_none_items_are_delivered_not_dropped(self):
        env = Environment()
        store = Store(env)
        received = []

        def consumer():
            item = yield store.get()
            received.append(item)

        env.process(consumer())

        def producer():
            yield store.put(None)

        env.process(producer())
        env.run()
        assert received == [None]
        assert len(store.items) == 0
