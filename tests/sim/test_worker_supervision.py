"""Worker supervision: watchdogs, deterministic replay, incident records.

The contract under test (the robustness tentpole): a SIGKILLed or hung
shard/cloud worker is detected, replaced (respawn with journal replay, or
in-process after the retry budget), and the merged rows come out
**byte-identical** to an undisturbed run — worker chaos may only change
wall-clock and incident accounting. Every test that touches real worker
processes is guarded by a hard SIGALRM so a supervision bug can never
hang the suite.
"""

import signal

import pytest

from repro.faults import WorkerFaultPlan
from repro.platforms import platform_config
from repro.sim import supervisor
from repro.sim.shard import run_sharded
from repro.sim.supervisor import (ProtocolError, SupervisedConnection,
                                  can_spawn_workers, resolve_worker_deadline,
                                  resolve_worker_retries)

from .test_shard_determinism import result_bytes, scenario_variant

N_DEVICES = 16
CELL_DEVICES = 4
WINDOW_S = 10.0  # 120 s mission -> ~13 pipe ops per worker
#: Chaos runs shrink the hang deadline so detection costs ~1 s, not 60.
DEADLINE_S = 1.0

needs_processes = pytest.mark.skipif(
    not can_spawn_workers(),
    reason="environment cannot spawn worker processes")


@pytest.fixture(autouse=True)
def hang_guard():
    """Hard 120 s wall-clock cap: a supervision regression must fail the
    test, never wedge the run (SIGALRM is process-wide; these tests do
    not run in parallel within one process)."""
    if not hasattr(signal, "SIGALRM"):
        yield
        return

    def on_alarm(signum, frame):
        raise TimeoutError("supervision test exceeded 120s wall clock")

    previous = signal.signal(signal.SIGALRM, on_alarm)
    signal.alarm(120)
    try:
        yield
    finally:
        signal.alarm(0)
        signal.signal(signal.SIGALRM, previous)


def _run(worker_faults, **overrides):
    options = dict(seed=0, shards=2, cell_devices=CELL_DEVICES,
                   window_s=WINDOW_S, worker_deadline_s=DEADLINE_S)
    options.update(overrides)
    return run_sharded(platform_config("hivemind"), scenario_variant("S1"),
                       N_DEVICES, worker_faults=worker_faults, **options)


@pytest.fixture(scope="module")
def undisturbed_bytes():
    """One fault-free twin shared by every recovery test (unarmed plan
    passed explicitly, so an inherited REPRO_CHAOS_WORKERS cannot arm
    it)."""
    return result_bytes(_run(WorkerFaultPlan()))


@needs_processes
class TestKillRecovery:
    def test_sigkill_mid_advance_is_byte_identical(self, undisturbed_bytes):
        mark = supervisor.incident_count()
        result = _run(WorkerFaultPlan().kill("shard", 0, 2))
        assert result_bytes(result) == undisturbed_bytes
        incidents = supervisor.incidents_since(mark)
        assert len(incidents) == 1
        assert incidents[0].failure == "death"
        assert incidents[0].worker == "shard0"
        assert incidents[0].recovery in ("respawned", "in_process")

    def test_incidents_surface_in_extras(self):
        result = _run(WorkerFaultPlan().kill("shard", 1, 3))
        assert result.extras["worker_recoveries"] == 1
        [incident] = result.extras["worker_incidents"]
        assert incident["worker"] == "shard1"
        assert incident["failure"] == "death"

    def test_cloud_worker_kill_is_byte_identical(self):
        shape = dict(cloud_shards=2, region_devices=8)
        baseline = _run(WorkerFaultPlan(), **shape)
        chaotic = _run(WorkerFaultPlan().kill("cloud", 0, 2), **shape)
        assert result_bytes(chaotic) == result_bytes(baseline)
        assert chaotic.extras["worker_recoveries"] == 1
        assert chaotic.extras["worker_incidents"][0]["worker"] == "cloud0"


@needs_processes
class TestHangRecovery:
    def test_hung_worker_is_detected_and_byte_identical(
            self, undisturbed_bytes):
        mark = supervisor.incident_count()
        result = _run(WorkerFaultPlan().hang("shard", 1, 3))
        assert result_bytes(result) == undisturbed_bytes
        [incident] = supervisor.incidents_since(mark)
        assert incident.failure == "hang"
        assert incident.worker == "shard1"

    def test_slow_reply_within_deadline_is_not_an_incident(
            self, undisturbed_bytes):
        result = _run(WorkerFaultPlan().slow("shard", 0, 2, delay_s=0.2),
                      worker_deadline_s=5.0)
        assert result_bytes(result) == undisturbed_bytes
        assert "worker_incidents" not in result.extras


@needs_processes
class TestDegradationLadder:
    def test_zero_retries_degrades_to_in_process(self, undisturbed_bytes):
        result = _run(WorkerFaultPlan().kill("shard", 0, 2),
                      worker_retries=0)
        assert result_bytes(result) == undisturbed_bytes
        [incident] = result.extras["worker_incidents"]
        assert incident["recovery"] == "in_process"
        assert incident["retries"] == 0


class TestUnarmedPath:
    def test_unarmed_extras_carry_no_supervision_keys(self):
        result = _run(WorkerFaultPlan())
        assert "worker_incidents" not in result.extras
        assert "worker_recoveries" not in result.extras


class TestResolvers:
    @pytest.fixture(autouse=True)
    def clean_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_WORKER_DEADLINE", raising=False)
        monkeypatch.delenv("REPRO_WORKER_RETRIES", raising=False)

    def test_deadline_defaults_to_floor_over_window(self):
        assert resolve_worker_deadline(10.0) == 60.0
        assert resolve_worker_deadline(300.0) == 300.0

    def test_deadline_override_wins(self):
        assert resolve_worker_deadline(10.0, override=2.5) == 2.5

    def test_deadline_env_var(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKER_DEADLINE", "7.5")
        assert resolve_worker_deadline(300.0) == 7.5

    def test_bad_deadline_env_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKER_DEADLINE", "-1")
        with pytest.raises(ValueError):
            resolve_worker_deadline(10.0)

    def test_retries_env_var(self, monkeypatch):
        assert resolve_worker_retries() == 2
        assert resolve_worker_retries(override=5) == 5
        monkeypatch.setenv("REPRO_WORKER_RETRIES", "1")
        assert resolve_worker_retries() == 1


class _FakeProcess:
    """Just enough Process surface for SupervisedConnection teardown."""

    exitcode = None

    def __init__(self):
        self.alive = True

    def is_alive(self):
        return self.alive

    def join(self, timeout=None):
        pass

    def terminate(self):
        self.alive = False

    def kill(self):
        self.alive = False


class _FakeConn:
    def __init__(self, replies):
        self.replies = list(replies)
        self.sent = []

    def send(self, message):
        self.sent.append(message)

    def poll(self, timeout=None):
        return bool(self.replies)

    def recv(self):
        return self.replies.pop(0)

    def close(self):
        pass


def _supervised(replies):
    return SupervisedConnection(
        "fake0",
        spawn=lambda faults: (_FakeConn(replies), _FakeProcess()),
        replies={"advance": "calls"},
        fallback=lambda: None,
        deadline_s=1.0, retries=0)


class TestProtocolErrors:
    """The pipe protocol raises real exceptions, not ``assert``s — a
    wrong-kind reply must fail loudly even under ``python -O``."""

    def test_wrong_reply_kind_raises(self):
        sup = _supervised([("result", None)])
        sup.send("advance", 60.0)
        with pytest.raises(ProtocolError, match="expected 'calls'"):
            sup.collect()

    def test_malformed_reply_raises(self):
        sup = _supervised(["not-a-tuple"])
        sup.send("advance", 60.0)
        with pytest.raises(ProtocolError, match="malformed"):
            sup.collect()

    def test_unknown_command_rejected(self):
        sup = _supervised([])
        with pytest.raises(ProtocolError, match="unknown command"):
            sup.send("explode", None)

    def test_send_while_outstanding_rejected(self):
        sup = _supervised([("calls", ([], {}))])
        sup.send("advance", 60.0)
        with pytest.raises(ProtocolError, match="outstanding"):
            sup.send("advance", 120.0)

    def test_collect_without_send_rejected(self):
        sup = _supervised([])
        with pytest.raises(ProtocolError, match="no outstanding"):
            sup.collect()


class TestBackendFaultParity:
    """Satellite: CouchDB/Kafka outage windows must arm *every* region,
    so rows stay identical at any (shards, cloud_shards) grouping."""

    def _plan(self):
        from repro.faults import FaultPlan
        return (FaultPlan(name="store-outage", seed=0)
                .couchdb_outage(10.0, 30.0)
                .kafka_outage(20.0, 30.0))

    def test_outage_rows_identical_across_groupings(self):
        shape = dict(region_devices=8, fault_plan=self._plan())
        one = _run(WorkerFaultPlan(), cloud_shards=1, **shape)
        two = _run(WorkerFaultPlan(), cloud_shards=2, **shape)
        assert result_bytes(one) == result_bytes(two)
        # Both regions armed: 2 regions x 2 outage kinds.
        assert one.extras["injected_backend_faults"] == 4
        assert two.extras["injected_backend_faults"] == 4

    def test_outages_actually_perturb_the_run(self):
        shape = dict(region_devices=8, cloud_shards=2)
        quiet = _run(WorkerFaultPlan(), **shape)
        stormy = _run(WorkerFaultPlan(), fault_plan=self._plan(), **shape)
        assert result_bytes(quiet) != result_bytes(stormy)
