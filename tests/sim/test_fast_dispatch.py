"""Monomorphic kernel dispatch: exact parity with the legacy loop.

``Environment(fast_dispatch=True)`` inlines pop + dispatch + recycling
into one loop. The contract is byte-identical behavior: same dispatch
order, same ``run()`` return values, same pooling, same figure rows at
fixed seeds. ``REPRO_FAST_DISPATCH=0`` (or the constructor override)
must restore the legacy loop.
"""

import hashlib
import os

import pytest

from repro.sim import Environment
from repro.sim.kernel import NORMAL, URGENT

pytestmark = pytest.mark.quick


def _mixed_workload(env, trace):
    """Heap events, zero-delay FIFOs, and ties on one timeline."""

    def worker(tag, delay):
        yield env.timeout(delay)
        trace.append((env.now, f"{tag}-a"))
        yield env.timeout(0)  # zero-delay FIFO lane
        trace.append((env.now, f"{tag}-b"))

    def urgent_ping():
        for i in range(3):
            event = env.event()
            event.succeed(priority=URGENT)
            yield event
            trace.append((env.now, f"urgent{i}"))
            yield env.timeout(0.5)

    def late_value():
        yield env.timeout(4.0)
        return "done"

    for tag, delay in (("x", 1.0), ("y", 1.0), ("z", 2.5)):
        env.process(worker(tag, delay))
    env.process(urgent_ping())
    return env.process(late_value())


@pytest.mark.parametrize("fast", (False, True))
def test_flag_selects_loop(fast):
    env = Environment(fast_dispatch=fast)
    assert env._fast_dispatch is fast


def test_env_var_kill_switch():
    old = os.environ.get("REPRO_FAST_DISPATCH")
    os.environ["REPRO_FAST_DISPATCH"] = "0"
    try:
        assert Environment()._fast_dispatch is False
    finally:
        if old is None:
            os.environ.pop("REPRO_FAST_DISPATCH", None)
        else:
            os.environ["REPRO_FAST_DISPATCH"] = old


def test_dispatch_order_and_return_value_parity():
    traces = {}
    values = {}
    for fast in (False, True):
        env = Environment(fast_dispatch=fast)
        trace = []
        proc = _mixed_workload(env, trace)
        values[fast] = env.run(proc)
        traces[fast] = trace
    assert traces[True] == traces[False]
    assert values[True] == values[False] == "done"
    assert traces[True]  # the workload actually dispatched something


def test_run_until_time_parity():
    for fast in (False, True):
        env = Environment(fast_dispatch=fast)
        trace = []
        _mixed_workload(env, trace)
        env.run(until=1.0)
        assert env.now == 1.0
        # Events strictly after the horizon stay queued.
        assert all(t <= 1.0 for t, _ in trace)


def test_timeout_pool_recycles_in_fast_loop():
    # Regression: the fast loop must not retain a reference to the popped
    # heap entry, or getrefcount-gated recycling never fires.
    env = Environment(fast_dispatch=True)

    def ticker():
        for _ in range(50):
            yield env.timeout(0.5)

    env.run(env.process(ticker()))
    assert env._timeout_pool


def test_normal_priority_fifo_parity():
    for fast in (False, True):
        env = Environment(fast_dispatch=fast)
        order = []

        def chain(tag):
            event = env.event()
            event.succeed(priority=NORMAL)
            yield event
            order.append(tag)

        for tag in "abc":
            env.process(chain(tag))
        env.run()
        assert order == list("abc")


def test_failed_event_raises_in_fast_loop():
    env = Environment(fast_dispatch=True)

    def boom():
        yield env.timeout(1.0)
        raise RuntimeError("exploded")

    env.process(boom())
    with pytest.raises(RuntimeError, match="exploded"):
        env.run()


class TestFigureRowParity:
    """Fixed-seed figure rows must hash identically under every
    dispatch/RNG fallback combination."""

    FALLBACKS = (
        {},
        {"REPRO_FAST_DISPATCH": "0"},
        {"REPRO_BATCHED_RNG": "0"},
        {"REPRO_FAST_DISPATCH": "0", "REPRO_BATCHED_RNG": "0"},
    )

    def _row_digest(self, overrides):
        from repro.apps import SCENARIO_A
        from repro.platforms import platform_config
        from repro.platforms.scenario_runner import ScenarioRunner
        saved = {k: os.environ.get(k) for k in overrides}
        try:
            os.environ.update(overrides)
            result = ScenarioRunner(
                platform_config("hivemind"), SCENARIO_A, seed=2,
                n_devices=16).run()
        finally:
            for key, value in saved.items():
                if value is None:
                    os.environ.pop(key, None)
                else:
                    os.environ[key] = value
        payload = repr((result.extras["makespan_s"],
                        tuple(result.task_latencies.values))).encode()
        return hashlib.md5(payload).hexdigest()

    def test_all_fallback_combinations_byte_identical(self):
        digests = {self._row_digest(dict(overrides))
                   for overrides in self.FALLBACKS}
        assert len(digests) == 1


class TestDeviceAnalyticParity:
    def test_contended_core_pool_matches_legacy_resource(self):
        from repro.edge.device import EdgeDevice

        def build(analytic):
            env = Environment()
            device = EdgeDevice(
                env, "d0", cpu_cores=2, battery_wh=50.0,
                motion_power_w=10.0, compute_power_w=4.0,
                compute_idle_w=1.0, radio_tx_w=2.0, radio_rx_w=1.5,
                radio_idle_w=0.5, cloud_to_edge_slowdown=4.0,
                analytic=analytic)
            device.start_mission()
            finishes = []

            def submit(service):
                yield env.process(device.execute(service))
                finishes.append(env.now)

            # 6 tasks on 2 cores: contention, queueing, exact floats.
            for service in (0.3, 0.2, 0.7, 0.1, 0.4, 0.05):
                env.process(submit(service))
            env.run()
            return finishes, device.energy.consumed_wh

        analytic = build(True)
        legacy = build(False)
        assert analytic == legacy
