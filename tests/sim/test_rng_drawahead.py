"""Draw-ahead RNG buffering: exact scalar-vs-batched parity.

The BufferedStream contract is that a consumer observing its scalar draw
methods cannot tell it apart from the raw generator — bit for bit, for
any interleaving of draws, including mid-buffer lane switches and the
escape hatches. These tests pin the three numpy bit-stream properties
the design leans on, then brute-force the parity across seeds and draw
patterns.
"""

import os

import numpy as np
import pytest

from repro.sim.rng import BufferedStream, RandomStreams

pytestmark = pytest.mark.quick

SEEDS = (0, 1, 2, 3, 4)


def _raw(seed, name="hot"):
    return RandomStreams(seed).stream(name)


def _buffered(seed, name="hot", block=64):
    return RandomStreams(seed).buffered(name, block=block)


class TestNumpyBitstreamProperties:
    """The installed numpy must keep block == scalar draw equivalence."""

    @pytest.mark.parametrize("method,args", [
        ("random", ()),
        ("standard_normal", ()),
        ("geometric", (0.3,)),
        ("pareto", (2.5,)),
    ])
    def test_block_equals_scalar_sequence(self, method, args):
        for seed in SEEDS:
            block = getattr(_raw(seed), method)(*args, size=200)
            scalar_gen = _raw(seed)
            scalars = [getattr(scalar_gen, method)(*args)
                       for _ in range(200)]
            assert block.tolist() == scalars

    def test_normal_family_identities(self):
        # math.exp (not np.exp, which differs by an ulp on some scalars)
        # matches the C exp inside Generator.lognormal — BufferedStream
        # relies on exactly this.
        import math
        for seed in SEEDS:
            a, b, c = _raw(seed), _raw(seed), _raw(seed)
            for _ in range(100):
                z = a.standard_normal()
                assert b.normal(3.5, 0.7) == 3.5 + 0.7 * z
                assert c.lognormal(0.25, 0.16) == \
                    math.exp(0.25 + 0.16 * z)

    def test_uniform_identity(self):
        for seed in SEEDS:
            a, b = _raw(seed), _raw(seed)
            for _ in range(100):
                assert b.uniform(2.0, 9.0) == 2.0 + 7.0 * a.random()


def _drain(rng, pattern):
    """Draw one named pattern from a generator-like object."""
    if pattern == "uniform":
        return [rng.random() for _ in range(300)]
    if pattern == "uniform-args":
        return [rng.uniform(0.1, 0.9) for _ in range(300)]
    if pattern == "lognormal":
        return [rng.lognormal(0.0, 0.18) for _ in range(300)]
    if pattern == "normal-mixed-params":
        out = []
        for i in range(150):
            out.append(rng.normal(float(i), 0.5))
            out.append(rng.standard_normal())
        return out
    if pattern == "geometric":
        return [rng.geometric(0.2) for _ in range(300)]
    if pattern == "pareto":
        return [rng.pareto(3.0) for _ in range(300)]
    if pattern == "pingpong":
        # Alternate lanes faster than MAX_SWITCHES tolerates: the wrapper
        # must degrade to passthrough without perturbing a single draw.
        out = []
        for _ in range(60):
            out.append(rng.lognormal(0.0, 0.16))
            out.append(rng.random())
        return out
    if pattern == "escape-hatch":
        out = [rng.lognormal(0.0, 0.16) for _ in range(10)]
        out.append(int(rng.integers(0, 1 << 30)))  # __getattr__ path
        out.extend(rng.lognormal(0.0, 0.16) for _ in range(10))
        return out
    raise AssertionError(pattern)


PATTERNS = ("uniform", "uniform-args", "lognormal", "normal-mixed-params",
            "geometric", "pareto", "pingpong", "escape-hatch")


class TestScalarBatchedParity:
    @pytest.mark.parametrize("pattern", PATTERNS)
    def test_exact_sequence_equality(self, pattern):
        for seed in SEEDS:
            expected = _drain(_raw(seed), pattern)
            got = _drain(_buffered(seed), pattern)
            assert got == expected, f"seed {seed} pattern {pattern}"

    @pytest.mark.parametrize("block", (1, 2, 7, 512))
    def test_parity_is_block_size_independent(self, block):
        for seed in SEEDS[:2]:
            expected = _drain(_raw(seed), "lognormal")
            got = _drain(_buffered(seed, block=block), "lognormal")
            assert got == expected

    def test_generator_property_syncs_mid_buffer(self):
        for seed in SEEDS:
            raw = _raw(seed)
            expected = [raw.random() for _ in range(5)]
            expected.append(raw.standard_normal())  # direct generator use
            expected.extend(raw.random() for _ in range(5))

            buf = _buffered(seed)
            got = [buf.random() for _ in range(5)]
            got.append(buf.generator.standard_normal())
            got.extend(buf.random() for _ in range(5))
            assert got == expected

    def test_pingpong_degrades_but_stays_exact(self):
        buf = _buffered(7)
        _drain(buf, "pingpong")
        assert buf._scalar  # degraded after MAX_SWITCHES lane flips
        # ... and keeps matching the raw sequence afterwards.
        raw = _raw(7)
        _drain(raw, "pingpong")
        assert [buf.random() for _ in range(10)] == \
            [raw.random() for _ in range(10)]


class TestFactoryWiring:
    def test_buffered_replaces_cache_entry(self):
        streams = RandomStreams(3)
        wrapper = streams.buffered("a")
        assert isinstance(wrapper, BufferedStream)
        assert streams.stream("a") is wrapper
        assert streams.buffered("a") is wrapper

    def test_kill_switch_returns_raw_generator(self):
        streams = RandomStreams(3)
        assert isinstance(streams.buffered("a", batched=False),
                          np.random.Generator)
        old = os.environ.get("REPRO_BATCHED_RNG")
        os.environ["REPRO_BATCHED_RNG"] = "0"
        try:
            assert isinstance(RandomStreams(3).buffered("a"),
                              np.random.Generator)
        finally:
            if old is None:
                os.environ.pop("REPRO_BATCHED_RNG", None)
            else:
                os.environ["REPRO_BATCHED_RNG"] = old

    def test_fork_children_unaffected_by_parent_buffering(self):
        parent = RandomStreams(5)
        buf = parent.buffered("hot")
        [buf.random() for _ in range(17)]  # mid-buffer
        child = parent.fork("worker")
        fresh_child = RandomStreams(5).fork("worker")
        assert [child.stream("hot").random() for _ in range(20)] == \
            [fresh_child.stream("hot").random() for _ in range(20)]


class TestFullRunParity:
    def _run(self, fault_rate):
        from repro.apps import app
        from repro.platforms import SingleTierRunner, platform_config
        result = SingleTierRunner(
            platform_config("centralized_faas"), app("S4"), seed=11,
            duration_s=30.0, fault_rate=fault_rate).run()
        return tuple(result.task_latencies.values)

    @pytest.mark.parametrize("fault_rate", (0.0, 0.2))
    def test_run_identical_with_and_without_batching(self, fault_rate):
        # fault_rate > 0 makes the invoker streams interleave uniform
        # draws between service lognormals — the lane-switch machinery
        # (and its degradation) must not move a single task latency.
        old = os.environ.get("REPRO_BATCHED_RNG")
        try:
            os.environ["REPRO_BATCHED_RNG"] = "1"
            batched = self._run(fault_rate)
            os.environ["REPRO_BATCHED_RNG"] = "0"
            scalar = self._run(fault_rate)
        finally:
            if old is None:
                os.environ.pop("REPRO_BATCHED_RNG", None)
            else:
                os.environ["REPRO_BATCHED_RNG"] = old
        assert batched == scalar
