"""FailureDetector edge cases: simultaneous failures, exhausted heirs,
late joiners."""

import pytest

from repro.config import DEFAULT
from repro.core import FailureDetector
from repro.edge import build_drone_swarm
from repro.sim import Environment, RandomStreams


@pytest.fixture
def env():
    return Environment()


def make_swarm(env, seed=1):
    swarm = build_drone_swarm(env, DEFAULT, RandomStreams(seed))
    swarm.assign_regions(110, 110)
    swarm.start_heartbeats()
    return swarm


def total_area(swarm):
    return sum(r.area for regions in swarm.regions.values()
               for r in regions)


class TestSimultaneousFailures:
    def test_multi_device_failure_all_detected(self, env):
        swarm = make_swarm(env)
        before = total_area(swarm)
        for device_id in ("drone0002", "drone0007", "drone0011"):
            swarm.fail_device_at(device_id, at_time=10.0)
        detector = FailureDetector(env, swarm)
        env.run(until=25.0)
        assert {"drone0002", "drone0007", "drone0011"} <= set(
            detector.failed)
        assert detector.alive_count == len(swarm.devices) - 3
        # Their regions were inherited, not dropped: area is conserved
        # and no dead device holds a region.
        assert total_area(swarm) == pytest.approx(before)
        for dead in detector.failed:
            assert dead not in swarm.regions

    def test_survivors_not_flagged(self, env):
        swarm = make_swarm(env)
        swarm.fail_device_at("drone0000", at_time=5.0)
        swarm.fail_device_at("drone0001", at_time=5.0)
        detector = FailureDetector(env, swarm)
        env.run(until=20.0)
        assert set(detector.failed) == {"drone0000", "drone0001"}


class TestHeirBatteryExhaustion:
    def test_region_inherited_when_all_heirs_below_floor(self, env):
        swarm = make_swarm(env)
        before = total_area(swarm)
        # Drain every *other* device below the heir-battery floor.
        for device_id, device in swarm.devices.items():
            if device_id == "drone0003":
                continue
            account = device.energy
            drain_wh = account.remaining_wh * (
                1.0 - 0.5 * FailureDetector.MIN_HEIR_BATTERY)
            account.draw_energy("idle", drain_wh * 3600.0)
            assert account.remaining_fraction < \
                FailureDetector.MIN_HEIR_BATTERY
        detector = FailureDetector(env, swarm)
        swarm.fail_device_at("drone0003", at_time=5.0)
        env.run(until=15.0)
        assert "drone0003" in detector.failed
        # Relaxed eligibility kicked in: the dead device's area went to
        # tired-but-alive heirs instead of silently vanishing.
        assert "drone0003" not in swarm.regions
        assert total_area(swarm) == pytest.approx(before)

    def test_battery_floor_still_respected_when_heirs_exist(self, env):
        swarm = make_swarm(env)
        # One healthy heir, everyone else drained: the healthy heir (and
        # only it) should absorb extra area.
        ids = sorted(swarm.devices)
        healthy = ids[1]
        for device_id in ids[2:]:
            account = swarm.devices[device_id].energy
            account.draw_energy(
                "idle", account.remaining_wh * 0.97 * 3600.0)
        area_before = {d: sum(r.area for r in regions)
                       for d, regions in swarm.regions.items()}
        detector = FailureDetector(env, swarm)
        swarm.fail_device_at(ids[0], at_time=5.0)
        env.run(until=15.0)
        assert ids[0] in detector.failed
        drained_grew = [
            d for d in ids[2:]
            if sum(r.area for r in swarm.regions.get(d, ())) >
            area_before[d] + 1e-9]
        assert drained_grew == []


class TestLateJoiners:
    def test_detector_built_mid_mission_grants_grace(self, env):
        swarm = build_drone_swarm(env, DEFAULT, RandomStreams(1))
        swarm.assign_regions(110, 110)
        holder = {}

        def boot():
            # Heartbeats and detector both start at t=50: with last_beat
            # seeded at subscribe time the first check sees fresh beats;
            # epoch-zero seeding would declare the whole swarm dead.
            yield env.timeout(50.0)
            swarm.start_heartbeats()
            holder["detector"] = FailureDetector(env, swarm)

        env.process(boot())
        env.run(until=60.0)
        assert holder["detector"].failed == []

    def test_watch_registers_new_device_with_grace(self, env):
        swarm = make_swarm(env)
        detector = FailureDetector(env, swarm)
        env.run(until=10.0)
        # A device joins late and never heartbeats: it gets the full
        # timeout window from watch() before being declared dead.
        from repro.edge import Drone
        newcomer = Drone(env, "late0001", DEFAULT.drone)
        swarm.devices["late0001"] = newcomer
        detector.watch("late0001")
        assert detector.last_beat["late0001"] == 10.0
        env.run(until=12.0)
        assert "late0001" not in detector.failed
        env.run(until=20.0)
        assert "late0001" in detector.failed
        # Idempotent: re-watching must not reset an existing clock.
        before = detector.last_beat["drone0000"]
        detector.watch("drone0000")
        assert detector.last_beat["drone0000"] == before
