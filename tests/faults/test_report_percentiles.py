"""Recovery-latency percentiles: empty logs report nan, not 0.0.

A chaos run whose plan never triggers a recovery has no recovery
latency; reporting 0.0 there reads as "instant recovery" in the tables,
which is the opposite of "no data".
"""

import math

import numpy as np
import pytest

from repro.faults.report import ResilienceReport, _percentile

pytestmark = pytest.mark.quick


class TestEmptyRecoveryPercentiles:
    def test_percentile_of_nothing_is_nan(self):
        assert math.isnan(_percentile([], 50))
        assert math.isnan(_percentile([], 99))

    def test_report_properties_propagate_nan(self):
        report = ResilienceReport(scenario="S1", plan="none",
                                  submitted=10, completed=10, lost=0,
                                  violations=0)
        assert math.isnan(report.recovery_p50_s)
        assert math.isnan(report.recovery_p99_s)

    def test_populated_log_matches_numpy_linear(self):
        latencies = [0.5, 1.25, 2.0, 9.0]
        report = ResilienceReport(scenario="S1", plan="kill", submitted=4,
                                  completed=4, lost=0, violations=0,
                                  recovery_latencies_s=list(latencies))
        assert report.recovery_p50_s == float(
            np.percentile(latencies, 50, method="linear"))
        assert report.recovery_p99_s == float(
            np.percentile(latencies, 99, method="linear"))
