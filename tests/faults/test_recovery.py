"""Cloud-side recovery: crash-requeue, cancellation, outage windows,
and the RPC retry layer."""

import pytest

from repro.cluster import Cluster
from repro.config import DEFAULT, ClusterConstants
from repro.faults import InvariantChecker, RecoveryLog
from repro.network import (
    EdgeCloudRpc,
    NetworkPartitioned,
    ReliableEdgeRpc,
    RetryPolicy,
    RpcTimeout,
    build_fabric,
)
from repro.serverless import (
    ActivationCancelled,
    FunctionSpec,
    InvocationRequest,
    OpenWhiskPlatform,
)
from repro.sim import Environment, RandomStreams


@pytest.fixture
def env():
    return Environment()


def make_platform(env, servers=3, **kwargs):
    cluster = Cluster(env, ClusterConstants(servers=servers,
                                            cores_per_server=8))
    return OpenWhiskPlatform(env, cluster, RandomStreams(11), **kwargs)


def _start_invocation(env, platform, service_s=3.0):
    spec = FunctionSpec("victim")
    request = InvocationRequest(spec, service_s=service_s, input_mb=1.0)
    process = env.process(platform.invoke(request))
    return request, process


def _executing_server(platform):
    """The server id of the (single) in-flight activation, once placed."""
    for invoker in platform.invokers:
        if invoker._active:
            return invoker.server.server_id
    return None


class TestInvokerCrashMidActivation:
    def test_requeued_activation_completes(self, env):
        platform = make_platform(env)
        checker = InvariantChecker(env)
        platform.add_completion_listener(checker.invocation_finished)
        request, process = _start_invocation(env, platform, service_s=3.0)
        # Let the activation get placed and start executing, then kill
        # its invoker daemon.
        env.run(until=2.0)
        victim_server = _executing_server(platform)
        assert victim_server is not None
        requeued = platform.crash_invoker(victim_server)
        assert requeued == 1
        invocation = env.run(process)
        assert invocation.t_complete > 0
        assert invocation.requeues == 1
        assert platform.requeues == 1
        # The retry ran on a surviving invoker, not the dead one.
        assert invocation.server_id != victim_server
        # Exactly one completion record despite the requeue.
        assert len(platform.invocations) == 1
        assert checker.ok

    def test_crash_between_delivery_and_start_is_requeued(self, env):
        platform = make_platform(env)
        request, process = _start_invocation(env, platform, service_s=1.0)
        # Crash at the first instant an invoker holds the message: the
        # handler may not have run yet (same-instant crash), which must
        # requeue rather than hang or double-run.
        def crasher():
            while _executing_server(platform) is None:
                yield env.timeout(0.01)
            platform.crash_invoker(_executing_server(platform))
        env.process(crasher())
        invocation = env.run(process)
        assert invocation.requeues == 1
        assert len(platform.invocations) == 1

    def test_restore_reenables_invoker(self, env):
        platform = make_platform(env, servers=2)
        server_id = platform.invokers[0].server.server_id
        platform.crash_invoker(server_id)
        assert not platform.invokers[0].alive
        platform.restore_invoker(server_id)
        assert platform.invokers[0].alive

    def test_recovery_log_times_the_requeue(self, env):
        platform = make_platform(env)
        log = RecoveryLog(env)
        platform.recovery_log = log
        request, process = _start_invocation(env, platform, service_s=3.0)
        env.run(until=2.0)
        platform.crash_invoker(_executing_server(platform))
        env.run(process)
        assert log.count("requeue") == 1
        (latency,) = log.latencies("requeue")
        assert latency > 0


class TestServerCrash:
    def test_crash_kills_server_and_requeues(self, env):
        platform = make_platform(env)
        request, process = _start_invocation(env, platform, service_s=3.0)
        env.run(until=2.0)
        victim = _executing_server(platform)
        platform.crash_server(victim)
        assert not platform.invoker_of(victim).server.alive
        invocation = env.run(process)
        assert invocation.server_id != victim
        assert invocation.requeues == 1

    def test_scheduler_avoids_dead_servers(self, env):
        platform = make_platform(env, servers=3)
        dead = platform.invokers[0].server.server_id
        platform.crash_server(dead)
        spec = FunctionSpec("f")
        for _ in range(6):
            placement = platform.scheduler.place(
                InvocationRequest(spec, service_s=0.1))
            assert placement.invoker.server.server_id != dead

    def test_restore_rejoins_the_pool(self, env):
        platform = make_platform(env, servers=2)
        dead = platform.invokers[0].server.server_id
        platform.crash_server(dead)
        platform.restore_server(dead)
        assert platform.invoker_of(dead).server.alive
        assert platform.invoker_of(dead).alive


class TestCancellation:
    def test_cancel_mid_execution_fails_done(self, env):
        platform = make_platform(env)
        request, process = _start_invocation(env, platform, service_s=3.0)
        env.run(until=2.0)
        assert platform.cancel_invocation(request.inflight)
        with pytest.raises(ActivationCancelled):
            env.run(process)
        assert platform.cancellations == 1
        # A reaped activation leaves no completion record.
        assert len(platform.invocations) == 0

    def test_cancel_unplaced_invocation_is_noop(self, env):
        from repro.serverless import Invocation
        platform = make_platform(env)
        spec = FunctionSpec("f")
        request = InvocationRequest(spec, service_s=0.1)
        assert not platform.cancel_invocation(
            Invocation(request=request, t_arrive=0.0))

    def test_cancel_frees_the_core_and_memory(self, env):
        platform = make_platform(env, servers=1)
        request, process = _start_invocation(env, platform, service_s=5.0)
        env.run(until=2.0)
        server = platform.invokers[0].server
        assert server.utilization > 0
        platform.cancel_invocation(request.inflight)
        with pytest.raises(ActivationCancelled):
            env.run(process)
        env.run()  # drain the interrupt's cleanup
        assert server.utilization == 0
        assert server.free_memory_mb == server.memory.capacity


class TestOutageWindows:
    def test_couchdb_outage_stalls_service(self, env):
        platform = make_platform(env)
        platform.couchdb.set_outage(10.0)

        def op():
            took = yield from platform.couchdb.access(0.5)
            return took

        env.run(env.process(op()))
        assert env.now >= 10.0

    def test_kafka_outage_stalls_publish(self, env):
        platform = make_platform(env)
        platform.kafka.set_outage(8.0)

        def op():
            yield from platform.kafka.publish("nowhere", object())

        env.run(env.process(op()))
        assert env.now >= 8.0

    def test_outage_windows_merge(self, env):
        platform = make_platform(env)
        platform.couchdb.set_outage(10.0)
        platform.couchdb.set_outage(6.0)  # shorter request cannot shrink
        assert platform.couchdb._outage_until == 10.0


class TestRpcRetry:
    def _rpc(self, env, policy=None, log=None):
        fabric = build_fabric(env, DEFAULT, RandomStreams(5))
        inner = EdgeCloudRpc(env, fabric.wireless)
        return fabric.wireless, ReliableEdgeRpc(env, inner, policy=policy,
                                                recovery_log=log)

    def test_transparent_when_healthy(self, env):
        _, rpc = self._rpc(env)

        def op():
            result = yield from rpc.push("d0", 2.0)
            return result

        result = env.run(env.process(op()))
        assert result.total_s > 0
        assert rpc.retries == 0

    def test_retry_succeeds_after_heal(self, env):
        log = RecoveryLog(env)
        wireless, rpc = self._rpc(env, log=log)
        wireless.set_partitioned(True)

        def healer():
            yield env.timeout(2.0)
            wireless.set_partitioned(False)

        def op():
            result = yield from rpc.push("d0", 2.0)
            return result

        env.process(healer())
        result = env.run(env.process(op()))
        assert result.total_s > 0
        assert rpc.retries >= 1
        assert env.now > 2.0
        assert log.count("rpc_retry") == 1
        assert log.latencies("rpc_retry")[0] > 0

    def test_exhausted_budget_raises_timeout(self, env):
        wireless, rpc = self._rpc(
            env, policy=RetryPolicy(max_attempts=3, base_backoff_s=0.1,
                                    attempt_timeout_s=0.2,
                                    total_budget_s=2.0))
        wireless.set_partitioned(True)  # never heals

        def op():
            yield from rpc.push("d0", 2.0)

        with pytest.raises(RpcTimeout) as info:
            env.run(env.process(op()))
        assert info.value.attempts == 3

    def test_partition_raises_synchronously(self, env):
        fabric = build_fabric(env, DEFAULT, RandomStreams(5))
        fabric.wireless.set_partitioned(True)

        def op():
            yield from fabric.wireless.upload("d0", 1.0)

        with pytest.raises(NetworkPartitioned):
            env.run(env.process(op()))

    def test_heal_listener_fires_on_close(self, env):
        fabric = build_fabric(env, DEFAULT, RandomStreams(5))
        fired = []
        fabric.wireless.add_heal_listener(lambda: fired.append(env.now))
        fabric.wireless.set_partitioned(True)
        fabric.wireless.set_partitioned(True)  # idempotent while open
        fabric.wireless.set_partitioned(False)
        assert fired == [0.0]
