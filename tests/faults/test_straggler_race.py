"""Straggler races: attribution, loser reaping, and the duplicate racing
a genuine primary failure."""

import pytest

from repro.cluster import Cluster
from repro.config import ClusterConstants, ControlConstants
from repro.core import StragglerMitigator
from repro.faults import InvariantChecker
from repro.serverless import (
    FunctionSpec,
    InvocationRequest,
    OpenWhiskPlatform,
)
from repro.sim import Environment, RandomStreams


@pytest.fixture
def env():
    return Environment()


def make_stack(env, harden_races=True, servers=2):
    cluster = Cluster(env, ClusterConstants(servers=servers,
                                            cores_per_server=8))
    platform = OpenWhiskPlatform(env, cluster, RandomStreams(3))
    mitigator = StragglerMitigator(env, platform, ControlConstants(),
                                   harden_races=harden_races)
    return platform, mitigator


def prime_history(mitigator, name="f", latency=0.6, n=None):
    series = mitigator._series(name)
    for _ in range(n or StragglerMitigator.MIN_HISTORY):
        series.add(latency)


def slow_down(platform, server_id, factor=50.0):
    platform.invoker_of(server_id).slow_factor = factor


class TestAttribution:
    def test_strike_lands_on_the_actual_straggler(self, env):
        platform, mitigator = make_stack(env)
        prime_history(mitigator)
        spec = FunctionSpec("f")
        # Server0 is pathologically slow; the scheduler's rotation sends
        # the first activation there.
        slow_down(platform, "server0")

        def run():
            winner = yield from mitigator.invoke(
                InvocationRequest(spec, service_s=0.5))
            return winner

        winner = env.run(env.process(run()))
        assert mitigator.stragglers_detected == 1
        assert winner.server_id == "server1"
        assert mitigator._strikes.get("server0") == 1
        assert "server1" not in mitigator._strikes

    def test_hint_reads_the_inflight_record(self, env):
        platform, mitigator = make_stack(env)
        spec = FunctionSpec("f")
        request = InvocationRequest(spec, service_s=0.1)
        # No in-flight invocation yet -> no attribution.
        assert mitigator._primary_server_hint(request) is None

        def run():
            result = yield from platform.invoke(request)
            return result

        env.run(env.process(run()))
        assert mitigator._primary_server_hint(request) == \
            request.inflight.server_id


class TestLoserReaping:
    def test_losing_primary_is_cancelled(self, env):
        platform, mitigator = make_stack(env, harden_races=True)
        prime_history(mitigator)
        spec = FunctionSpec("f")
        slow_down(platform, "server0")

        def run():
            winner = yield from mitigator.invoke(
                InvocationRequest(spec, service_s=0.5))
            return winner

        winner = env.run(env.process(run()))
        assert winner.server_id == "server1"
        assert platform.cancellations == 1
        env.run()  # drain the cancel interrupt's cleanup
        # Only the winner left a completion record; the reaped loser
        # released its core.
        assert len(platform.invocations) == 1
        assert platform.invoker_of("server0").server.utilization == 0

    def test_reaping_off_lets_the_loser_drain(self, env):
        platform, mitigator = make_stack(env, harden_races=False)
        prime_history(mitigator)
        spec = FunctionSpec("f")
        slow_down(platform, "server0")

        def run():
            winner = yield from mitigator.invoke(
                InvocationRequest(spec, service_s=0.5))
            return winner

        winner = env.run(env.process(run()))
        assert winner.server_id == "server1"
        assert platform.cancellations == 0
        env.run()  # the loser drains to completion on its own
        assert len(platform.invocations) == 2


class TestDuplicateRacingGenuineFailure:
    def test_primary_crash_during_race_conserves_work(self, env):
        """The issue's nastiest interleaving: the watchdog has already
        launched a duplicate when the primary's server genuinely dies.
        The primary is requeued by the crash machinery while the
        duplicate wins the race; nothing may complete twice or hang."""
        platform, mitigator = make_stack(env, harden_races=True, servers=3)
        checker = InvariantChecker(env)
        platform.add_completion_listener(checker.invocation_finished)
        prime_history(mitigator, latency=0.4)
        spec = FunctionSpec("f")
        slow_down(platform, "server0", factor=200.0)

        def crash_when_racing():
            # Wait for the duplicate to be in flight, then kill the
            # primary's server mid-execution.
            while mitigator.duplicates_launched == 0:
                yield env.timeout(0.05)
            yield env.timeout(0.05)
            platform.crash_server("server0")

        def run():
            winner = yield from mitigator.invoke(
                InvocationRequest(spec, service_s=0.5))
            return winner

        env.process(crash_when_racing())
        winner = env.run(env.process(run()))
        assert winner is not None
        assert winner.server_id != "server0"
        assert mitigator.stragglers_detected == 1
        env.run()  # let any requeued replica drain fully
        # No invocation finished twice, timestamps stayed ordered.
        assert checker.violations == []
        # Every completion record is unique.
        ids = [inv.invocation_id for inv in platform.invocations]
        assert len(ids) == len(set(ids))

    def test_winner_recorded_in_history_once(self, env):
        platform, mitigator = make_stack(env)
        prime_history(mitigator)
        spec = FunctionSpec("f")
        slow_down(platform, "server0")
        before = len(mitigator._series("f"))

        def run():
            winner = yield from mitigator.invoke(
                InvocationRequest(spec, service_s=0.5))
            return winner

        env.run(env.process(run()))
        assert len(mitigator._series("f")) == before + 1
