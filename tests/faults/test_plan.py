"""FaultPlan construction, validation, ordering, and serialization."""

import pytest

from repro.faults import FaultEvent, FaultPlan, named_plan, plan_names


class TestFaultEvent:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            FaultEvent(1.0, "gremlins")

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            FaultEvent(-1.0, "device_crash", target="0")

    def test_magnitude_ranges(self):
        with pytest.raises(ValueError):
            FaultEvent(0.0, "link_degrade", magnitude=0.0)
        with pytest.raises(ValueError):
            FaultEvent(0.0, "battery_brownout", target="0", magnitude=1.5)
        with pytest.raises(ValueError):
            FaultEvent(0.0, "function_faults", magnitude=1.0)

    def test_layer_mapping(self):
        assert FaultEvent(0.0, "device_crash", target="0").layer == "edge"
        assert FaultEvent(0.0, "kafka_outage",
                          duration_s=1.0).layer == "serverless"


class TestFaultPlan:
    def test_builders_and_order(self):
        plan = FaultPlan(name="p")
        plan.server_crash(30.0, "server1")
        plan.cloud_partition(10.0, 5.0)
        plan.device_crash(30.0, "0")
        events = plan.sorted_events()
        assert [e.kind for e in events] == [
            "cloud_partition", "server_crash", "device_crash"]
        # Equal times keep insertion order (deterministic replay).
        assert events[1].time == events[2].time == 30.0

    def test_armed_and_horizon(self):
        plan = FaultPlan()
        assert not plan.armed
        assert plan.horizon() == 0.0
        plan.cloud_partition(40.0, 20.0)
        assert plan.armed
        assert plan.horizon() == 60.0

    def test_roundtrip(self):
        plan = FaultPlan(name="rt", seed=7)
        plan.function_faults(0.0, 0.2)
        plan.invoker_crash(12.0, "server0", reboot_s=3.0)
        clone = FaultPlan.from_dict(plan.to_dict())
        assert clone.name == "rt" and clone.seed == 7
        assert clone.sorted_events() == plan.sorted_events()

    def test_named_plans_scale_with_duration(self):
        assert "mixed" in plan_names()
        short = named_plan("mixed", duration_s=60.0)
        long = named_plan("mixed", duration_s=600.0)
        assert short.armed and long.armed
        assert long.horizon() == pytest.approx(10 * short.horizon())
        with pytest.raises(KeyError):
            named_plan("nonexistent", duration_s=60.0)
        with pytest.raises(ValueError):
            named_plan("mixed", duration_s=0.0)

    def test_mixed_plan_matches_acceptance_recipe(self):
        plan = named_plan("mixed", duration_s=120.0)
        kinds = plan.kinds()
        assert kinds == ("cloud_partition", "function_faults",
                         "server_crash")
        faults = [e for e in plan.events if e.kind == "function_faults"]
        assert faults[0].magnitude == pytest.approx(0.20)


class TestPartition:
    def build(self):
        plan = FaultPlan(name="storm", seed=3)
        plan.device_crash(10.0, "70")
        plan.battery_brownout(20.0, "3", 0.9)
        plan.link_degrade(5.0, 30.0, 0.5)
        plan.server_crash(8.0, "server0")
        plan.couchdb_outage(40.0, 5.0)
        return plan

    def test_device_events_route_to_owning_cell(self):
        part = self.build().partition(256, cell_devices=64)
        cell1 = [e for e in part.cell(1).events
                 if e.kind == "device_crash"]
        assert cell1[0].target == "6"  # 70 -> cell 1, local index 6
        cell0 = [e for e in part.cell(0).events
                 if e.kind == "battery_brownout"]
        assert cell0[0].target == "3"
        assert cell0[0].magnitude == pytest.approx(0.9)

    def test_network_events_replicated_per_cell(self):
        part = self.build().partition(256, cell_devices=64)
        for cell in range(4):
            degrades = [e for e in part.cell(cell).events
                        if e.kind == "link_degrade"]
            assert len(degrades) == 1

    def test_cloud_plan_owns_backend_layers(self):
        part = self.build().partition(256, cell_devices=64)
        assert part.cloud.kinds() == ("couchdb_outage", "server_crash")
        for plan in part.cells.values():
            assert not any(e.layer in ("cluster", "serverless")
                           for e in plan.events)

    def test_crash_schedule_feeds_run_sharded(self):
        part = self.build().partition(256, cell_devices=64)
        assert part.device_crash_schedule() == [(70, 10.0)]

    def test_counts_and_empty_cells(self):
        part = self.build().partition(256, cell_devices=64)
        # 2 device events + 4 replicated network + 2 cloud
        assert len(part) == 8
        assert len(part.cell(3).events) == 1  # only the replicated degrade
        missing = part.cell(2)
        assert [e.kind for e in missing.events] == ["link_degrade"]

    def test_out_of_range_device_rejected(self):
        plan = FaultPlan().device_crash(1.0, "70")
        with pytest.raises(ValueError):
            plan.partition(64, cell_devices=64)

    def test_pure_data(self):
        plan = self.build()
        before = plan.to_dict()
        plan.partition(256, cell_devices=64)
        assert plan.to_dict() == before  # source plan untouched


class TestRegionPartition:
    """Region-aware routing for the cloud-sharded runtime."""

    def build(self):
        plan = FaultPlan(name="regional", seed=11)
        plan.server_crash(8.0, "server0")
        plan.invoker_crash(12.0, "server9", reboot_s=2.0)
        plan.couchdb_outage(20.0, 5.0)
        plan.kafka_outage(25.0, 5.0)
        plan.cloud_partition(30.0, 10.0)
        plan.function_faults(0.0, 0.1)
        return plan

    def test_unregioned_partition_has_no_region_plans(self):
        part = self.build().partition(1024, cell_devices=64)
        assert part.region_devices is None
        assert part.regions == {}
        assert not part.region(0).armed  # accessor returns empty plan

    def test_server_events_route_to_owning_region(self):
        # 1024 devices / 512 per region -> 2 regions over 12 servers
        # (contiguous split: region 0 owns servers 0-5, region 1 6-11).
        part = self.build().partition(1024, cell_devices=64,
                                      region_devices=512, n_servers=12)
        r0_kinds = [e.kind for e in part.region(0).events]
        r1_kinds = [e.kind for e in part.region(1).events]
        assert "server_crash" in r0_kinds
        assert "server_crash" not in r1_kinds
        assert "invoker_crash" in r1_kinds  # server9 -> region 1
        assert "invoker_crash" not in r0_kinds

    def test_store_and_bus_outages_replicate_to_every_region(self):
        # A CouchDB or Kafka outage takes down shared infrastructure:
        # every region must see the stall window, not just region 0
        # (the old region-0-only routing made cloud-sharded runs
        # under-inject and diverge from the monolithic gateway).
        part = self.build().partition(1024, cell_devices=64,
                                      region_devices=512, n_servers=12)
        for region in (0, 1):
            kinds = part.region(region).kinds()
            assert "couchdb_outage" in kinds
            assert "kafka_outage" in kinds

    def test_partition_windows_and_rates_replicate_to_all_regions(self):
        part = self.build().partition(1024, cell_devices=64,
                                      region_devices=512, n_servers=12)
        for region in (0, 1):
            kinds = part.region(region).kinds()
            assert "cloud_partition" in kinds
            assert "function_faults" in kinds

    def test_legacy_cloud_plan_unchanged_by_region_routing(self):
        plain = self.build().partition(1024, cell_devices=64)
        regioned = self.build().partition(1024, cell_devices=64,
                                          region_devices=512, n_servers=12)
        assert (plain.cloud.sorted_events()
                == regioned.cloud.sorted_events())

    def test_more_regions_than_servers_maps_same_index(self):
        plan = FaultPlan(name="tiny").server_crash(1.0, "server2")
        part = plan.partition(64, cell_devices=4, region_devices=8,
                              n_servers=4)
        assert "server_crash" in part.region(2).kinds()

    def test_bad_region_devices_rejected(self):
        with pytest.raises(ValueError):
            self.build().partition(1024, region_devices=0)
