"""InvariantChecker bookkeeping: exactly-once, clocks, energy."""

import pytest

from repro.faults import InvariantChecker
from repro.sim import Environment
from repro.telemetry import EnergyAccount


@pytest.fixture
def env():
    return Environment()


@pytest.fixture
def checker(env):
    return InvariantChecker(env)


class TestExactlyOnce:
    def test_clean_lifecycle(self, checker):
        checker.task_submitted("t1")
        checker.task_completed("t1")
        checker.task_submitted("t2")
        checker.task_lost("t2", "partition")
        assert checker.finalize() == []
        assert checker.ok
        assert checker.submitted_count == 2
        assert checker.completed_count == 1
        assert checker.lost_count == 1

    def test_double_completion_flagged(self, checker):
        checker.task_submitted("t")
        checker.task_completed("t")
        checker.task_completed("t")
        assert not checker.ok
        assert "twice" in str(checker.violations[0])

    def test_completion_without_submission_flagged(self, checker):
        checker.task_completed("ghost")
        assert not checker.ok

    def test_lost_then_completed_flagged(self, checker):
        checker.task_submitted("t")
        checker.task_lost("t", "crash")
        checker.task_completed("t")
        assert not checker.ok

    def test_unaccounted_task_flagged_at_finalize(self, checker):
        checker.task_submitted("orphan")
        violations = checker.finalize()
        assert len(violations) == 1
        assert "never" in violations[0].detail


class TestInvocationRecords:
    def _invocation(self, iid, t_arrive=0.0, t_complete=1.0):
        class Stub:
            pass
        stub = Stub()
        stub.invocation_id = iid
        stub.t_arrive = t_arrive
        stub.t_complete = t_complete
        stub.t_scheduled = t_arrive
        return stub

    def test_single_completion_ok(self, checker):
        checker.invocation_finished(self._invocation(1))
        checker.invocation_finished(self._invocation(2))
        assert checker.ok

    def test_double_finish_flagged(self, checker):
        checker.invocation_finished(self._invocation(1))
        checker.invocation_finished(self._invocation(1))
        assert any(v.invariant == "single_completion"
                   for v in checker.violations)

    def test_backwards_timestamps_flagged(self, checker):
        checker.invocation_finished(
            self._invocation(3, t_arrive=5.0, t_complete=4.0))
        assert any(v.invariant == "timestamps"
                   for v in checker.violations)


class TestClocksAndEnergy:
    def test_entity_clock_monotone(self, checker):
        checker.observe_clock("drone0", 1.0)
        checker.observe_clock("drone0", 2.0)
        assert checker.ok
        checker.observe_clock("drone0", 1.5)
        assert any(v.invariant == "entity_clock"
                   for v in checker.violations)

    def test_corrupted_strict_ledger_flagged(self, checker):
        # A strict account can never legally go below zero (BatteryDepleted
        # fires first), so a negative balance means the ledger was
        # corrupted behind the API's back — exactly what the checker is
        # for.
        account = EnergyAccount(1.0, device="d0", strict=True)
        account._drawn["idle"] = 2.0  # 2 Wh from a 1 Wh cell
        checker.check_energy([account])
        assert any(v.invariant == "energy" for v in checker.violations)

    def test_negative_category_draw_flagged(self, checker):
        account = EnergyAccount(1.0, device="d0")
        account._drawn["compute"] = -0.5
        checker.check_energy([account])
        assert any(v.invariant == "energy" for v in checker.violations)

    def test_nonstrict_overdraw_is_a_battery_swap_not_a_bug(self, checker):
        account = EnergyAccount(1.0, device="d0")
        account.draw_energy("idle", 2.0 * 3600.0)  # 2 Wh from a 1 Wh cell
        checker.check_energy([account])
        assert checker.ok

    def test_healthy_battery_passes(self, checker):
        account = EnergyAccount(10.0, device="d0")
        account.draw_power("compute", 5.0, 60.0)
        checker.check_energy([account])
        assert checker.ok

    def test_kernel_attach_is_passive(self, env):
        checker = InvariantChecker(env)
        checker.attach_kernel()
        ticks = []

        def proc():
            for _ in range(5):
                yield env.timeout(1.0)
                ticks.append(env.now)

        env.run(env.process(proc()))
        assert ticks == [1.0, 2.0, 3.0, 4.0, 5.0]
        assert checker.ok
