"""End-to-end chaos harness: conservation under the issue's mixed plan,
and bit-level determinism of the sweep."""

import pytest

from repro.experiments import chaos
from repro.faults import named_plan

DURATION_S = 30.0


@pytest.fixture(scope="module")
def mixed_report():
    plan = named_plan("mixed", duration_s=DURATION_S)
    return chaos.run_pair("S3", plan, seed=0, duration_s=DURATION_S)


class TestMixedPlanOnS3:
    """The acceptance scenario: 20% function faults + a server crash + a
    partition window, and nothing may be lost or double-counted."""

    def test_zero_invariant_violations(self, mixed_report):
        assert mixed_report.violations == 0
        assert mixed_report.violation_details == []

    def test_all_tasks_accounted(self, mixed_report):
        assert mixed_report.all_accounted
        assert mixed_report.submitted > 0
        assert mixed_report.completed == mixed_report.submitted
        assert mixed_report.lost == 0

    def test_recoveries_actually_happened(self, mixed_report):
        # A chaos run that never recovered anything exercised nothing.
        assert mixed_report.recoveries
        assert sum(mixed_report.recoveries.values()) > 0


class TestDeterminism:
    def test_same_seed_same_rows(self):
        first = chaos.run(base_seed=7, scenarios=("S3",),
                          plans=("partition",), duration_s=DURATION_S)
        second = chaos.run(base_seed=7, scenarios=("S3",),
                           plans=("partition",), duration_s=DURATION_S)
        assert first.rows == second.rows

    def test_plan_changes_the_run(self):
        quiet = chaos.run_pair(
            "S3", named_plan("partition", duration_s=DURATION_S),
            seed=0, duration_s=DURATION_S)
        stormy = chaos.run_pair(
            "S3", named_plan("cluster_storm", duration_s=DURATION_S),
            seed=0, duration_s=DURATION_S)
        assert quiet.recoveries != stormy.recoveries or \
            quiet.makespan_s != stormy.makespan_s


class TestSweepResult:
    def test_sweep_emits_one_row_per_pair(self):
        result = chaos.run(base_seed=0, scenarios=("S1", "S3"),
                           plans=("mixed",), duration_s=DURATION_S)
        assert len(result.rows) == 2
        assert result.data["total_violations"] == 0
        assert result.data["all_accounted"]
        assert len(result.headers) == len(result.rows[0])


class TestWorkerChaosLanes:
    """The --chaos-workers harness: real processes killed under
    supervision, rows twin-compared byte-for-byte."""

    def test_unknown_lane_rejected(self):
        with pytest.raises(KeyError):
            chaos.run_workers(lanes=("warp",))

    @pytest.mark.skipif(
        not __import__("repro.sim.supervisor",
                       fromlist=["can_spawn_workers"]
                       ).can_spawn_workers(),
        reason="environment cannot spawn worker processes")
    def test_sharded_lane_recovers_byte_identical(self):
        result = chaos.run_workers(scenarios=("S1",), lanes=("sharded",))
        assert not result.data["skipped"]
        assert len(result.rows) == 1
        assert result.data["identical_all"]
        assert result.data["all_recovered"]
        # The default sharded script injects a kill and a hang.
        assert result.data["total_incidents"] == 2
        failures = {i["failure"] for i in result.data["incidents"]}
        assert failures == {"death", "hang"}

    def test_skip_path_is_well_formed(self, monkeypatch):
        monkeypatch.setattr(chaos.supervisor, "can_spawn_workers",
                            lambda: False)
        result = chaos.run_workers(scenarios=("S1",), lanes=("sharded",))
        assert result.data["skipped"]
        assert result.rows == []
        assert result.data["identical_all"]  # vacuously true -> exit 0
