"""Worker fault plans: the harness-chaos spec grammar and its routing.

These faults target the *real worker processes* behind the sharded
runtime (``REPRO_CHAOS_WORKERS``), not the simulated world — the grammar
must round-trip exactly and route each entry to the right side of the
pipe (parent-side kills vs worker-side hangs/slows).
"""

import pytest

from repro.faults import WorkerFault, WorkerFaultPlan
from repro.faults.worker import DEFAULT_SLOW_S

pytestmark = pytest.mark.quick


class TestSpecGrammar:
    def test_parse_round_trips_exactly(self):
        spec = "kill:shard:0:2,hang:shard:1:3,slow:cloud:0:1:0.2"
        plan = WorkerFaultPlan.parse(spec)
        assert len(plan) == 3
        assert plan.armed
        assert plan.spec() == spec

    def test_empty_spec_is_unarmed(self):
        plan = WorkerFaultPlan.parse("")
        assert not plan.armed
        assert len(plan) == 0
        assert plan.spec() == ""

    def test_blank_entries_and_whitespace_ignored(self):
        plan = WorkerFaultPlan.parse(" kill:shard:0:2 , ,hang:cloud:1:4,")
        assert [f.action for f in plan.faults] == ["kill", "hang"]

    def test_slow_without_delay_gets_the_default(self):
        plan = WorkerFaultPlan.parse("slow:shard:0:1")
        assert plan.faults[0].delay_s == DEFAULT_SLOW_S

    @pytest.mark.parametrize("bad", [
        "kill:shard:0",             # too few fields
        "kill:shard:0:2:0.5",       # delay on a non-slow action
        "boom:shard:0:1",           # unknown action
        "kill:edge:0:1",            # unknown scope
        "kill:shard:x:1",           # non-integer worker
        "kill:shard:0:zero",        # non-integer op
        "kill:shard:0:0",           # op indices are 1-based
        "kill:shard:-1:1",          # negative worker
        "slow:shard:0:1:-0.5",      # negative delay
    ])
    def test_bad_entries_rejected(self, bad):
        with pytest.raises(ValueError):
            WorkerFaultPlan.parse(bad)

    def test_builders_compose_immutably(self):
        base = WorkerFaultPlan()
        plan = base.kill("shard", 0, 2).hang("cloud", 1, 3).slow(
            "shard", 1, 4, delay_s=0.25)
        assert len(base) == 0  # the original stays unarmed
        assert plan.spec() == \
            "kill:shard:0:2,hang:cloud:1:3,slow:shard:1:4:0.25"


class TestRouting:
    PLAN = WorkerFaultPlan.parse(
        "kill:shard:0:2,kill:shard:0:5,kill:cloud:0:2,"
        "hang:shard:1:3,slow:shard:1:6:0.2")

    def test_kill_ops_filter_by_scope_and_worker(self):
        assert self.PLAN.kill_ops("shard", 0) == frozenset({2, 5})
        assert self.PLAN.kill_ops("cloud", 0) == frozenset({2})
        assert self.PLAN.kill_ops("shard", 1) == frozenset()

    def test_worker_side_carries_only_hang_and_slow(self):
        triples = self.PLAN.worker_side("shard", 1)
        assert ("hang", 3, DEFAULT_SLOW_S) in triples
        assert ("slow", 6, 0.2) in triples
        assert all(action != "kill" for action, _, _ in triples)
        assert self.PLAN.worker_side("shard", 0) == ()

    def test_fault_validation_on_direct_construction(self):
        with pytest.raises(ValueError):
            WorkerFault("kill", "shard", 0, 0)
        with pytest.raises(ValueError):
            WorkerFault("hang", "nowhere", 0, 1)
