"""Serving end-to-end: grouping invariance, the fig19 knee, and the
unarmed byte-identity contract.

Two halves of one promise:

- *Armed*: background serving traffic merged into a sharded swarm run
  is a pure function of ``(seed, spec)`` — identical rows and serving
  ledgers at any ``(shards, cloud_shards)`` worker grouping.
- *Unarmed*: no ``REPRO_SERVING`` means none of this code runs, pinned
  by md5 digests of three seed figures' rows (recomputed digests must
  match a pristine pre-serving checkout exactly).
"""

import hashlib

import pytest

from repro.platforms import platform_config
from repro.sim.shard import run_sharded
from tests.sim.test_shard_determinism import result_bytes, scenario_variant

N_DEVICES = 16
CELL_DEVICES = 4
SERVING_SPEC = "poisson:40,onoff:20:flash"

#: Worker groupings that must merge to identical rows *and* identical
#: serving ledgers (the load is generated once in the driver).
SERVING_COMBOS = ((1, 1), (2, 2), (4, 3))


class TestArmedGroupingInvariance:
    def test_rows_and_ledgers_identical_across_groupings(self):
        scenario = scenario_variant("S1")
        config = platform_config("hivemind")
        reference = None
        for shards, cloud_shards in SERVING_COMBOS:
            result = run_sharded(config, scenario, N_DEVICES, seed=7,
                                 shards=shards, cell_devices=CELL_DEVICES,
                                 cloud_shards=cloud_shards,
                                 region_devices=8, serving=SERVING_SPEC)
            serving = result.extras["serving"]
            observed = (result_bytes(result), serving)
            if reference is None:
                reference = observed
                # The spec's two tenants were actually offered and the
                # pipeline completed background work for them.
                assert sorted(serving["tenants"]) == ["flash",
                                                      "poisson0"]
                assert serving["offered_calls"] > 0
                assert serving["served_calls"] > 0
                assert (serving["served_calls"]
                        + serving["shed_calls"]
                        <= serving["offered_calls"])
            else:
                assert observed == reference, (
                    f"serving rows differ at shards={shards}, "
                    f"cloud_shards={cloud_shards}")

    def test_serving_implies_cloud_tier(self):
        result = run_sharded(platform_config("hivemind"),
                             scenario_variant("S1"), N_DEVICES, seed=7,
                             cell_devices=CELL_DEVICES, region_devices=8,
                             serving="poisson:20")
        assert result.extras["cloud_shards"] >= 1
        assert result.extras["serving"]["offered_calls"] > 0

    def test_unarmed_run_has_no_serving_extras(self, monkeypatch):
        monkeypatch.delenv("REPRO_SERVING", raising=False)
        result = run_sharded(platform_config("hivemind"),
                             scenario_variant("S1"), N_DEVICES, seed=7,
                             shards=2, cell_devices=CELL_DEVICES,
                             cloud_shards=1, region_devices=8)
        assert "serving" not in result.extras


class TestFig19:
    @pytest.fixture(scope="class")
    def figure(self):
        from repro.experiments import fig19_serving
        return fig19_serving.run(base_seed=0, duration_s=60.0,
                                 multipliers=(0.5, 2.4),
                                 admission=True, autoscale=True)

    def test_knee_shape(self, figure):
        sweep = figure.data["sweep"]
        below, beyond = sweep[0.5], sweep[2.4]
        assert below["shed_rate"] == 0.0
        assert beyond["shed_rate"] > 0.10
        assert beyond["p99_s"] > below["p99_s"]
        # Admission keeps the tail bounded instead of letting the
        # open-loop queue grow without limit: the gate's delay bound
        # (2 s) plus one service time caps p999 well under the ~36 s
        # an unshed 2.4x overload would accumulate by end of run.
        assert beyond["p999_s"] < 10.0

    def test_flash_crowd_reacts(self, figure):
        flash = figure.data["flash"]
        assert flash["autoscaled"]["scale_outs"] >= 1
        reaction = flash["autoscaled"]["reaction_s"]
        assert reaction is not None
        # Reaction includes the 8 s provisioning lead; it cannot beat
        # it, and a healthy controller decides within a few seconds.
        assert 8.0 <= reaction < 20.0
        assert flash["static"]["reaction_s"] is None

    def test_two_runs_are_byte_identical(self, figure):
        from repro.experiments import fig19_serving
        again = fig19_serving.run(base_seed=0, duration_s=60.0,
                                  multipliers=(0.5, 2.4),
                                  admission=True, autoscale=True)
        assert again.rows == figure.rows
        assert again.data == figure.data


def _rows_digest(result) -> str:
    return hashlib.md5(repr(result.rows).encode()).hexdigest()


class TestUnarmedFigureRows:
    """Seed figures' rows, pinned by digest, with every serving/scale
    flag cleared — these digests were verified identical against a
    pristine pre-serving checkout, so any drift means the unarmed path
    is no longer byte-identical."""

    @pytest.fixture(autouse=True)
    def clear_flags(self, monkeypatch):
        for var in ("REPRO_SERVING", "REPRO_SERVING_ADMISSION",
                    "REPRO_SERVING_AUTOSCALE", "REPRO_SHARDS",
                    "REPRO_CLOUD_SHARDS", "REPRO_MEANFIELD",
                    "REPRO_HYBRID_EXACT"):
            monkeypatch.delenv(var, raising=False)

    def test_fig01_rows_unchanged(self):
        from repro.experiments import fig01_treasure_hunt
        result = fig01_treasure_hunt.run(repeats=1, n_small=8,
                                         n_large=16)
        assert _rows_digest(result) == "0efe06293517adbf99dc0ae1225a2d2f"

    def test_fig11_rows_unchanged(self):
        from repro.experiments import fig11_performance
        result = fig11_performance.run(duration_s=10.0)
        assert _rows_digest(result) == "8db633cbcfbe6c0d73682e6f013c9cec"

    def test_fig17b_rows_unchanged(self):
        from repro.experiments import fig17_scalability
        result = fig17_scalability.run_swarm_size(
            sizes=(16, 32), include_centralized_upto=16)
        assert _rows_digest(result) == "bd617f558dc16f246b1e0ae7a8042146"
