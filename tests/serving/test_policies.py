"""Admission-control and autoscaler unit behavior.

These pin the decision rules directly (pure ``(t, backlog)`` /
``offer(...)`` sequences, no simulator), so a policy regression shows
up here before it perturbs the fig19 knee.
"""

import pytest

from repro.serving import (AdmissionConfig, AdmissionController,
                           AutoscaleConfig, InvokerAutoscaler,
                           ServingConfig, ServingPolicy, TenantSpec)

pytestmark = pytest.mark.quick


class TestAdmissionBounds:
    def test_default_bounds_derive_from_cores(self):
        assert AdmissionConfig().resolved(8) == (16, 32)
        # Tiny clusters still get a usable queue.
        assert AdmissionConfig().resolved(1) == (8, 16)

    def test_explicit_bounds_win(self):
        assert AdmissionConfig(queue_bound=5,
                               hard_bound=9).resolved(64) == (5, 9)

    def test_inverted_bounds_rejected(self):
        with pytest.raises(ValueError):
            AdmissionConfig(queue_bound=10, hard_bound=10).resolved(8)


class TestAdmissionRegimes:
    def _gate(self, **kwargs):
        config = AdmissionConfig(queue_bound=4, hard_bound=8, **kwargs)
        return AdmissionController(config, cores=2)

    def test_underload_admits_everything(self):
        gate = self._gate()
        assert all(gate.offer(t, "users", 1.0, backlog=2,
                              est_delay_s=0.1)
                   for t in range(10))
        assert gate.total_shed == 0

    def test_hard_bound_sheds_background(self):
        gate = self._gate()
        assert not gate.offer(1.0, "users", 1.0, backlog=9,
                              est_delay_s=0.1)
        assert gate.shed == {"users": 1}
        assert gate.shed_samples == [(1.0, "users")]

    def test_delay_bound_sheds_background(self):
        gate = self._gate(delay_bound_s=0.5)
        assert not gate.offer(1.0, "users", 1.0, backlog=2,
                              est_delay_s=0.6)

    def test_swarm_calls_are_never_shed(self):
        gate = self._gate(delay_bound_s=0.5)
        for t in range(20):
            assert gate.offer(float(t), None, 1.0, backlog=10_000,
                              est_delay_s=1e9)
        assert gate.admitted == {"swarm": 20}
        assert gate.total_shed == 0

    def test_fair_trim_band_is_weight_proportional(self):
        """In the trim band a weight-3 tenant gets ~3x the slots of a
        weight-1 tenant, and the light tenant keeps its trickle."""
        gate = AdmissionController(
            AdmissionConfig(queue_bound=4, hard_bound=1000),
            cores=2, tenant_weights={"light": 1.0, "heavy": 3.0})
        for t in range(400):
            tenant = "light" if t % 2 == 0 else "heavy"
            gate.offer(float(t), tenant, 1.0, backlog=10,
                       est_delay_s=0.1)
        light, heavy = gate.admitted["light"], gate.admitted["heavy"]
        assert light > 0
        assert heavy / light == pytest.approx(3.0, rel=0.1)


class TestAutoscaler:
    def _scaler(self, **kwargs):
        defaults = dict(min_servers=1, scale_out_backlog=4,
                        scale_in_idle_s=30.0, cooldown_s=10.0,
                        provision_s=8.0)
        defaults.update(kwargs)
        return InvokerAutoscaler(AutoscaleConfig(**defaults),
                                 n_servers=4, cores_per_server=2)

    def test_scale_out_pays_provisioning_lag(self):
        scaler = self._scaler()
        scaler.observe(0.0, backlog=9)
        # Decided at t=0 (9 > 4*1): target = ceil(9/4) = 3 servers,
        # but capacity is only online after provision_s.
        assert scaler.stats()["target"] == 3
        assert scaler.active(0.0) == 1
        assert scaler.active(8.0) == 3
        assert scaler.reaction_s(0.0) == 8.0

    def test_cooldown_damps_repeat_decisions(self):
        scaler = self._scaler()
        scaler.observe(0.0, backlog=9)
        scaler.observe(1.0, backlog=500)
        assert scaler.stats()["scale_outs"] == 1
        scaler.observe(11.0, backlog=500)
        assert scaler.stats()["scale_outs"] == 2

    def test_scale_in_requires_sustained_idle(self):
        scaler = self._scaler()
        scaler.observe(0.0, backlog=9)
        scaler.observe(20.0, backlog=0)
        scaler.observe(40.0, backlog=0)
        assert scaler.stats()["scale_ins"] == 0  # only 20 s idle
        scaler.observe(51.0, backlog=0)
        assert scaler.stats()["scale_ins"] == 1
        assert scaler.stats()["target"] == 2

    def test_busy_sample_resets_the_idle_clock(self):
        scaler = self._scaler()
        scaler.observe(0.0, backlog=9)
        scaler.observe(20.0, backlog=0)
        scaler.observe(35.0, backlog=6)  # busy again
        scaler.observe(60.0, backlog=0)
        assert scaler.stats()["scale_ins"] == 0

    def test_reaction_ignores_pre_burst_events(self):
        scaler = self._scaler()
        scaler.observe(0.0, backlog=9)
        assert scaler.reaction_s(burst_start_s=5.0) is None
        scaler.observe(12.0, backlog=500)
        assert scaler.reaction_s(burst_start_s=5.0) == pytest.approx(
            12.0 + 8.0 - 5.0)

    def test_pool_bounds_are_clamped(self):
        scaler = InvokerAutoscaler(AutoscaleConfig(min_servers=10),
                                   n_servers=4, cores_per_server=2)
        assert scaler.min_servers == 4
        with pytest.raises(ValueError):
            InvokerAutoscaler(AutoscaleConfig(), n_servers=0,
                              cores_per_server=2)


class TestServingPolicy:
    def test_sub_switches_disarm_independently(self):
        tenants = (TenantSpec(name="u"),)
        both = ServingPolicy(
            ServingConfig(tenants=tenants), n_servers=2,
            cores_per_server=4)
        assert both.admission is not None
        assert both.autoscaler is not None
        neither = ServingPolicy(
            ServingConfig(tenants=tenants, admission_enabled=False,
                          autoscale_enabled=False),
            n_servers=2, cores_per_server=4)
        assert neither.admission is None
        assert neither.autoscaler is None
        # Disarmed policies are pass-through: everything admitted, a
        # static pool.
        assert neither.admit(0.0, "u", 1.0, backlog=10**6,
                             est_delay_s=1e9)
        assert neither.active_servers(0.0) is None

    def test_stats_shape_follows_arming(self):
        tenants = (TenantSpec(name="u"),)
        policy = ServingPolicy(
            ServingConfig(tenants=tenants, autoscale_enabled=False),
            n_servers=2, cores_per_server=4)
        stats = policy.stats()
        assert stats["admission_enabled"] is True
        assert stats["autoscale_enabled"] is False
        assert "admission" in stats and "autoscale" not in stats
