"""Open-loop load generator: spec grammar, arrival shapes, determinism.

The contract (repro.serving.load): arrival streams are pure functions
of ``(seed, tenant spec, duration)`` — identical across process
restarts and independent of everything else in the run — and every
call is tenant-tagged synthetic traffic priced from the scenario's
recognition app.
"""

import os
import pathlib
import subprocess
import sys

import pytest

from repro.apps import SCENARIO_A
from repro.serving.load import (SERVING_CELL_BASE, TenantSpec,
                                arrival_times, generate_serving_calls,
                                parse_serving_spec)
from repro.sim.rng import RandomStreams

pytestmark = pytest.mark.quick


class TestSpecGrammar:
    def test_bare_arm_value_is_one_default_tenant(self):
        for spec in ("1", "on", "true"):
            tenants = parse_serving_spec(spec)
            assert len(tenants) == 1
            assert tenants[0].kind == "poisson"

    def test_full_grammar(self):
        tenants = parse_serving_spec(
            "poisson:200,onoff:80:flash:0.5,diurnal:40")
        assert [t.kind for t in tenants] == ["poisson", "onoff",
                                             "diurnal"]
        assert tenants[0].rate_rps == 200.0
        assert tenants[1].name == "flash"
        assert tenants[1].weight == 0.5

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            parse_serving_spec("poisson:10:users,onoff:5:users")

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            parse_serving_spec("weibull:10")


class TestSegments:
    def test_poisson_is_one_flat_segment(self):
        tenant = TenantSpec(name="u", rate_rps=40.0)
        assert tenant.segments(60.0) == [(0.0, 60.0, 40.0)]

    def test_onoff_mean_rate_is_preserved(self):
        tenant = TenantSpec(name="u", kind="onoff", rate_rps=40.0,
                            burst_mult=8.0, on_s=10.0, off_s=30.0)
        segments = tenant.segments(400.0)
        mass = sum((end - start) * rate for start, end, rate in segments)
        assert mass == pytest.approx(40.0 * 400.0, rel=1e-9)

    def test_onoff_burst_onset_is_deterministic(self):
        tenant = TenantSpec(name="u", kind="onoff", off_s=30.0)
        assert tenant.burst_start_s == 30.0
        with pytest.raises(ValueError):
            TenantSpec(name="u", kind="poisson").burst_start_s

    def test_diurnal_mean_rate_is_preserved(self):
        tenant = TenantSpec(name="u", kind="diurnal", rate_rps=40.0,
                            period_s=240.0)
        segments = tenant.segments(240.0)
        assert len(segments) == 24
        mass = sum((end - start) * rate for start, end, rate in segments)
        assert mass == pytest.approx(40.0 * 240.0, rel=1e-9)


class TestDeterminism:
    def test_same_seed_same_arrivals(self):
        tenant = TenantSpec(name="u", rate_rps=50.0)
        draws = []
        for _ in range(2):
            rng = RandomStreams(7).stream("serving.u")
            times, truncated = arrival_times(tenant, 30.0, rng)
            draws.append((tuple(times), truncated))
        assert draws[0] == draws[1]
        assert len(draws[0][0]) > 0

    def test_different_tenants_draw_different_streams(self):
        a = arrival_times(TenantSpec(name="a", rate_rps=50.0), 30.0,
                          RandomStreams(7).stream("serving.a"))[0]
        b = arrival_times(TenantSpec(name="b", rate_rps=50.0), 30.0,
                          RandomStreams(7).stream("serving.b"))[0]
        assert tuple(a) != tuple(b)

    def test_calls_identical_across_process_restarts(self):
        """Fixed seed => the exact same calls in a fresh interpreter."""
        script = (
            "import hashlib, sys\n"
            "from repro.apps import SCENARIO_A\n"
            "from repro.serving.load import TenantSpec, "
            "generate_serving_calls\n"
            "tenants = (TenantSpec(name='u', rate_rps=40.0),"
            " TenantSpec(name='f', kind='onoff', rate_rps=10.0))\n"
            "calls, _ = generate_serving_calls(tenants, 20.0, 11,"
            " SCENARIO_A, n_regions=2)\n"
            "payload = repr([(c.cell, c.seq, c.arrival_s, c.region,"
            " c.tenant, c.recognition_s) for c in calls]).encode()\n"
            "print(hashlib.md5(payload).hexdigest())\n")
        src = pathlib.Path(__file__).resolve().parents[2] / "src"
        env = {**os.environ, "PYTHONPATH": str(src)}
        digests = {
            subprocess.run([sys.executable, "-c", script],
                           capture_output=True, text=True,
                           check=True, env=env).stdout.strip()
            for _ in range(2)}
        assert len(digests) == 1

    def test_calls_are_canonically_ordered_and_tagged(self):
        tenants = (TenantSpec(name="u", rate_rps=40.0),
                   TenantSpec(name="f", kind="onoff", rate_rps=10.0))
        calls, truncated = generate_serving_calls(
            tenants, 20.0, 11, SCENARIO_A, n_regions=2)
        assert truncated == []
        assert calls == sorted(calls, key=lambda c: c.sort_key)
        assert {c.tenant for c in calls} == {"u", "f"}
        assert all(c.synthetic for c in calls)
        assert all(c.cell >= SERVING_CELL_BASE for c in calls)
        assert all(c.recognition_s > 0 for c in calls)
        assert {c.region for c in calls} == {0, 1}

    def test_per_tenant_cap_is_reported_not_silent(self):
        tenants = (TenantSpec(name="hot", rate_rps=500.0),)
        calls, truncated = generate_serving_calls(
            tenants, 10.0, 0, SCENARIO_A, max_calls=100)
        assert truncated == ["hot"]
        assert len(calls) == 100
