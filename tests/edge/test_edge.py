"""Tests for the edge layer: world, sensors, devices, drones, cars, swarm."""

import numpy as np
import pytest

from repro.config import DEFAULT, CarConstants, DroneConstants
from repro.edge import (
    Camera,
    Drone,
    EdgeDevice,
    FieldWorld,
    RoboticCar,
    SensorSuite,
    Swarm,
    build_drone_swarm,
)
from repro.sim import Environment, RandomStreams


@pytest.fixture
def env():
    return Environment()


@pytest.fixture
def rng():
    return np.random.default_rng(42)


def make_device(env, rng=None, **overrides):
    defaults = dict(
        cpu_cores=1, battery_wh=11.1, motion_power_w=42.0,
        compute_power_w=6.5, compute_idle_w=1.2, radio_tx_w=4.2,
        radio_rx_w=1.4, radio_idle_w=0.35, cloud_to_edge_slowdown=9.0)
    defaults.update(overrides)
    return EdgeDevice(env, "dev0", rng=rng, **defaults)


class TestFieldWorld:
    def test_validation(self, rng):
        with pytest.raises(ValueError):
            FieldWorld(0, 10, rng)

    def test_place_items_inside_field(self, rng):
        world = FieldWorld(100, 50, rng)
        world.place_items(15)
        assert world.item_count == 15
        for x, y in world.items.values():
            assert 0 <= x <= 100 and 0 <= y <= 50

    def test_place_negative_rejected(self, rng):
        world = FieldWorld(10, 10, rng)
        with pytest.raises(ValueError):
            world.place_items(-1)
        with pytest.raises(ValueError):
            world.place_people(-1)

    def test_people_move_when_advanced(self, rng):
        world = FieldWorld(100, 100, rng)
        world.place_people(5)
        before = {p: world.people[p].position for p in world.people}
        world.advance(10.0)
        moved = sum(1 for p in world.people
                    if world.people[p].position != before[p])
        assert moved == 5

    def test_people_stay_inside_field(self, rng):
        world = FieldWorld(50, 50, rng)
        world.place_people(10)
        for t in range(1, 200, 10):
            world.advance(float(t))
        for person in world.people.values():
            assert 0 <= person.position[0] <= 50
            assert 0 <= person.position[1] <= 50

    def test_time_cannot_go_backwards(self, rng):
        world = FieldWorld(10, 10, rng)
        world.advance(5.0)
        with pytest.raises(ValueError):
            world.advance(4.0)

    def test_visibility_window(self, rng):
        world = FieldWorld(100, 100, rng)
        world.items[0] = (50.0, 50.0)
        world.items[1] = (90.0, 90.0)
        visible = world.visible_items((50, 50), 10, 10)
        assert visible == [0]


class TestCamera:
    def test_validation(self):
        with pytest.raises(ValueError):
            Camera(0, 2, 6.7, 8.75)
        with pytest.raises(ValueError):
            Camera(8, 2, 0, 8.75)

    def test_batch_size_matches_paper_default(self, rng):
        world = FieldWorld(100, 100, rng)
        camera = Camera(8, 2.0, 6.7, 8.75)
        batch = camera.capture_batch("d0", world, (50, 50), 0.0)
        assert batch.frame_count == 8
        assert batch.total_mb == 16.0

    def test_batch_sees_items_in_footprint(self, rng):
        world = FieldWorld(100, 100, rng)
        world.items[7] = (50.0, 51.0)
        camera = Camera(8, 2.0, 6.7, 8.75)
        batch = camera.capture_batch("d0", world, (50, 50), 0.0)
        assert 7 in batch.item_sightings

    def test_duration_validation(self, rng):
        camera = Camera(8, 2.0, 6.7, 8.75)
        world = FieldWorld(10, 10, rng)
        with pytest.raises(ValueError):
            camera.capture_batch("d0", world, (5, 5), 0.0, duration_s=0)


class TestSensorSuite:
    def test_readings_plausible(self, rng):
        suite = SensorSuite(rng)
        reading = suite.sample(time=100.0, altitude_m=5.0)
        assert 0 <= reading.humidity_pct <= 100
        assert 15 < reading.temperature_c < 35
        assert reading.altitude_m == pytest.approx(5.0, abs=1.0)
        assert reading.size_mb < 0.01


class TestEdgeDevice:
    def test_validation(self, env):
        with pytest.raises(ValueError):
            make_device(env, cpu_cores=0)
        with pytest.raises(ValueError):
            make_device(env, cloud_to_edge_slowdown=0)

    def test_execute_applies_slowdown(self, env):
        device = make_device(env)  # no rng -> deterministic

        def run():
            spent = yield env.process(device.execute(1.0))
            return spent

        assert env.run(env.process(run())) == pytest.approx(9.0)
        assert device.busy_compute_s == pytest.approx(9.0)

    def test_execute_charges_compute_energy(self, env):
        device = make_device(env)
        env.run(env.process(device.execute(1.0)))
        assert device.energy.by_category()["compute"] > 0

    def test_single_core_serializes_tasks(self, env):
        device = make_device(env)
        completions = []

        def task():
            yield env.process(device.execute(1.0))
            completions.append(env.now)

        env.process(task())
        env.process(task())
        env.run()
        assert completions[1] == pytest.approx(18.0)

    def test_radio_accounting(self, env):
        device = make_device(env)
        device.account_tx(10.0)
        device.account_rx(5.0)
        assert device.radio_active_s == 15.0
        assert device.energy.by_category()["radio_tx"] > \
            device.energy.by_category()["radio_rx"]
        with pytest.raises(ValueError):
            device.account_tx(-1)

    def test_finalize_mission_charges_idle(self, env):
        device = make_device(env)
        device.start_mission()
        env.run(until=100.0)
        span = device.finalize_mission()
        assert span == pytest.approx(100.0)
        assert device.energy.by_category()["idle"] > 0

    def test_finalize_without_start_rejected(self, env):
        device = make_device(env)
        with pytest.raises(RuntimeError):
            device.finalize_mission()


class TestDrone:
    def test_fly_route_captures_batches(self, env, rng):
        world = FieldWorld(100, 100, rng)
        drone = Drone(env, "drone0", DroneConstants())
        batches = []

        def run():
            count = yield env.process(drone.fly_route(
                [(0, 0), (40, 0)], world, on_batch=batches.append))
            return count

        count = env.run(env.process(run()))
        # 40 m at 4 m/s = 10 s of flight = 10 one-second batches.
        assert count == 10
        assert len(batches) == 10
        assert all(b.total_mb == 16.0 for b in batches)
        assert drone.motion_s >= 10.0

    def test_fly_route_charges_motion_energy(self, env, rng):
        world = FieldWorld(100, 100, rng)
        drone = Drone(env, "drone0", DroneConstants())
        env.run(env.process(drone.fly_route([(0, 0), (20, 0)], world)))
        assert drone.energy.by_category()["motion"] > 0

    def test_failed_drone_stops_flying(self, env, rng):
        world = FieldWorld(1000, 1000, rng)
        drone = Drone(env, "drone0", DroneConstants())

        def killer():
            yield env.timeout(5.0)
            drone.fail()

        env.process(killer())
        env.run(env.process(drone.fly_route([(0, 0), (400, 0)], world)))
        # 400 m would take 100 s; failure at 5 s stops the mission.
        assert env.now < 10.0

    def test_custom_resolution(self, env, rng):
        drone = Drone(env, "d", DroneConstants(), frame_mb=8.0, fps=32)
        assert drone.camera.frame_mb == 8.0
        assert drone.camera.fps == 32

    def test_hover(self, env):
        drone = Drone(env, "d", DroneConstants())
        env.run(env.process(drone.hover(10)))
        assert drone.motion_s == pytest.approx(10.0)


class TestRoboticCar:
    def test_drive_to_adjacent_cell(self, env):
        car = RoboticCar(env, "car0", CarConstants())

        def run():
            took = yield env.process(car.drive_to_cell((1, 0)))
            return took

        took = env.run(env.process(run()))
        assert took == pytest.approx(RoboticCar.CELL_M /
                                     CarConstants().speed_mps)
        assert car.cell == (1, 0)

    def test_drive_to_non_adjacent_rejected(self, env):
        car = RoboticCar(env, "car0", CarConstants())
        process = env.process(car.drive_to_cell((2, 2)))
        with pytest.raises(ValueError):
            env.run(process)

    def test_cars_less_power_constrained_than_drones(self):
        car, drone = CarConstants(), DroneConstants()
        assert car.battery_wh > drone.battery_wh
        assert car.motion_power_w < drone.motion_power_w


class TestSwarm:
    def test_empty_swarm_rejected(self, env):
        with pytest.raises(ValueError):
            Swarm(env, [])

    def test_duplicate_ids_rejected(self, env):
        drones = [Drone(env, "same", DroneConstants()) for _ in range(2)]
        with pytest.raises(ValueError):
            Swarm(env, drones)

    def test_build_drone_swarm_size(self, env):
        swarm = build_drone_swarm(env, DEFAULT, RandomStreams(1))
        assert len(swarm) == DEFAULT.drone.count

    def test_assign_regions_covers_field(self, env):
        swarm = build_drone_swarm(env, DEFAULT, RandomStreams(1))
        swarm.assign_regions(110, 110)
        total = sum(r.area for regions in swarm.regions.values()
                    for r in regions)
        assert total == pytest.approx(110 * 110)

    def test_route_for_unassigned_device(self, env):
        swarm = build_drone_swarm(env, DEFAULT, RandomStreams(1))
        with pytest.raises(KeyError):
            swarm.route_for("drone0000", 6.7)

    def test_heartbeats_flow(self, env):
        swarm = build_drone_swarm(env, DEFAULT, RandomStreams(1))
        swarm.start_heartbeats()
        env.run(until=5.5)
        # 16 drones x 6 beats (t=0..5).
        assert len(swarm.heartbeat_bus.items) == 16 * 6

    def test_heartbeats_stop_after_failure(self, env):
        swarm = build_drone_swarm(env, DEFAULT, RandomStreams(1))
        swarm.start_heartbeats()
        swarm.fail_device_at("drone0000", at_time=2.5)
        env.run(until=10.0)
        beats = [hb for hb in swarm.heartbeat_bus.items
                 if hb.device_id == "drone0000"]
        assert len(beats) == 3  # t = 0, 1, 2
        assert len(swarm.alive_devices) == 15
