"""Mean-field aggregate cells vs the exact runner.

The population model of ``repro.edge.meanfield`` is approximate by
design; its honesty contract is the sweep-validation tolerance band:
every observable (bandwidth mean, task p99, makespan) within 25% of the
discrete-event runner at small N, across both platforms and both
scenarios. The fast tier pins N ∈ {16, 64}; the slow tier adds 256
(exact 256-device runs cost seconds each). Flight geometry and
bit-reproducibility are exact, not banded.
"""

import pytest

from repro.config import DEFAULT
from repro.edge.meanfield import (flight_profile, predict_cell,
                                  validate_cells)


class TestFlightGeometry:
    def test_profile_matches_exact_tick_replay(self):
        profile = flight_profile(DEFAULT.scaled_for_swarm(64))
        # Frozen against Drone.fly_route on the 27.5 m x 27.5 m tile.
        assert profile.flight_s == pytest.approx(56.075)
        assert profile.batches == 39
        assert profile.n_turns == 9
        assert 0.0 < profile.first_capture_s < profile.last_capture_s
        assert profile.last_capture_s < profile.flight_s

    def test_tile_size_constant_across_swarm_sizes(self):
        # scaled_for_swarm grows the field with N, so the per-device
        # flight never changes — the invariant the O(1) model rests on.
        # (Non-square N leaves a sub-0.1% remainder in the tile aspect.)
        small = flight_profile(DEFAULT.scaled_for_swarm(16))
        large = flight_profile(DEFAULT.scaled_for_swarm(100_000))
        assert large.flight_s == pytest.approx(small.flight_s, rel=1e-3)
        assert large.batches == small.batches
        assert large.n_turns == small.n_turns


class TestPredictCell:
    def test_bit_reproducible(self):
        a = predict_cell("hivemind", "ScB", 4096)
        b = predict_cell("hivemind", "ScB", 4096)
        assert a.triple == b.triple

    def test_bandwidth_scales_with_devices(self):
        small = predict_cell("hivemind", "ScA", 16)
        large = predict_cell("hivemind", "ScA", 64)
        assert large.bandwidth_mbs == pytest.approx(
            4 * small.bandwidth_mbs, rel=0.01)

    def test_centralized_saturates_hivemind_does_not(self):
        # The fig17 story at 100k devices: centralized tail latency has
        # exploded; hivemind's stays within the same order of magnitude
        # as its 1k-device value.
        hive = predict_cell("hivemind", "ScA", 100_000)
        central = predict_cell("centralized_faas", "ScA", 100_000)
        assert central.task_p99_s > 10 * hive.task_p99_s
        assert central.makespan_s > 10 * hive.makespan_s

    def test_million_device_cell_is_cheap(self):
        from repro.sim.kernel import events_consumed
        before = events_consumed()
        cell = predict_cell("hivemind", "ScB", 1_000_000)
        assert events_consumed() == before  # zero kernel events
        assert cell.bandwidth_mbs > 0
        assert cell.makespan_s > cell.details["flight_s"] - 1e-9

    def test_unknown_platform_rejected(self):
        with pytest.raises(KeyError):
            predict_cell("no_such_platform", "ScA", 16)


class TestParityBand:
    @pytest.mark.parametrize("n", [16, 64])
    def test_within_tolerance_small_n(self, n):
        rows = validate_cells(sizes=(n,), tolerance_pct=25.0)
        assert len(rows) == 4  # 2 platforms x 2 scenarios
        bad = [r for r in rows if not r["within"]]
        assert not bad, f"outside the 25% band: {bad}"

    @pytest.mark.slow
    def test_within_tolerance_256(self):
        rows = validate_cells(sizes=(256,), tolerance_pct=25.0)
        bad = [r for r in rows if not r["within"]]
        assert not bad, f"outside the 25% band: {bad}"


class TestHybridAnchor:
    """Hybrid exact/mean-field runs inherit the 25% honesty band.

    A hybrid run keeps a small exact focus and replaces the rest of the
    fleet with calibrated synthetic streams, so its observables must
    track a fully exact run of the same fleet no worse than the pure
    mean-field model does.
    """

    def test_hybrid_within_band_of_exact_fleet(self):
        from repro.apps import SCENARIO_A
        from repro.platforms import ScenarioRunner, platform_config
        from repro.sim.shard import run_sharded

        config = platform_config("hivemind")
        exact = ScenarioRunner(config, SCENARIO_A, seed=0,
                               n_devices=64).run()
        hybrid = run_sharded(config, SCENARIO_A, 64, seed=0,
                             cell_devices=16, exact_devices=16,
                             region_devices=32)
        pairs = {
            "bandwidth": (hybrid.bandwidth_summary()[0],
                          exact.bandwidth_summary()[0]),
            "p99": (hybrid.task_latencies.p99,
                    exact.task_latencies.p99),
            "makespan": (hybrid.extras["makespan_s"],
                         exact.extras["makespan_s"]),
        }
        for name, (model, truth) in pairs.items():
            deviation = 100.0 * abs(model - truth) / truth
            assert deviation <= 25.0, (
                f"{name}: hybrid {model} vs exact {truth} "
                f"({deviation:.1f}% > 25%)")
