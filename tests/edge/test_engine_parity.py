"""SwarmEngine parity: vectorized flight must be bit-identical to legacy.

The determinism contract of the vectorized edge layer is byte-for-byte
equality with the per-device tick processes at fixed seeds. These tests
drive the same routes (and full scenario runs) through both paths and
compare positions, timings, batch counts, heartbeat streams, and the
per-device energy ledgers with exact ``==`` — no tolerances.
"""

import numpy as np
import pytest

from repro.apps import SCENARIO_A
from repro.config import DroneConstants
from repro.edge import Drone, FieldWorld, Swarm, SwarmEngine
from repro.platforms import platform_config
from repro.platforms.scenario_runner import ScenarioRunner
from repro.sim import Environment
from repro.sim.kernel import events_consumed


@pytest.fixture
def rng():
    return np.random.default_rng(42)


def fly_legacy(waypoints, capture=True, kill_at=None, strict=False,
               world_seed=7):
    """Fly one route through the legacy tick processes; return evidence."""
    env = Environment()
    world = FieldWorld(1000, 1000, np.random.default_rng(world_seed))
    drone = Drone(env, "d0", DroneConstants(), strict_battery=strict)
    batches = []
    if kill_at is not None:
        def killer():
            yield env.timeout(kill_at)
            drone.fail()
        env.process(killer())

    def run():
        count = yield env.process(drone.fly_route(
            waypoints, world, on_batch=batches.append, capture=capture))
        return count

    count = env.run(env.process(run()))
    return _evidence(env, drone, count, batches)


def fly_engine(waypoints, capture=True, kill_at=None, strict=False,
               world_seed=7):
    """Fly the same route through the SwarmEngine; return evidence."""
    env = Environment()
    engine = SwarmEngine(env)
    world = FieldWorld(1000, 1000, np.random.default_rng(world_seed))
    drone = Drone(env, "d0", DroneConstants(), strict_battery=strict)
    batches = []
    if kill_at is not None:
        def killer():
            yield env.timeout(kill_at)
            drone.fail()
        env.process(killer())

    def run():
        count = yield engine.fly_route(
            drone, waypoints, world, on_batch=batches.append,
            capture=capture)
        return count

    count = env.run(env.process(run()))
    return _evidence(env, drone, count, batches), engine


def _evidence(env, drone, count, batches):
    return {
        "finish_time": env.now,
        "count": count,
        "batch_times": tuple(b.time for b in batches),
        "batch_positions": tuple(b.position for b in batches),
        "position": drone.position,
        "motion_s": drone.motion_s,
        "energy": tuple(sorted(drone.energy.by_category().items())),
        "alive": drone.alive,
    }


class TestRouteParity:
    def test_single_leg(self):
        route = [(0.0, 0.0), (40.0, 0.0)]
        engine_run, _ = fly_engine(route)
        assert fly_legacy(route) == engine_run

    def test_multi_leg_with_turns(self):
        route = [(0.0, 0.0), (40.0, 0.0), (40.0, 30.0), (3.0, 30.0)]
        engine_run, _ = fly_engine(route)
        assert fly_legacy(route) == engine_run

    def test_diagonal_fractional_legs(self):
        # Leg lengths that do not divide evenly into 1 s ticks.
        route = [(0.0, 0.0), (11.3, 7.9), (2.2, 19.47)]
        engine_run, _ = fly_engine(route)
        assert fly_legacy(route) == engine_run

    def test_zero_length_leg(self):
        route = [(0.0, 0.0), (8.0, 0.0), (8.0, 0.0), (8.0, 12.0)]
        engine_run, _ = fly_engine(route)
        assert fly_legacy(route) == engine_run

    def test_failure_mid_route(self):
        route = [(0.0, 0.0), (400.0, 0.0)]
        engine_run, _ = fly_engine(route, kill_at=5.3)
        legacy = fly_legacy(route, kill_at=5.3)
        assert legacy == engine_run
        assert not engine_run["alive"]
        # The in-flight tick still lands before the route ends.
        assert engine_run["finish_time"] == 6.0

    def test_empty_route(self):
        env = Environment()
        engine = SwarmEngine(env)
        world = FieldWorld(10, 10, np.random.default_rng(0))
        drone = Drone(env, "d0", DroneConstants())

        def run():
            count = yield engine.fly_route(drone, [], world)
            return count

        assert env.run(env.process(run())) == 0

    def test_engine_uses_fewer_kernel_events(self):
        route = [(0.0, 0.0), (200.0, 0.0), (200.0, 200.0)]
        before = events_consumed()
        fly_legacy(route)
        legacy_events = events_consumed() - before
        before = events_consumed()
        fly_engine(route)
        engine_events = events_consumed() - before
        assert engine_events < legacy_events


class TestAnalyticLegs:
    """capture=False legs collapse to one settle event per leg."""

    def test_parity_and_single_event(self):
        route = [(0.0, 0.0), (160.0, 0.0), (160.0, 43.7)]
        engine_run, engine = fly_engine(route, capture=False)
        legacy = fly_legacy(route, capture=False)
        # The world clock advances once per leg instead of per tick, so
        # drop world-independent evidence only (no captures happened).
        assert legacy == engine_run
        assert engine.analytic_legs == 2
        # ~52 ticks of flight collapse into a handful of engine wakes.
        assert engine.wakes < 10

    def test_capture_leg_not_analytic(self):
        engine_run, engine = fly_engine([(0.0, 0.0), (40.0, 0.0)])
        assert engine.analytic_legs == 0

    def test_strict_battery_disables_analytic(self):
        route = [(0.0, 0.0), (60.0, 0.0)]
        engine_run, engine = fly_engine(route, capture=False, strict=True)
        assert engine.analytic_legs == 0
        assert fly_legacy(route, capture=False, strict=True) == engine_run

    def test_failure_truncates_analytic_leg(self):
        route = [(0.0, 0.0), (400.0, 0.0)]
        engine_run, engine = fly_engine(route, capture=False, kill_at=5.3)
        legacy = fly_legacy(route, capture=False, kill_at=5.3)
        assert engine.analytic_legs == 1
        assert legacy == engine_run
        assert engine_run["finish_time"] == 6.0

    def test_failure_at_exact_tick_boundary(self):
        route = [(0.0, 0.0), (400.0, 0.0)]
        engine_run, _ = fly_engine(route, capture=False, kill_at=6.0)
        assert fly_legacy(route, capture=False, kill_at=6.0) == engine_run


class TestHeartbeatParity:
    def _swarm(self, env):
        drones = [Drone(env, f"d{i}", DroneConstants()) for i in range(4)]
        return Swarm(env, drones)

    def test_beats_match_legacy(self):
        env_a = Environment()
        legacy = self._swarm(env_a)
        legacy.start_heartbeats()
        env_a.run(until=5.5)

        env_b = Environment()
        vector = self._swarm(env_b)
        vector.start_heartbeats(engine=SwarmEngine(env_b))
        env_b.run(until=5.5)

        assert vector.heartbeat_bus.items == legacy.heartbeat_bus.items
        assert len(vector.heartbeat_bus.items) == 4 * 6

    def test_beats_stop_after_failure(self):
        env = Environment()
        swarm = self._swarm(env)
        swarm.start_heartbeats(engine=SwarmEngine(env))
        swarm.fail_device_at("d0", at_time=2.5)
        env.run(until=10.0)
        beats = [b for b in swarm.heartbeat_bus.items if b.device_id == "d0"]
        assert len(beats) == 3  # t = 0, 1, 2

    def test_beats_reach_sinks(self):
        env = Environment()
        swarm = self._swarm(env)
        seen = []
        swarm.subscribe_heartbeats(seen.append)
        swarm.start_heartbeats(engine=SwarmEngine(env))
        env.run(until=2.5)
        assert len(seen) == 4 * 3
        assert not swarm.heartbeat_bus.items  # sinks bypass the bus


def _scenario_fingerprint(**kwargs):
    result = ScenarioRunner(**kwargs).run()
    return {
        "makespan": result.extras["makespan_s"],
        "found": result.extras.get("items_found",
                                   result.extras.get("unique_people")),
        "latencies": tuple(result.task_latencies.values),
        "failed": tuple(result.extras["failed_devices"]),
        "energy": tuple(tuple(sorted(account.by_category().items()))
                        for account in result.energy_accounts),
    }


class TestScenarioParity:
    """Full-scenario byte parity, including the energy-accounting suite:
    motion/radio/compute draws plus lazy idle settlement must sum to the
    same per-device totals under both flight paths."""

    def test_hivemind_scenario_a(self):
        base = dict(config=platform_config("hivemind"),
                    scenario=SCENARIO_A, seed=0, n_devices=16)
        legacy = _scenario_fingerprint(vector_edge=False, **base)
        vector = _scenario_fingerprint(vector_edge=True, **base)
        assert legacy == vector
        for per_device in vector["energy"]:
            categories = dict(per_device)
            assert categories["motion"] > 0
            assert categories["idle"] > 0

    def test_distributed_edge_scenario_a(self):
        base = dict(config=platform_config("distributed_edge"),
                    scenario=SCENARIO_A, seed=1, n_devices=8)
        legacy = _scenario_fingerprint(vector_edge=False, **base)
        vector = _scenario_fingerprint(vector_edge=True, **base)
        assert legacy == vector

    def test_parity_with_injected_failure(self):
        base = dict(config=platform_config("hivemind"),
                    scenario=SCENARIO_A, seed=2, n_devices=16,
                    fail_device_at=(3, 12.0))
        legacy = _scenario_fingerprint(vector_edge=False, **base)
        vector = _scenario_fingerprint(vector_edge=True, **base)
        assert legacy == vector
        assert vector["failed"]  # the injected failure was detected

    def test_env_kill_switch(self, monkeypatch):
        monkeypatch.setenv("REPRO_VECTOR_EDGE", "0")
        runner = ScenarioRunner(platform_config("hivemind"), SCENARIO_A)
        assert runner.vector_edge is False
        monkeypatch.setenv("REPRO_VECTOR_EDGE", "1")
        runner = ScenarioRunner(platform_config("hivemind"), SCENARIO_A)
        assert runner.vector_edge is True
        # Explicit argument wins over the environment.
        runner = ScenarioRunner(platform_config("hivemind"), SCENARIO_A,
                                vector_edge=False)
        assert runner.vector_edge is False


class TestSatelliteBugfixes:
    def test_execute_no_compute_charge_after_failure(self):
        env = Environment()
        device = Drone(env, "d0", DroneConstants())

        def killer():
            yield env.timeout(0.1)
            device.fail()

        env.process(killer())
        env.run(env.process(device.execute(1.0)))  # runs past the failure
        assert device.busy_compute_s == 0.0
        assert device.energy.by_category().get("compute", 0.0) == 0.0

    def test_execute_charges_when_alive(self):
        env = Environment()
        device = Drone(env, "d0", DroneConstants())
        env.run(env.process(device.execute(1.0)))
        assert device.busy_compute_s > 0.0
        assert device.energy.by_category()["compute"] > 0.0

    def test_turn_advances_world_clock(self, rng):
        env = Environment()
        world = FieldWorld(100, 100, rng)
        drone = Drone(env, "d0", DroneConstants())
        assert drone.constants.turn_time_s > 0
        env.run(env.process(drone.fly_route(
            [(0.0, 0.0), (8.0, 0.0), (8.0, 8.0)], world)))
        # Without the fix the world clock lags env.now by the turn time
        # whenever a route ends on a turn boundary.
        assert world._clock == env.now
