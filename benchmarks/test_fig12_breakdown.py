"""Fig 12: latency breakdown — centralized vs HiveMind.

Paper shape: network acceleration + hybrid execution collapse the network
share (33% -> ~9% in the paper); management and data-I/O shares shrink;
the execution share grows under HiveMind (some tasks run on slower edge
devices) — the deliberate trade for less traffic and better scaling.
"""

import numpy as np

from repro.experiments import fig12_breakdown


def test_fig12_breakdown(run_figure):
    result = run_figure(fig12_breakdown.run)
    app_keys = [f"S{i}" for i in range(1, 11)] + ["ScA", "ScB"]
    centralized_shares = []
    hivemind_shares = []
    for key in app_keys:
        centralized = result.data[f"{key}:centralized_faas"]
        hivemind = result.data[f"{key}:hivemind"]
        centralized_shares.append(centralized["mean_network"])
        hivemind_shares.append(hivemind["mean_network"])
    mean_centralized = float(np.mean(centralized_shares))
    mean_hivemind = float(np.mean(hivemind_shares))
    # The network share drops to a fraction of the centralized one.
    assert mean_hivemind < 0.6 * mean_centralized
    # Execution's share grows under HiveMind.
    exec_centralized = np.mean([
        result.data[f"{k}:centralized_faas"]["tail"]["execution"]
        for k in app_keys])
    exec_hivemind = np.mean([
        result.data[f"{k}:hivemind"]["tail"]["execution"]
        for k in app_keys])
    assert exec_hivemind > exec_centralized
