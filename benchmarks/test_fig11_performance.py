"""Fig 11: latency PDFs — centralized, distributed, HiveMind.

Paper shape: HiveMind is consistently the fastest and least variable;
the biggest wins are on compute/memory-heavy jobs and Scenario B; S3/S4
show small benefits; HiveMind's end-to-end is ~56% better than
centralized on average (up to 2.85x).
"""

import numpy as np

from repro.experiments import fig11_performance


def test_fig11_latency_pdfs(run_figure):
    result = run_figure(fig11_performance.run)
    ratios = []
    light = {"S3", "S4", "S7"}  # paper: these show small benefits
    for app_key in ("S1", "S2", "S3", "S4", "S5", "S6", "S7", "S8",
                    "S9", "S10"):
        hivemind = result.data[f"{app_key}:hivemind"]
        centralized = result.data[f"{app_key}:centralized_faas"]
        distributed = result.data[f"{app_key}:distributed_edge"]
        slack = 1.35 if app_key in light else 1.02
        assert hivemind.median <= centralized.median * slack
        assert hivemind.median <= distributed.median * slack
        ratios.append(centralized.median / hivemind.median)
    # Meaningful average improvement over centralized across the suite.
    assert float(np.mean(ratios)) > 1.1
    # Small benefit for drone detection / obstacle avoidance.
    assert ratios[2] < 2.0 and ratios[3] < 3.0
    # Scenario makespans: HiveMind wins both.
    for scenario in ("ScA", "ScB"):
        assert result.data[f"{scenario}:hivemind"]["makespan_s"] < \
            result.data[f"{scenario}:centralized_faas"]["makespan_s"]
        assert result.data[f"{scenario}:hivemind"]["makespan_s"] < \
            result.data[f"{scenario}:distributed_edge"]["makespan_s"]
