"""Fig 4: task/job latency, centralized cloud vs distributed edge.

Paper shape: centralized wins for most jobs (higher compute + serverless
concurrency) despite offloading costs; S3/S7 are comparable on both tiers;
S4 (obstacle avoidance) is better at the edge; the scenarios behave
similarly, more pronounced for Scenario B.
"""

from repro.experiments import fig04_centralized_vs_distributed


def test_fig04_distributions(run_figure):
    result = run_figure(fig04_centralized_vs_distributed.run,
                        scenario_repeats=2)

    def median(key):
        return result.data[key].median if hasattr(
            result.data[key], "median") else None

    # Heavy jobs: centralized much faster.
    for app_key in ("S1", "S2", "S5", "S9", "S10"):
        cloud = result.data[f"{app_key}:centralized_faas"].median
        edge = result.data[f"{app_key}:distributed_edge"].median
        assert edge > 2.5 * cloud
    # Light jobs: comparable.
    for app_key in ("S3", "S7"):
        cloud = result.data[f"{app_key}:centralized_faas"].median
        edge = result.data[f"{app_key}:distributed_edge"].median
        assert edge < 2.5 * cloud
    # Obstacle avoidance wins at the edge (no network round trip).
    s4_cloud = result.data["S4:centralized_faas"].median
    s4_edge = result.data["S4:distributed_edge"].median
    assert s4_edge < s4_cloud
    # Scenarios: distributed takes longer end to end.
    for scenario in ("ScA", "ScB"):
        cloud = result.data[f"{scenario}:centralized_faas"]["makespans_s"]
        edge = result.data[f"{scenario}:distributed_edge"]["makespans_s"]
        assert min(edge) > max(cloud) * 0.9
