"""Micro-ablations of individual HiveMind mechanisms (sections 4.3/4.6).

These supplement the paper's Fig 13 system ablation with the design
choices DESIGN.md calls out: container colocation, the keep-alive window,
and straggler mitigation.
"""

from repro.experiments import ablation_mechanisms


def test_ablation_colocation(run_figure):
    result = run_figure(ablation_mechanisms.run_colocation)
    hivemind = result.data["hivemind"]
    stock = result.data["openwhisk"]
    # The HiveMind scheduler actually colocates and it pays off.
    assert hivemind["colocated"] > 50
    assert stock["colocated"] == 0
    assert hivemind["median_s"] < stock["median_s"]


def test_ablation_keepalive(run_figure):
    result = run_figure(ablation_mechanisms.run_keepalive)
    cold = {key: entry["cold_fraction"]
            for key, entry in result.data.items()}
    # Cold-start fraction falls monotonically with keep-alive and has
    # converged by the paper's 10-30 s operating range.
    assert cold["0.2"] > cold["5.0"] > cold["60.0"]
    assert cold["20.0"] < 0.1
    assert abs(cold["20.0"] - cold["60.0"]) < 0.05
    # Latency follows.
    assert result.data["0.2"]["median_s"] > result.data["20.0"]["median_s"]


def test_ablation_straggler(run_figure):
    result = run_figure(ablation_mechanisms.run_straggler)
    baseline = result.data["baseline"]
    mitigated = result.data["mitigated"]
    assert mitigated["duplicates"] > 0
    # Duplicates cut the tail without hurting the median materially.
    assert mitigated["p99_s"] < 0.7 * baseline["p99_s"]
    assert mitigated["median_s"] < 1.3 * baseline["median_s"]
