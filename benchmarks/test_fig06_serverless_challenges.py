"""Fig 6: the challenges of serverless for edge applications.

Paper shape: (a) serverless latency is consistently more variable than
reserved resources; (b) container instantiation is a substantial latency
share (~22% of median on average; above 40% for short weather-analytics
tasks, below 20% for long maze tasks); (c) CouchDB data sharing is the
slowest with a heavy tail, direct RPC is considerably faster, in-memory
is nearly free.
"""

import numpy as np

from repro.experiments import fig06_serverless_challenges


def test_fig06a_variability(run_figure):
    result = run_figure(fig06_serverless_challenges.run_variability)
    worse = sum(1 for entry in result.data.values()
                if entry["serverless_cv"] > entry["reserved_cv"])
    assert worse >= 9


def test_fig06b_instantiation(run_figure):
    result = run_figure(fig06_serverless_challenges.run_breakdown,
                        n_tasks=100)
    shares = {key: entry["instantiation_pct"]
              for key, entry in result.data.items()}
    mean_share = float(np.mean(list(shares.values())))
    assert 15 <= mean_share <= 40          # paper: ~22% average
    assert shares["S7"] > 40               # short tasks: cold-start bound
    assert shares["S6"] < 20               # long tasks: execution bound


def test_fig06c_data_sharing(run_figure):
    result = run_figure(fig06_serverless_challenges.run_sharing)
    for key, entry in result.data.items():
        # The exchange itself: CouchDB > RPC > in-memory, at the median
        # and at the tail.
        assert entry["couchdb.share"].median > \
            entry["rpc.share"].median > entry["in_memory.share"].median
        assert entry["couchdb.share"].p99 > entry["rpc.share"].p99
        assert entry["couchdb.share"].p99 > entry["in_memory.share"].p99
