"""Fig 14: battery and bandwidth consumption across platforms.

Paper shape: distributed burns the most battery; HiveMind the least
(with S3/S4 as mild exceptions where splitting buys nothing); bandwidth
is highest for centralized, lowest for distributed, with HiveMind in
between and a small mean-to-tail gap.
"""

import numpy as np

from repro.experiments import fig14_power_bandwidth


def test_fig14_power_bandwidth(run_figure):
    result = run_figure(fig14_power_bandwidth.run)
    app_keys = [f"S{i}" for i in range(1, 11)]

    def column(platform, field):
        return np.array([result.data[f"{k}:{platform}"][field]
                         for k in app_keys])

    battery = {p: column(p, "battery_mean_pct")
               for p in ("centralized_faas", "distributed_edge",
                         "hivemind")}
    bandwidth = {p: column(p, "bandwidth_mean_mbs")
                 for p in ("centralized_faas", "distributed_edge",
                           "hivemind")}
    # Battery: distributed worst on average; HiveMind best on average.
    assert battery["distributed_edge"].mean() > \
        battery["hivemind"].mean()
    assert battery["hivemind"].mean() <= \
        battery["centralized_faas"].mean()
    # Bandwidth: centralized >> hivemind >> distributed.
    assert bandwidth["centralized_faas"].mean() > \
        1.3 * bandwidth["hivemind"].mean()
    assert bandwidth["hivemind"].mean() > \
        5 * bandwidth["distributed_edge"].mean()
    # Scenarios follow the same battery ordering.
    for scenario in ("ScA", "ScB"):
        assert result.data[f"{scenario}:hivemind"][
            "battery_mean_pct"] < result.data[
            f"{scenario}:distributed_edge"]["battery_mean_pct"]
