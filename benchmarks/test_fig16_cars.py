"""Fig 16: HiveMind on the robotic-car swarm.

Paper shape: HiveMind gives the best and most predictable job latency on
both car scenarios, especially versus the distributed configuration; the
battery ordering matches, with smaller spreads than the drones (cars are
much less power-constrained).
"""

from repro.experiments import fig16_cars


def test_fig16_cars(run_figure):
    result = run_figure(fig16_cars.run)
    for scenario in ("TreasureHunt", "Maze"):
        hivemind = result.data[f"{scenario}:hivemind"]
        centralized = result.data[f"{scenario}:centralized_faas"]
        distributed = result.data[f"{scenario}:distributed_edge"]
        assert hivemind["job_median_s"] <= centralized["job_median_s"] * 1.02
        assert hivemind["job_median_s"] < distributed["job_median_s"]
        assert hivemind["battery_mean_pct"] <= \
            distributed["battery_mean_pct"]
        # Predictability: HiveMind's tail stays close to its median.
        assert hivemind["job_p99_s"] < 2.0 * hivemind["job_median_s"]
