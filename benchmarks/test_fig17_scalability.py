"""Fig 17: HiveMind's scalability with resolution and swarm size.

Paper shape: (a) even at maximum resolution and frame rate HiveMind does
not saturate the network (the on-board filter bounds upstream traffic);
(b) bandwidth grows sublinearly in devices (runtime remapping pushes more
computation on-board at scale) while tail latency stays controlled — in
contrast to the centralized system's saturation.
"""

from repro.experiments import fig17_scalability

SIZES = (16, 32, 64, 128, 256, 512)


def test_fig17a_resolution(run_figure):
    result = run_figure(fig17_scalability.run_resolution)
    for scenario in ("ScA", "ScB"):
        base = result.data[f"{scenario}:0.5MB@8fps"]
        maximum = result.data[f"{scenario}:8.0MB@32fps"]
        # 64x the raw data, but latency stays within a small factor and
        # the network never saturates.
        assert maximum["tail_s"] < 4 * base["tail_s"]
        assert maximum["makespan_s"] < 1.5 * base["makespan_s"]


def test_fig17b_swarm_size(run_figure):
    result = run_figure(fig17_scalability.run_swarm_size,
                        sizes=SIZES, include_centralized_upto=128)
    bw16 = result.data["ScA:hivemind:16"]["bandwidth_mbs"]
    bw512 = result.data["ScA:hivemind:512"]["bandwidth_mbs"]
    # Sublinear bandwidth growth: 32x devices -> well under 32x traffic.
    assert bw512 < 0.8 * 32 * bw16
    # Near-flat completion time across the sweep.
    makespans = [result.data[f"ScA:hivemind:{n}"]["makespan_s"]
                 for n in SIZES]
    assert max(makespans) < 1.6 * min(makespans)
    # Centralized is already worse at 128 devices.
    assert result.data["ScA:centralized:128"]["makespan_s"] > \
        result.data["ScA:hivemind:128"]["makespan_s"]
