"""Fig 18: simulator validation.

Paper shape: the event simulator's tail latency deviates from the
independent reference by less than 5% for every application on every
platform (the paper's reference is the physical testbed; ours is the
closed-form queueing model — see DESIGN.md).
"""

from repro.experiments import fig18_validation


def test_fig18_validation(run_figure):
    result = run_figure(fig18_validation.run)
    deviations = [abs(entry["tail_deviation_pct"])
                  for entry in result.data.values()]
    assert len(deviations) == 30  # 10 apps x 3 platforms
    assert max(deviations) < 5.0
