"""Fig 13: incremental benefit of each HiveMind technique.

Paper shape: network acceleration helps the centralized system but it
stays behind HiveMind; adding remote-memory acceleration helps a bit
more; the distributed system barely benefits from acceleration; HiveMind
without acceleration keeps the hybrid benefit but regresses toward
software networking costs. No single technique suffices.
"""

import numpy as np

from repro.experiments import fig13_ablation


def test_fig13_ablation(run_figure):
    result = run_figure(fig13_ablation.run)
    app_keys = [f"S{i}" for i in range(1, 11)]

    def medians(config):
        return np.array([result.data[f"{k}:{config}"]["median_s"]
                         for k in app_keys])

    hivemind = medians("hivemind")
    centr_net = medians("centralized_net_accel")
    centr_net_rm = medians("centralized_net_remote")
    distributed = medians("distributed_edge")
    distr_net = medians("distributed_net_accel")
    hivemind_no_accel = medians("hivemind_no_accel")

    # Full HiveMind is the best configuration on average.
    for other in (centr_net, centr_net_rm, distributed, distr_net,
                  hivemind_no_accel):
        assert hivemind.mean() <= other.mean() * 1.02
    # Remote memory on top of net accel never hurts the centralized
    # system (single-tier tasks barely exercise it, so roughly equal).
    assert centr_net_rm.mean() <= centr_net.mean() * 1.05
    # The distributed system barely benefits from acceleration.
    assert abs(distr_net.mean() - distributed.mean()) < \
        0.15 * distributed.mean()
    # HiveMind without acceleration still beats the distributed system
    # (hybrid placement) but loses to full HiveMind.
    assert hivemind_no_accel.mean() < distributed.mean()
    assert hivemind.mean() < hivemind_no_accel.mean()
    # Scenario makespans: full HiveMind wins end to end too.
    for scenario in ("ScA", "ScB"):
        full = result.data[f"{scenario}:hivemind"]["median_s"]
        for config in ("centralized_net_accel", "distributed_edge",
                       "hivemind_no_accel"):
            assert full <= result.data[f"{scenario}:{config}"][
                "median_s"] * 1.02
