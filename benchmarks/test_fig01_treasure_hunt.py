"""Fig 1: treasure-hunt execution time + battery, real and simulated swarms.

Paper shape: HiveMind fastest and most battery-efficient at 16 drones;
at large scale the centralized systems degrade dramatically (the static
IaaS reservation collapses, the FaaS control plane saturates) while
HiveMind stays flat; distributed scales in time but burns the most battery
among the scalable systems.
"""

from repro.experiments import fig01_treasure_hunt

N_LARGE = 512


def test_fig01_treasure_hunt(run_figure):
    result = run_figure(fig01_treasure_hunt.run,
                        repeats=1, n_small=16, n_large=N_LARGE)
    small = {name: result.data[f"16:{name}"]
             for name in fig01_treasure_hunt.PLATFORM_ORDER}
    large = {name: result.data[f"{N_LARGE}:{name}"]
             for name in fig01_treasure_hunt.PLATFORM_ORDER}

    # 16-drone swarm: HiveMind wins time and battery; FaaS beats IaaS and
    # the distributed system; distributed burns the most battery.
    times16 = {n: e["exec_time_s"] for n, e in small.items()}
    batteries16 = {n: e["battery_pct"] for n, e in small.items()}
    assert times16["hivemind"] == min(times16.values())
    assert times16["centralized_faas"] <= times16["centralized_iaas"]
    assert times16["centralized_faas"] < times16["distributed_edge"]
    assert batteries16["hivemind"] == min(batteries16.values())
    assert batteries16["distributed_edge"] > batteries16["hivemind"]

    # Large swarm: centralized systems hit scalability walls; HiveMind is
    # near-flat; the gap is more dramatic than at 16 drones.
    times_large = {n: e["exec_time_s"] for n, e in large.items()}
    assert times_large["hivemind"] < 1.5 * times16["hivemind"]
    assert times_large["centralized_iaas"] > \
        5 * times_large["hivemind"]
    assert times_large["centralized_faas"] > times_large["hivemind"]
    small_gap = times16["centralized_iaas"] / times16["hivemind"]
    large_gap = times_large["centralized_iaas"] / times_large["hivemind"]
    assert large_gap > small_gap
