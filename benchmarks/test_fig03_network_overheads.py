"""Fig 3: network overheads of fully centralized execution.

Paper shape: (a) networking is at least ~22% of median latency across all
jobs and a larger share at the tail; (b) S1's tail latency explodes once
the drone count crosses the shared-medium capacity, with higher
resolutions saturating at fewer drones (8 MB below 4 drones).
"""

import numpy as np

from repro.experiments import fig03_network_overheads


def test_fig03a_latency_breakdown(run_figure):
    result = run_figure(fig03_network_overheads.run_breakdown)
    shares = {key: entry["median"]["network"]
              for key, entry in result.data.items()}
    assert all(share >= 0.18 for share in shares.values())
    assert float(np.mean(list(shares.values()))) >= 0.27
    # The multi-phase scenarios are the most network-bound.
    assert shares["ScA"] > 0.5 and shares["ScB"] > 0.5


def test_fig03b_saturation(run_figure):
    result = run_figure(fig03_network_overheads.run_saturation)
    # Few drones at max resolution: latency still an order of magnitude
    # below the saturated regime.
    assert result.data["8.0MB:2"]["tail_ms"] < \
        0.15 * result.data["8.0MB:16"]["tail_ms"]
    # Saturation explodes the tail at large counts.
    assert result.data["8.0MB:16"]["tail_ms"] > \
        5 * result.data["8.0MB:2"]["tail_ms"]
    # Higher resolution saturates at fewer drones.
    assert result.data["8.0MB:8"]["tail_ms"] > \
        2 * result.data["2.0MB:8"]["tail_ms"]
    # Bandwidth bars rise with offered load until capacity.
    assert result.data["2.0MB:16"]["bandwidth_mbs"] > \
        result.data["2.0MB:2"]["bandwidth_mbs"]
