"""Fig 15: decision quality without and with retraining.

Paper shape: never-retrained models leave non-trivial false positives and
negatives; per-device retraining improves accuracy but leaves residual
errors; swarm-wide retraining quickly resolves nearly all of them.
"""

from repro.experiments import fig15_learning


def test_fig15_learning(run_figure):
    result = run_figure(fig15_learning.run)
    for scenario in ("ScA", "ScB"):
        none = result.data[f"{scenario}:none"]
        self_mode = result.data[f"{scenario}:self"]
        swarm = result.data[f"{scenario}:swarm"]
        # Monotone improvement: none < self < swarm.
        assert none["correct_pct"] < self_mode["correct_pct"] < \
            swarm["correct_pct"]
        # The untrained baseline leaves a non-trivial error rate.
        assert none["fn_pct"] + none["fp_pct"] > 15
        # Swarm-wide retraining nearly eliminates errors.
        assert swarm["correct_pct"] > 90
        assert swarm["fn_pct"] + swarm["fp_pct"] < 10
