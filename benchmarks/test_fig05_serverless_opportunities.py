"""Fig 5: the opportunities of serverless for edge jobs.

Paper shape: (a) serverless beats equal-cost fixed deployments, and
intra-task parallelism multiplies the win for OCR/SLAM while buying little
for maze/weather; (b) under fluctuating load, serverless tracks the load
while the average-provisioned pool saturates and the max-provisioned pool
idles; (c) respawns hide even 20% function failures.
"""

from repro.experiments import fig05_serverless_opportunities


def test_fig05a_concurrency(run_figure):
    result = run_figure(fig05_serverless_opportunities.run_concurrency)
    for key in ("S1", "S2", "S9", "S10"):
        entry = result.data[key]
        assert entry["serverless_s"] < entry["fixed_s"]
        assert entry["intra_s"] < 0.7 * entry["fixed_s"]
    # Dramatic intra-task improvement for the parallel, heavy jobs.
    assert result.data["S9"]["intra_s"] < \
        0.65 * result.data["S9"]["serverless_s"]
    assert result.data["S10"]["intra_s"] < \
        0.65 * result.data["S10"]["serverless_s"]
    # Maze/weather gain little from fine-grained parallelism.
    for key in ("S6", "S7"):
        entry = result.data[key]
        assert entry["intra_s"] > 0.5 * entry["serverless_s"]


def test_fig05b_elasticity(run_figure):
    result = run_figure(fig05_serverless_opportunities.run_elasticity)
    assert result.data["serverless"]["p99_s"] < \
        result.data["fixed_avg"]["p99_s"]
    # Max-provisioned performs but wastes reserved resources.
    assert result.data["fixed_max"]["p99_s"] < \
        result.data["fixed_avg"]["p99_s"]
    assert result.data["fixed_max"]["utilization"] < 0.6


def test_fig05c_fault_tolerance(run_figure):
    result = run_figure(fig05_serverless_opportunities.run_fault_tolerance)
    clean = result.data["0%"]
    for label in ("5%", "10%", "20%"):
        faulty = result.data[label]
        assert faulty["respawns"] > 0
        assert faulty["completed"] >= 0.95 * clean["completed"]
    # Respawned work raises the active-task population.
    assert result.data["20%"]["peak_active"] >= clean["peak_active"]
