"""Benchmark harness configuration.

Every benchmark regenerates one of the paper's tables/figures: it runs the
figure's experiment once (simulations are deterministic per seed — there is
no point in repeated timing rounds), prints the same rows/series the paper
reports, and asserts the expected *shape* (who wins, rough factors, where
crossovers fall — not absolute numbers, which belonged to the authors'
physical testbed).

Each run also appends a per-figure timing record (wall seconds, kernel
events dispatched, events/second) to ``BENCH_kernel.json`` at the repo
root, building the kernel's performance trajectory run over run.

Run with ``pytest benchmarks/ --benchmark-only``; add ``-s`` to see the
tables inline.
"""

import time

import pytest

from repro.experiments import parallel
from repro.experiments.bench import record_bench


@pytest.fixture
def run_figure(benchmark):
    """Run a figure harness once under the benchmark timer and print it."""

    def runner(fn, **kwargs):
        events_before = parallel.total_events_consumed()
        start = time.perf_counter()
        result = benchmark.pedantic(
            lambda: fn(**kwargs), rounds=1, iterations=1)
        wall_s = time.perf_counter() - start
        sim_events = parallel.total_events_consumed() - events_before
        record_bench(f"figure:{result.figure}", wall_s, sim_events)
        print()
        print(result.render())
        return result

    return runner
