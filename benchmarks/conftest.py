"""Benchmark harness configuration.

Every benchmark regenerates one of the paper's tables/figures: it runs the
figure's experiment once (simulations are deterministic per seed — there is
no point in repeated timing rounds), prints the same rows/series the paper
reports, and asserts the expected *shape* (who wins, rough factors, where
crossovers fall — not absolute numbers, which belonged to the authors'
physical testbed).

Run with ``pytest benchmarks/ --benchmark-only``; add ``-s`` to see the
tables inline.
"""

import pytest


@pytest.fixture
def run_figure(benchmark):
    """Run a figure harness once under the benchmark timer and print it."""

    def runner(fn, **kwargs):
        result = benchmark.pedantic(
            lambda: fn(**kwargs), rounds=1, iterations=1)
        print()
        print(result.render())
        return result

    return runner
