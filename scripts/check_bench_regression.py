#!/usr/bin/env python
"""Fail when the kernel's smoke throughput regresses against the baseline.

Compares the newest ``smoke:total`` record in ``BENCH_kernel.json``
(appended by the CI bench job that just ran) against the *best of the
last K committed* ``smoke:total`` records (default 5, ``--window``)
and exits non-zero when events/second drops by more than the allowed
fraction (default 30%). Taking the best of a window — not just the
second-newest record — matters: a regression that survives one bench
run would otherwise become the next run's baseline, and the check
would ratchet *down* 30% at a time without ever failing. A bounded
window (rather than the whole history) still lets a PR that
legitimately shifts the events/second scale (e.g. by deleting cheap
kernel events outright, which lowers events/s while *improving* wall
clock) re-baseline the check within K committed smoke records.

With ``--pair PREFIX`` the script instead gates a milestone *pair*
(e.g. the ``--bench-shard`` records): it finds the newest
``PREFIX:1shard`` baseline and the newest multi-shard leg and fails when
the recorded wall-clock speedup falls below ``--min-speedup``. Hosts
differ (CI runners have 2-4 cores, quota-limited containers may have
one), so the CI floor is deliberately lower than the speedup a
dedicated box shows — the gate catches the sharded runtime regressing
toward parity, not machine variance.

Usage::

    python scripts/check_bench_regression.py [--max-drop 0.30] [PATH]
    python scripts/check_bench_regression.py \
        --pair milestone:fig17b-shard-1024 --min-speedup 1.2
    python scripts/check_bench_regression.py \
        --pair milestone:fig17b-cloudshard-1024 \
        --baseline edge-sharded --min-speedup 1.3
"""

import argparse
import json
import pathlib
import sys

DEFAULT_PATH = pathlib.Path(__file__).resolve().parents[1] / "BENCH_kernel.json"


def check_pair(runs, prefix, min_speedup, baseline_suffix="1shard") -> int:
    """Gate the newest milestone pair under ``prefix``.

    With the default suffix the pair is the historical ``--bench-shard``
    shape (``PREFIX:1shard`` vs the newest ``PREFIX:<n>shard``). A custom
    ``baseline_suffix`` (e.g. ``edge-sharded`` for the ``--bench-cloudshard``
    pair) relaxes the candidate match to *any* other label under the
    prefix, since those legs are named, not counted.
    """
    def newest(predicate):
        hits = [r for r in runs if isinstance(r, dict) and r.get("wall_s")
                and predicate(r.get("label", ""))]
        return hits[-1] if hits else None

    baseline_label = f"{prefix}:{baseline_suffix}"
    baseline = newest(lambda lab: lab == baseline_label)
    if baseline_suffix == "1shard":
        candidate = newest(lambda lab: lab.startswith(f"{prefix}:")
                           and lab.endswith("shard")
                           and lab != baseline_label)
    else:
        candidate = newest(lambda lab: lab.startswith(f"{prefix}:")
                           and lab != baseline_label)
    if baseline is None or candidate is None:
        print(f"[bench] need a {baseline_suffix} + candidate record under "
              f"'{prefix}' to compare; skipping")
        return 0
    speedup = baseline["wall_s"] / candidate["wall_s"]
    verdict = "OK" if speedup >= min_speedup else "REGRESSION"
    print(f"[bench] {prefix}: {baseline_suffix} {baseline['wall_s']:.2f}s "
          f"({baseline.get('date', '?')}), {candidate['label'].split(':')[-1]} "
          f"{candidate['wall_s']:.2f}s ({candidate.get('date', '?')}), "
          f"speedup {speedup:.2f}x, floor {min_speedup:.2f}x -> {verdict}")
    return 0 if verdict == "OK" else 1


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("path", nargs="?", default=str(DEFAULT_PATH),
                        help="trajectory file (default: repo BENCH_kernel.json)")
    parser.add_argument("--max-drop", type=float, default=0.30,
                        help="allowed fractional events/s drop vs the "
                             "baseline (default 0.30)")
    parser.add_argument("--window", type=int, default=5, metavar="K",
                        help="baseline is the best of the last K records "
                             "before the newest (default 5; prevents a "
                             "surviving regression from ratcheting the "
                             "baseline down)")
    parser.add_argument("--label", default="smoke:total",
                        help="record label to compare (default smoke:total)")
    parser.add_argument("--pair", metavar="PREFIX",
                        help="gate a --bench-shard pair instead: compare the "
                             "newest 'PREFIX:1shard' record against the "
                             "newest multi-shard record")
    parser.add_argument("--min-speedup", type=float, default=1.2,
                        help="wall-clock speedup floor for --pair "
                             "(default 1.2)")
    parser.add_argument("--baseline", metavar="SUFFIX", default="1shard",
                        help="baseline label suffix for --pair (default "
                             "'1shard'; use 'edge-sharded' for the "
                             "--bench-cloudshard pair)")
    args = parser.parse_args(argv)

    with open(args.path) as handle:
        runs = json.load(handle).get("runs", [])

    if args.pair:
        return check_pair(runs, args.pair, args.min_speedup, args.baseline)
    # Records may carry manifest fields this script predates (git_rev,
    # flags, ...) or be malformed entirely; look only at what we need and
    # skip anything that is not a record object. Seed-era records carry
    # ``sim_events: null`` (wall-clock timed before the kernel exported
    # an event counter) — they have no events/second figure, so they are
    # excluded from the comparison explicitly rather than by accident.
    labeled = [r for r in runs if isinstance(r, dict)
               and r.get("label") == args.label]
    seed_era = [r for r in labeled if r.get("sim_events") is None]
    if seed_era:
        print(f"[bench] skipping {len(seed_era)} seed-era "
              f"'{args.label}' record(s) without event counts")
    # Zero-event closed-form runs record ``events_per_s: null`` (older
    # files: ``0``): no events/second figure either way, so they are
    # skipped explicitly, not silently dropped by the filter below.
    zero_event = [r for r in labeled if r.get("sim_events") is not None
                  and not r.get("events_per_s")]
    if zero_event:
        print(f"[bench] skipping {len(zero_event)} zero-event "
              f"'{args.label}' record(s) (closed-form runs have no "
              f"events/second figure)")
    matching = [r for r in labeled if r.get("events_per_s")]
    if len(matching) < 2:
        print(f"[bench] need >=2 '{args.label}' records to compare "
              f"(found {len(matching)}); skipping")
        return 0
    if args.window < 1:
        parser.error("--window must be at least 1")

    # Baseline: best events/s among the last K records before the
    # newest. Comparing newest vs second-newest let a regression that
    # survived one run become the next run's baseline (ratchet-down).
    newest = matching[-1]
    pool = matching[-(args.window + 1):-1]
    baseline = max(pool, key=lambda r: r["events_per_s"])
    floor = baseline["events_per_s"] * (1.0 - args.max_drop)
    verdict = "OK" if newest["events_per_s"] >= floor else "REGRESSION"
    print(f"[bench] {args.label}: baseline {baseline['events_per_s']}/s "
          f"(best of last {len(pool)}, {baseline.get('date', '?')}), "
          f"newest {newest['events_per_s']}/s "
          f"({newest.get('date', '?')}), floor {floor:.0f}/s -> {verdict}")
    return 0 if verdict == "OK" else 1


if __name__ == "__main__":
    sys.exit(main())
