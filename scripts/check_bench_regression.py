#!/usr/bin/env python
"""Fail when the kernel's smoke throughput regresses against the baseline.

Compares the newest ``smoke:total`` record in ``BENCH_kernel.json``
(appended by the CI bench job that just ran) against the *checked-in
baseline* — the most recent ``smoke:total`` record committed to the
file, i.e. the second-newest after CI's append — and exits non-zero when
events/second drops by more than the allowed fraction (default 30%).
Comparing against the most recent committed record (rather than the
oldest) matters: a PR that legitimately shifts the events/second scale
(e.g. by deleting cheap kernel events outright, which lowers events/s
while *improving* wall clock) re-baselines the check by committing its
own smoke records.

Usage::

    python scripts/check_bench_regression.py [--max-drop 0.30] [PATH]
"""

import argparse
import json
import pathlib
import sys

DEFAULT_PATH = pathlib.Path(__file__).resolve().parents[1] / "BENCH_kernel.json"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("path", nargs="?", default=str(DEFAULT_PATH),
                        help="trajectory file (default: repo BENCH_kernel.json)")
    parser.add_argument("--max-drop", type=float, default=0.30,
                        help="allowed fractional events/s drop vs the "
                             "baseline (default 0.30)")
    parser.add_argument("--label", default="smoke:total",
                        help="record label to compare (default smoke:total)")
    args = parser.parse_args(argv)

    with open(args.path) as handle:
        runs = json.load(handle).get("runs", [])
    # Records may carry manifest fields this script predates (git_rev,
    # flags, ...) or be malformed entirely; look only at what we need and
    # skip anything that is not a record object. Seed-era records carry
    # ``sim_events: null`` (wall-clock timed before the kernel exported
    # an event counter) — they have no events/second figure, so they are
    # excluded from the comparison explicitly rather than by accident.
    labeled = [r for r in runs if isinstance(r, dict)
               and r.get("label") == args.label]
    seed_era = [r for r in labeled if r.get("sim_events") is None]
    if seed_era:
        print(f"[bench] skipping {len(seed_era)} seed-era "
              f"'{args.label}' record(s) without event counts")
    matching = [r for r in labeled if r.get("events_per_s")]
    if len(matching) < 2:
        print(f"[bench] need >=2 '{args.label}' records to compare "
              f"(found {len(matching)}); skipping")
        return 0

    baseline, newest = matching[-2], matching[-1]
    floor = baseline["events_per_s"] * (1.0 - args.max_drop)
    verdict = "OK" if newest["events_per_s"] >= floor else "REGRESSION"
    print(f"[bench] {args.label}: baseline {baseline['events_per_s']}/s "
          f"({baseline.get('date', '?')}), newest "
          f"{newest['events_per_s']}/s "
          f"({newest.get('date', '?')}), floor {floor:.0f}/s -> {verdict}")
    return 0 if verdict == "OK" else 1


if __name__ == "__main__":
    sys.exit(main())
