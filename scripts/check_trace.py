#!/usr/bin/env python
"""Validate a ``--trace-out`` export against the Chrome trace-event schema.

Checks the JSON the exporter wrote (and that Perfetto / chrome://tracing
will load): a ``traceEvents`` list whose events are either complete
(``"ph": "X"`` with name/cat/pid/tid/ts and a non-negative dur, plus the
causal ``trace_id``/``span_id`` args) or metadata (``"ph": "M"``), with
every ``parent_id`` resolving to a span in the same file. When the
sibling ``<stem>.manifest.json`` exists (or ``--manifest`` names one),
it must round-trip through :class:`repro.obs.RunManifest` and its span
count must match the trace.

Usage::

    python scripts/check_trace.py TRACE.json [--manifest MANIFEST.json]

Exits non-zero on the first schema violation — CI's ``trace-smoke`` job
runs this after exporting a small figure.
"""

import argparse
import json
import pathlib
import sys

REQUIRED_COMPLETE_KEYS = ("name", "cat", "pid", "tid", "ts", "dur", "args")


def fail(message: str) -> int:
    print(f"[check_trace] FAIL: {message}")
    return 1


def check_trace(path: pathlib.Path) -> int:
    with open(path) as handle:
        document = json.load(handle)
    events = document.get("traceEvents")
    if not isinstance(events, list):
        return fail("traceEvents is missing or not a list")
    complete = [e for e in events if e.get("ph") == "X"]
    metadata = [e for e in events if e.get("ph") == "M"]
    if len(complete) + len(metadata) != len(events):
        phases = sorted({e.get("ph") for e in events} - {"X", "M"})
        return fail(f"unexpected event phases {phases}")
    if not complete:
        return fail("no complete ('X') events — empty trace?")
    span_ids = set()
    for event in complete:
        missing = [key for key in REQUIRED_COMPLETE_KEYS
                   if key not in event]
        if missing:
            return fail(f"complete event missing {missing}: {event}")
        if event["dur"] < 0:
            return fail(f"negative duration: {event}")
        args = event["args"]
        if "trace_id" not in args or "span_id" not in args:
            return fail(f"event lacks causal ids: {event}")
        span_ids.add((event["pid"], args["span_id"]))
    # A parent_id may reference a span that never closed (a cancelled
    # straggler loser's invocation, say) — legal, but worth counting.
    dangling = sum(1 for event in complete
                   if event["args"].get("parent_id") is not None
                   and (event["pid"],
                        event["args"]["parent_id"]) not in span_ids)
    if dangling:
        print(f"[check_trace] note: {dangling} span(s) reference an "
              f"unclosed parent")
    thread_names = [e for e in metadata if e.get("name") == "thread_name"]
    if not thread_names:
        return fail("no thread_name metadata — layer tracks unlabeled")
    print(f"[check_trace] {path}: {len(complete)} spans, "
          f"{len(thread_names)} layer tracks, "
          f"{len({pid for pid, _ in span_ids})} replica lane(s) — OK")
    return 0


def check_manifest(path: pathlib.Path, trace_path: pathlib.Path) -> int:
    sys.path.insert(0, str(pathlib.Path(__file__).resolve()
                           .parents[1] / "src"))
    from repro.obs import RunManifest

    with open(path) as handle:
        text = handle.read()
    manifest = RunManifest.from_json(text)
    clone = RunManifest.from_json(manifest.to_json())
    if clone != manifest:
        return fail(f"manifest does not round-trip: {path}")
    if str(trace_path) not in manifest.trace_files and \
            trace_path.name not in [pathlib.Path(p).name
                                    for p in manifest.trace_files]:
        return fail(f"manifest does not reference {trace_path.name}")
    with open(trace_path) as handle:
        spans = sum(1 for e in json.load(handle)["traceEvents"]
                    if e.get("ph") == "X")
    if manifest.spans != spans:
        return fail(f"manifest says {manifest.spans} spans, "
                    f"trace holds {spans}")
    print(f"[check_trace] {path}: round-trips, figure={manifest.figure}, "
          f"rev={manifest.git_rev}, flags={manifest.flags} — OK")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("trace", help="Chrome trace JSON from --trace-out")
    parser.add_argument("--manifest", default=None,
                        help="run manifest to validate (default: the "
                             "<stem>.manifest.json sibling when present)")
    args = parser.parse_args(argv)

    trace_path = pathlib.Path(args.trace)
    status = check_trace(trace_path)
    if status:
        return status
    manifest_path = (pathlib.Path(args.manifest) if args.manifest else
                     trace_path.with_name(
                         f"{trace_path.stem}.manifest.json"))
    if manifest_path.exists():
        return check_manifest(manifest_path, trace_path)
    if args.manifest:
        return fail(f"manifest {manifest_path} does not exist")
    print(f"[check_trace] no manifest at {manifest_path}; skipped")
    return 0


if __name__ == "__main__":
    sys.exit(main())
