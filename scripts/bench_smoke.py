#!/usr/bin/env python
"""30-second kernel/harness perf smoke.

Runs the fixed deterministic smoke workload (see
``repro.experiments.bench.SMOKE_FIGURES``) and appends one timing record
per figure — wall seconds, kernel events, events/second — to
``BENCH_kernel.json`` at the repo root, so the kernel's performance
trajectory accumulates run over run.

Seed-era records (the ``seed:*`` rows committed before the kernel
exported an event counter) carry ``sim_events: null``; they are valid
wall-clock history but have no events/second figure, so this wrapper
reports them up front rather than letting downstream tooling trip on
the nulls.

Equivalent to ``python -m repro.experiments --bench-smoke``. Needs
``src`` on ``PYTHONPATH`` (or the package installed).
"""

import json
import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[1] / "src"))

from repro.experiments.__main__ import main  # noqa: E402
from repro.experiments.bench import bench_path  # noqa: E402
from repro.experiments.parallel import default_workers  # noqa: E402


def annotate_seed_era_records() -> None:
    """Report older records whose fields need a caveat, without rewriting.

    Two vintages to call out: ``sim_events: null`` rows predate the
    kernel event counter (wall-clock only), and rows without a
    ``cores_source`` field recorded ``cores`` from raw ``os.cpu_count()``
    — on cgroup-quota-limited containers that overstates the cores the
    run actually had (new records store the cgroup-aware worker count
    from ``repro.experiments.parallel.default_workers()``).
    """
    target = bench_path()
    if not target.exists():
        return
    try:
        with open(target) as handle:
            runs = json.load(handle).get("runs", [])
    except (OSError, ValueError):
        return
    unmeasured = [r.get("label", "?") for r in runs
                  if isinstance(r, dict) and r.get("sim_events") is None]
    if unmeasured:
        print(f"[bench] {len(unmeasured)} seed-era record(s) without "
              f"event counts (wall-clock only, predate the kernel event "
              f"counter): {', '.join(sorted(set(unmeasured)))}")
    raw_cores = [r for r in runs if isinstance(r, dict)
                 and "cores" in r and "cores_source" not in r]
    if raw_cores:
        print(f"[bench] {len(raw_cores)} record(s) report os.cpu_count() "
              f"cores (no cores_source field); this host's cgroup-aware "
              f"count is {default_workers()}")


if __name__ == "__main__":
    annotate_seed_era_records()
    sys.exit(main(["--bench-smoke"] + sys.argv[1:]))
