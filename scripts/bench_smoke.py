#!/usr/bin/env python
"""30-second kernel/harness perf smoke.

Runs the fixed deterministic smoke workload (see
``repro.experiments.bench.SMOKE_FIGURES``) and appends one timing record
per figure — wall seconds, kernel events, events/second — to
``BENCH_kernel.json`` at the repo root, so the kernel's performance
trajectory accumulates run over run.

Equivalent to ``python -m repro.experiments --bench-smoke``. Needs
``src`` on ``PYTHONPATH`` (or the package installed).
"""

import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[1] / "src"))

from repro.experiments.__main__ import main  # noqa: E402

if __name__ == "__main__":
    sys.exit(main(["--bench-smoke"] + sys.argv[1:]))
