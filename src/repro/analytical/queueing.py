"""Closed-form queueing approximations.

Two users:

1. The HiveMind compiler's placement estimator (section 4.2) — predicting
   each execution model's latency/power/bandwidth without running it.
2. The simulator-validation experiment (Fig 18) — the paper validates its
   event simulator against the real testbed; lacking hardware, we validate
   the event simulator against these independent analytical predictions.

The models are standard: M/M/1 and M/M/c waiting-time formulas, a
square-root tail inflation for lognormal service, and a fork-join
approximation for intra-task parallelism.
"""

from __future__ import annotations

import math

__all__ = [
    "mm1_response_time",
    "mm1_inflation",
    "mmc_wait_time",
    "erlang_c",
    "fork_join_response",
    "lognormal_percentile",
]


def mm1_inflation(utilization: float, cap: float = 50.0) -> float:
    """Mean response-time inflation 1/(1-rho) for an M/M/1 queue.

    Capped (default 50x) so infeasible operating points stay finite and
    comparable instead of dividing by zero.
    """
    if utilization < 0:
        raise ValueError("utilization must be non-negative")
    if utilization >= 1.0 - 1.0 / cap:
        return cap
    return 1.0 / (1.0 - utilization)


def mm1_response_time(service_s: float, utilization: float) -> float:
    """Mean response time of an M/M/1 queue at the given utilization."""
    if service_s < 0:
        raise ValueError("service time must be non-negative")
    return service_s * mm1_inflation(utilization)


def erlang_c(servers: int, offered_load: float) -> float:
    """Erlang-C probability that an arrival waits (M/M/c).

    ``offered_load`` is lambda/mu in Erlangs; must be < servers for a
    stable queue (returns 1.0 at or beyond saturation).
    """
    if servers <= 0:
        raise ValueError("servers must be positive")
    if offered_load < 0:
        raise ValueError("offered load must be non-negative")
    if offered_load >= servers:
        return 1.0
    # Iterative Erlang-B then convert, numerically stable for large c.
    blocking = 1.0
    for k in range(1, servers + 1):
        blocking = (offered_load * blocking) / (k + offered_load * blocking)
    rho = offered_load / servers
    return blocking / (1.0 - rho + rho * blocking)


def mmc_wait_time(servers: int, arrival_hz: float,
                  service_s: float) -> float:
    """Mean queueing wait of an M/M/c system (excludes service)."""
    if arrival_hz < 0 or service_s < 0:
        raise ValueError("rates/times must be non-negative")
    if service_s == 0 or arrival_hz == 0:
        return 0.0
    offered = arrival_hz * service_s
    if offered >= servers:
        return float("inf")
    wait_probability = erlang_c(servers, offered)
    return wait_probability * service_s / (servers - offered)


def fork_join_response(service_s: float, ways: int,
                       sigma: float = 0.25) -> float:
    """Approximate response time of a task forked ``ways`` wide.

    Each shard takes service/ways; the join waits for the max of ``ways``
    lognormal shards, approximated with the classic sqrt(2 ln n) extreme-
    value growth term.
    """
    if ways < 1:
        raise ValueError("ways must be at least 1")
    shard = service_s / ways
    if ways == 1:
        return shard
    straggle = math.exp(sigma * math.sqrt(2.0 * math.log(ways)))
    return shard * straggle


def lognormal_percentile(median: float, sigma: float,
                         percentile: float) -> float:
    """Percentile of a lognormal distribution given its median."""
    if median <= 0:
        raise ValueError("median must be positive")
    if not 0 < percentile < 100:
        raise ValueError("percentile must be in (0, 100)")
    # Inverse CDF via the probit of the standard normal.
    z = _probit(percentile / 100.0)
    return median * math.exp(sigma * z)


def _probit(p: float) -> float:
    """Acklam's rational approximation of the standard normal inverse CDF."""
    a = (-3.969683028665376e+01, 2.209460984245205e+02,
         -2.759285104469687e+02, 1.383577518672690e+02,
         -3.066479806614716e+01, 2.506628277459239e+00)
    b = (-5.447609879822406e+01, 1.615858368580409e+02,
         -1.556989798598866e+02, 6.680131188771972e+01,
         -1.328068155288572e+01)
    c = (-7.784894002430293e-03, -3.223964580411365e-01,
         -2.400758277161838e+00, -2.549732539343734e+00,
         4.374664141464968e+00, 2.938163982698783e+00)
    d = (7.784695709041462e-03, 3.224671290700398e-01,
         2.445134137142996e+00, 3.754408661907416e+00)
    p_low, p_high = 0.02425, 1 - 0.02425
    if p < p_low:
        q = math.sqrt(-2 * math.log(p))
        return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) *
                q + c[5]) / ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) *
                             q + 1)
    if p <= p_high:
        q = p - 0.5
        r = q * q
        return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) *
                r + a[5]) * q / (((((b[0] * r + b[1]) * r + b[2]) * r +
                                   b[3]) * r + b[4]) * r + 1)
    q = math.sqrt(-2 * math.log(1 - p))
    return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) *
             q + c[5]) / ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) *
                          q + 1)
