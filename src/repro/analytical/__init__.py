"""Analytical queueing models for placement estimation and validation."""

from .queueing import (
    erlang_c,
    fork_join_response,
    lognormal_percentile,
    mm1_inflation,
    mm1_response_time,
    mmc_wait_time,
)

__all__ = [
    "mm1_inflation",
    "mm1_response_time",
    "mmc_wait_time",
    "erlang_c",
    "fork_join_response",
    "lognormal_percentile",
]
