"""Boustrophedon (lawnmower) coverage planning.

Each drone must photograph every point of its assigned region. With a camera
swath of ``fov_width_m`` the classic minimal-turn plan is back-and-forth
sweep legs spaced one swath apart. :func:`coverage_route` produces the
waypoints; :func:`coverage_time` the flight-time estimate the load balancer
uses when partitioning work.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Tuple

__all__ = ["Region", "coverage_route", "coverage_time", "route_length"]

Point = Tuple[float, float]


@dataclass(frozen=True)
class Region:
    """An axis-aligned rectangle of the field."""

    x0: float
    y0: float
    x1: float
    y1: float

    def __post_init__(self):
        if self.x1 <= self.x0 or self.y1 <= self.y0:
            raise ValueError(f"degenerate region {self}")

    @property
    def width(self) -> float:
        return self.x1 - self.x0

    @property
    def height(self) -> float:
        return self.y1 - self.y0

    @property
    def area(self) -> float:
        return self.width * self.height

    @property
    def center(self) -> Point:
        return ((self.x0 + self.x1) / 2, (self.y0 + self.y1) / 2)

    def contains(self, point: Point) -> bool:
        x, y = point
        return self.x0 <= x <= self.x1 and self.y0 <= y <= self.y1


def coverage_route(region: Region, swath_m: float) -> List[Point]:
    """Lawnmower waypoints covering ``region`` with ``swath_m`` spacing.

    Legs run along the region's longer axis to minimize turns.
    """
    if swath_m <= 0:
        raise ValueError("swath must be positive")
    horizontal_legs = region.width >= region.height
    span = region.height if horizontal_legs else region.width
    n_legs = max(1, math.ceil(span / swath_m))
    # Center the legs inside the span.
    spacing = span / n_legs
    waypoints: List[Point] = []
    for leg in range(n_legs):
        offset = (leg + 0.5) * spacing
        if horizontal_legs:
            y = region.y0 + offset
            ends = ((region.x0, y), (region.x1, y))
        else:
            x = region.x0 + offset
            ends = ((x, region.y0), (x, region.y1))
        if leg % 2 == 1:
            ends = (ends[1], ends[0])
        waypoints.extend(ends)
    return waypoints


def route_length(waypoints: List[Point]) -> float:
    """Euclidean length of a waypoint route."""
    total = 0.0
    for (x0, y0), (x1, y1) in zip(waypoints, waypoints[1:]):
        total += math.hypot(x1 - x0, y1 - y0)
    return total


def coverage_time(region: Region, swath_m: float, speed_mps: float,
                  turn_time_s: float = 0.0) -> float:
    """Estimated seconds to cover ``region`` (flight + turn penalties)."""
    if speed_mps <= 0:
        raise ValueError("speed must be positive")
    waypoints = coverage_route(region, swath_m)
    n_turns = max(0, len(waypoints) // 2 - 1)
    return route_length(waypoints) / speed_mps + n_turns * turn_time_s
