"""A* shortest-path planning (Scenario A route derivation, section 2.1).

Routes within each drone's region are derived with A*, each drone minimizing
total distance traveled. Implemented over :class:`~repro.routing.grid.
GridMap` with Manhattan heuristic (admissible for 4-connected movement).
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, Dict, List, Optional

from .grid import Cell, GridMap

__all__ = ["astar", "path_length", "NoPathError"]


class NoPathError(Exception):
    """Raised when no route exists between the requested cells."""


def manhattan(a: Cell, b: Cell) -> float:
    return abs(a[0] - b[0]) + abs(a[1] - b[1])


def astar(grid: GridMap, start: Cell, goal: Cell,
          heuristic: Callable[[Cell, Cell], float] = manhattan
          ) -> List[Cell]:
    """Shortest 4-connected path from start to goal, inclusive.

    Raises :class:`NoPathError` when the goal is unreachable and
    ``ValueError`` when either endpoint is blocked or out of bounds.
    """
    if not grid.is_free(start):
        raise ValueError(f"start {start} is blocked or out of bounds")
    if not grid.is_free(goal):
        raise ValueError(f"goal {goal} is blocked or out of bounds")
    if start == goal:
        return [start]

    tie = itertools.count()
    frontier: List = [(heuristic(start, goal), next(tie), start)]
    came_from: Dict[Cell, Optional[Cell]] = {start: None}
    cost_so_far: Dict[Cell, float] = {start: 0.0}

    while frontier:
        _, _, current = heapq.heappop(frontier)
        if current == goal:
            return _reconstruct(came_from, goal)
        for neighbor in grid.neighbors(current):
            new_cost = cost_so_far[current] + 1.0
            if new_cost < cost_so_far.get(neighbor, float("inf")):
                cost_so_far[neighbor] = new_cost
                came_from[neighbor] = current
                priority = new_cost + heuristic(neighbor, goal)
                heapq.heappush(frontier, (priority, next(tie), neighbor))
    raise NoPathError(f"no path from {start} to {goal}")


def _reconstruct(came_from: Dict[Cell, Optional[Cell]],
                 goal: Cell) -> List[Cell]:
    path = [goal]
    while came_from[path[-1]] is not None:
        path.append(came_from[path[-1]])
    path.reverse()
    return path


def path_length(path: List[Cell]) -> float:
    """Total distance of a cell path (unit steps)."""
    return float(max(0, len(path) - 1))
