"""Route planning: grids, A*, coverage sweeps, partitioning, mazes."""

from .astar import NoPathError, astar, path_length
from .coverage import Region, coverage_route, coverage_time, route_length
from .grid import Cell, GridMap
from .maze import Maze, WallFollower, generate_maze
from .partition import neighbors_of, partition_field, repartition_on_failure

__all__ = [
    "GridMap",
    "Cell",
    "astar",
    "path_length",
    "NoPathError",
    "Region",
    "coverage_route",
    "coverage_time",
    "route_length",
    "partition_field",
    "repartition_on_failure",
    "neighbors_of",
    "Maze",
    "generate_maze",
    "WallFollower",
]
