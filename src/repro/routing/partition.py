"""Field partitioning among swarm devices, and failure repartitioning.

At time zero the field is divided equally among the drones (section 2.1).
When a device fails, HiveMind repartitions its area among its neighbours
(Fig 10) — implemented here as :func:`repartition_on_failure`, which splits
the failed device's region and grafts the pieces onto the adjacent regions
(devices keep their original area plus a share of the failed one).
"""

from __future__ import annotations

import math
from typing import Dict, List

from .coverage import Region

__all__ = ["partition_field", "repartition_on_failure", "neighbors_of"]


def partition_field(width: float, height: float,
                    n_regions: int) -> List[Region]:
    """Divide a rectangle into ``n_regions`` near-equal-area tiles.

    Uses rows ~ sqrt(n) and spreads the remainder one-extra-tile-per-row,
    so tile areas never differ by more than one part in the row width —
    grossly unequal tiles would hand some devices multiples of the average
    flight time.
    """
    if n_regions <= 0:
        raise ValueError("need at least one region")
    if width <= 0 or height <= 0:
        raise ValueError("field dimensions must be positive")
    rows = max(1, round(math.sqrt(n_regions)))
    base, extra = divmod(n_regions, rows)
    regions: List[Region] = []
    row_height = height / rows
    for row in range(rows):
        in_row = base + (1 if row < extra else 0)
        tile_width = width / in_row
        for col in range(in_row):
            regions.append(Region(
                x0=col * tile_width,
                y0=row * row_height,
                x1=(col + 1) * tile_width,
                y1=(row + 1) * row_height,
            ))
    return regions


def _touches(a: Region, b: Region, tolerance: float = 1e-9) -> bool:
    """True when two regions share an edge (not merely a corner)."""
    horizontal_adjacent = (
        (abs(a.x1 - b.x0) < tolerance or abs(b.x1 - a.x0) < tolerance) and
        min(a.y1, b.y1) - max(a.y0, b.y0) > tolerance)
    vertical_adjacent = (
        (abs(a.y1 - b.y0) < tolerance or abs(b.y1 - a.y0) < tolerance) and
        min(a.x1, b.x1) - max(a.x0, b.x0) > tolerance)
    return horizontal_adjacent or vertical_adjacent


def neighbors_of(target: str, regions: Dict[str, Region]) -> List[str]:
    """Devices whose regions share an edge with ``target``'s region."""
    if target not in regions:
        raise KeyError(f"unknown device {target!r}")
    home = regions[target]
    return [device for device, region in regions.items()
            if device != target and _touches(home, region)]


def repartition_on_failure(regions: Dict[str, Region],
                           failed: str) -> Dict[str, List[Region]]:
    """Reassign a failed device's region to its neighbours (Fig 10).

    Returns the new assignment: every surviving device maps to a list of
    regions (its own, plus possibly a slice of the failed region). The
    failed region is cut into equal vertical strips, one per neighbour;
    with no surviving neighbour (single-device swarm edge case) the nearest
    surviving device inherits the whole region.
    """
    if failed not in regions:
        raise KeyError(f"unknown device {failed!r}")
    survivors = {device: [region] for device, region in regions.items()
                 if device != failed}
    if not survivors:
        raise ValueError("cannot repartition: no surviving devices")
    failed_region = regions[failed]
    heirs = [d for d in neighbors_of(failed, regions) if d in survivors]
    if not heirs:
        # Fall back to the survivor whose region center is closest.
        center_x, center_y = failed_region.center
        heirs = [min(survivors, key=lambda d: (
            (regions[d].center[0] - center_x) ** 2 +
            (regions[d].center[1] - center_y) ** 2))]
    strip_width = failed_region.width / len(heirs)
    for index, heir in enumerate(heirs):
        survivors[heir].append(Region(
            x0=failed_region.x0 + index * strip_width,
            y0=failed_region.y0,
            x1=failed_region.x0 + (index + 1) * strip_width,
            y1=failed_region.y1,
        ))
    return survivors
