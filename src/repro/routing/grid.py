"""Occupancy-grid world for path planning.

A :class:`GridMap` discretizes space into unit cells that are either free or
blocked. It backs the A* planner (Scenario A route derivation) and the maze
environments (S6 and the robotic-car maze scenario).
"""

from __future__ import annotations

from typing import Iterable, Iterator, Set, Tuple

__all__ = ["GridMap", "Cell"]

Cell = Tuple[int, int]


class GridMap:
    """A width x height grid with blocked cells."""

    #: 4-connected movement (the drones fly axis-aligned sweep legs; the
    #: cars drive on grid corridors).
    MOVES = ((1, 0), (-1, 0), (0, 1), (0, -1))

    def __init__(self, width: int, height: int,
                 blocked: Iterable[Cell] = ()):
        if width <= 0 or height <= 0:
            raise ValueError("grid dimensions must be positive")
        self.width = width
        self.height = height
        self._blocked: Set[Cell] = set()
        for cell in blocked:
            self.block(cell)

    def in_bounds(self, cell: Cell) -> bool:
        x, y = cell
        return 0 <= x < self.width and 0 <= y < self.height

    def block(self, cell: Cell) -> None:
        if not self.in_bounds(cell):
            raise ValueError(f"cell {cell} outside {self.width}x{self.height}")
        self._blocked.add(cell)

    def unblock(self, cell: Cell) -> None:
        self._blocked.discard(cell)

    def is_free(self, cell: Cell) -> bool:
        return self.in_bounds(cell) and cell not in self._blocked

    @property
    def blocked_cells(self) -> Set[Cell]:
        return set(self._blocked)

    def neighbors(self, cell: Cell) -> Iterator[Cell]:
        x, y = cell
        for dx, dy in self.MOVES:
            candidate = (x + dx, y + dy)
            if self.is_free(candidate):
                yield candidate

    def free_cells(self) -> Iterator[Cell]:
        for x in range(self.width):
            for y in range(self.height):
                if (x, y) not in self._blocked:
                    yield (x, y)

    def __contains__(self, cell: Cell) -> bool:
        return self.in_bounds(cell)
