"""Maze generation and wall-follower traversal (S6 and the car scenario).

The maze benchmark navigates a walled maze with the Wall Follower (left/right
hand rule) algorithm. :func:`generate_maze` builds a perfect maze with
recursive backtracking (every perfect maze is simply connected, so wall
following always terminates); :class:`WallFollower` walks it step by step so
the simulation can charge per-step compute and movement.
"""

from __future__ import annotations

from typing import List, Optional, Set, Tuple

import numpy as np

__all__ = ["Maze", "generate_maze", "WallFollower"]

Cell = Tuple[int, int]

# Directions in clockwise order: N, E, S, W.
DIRECTIONS = ((0, -1), (1, 0), (0, 1), (-1, 0))


class Maze:
    """A perfect maze: passages between adjacent cells."""

    def __init__(self, width: int, height: int):
        if width <= 0 or height <= 0:
            raise ValueError("maze dimensions must be positive")
        self.width = width
        self.height = height
        self._passages: Set[frozenset] = set()

    def carve(self, a: Cell, b: Cell) -> None:
        if not (self.in_bounds(a) and self.in_bounds(b)):
            raise ValueError(f"cells {a}-{b} out of bounds")
        if abs(a[0] - b[0]) + abs(a[1] - b[1]) != 1:
            raise ValueError(f"cells {a}-{b} are not adjacent")
        self._passages.add(frozenset((a, b)))

    def connected(self, a: Cell, b: Cell) -> bool:
        return frozenset((a, b)) in self._passages

    def in_bounds(self, cell: Cell) -> bool:
        x, y = cell
        return 0 <= x < self.width and 0 <= y < self.height

    def open_directions(self, cell: Cell) -> List[int]:
        """Indices into DIRECTIONS with an open passage from ``cell``."""
        result = []
        for index, (dx, dy) in enumerate(DIRECTIONS):
            neighbor = (cell[0] + dx, cell[1] + dy)
            if self.in_bounds(neighbor) and self.connected(cell, neighbor):
                result.append(index)
        return result


def generate_maze(width: int, height: int,
                  rng: np.random.Generator) -> Maze:
    """Recursive-backtracker perfect maze."""
    maze = Maze(width, height)
    visited: Set[Cell] = {(0, 0)}
    stack: List[Cell] = [(0, 0)]
    while stack:
        current = stack[-1]
        candidates = []
        for dx, dy in DIRECTIONS:
            neighbor = (current[0] + dx, current[1] + dy)
            if maze.in_bounds(neighbor) and neighbor not in visited:
                candidates.append(neighbor)
        if not candidates:
            stack.pop()
            continue
        chosen = candidates[int(rng.integers(len(candidates)))]
        maze.carve(current, chosen)
        visited.add(chosen)
        stack.append(chosen)
    return maze


class WallFollower:
    """Left-hand-rule maze walker.

    Produces one movement decision per :meth:`step`; the simulation charges
    compute (the decision) and motion (the move) per step. Perfect mazes
    guarantee the goal is reached within 2x the passage count.
    """

    def __init__(self, maze: Maze, start: Cell, goal: Cell):
        if not maze.in_bounds(start) or not maze.in_bounds(goal):
            raise ValueError("start/goal out of bounds")
        self.maze = maze
        self.position = start
        self.goal = goal
        self.heading = 1  # facing east
        self.steps = 0
        self.trail: List[Cell] = [start]

    @property
    def done(self) -> bool:
        return self.position == self.goal

    def step(self) -> Cell:
        """Advance one cell using the left-hand rule; returns new position."""
        if self.done:
            return self.position
        open_dirs = self.maze.open_directions(self.position)
        if not open_dirs:
            raise RuntimeError(f"cell {self.position} is sealed")
        # Prefer: left of heading, straight, right, back.
        for turn in (-1, 0, 1, 2):
            direction = (self.heading + turn) % 4
            if direction in open_dirs:
                dx, dy = DIRECTIONS[direction]
                self.position = (self.position[0] + dx,
                                 self.position[1] + dy)
                self.heading = direction
                self.steps += 1
                self.trail.append(self.position)
                return self.position
        raise RuntimeError("unreachable: no direction chosen")

    def solve(self, max_steps: Optional[int] = None) -> List[Cell]:
        """Walk until the goal; returns the trail."""
        limit = max_steps if max_steps is not None else \
            4 * self.maze.width * self.maze.height
        while not self.done:
            if self.steps >= limit:
                raise RuntimeError(
                    f"wall follower exceeded {limit} steps")
            self.step()
        return self.trail
