"""Worker-level chaos: fault plans for the *execution harness itself*.

The fault plans in :mod:`repro.faults.plan` perturb the simulated world;
a :class:`WorkerFaultPlan` perturbs the real worker processes that run
it. Each :class:`WorkerFault` names one shard (`scope="shard"`) or
cloud-region (`scope="cloud"`) worker and one protocol operation — the
n-th command the driver sends over that worker's pipe — and an action:

- ``kill`` — the driver SIGKILLs the worker right after sending the
  operation, so the worker dies mid-work (injected parent-side: a
  SIGKILL cannot be cooperative).
- ``hang`` — the worker stops answering at that operation (injected
  worker-side: it sleeps far past any deadline until the supervisor
  terminates it).
- ``slow`` — the worker delays its reply by ``delay_s`` (worker-side;
  exercises deadline headroom without tripping recovery).

Plans are pure data with a flat string spec for the
``REPRO_CHAOS_WORKERS`` environment switch::

    REPRO_CHAOS_WORKERS="kill:shard:0:2,hang:shard:1:3,slow:cloud:0:1:0.2"

i.e. comma-separated ``action:scope:worker:op[:delay_s]`` entries with
1-based operation indices. Faults are one-shot: recovery respawns
workers with an empty fault list, so a plan cannot wedge a run into an
infinite kill loop.

Determinism contract: because every cell and region replays to
byte-identical state from its spec (see
:mod:`repro.sim.supervisor`), an armed worker-fault plan changes
wall-clock and incident accounting but never the merged result rows —
the chaos-workers harness lane pins exactly that.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Tuple

__all__ = ["WorkerFault", "WorkerFaultPlan", "ACTIONS", "SCOPES"]

ACTIONS = ("kill", "hang", "slow")
SCOPES = ("shard", "cloud")

#: Default reply delay for ``slow`` faults when the spec omits one.
DEFAULT_SLOW_S = 0.1


@dataclass(frozen=True)
class WorkerFault:
    """One scheduled harness fault (pure data, picklable)."""

    action: str
    scope: str
    worker: int
    #: 1-based index of the pipe operation the fault fires at.
    op: int
    delay_s: float = DEFAULT_SLOW_S

    def __post_init__(self):
        if self.action not in ACTIONS:
            raise ValueError(f"unknown worker-fault action "
                             f"{self.action!r}; valid: {ACTIONS}")
        if self.scope not in SCOPES:
            raise ValueError(f"unknown worker scope {self.scope!r}; "
                             f"valid: {SCOPES}")
        if self.worker < 0:
            raise ValueError("worker index must be non-negative")
        if self.op < 1:
            raise ValueError("operation index is 1-based")
        if self.delay_s < 0:
            raise ValueError("slow-fault delay must be non-negative")

    def spec(self) -> str:
        base = f"{self.action}:{self.scope}:{self.worker}:{self.op}"
        if self.action == "slow":
            return f"{base}:{self.delay_s:g}"
        return base


@dataclass(frozen=True)
class WorkerFaultPlan:
    """An immutable set of worker faults plus spec round-tripping."""

    faults: Tuple[WorkerFault, ...] = ()

    @classmethod
    def parse(cls, spec: str) -> "WorkerFaultPlan":
        """Parse a ``REPRO_CHAOS_WORKERS`` spec string (empty = unarmed)."""
        faults = []
        for entry in spec.split(","):
            entry = entry.strip()
            if not entry:
                continue
            parts = entry.split(":")
            if len(parts) not in (4, 5):
                raise ValueError(
                    f"bad worker-fault entry {entry!r}; expected "
                    "action:scope:worker:op[:delay_s]")
            action, scope = parts[0], parts[1]
            try:
                worker, op = int(parts[2]), int(parts[3])
                delay_s = float(parts[4]) if len(parts) == 5 \
                    else DEFAULT_SLOW_S
            except ValueError:
                raise ValueError(
                    f"bad worker-fault entry {entry!r}: worker/op must "
                    "be integers, delay a float") from None
            if len(parts) == 5 and action != "slow":
                raise ValueError(
                    f"bad worker-fault entry {entry!r}: only 'slow' "
                    "faults take a delay")
            faults.append(WorkerFault(action=action, scope=scope,
                                      worker=worker, op=op,
                                      delay_s=delay_s))
        return cls(faults=tuple(faults))

    @property
    def armed(self) -> bool:
        return bool(self.faults)

    def spec(self) -> str:
        return ",".join(fault.spec() for fault in self.faults)

    # -- composition (immutable append) --------------------------------
    def kill(self, scope: str, worker: int, op: int) -> "WorkerFaultPlan":
        return WorkerFaultPlan(self.faults + (
            WorkerFault("kill", scope, worker, op),))

    def hang(self, scope: str, worker: int, op: int) -> "WorkerFaultPlan":
        return WorkerFaultPlan(self.faults + (
            WorkerFault("hang", scope, worker, op),))

    def slow(self, scope: str, worker: int, op: int,
             delay_s: float = DEFAULT_SLOW_S) -> "WorkerFaultPlan":
        return WorkerFaultPlan(self.faults + (
            WorkerFault("slow", scope, worker, op, delay_s),))

    # -- routing --------------------------------------------------------
    def kill_ops(self, scope: str, worker: int) -> FrozenSet[int]:
        """Driver-side kill schedule for one worker."""
        return frozenset(f.op for f in self.faults
                         if f.action == "kill" and f.scope == scope
                         and f.worker == worker)

    def worker_side(self, scope: str, worker: int
                    ) -> Tuple[Tuple[str, int, float], ...]:
        """The (action, op, delay_s) triples a worker injects itself
        (hang/slow — shipped as plain tuples so the worker process needs
        no imports beyond the supervision helpers)."""
        return tuple((f.action, f.op, f.delay_s) for f in self.faults
                     if f.action in ("hang", "slow") and f.scope == scope
                     and f.worker == worker)

    def __len__(self) -> int:
        return len(self.faults)
