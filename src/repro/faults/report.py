"""Resilience accounting: what recovery did, and what it cost.

:class:`RecoveryLog` collects individual recovery actions as they happen
(activation requeues after a server/invoker crash, function-fault
respawns, work shed to on-device compute during a partition, RPC
retries). :class:`ResilienceReport` condenses one chaos run — recovery
counts, recovery-latency percentiles, and makespan/latency inflation
against the fault-free twin run — into the rows the ``--chaos`` harness
prints.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

import numpy as np

__all__ = ["RecoveryLog", "ResilienceReport"]


@dataclass
class RecoveryAction:
    """One recovery event: what was recovered, when, and how long it took."""

    kind: str          # "requeue" | "respawn" | "shed" | "rpc_retry"
    subject: str
    started_at: float
    #: Filled when the recovered work eventually completes; None while
    #: in flight (or when completion never happened).
    recovered_at: Optional[float] = None

    @property
    def latency_s(self) -> Optional[float]:
        if self.recovered_at is None:
            return None
        return self.recovered_at - self.started_at


class RecoveryLog:
    """Append-only log of recovery actions for one run."""

    def __init__(self, env):
        self.env = env
        self.actions: List[RecoveryAction] = []

    def record(self, kind: str, subject: str) -> RecoveryAction:
        action = RecoveryAction(kind=kind, subject=str(subject),
                                started_at=self.env.now)
        self.actions.append(action)
        return action

    def complete(self, action: RecoveryAction) -> None:
        action.recovered_at = self.env.now

    def count(self, kind: Optional[str] = None) -> int:
        if kind is None:
            return len(self.actions)
        return sum(1 for a in self.actions if a.kind == kind)

    def latencies(self, kind: Optional[str] = None) -> List[float]:
        return [a.latency_s for a in self.actions
                if a.latency_s is not None and
                (kind is None or a.kind == kind)]

    def counts_by_kind(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for action in self.actions:
            out[action.kind] = out.get(action.kind, 0) + 1
        return out


def _percentile(values: List[float], q: float) -> float:
    # An empty RecoveryLog has no percentile — report nan rather than a
    # fake 0.0 that reads as "instant recovery" in the tables.
    if not values:
        return math.nan
    return float(np.percentile(np.asarray(values, dtype=float), q,
                               method="linear"))


@dataclass
class ResilienceReport:
    """The condensed outcome of one (scenario, plan) chaos run."""

    scenario: str
    plan: str
    submitted: int
    completed: int
    lost: int
    violations: int
    recoveries: Dict[str, int] = field(default_factory=dict)
    recovery_latencies_s: List[float] = field(default_factory=list)
    makespan_s: float = 0.0
    baseline_makespan_s: float = 0.0
    median_latency_s: float = 0.0
    baseline_median_latency_s: float = 0.0
    violation_details: List[str] = field(default_factory=list)

    @property
    def recovered(self) -> int:
        return sum(self.recoveries.values())

    @property
    def recovery_p50_s(self) -> float:
        return _percentile(self.recovery_latencies_s, 50)

    @property
    def recovery_p99_s(self) -> float:
        return _percentile(self.recovery_latencies_s, 99)

    @property
    def makespan_inflation(self) -> float:
        """Chaos makespan over fault-free makespan (1.0 = no inflation)."""
        if self.baseline_makespan_s <= 0:
            return 1.0
        return self.makespan_s / self.baseline_makespan_s

    @property
    def latency_inflation(self) -> float:
        if self.baseline_median_latency_s <= 0:
            return 1.0
        return self.median_latency_s / self.baseline_median_latency_s

    @property
    def all_accounted(self) -> bool:
        return self.submitted == self.completed + self.lost

    def row(self) -> List[Any]:
        """One table row for the chaos harness output."""
        return [
            f"{self.scenario}:{self.plan}",
            self.submitted,
            self.completed,
            self.lost,
            self.recovered,
            round(self.recovery_p50_s, 3),
            round(self.recovery_p99_s, 3),
            round(self.makespan_inflation, 3),
            self.violations,
        ]

    @staticmethod
    def headers() -> List[str]:
        return ["scenario:plan", "submitted", "completed", "lost",
                "recovered", "recovery_p50_s", "recovery_p99_s",
                "makespan_inflation", "violations"]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "scenario": self.scenario,
            "plan": self.plan,
            "submitted": self.submitted,
            "completed": self.completed,
            "lost": self.lost,
            "violations": self.violations,
            "violation_details": list(self.violation_details),
            "recoveries": dict(self.recoveries),
            "recovery_p50_s": self.recovery_p50_s,
            "recovery_p99_s": self.recovery_p99_s,
            "makespan_s": self.makespan_s,
            "baseline_makespan_s": self.baseline_makespan_s,
            "makespan_inflation": self.makespan_inflation,
            "median_latency_s": self.median_latency_s,
            "baseline_median_latency_s": self.baseline_median_latency_s,
            "latency_inflation": self.latency_inflation,
        }
