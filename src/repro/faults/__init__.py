"""Unified fault injection, recovery accounting, and invariant checking.

The paper's robustness story (section 4.6, Figs 5c/10) is that HiveMind
survives device failures, function failures, and stragglers without losing
tasks. This package makes that claim testable end to end:

- :class:`FaultPlan` — a declarative, deterministic schedule of fault
  events (device crash, battery brownout, link degradation, cloud
  partition, server/invoker crash, CouchDB/Kafka outage, function-fault
  rate changes).
- :class:`FaultInjector` — arms a plan against a live simulation: it owns
  one process that walks the schedule and drives the per-layer hooks.
- :class:`InvariantChecker` — conservation-of-work observer: every
  submitted task completes or is accounted exactly once, no invocation
  finishes twice, device batteries never go negative, and the kernel
  clock never runs backwards.
- :class:`ResilienceReport` — per-run recovery accounting (requeues,
  sheds, respawns, recovery-latency percentiles, makespan inflation).

Determinism contract: with no plan armed nothing in this package touches a
simulation — no events, no RNG draws, no extra callbacks — so fault-free
runs stay byte-identical to a build without it. An armed plan draws only
from its own dedicated RNG stream (``faults.injector``), never from the
streams the workload models own.
"""

from .invariants import InvariantChecker, Violation
from .injector import FaultInjector
from .plan import (FaultEvent, FaultPlan, PartitionedPlan,
                   named_plan, plan_names)
from .report import RecoveryLog, ResilienceReport
from .worker import WorkerFault, WorkerFaultPlan

__all__ = [
    "FaultEvent",
    "FaultPlan",
    "FaultInjector",
    "InvariantChecker",
    "RecoveryLog",
    "ResilienceReport",
    "Violation",
    "PartitionedPlan",
    "WorkerFault",
    "WorkerFaultPlan",
    "named_plan",
    "plan_names",
]
