"""End-to-end invariant checking for chaos runs.

The :class:`InvariantChecker` is the conservation-of-work referee the
paper's robustness claims imply: injecting faults is only meaningful if
you can show recovery neither *lost* work nor *duplicated* it.

Checked invariants:

1. **Exactly-once completion** — every submitted task either completes or
   is explicitly accounted as lost (with a reason), and never both, and
   never twice (the straggler/respawn race the issue calls out).
2. **No double-finished invocations** — a single platform activation may
   be requeued after a crash but must produce exactly one completion
   record, with ordered timestamps.
3. **Energy sanity** — no device battery reports negative remaining
   charge (accounting bugs show up as drains past capacity + epsilon).
4. **Kernel clock monotonicity** — observed as a kernel dispatch wrapper:
   the environment's clock never moves backwards across dispatched
   events. Per-entity clocks (heartbeat times per device, invocation
   timestamp trails) must be monotone too.

The checker is armed explicitly (chaos mode); an unarmed simulation never
constructs one, preserving the byte-identical fault-free contract.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional

__all__ = ["InvariantChecker", "Violation"]

#: Slack for float battery accounting (Wh).
ENERGY_EPSILON_WH = 1e-9


@dataclass(frozen=True)
class Violation:
    """One detected invariant breach."""

    invariant: str
    subject: str
    detail: str
    time: float

    def __str__(self) -> str:
        return (f"[{self.invariant}] {self.subject} at t={self.time:.3f}: "
                f"{self.detail}")


class InvariantChecker:
    """Work-conservation and sanity observer for one simulation."""

    def __init__(self, env):
        self.env = env
        self.violations: List[Violation] = []
        self._submitted: Dict[Any, float] = {}
        self._completed: Dict[Any, float] = {}
        self._lost: Dict[Any, str] = {}
        self._finished_invocations: Dict[int, float] = {}
        self._entity_clocks: Dict[str, float] = {}
        self._kernel_last_now = float("-inf")
        self._kernel_attached = False
        self._finalized = False

    # -- reporting helpers -------------------------------------------------
    def _flag(self, invariant: str, subject: str, detail: str) -> None:
        self.violations.append(Violation(
            invariant=invariant, subject=str(subject), detail=detail,
            time=self.env.now))

    @property
    def ok(self) -> bool:
        return not self.violations

    # -- task conservation -------------------------------------------------
    def task_submitted(self, task_id: Any) -> None:
        if task_id in self._submitted:
            self._flag("exactly_once", task_id, "submitted twice")
            return
        self._submitted[task_id] = self.env.now

    def task_completed(self, task_id: Any) -> None:
        if task_id not in self._submitted:
            self._flag("exactly_once", task_id,
                       "completed but never submitted")
            return
        if task_id in self._completed:
            self._flag("exactly_once", task_id,
                       "completed twice (straggler/respawn race)")
            return
        if task_id in self._lost:
            self._flag("exactly_once", task_id,
                       "completed after being accounted lost")
            return
        self._completed[task_id] = self.env.now

    def task_lost(self, task_id: Any, reason: str) -> None:
        """Account a task that will never complete (with its reason)."""
        if task_id not in self._submitted:
            self._flag("exactly_once", task_id,
                       f"lost ({reason}) but never submitted")
            return
        if task_id in self._completed:
            self._flag("exactly_once", task_id,
                       f"accounted lost ({reason}) after completing")
            return
        if task_id in self._lost:
            self._flag("exactly_once", task_id, "accounted lost twice")
            return
        self._lost[task_id] = reason

    @property
    def submitted_count(self) -> int:
        return len(self._submitted)

    @property
    def completed_count(self) -> int:
        return len(self._completed)

    @property
    def lost_count(self) -> int:
        return len(self._lost)

    # -- invocation records --------------------------------------------------
    def invocation_finished(self, invocation) -> None:
        """Check one completed platform activation's record."""
        iid = invocation.invocation_id
        if iid in self._finished_invocations:
            self._flag("single_completion", f"invocation {iid}",
                       "finished twice")
            return
        self._finished_invocations[iid] = self.env.now
        if invocation.t_complete < invocation.t_arrive:
            self._flag("timestamps", f"invocation {iid}",
                       f"t_complete {invocation.t_complete:.6f} < "
                       f"t_arrive {invocation.t_arrive:.6f}")
        if invocation.t_scheduled and \
                invocation.t_scheduled < invocation.t_arrive:
            self._flag("timestamps", f"invocation {iid}",
                       "scheduled before arrival")

    # -- per-entity clocks -----------------------------------------------------
    def observe_clock(self, entity: str, time: float) -> None:
        """Assert ``entity``'s event stream carries monotone times."""
        last = self._entity_clocks.get(entity)
        if last is not None and time < last:
            self._flag("entity_clock", entity,
                       f"clock moved backwards {last:.6f} -> {time:.6f}")
        self._entity_clocks[entity] = time

    # -- energy ------------------------------------------------------------
    def check_energy(self, accounts) -> None:
        """Flag batteries drained below zero (accounting corruption)."""
        for account in accounts:
            # remaining_wh clamps at zero, so inspect the raw balance.
            # Non-strict accounts may legitimately over-draw (the
            # battery-swap abstraction); a strict account below zero means
            # the ledger was corrupted past the BatteryDepleted guard.
            balance = account.capacity_wh - account.consumed_wh
            if account.strict and balance < -ENERGY_EPSILON_WH:
                self._flag("energy", account.device,
                           f"balance {balance} Wh < 0")
            drawn = account.by_category()
            for category, wh in drawn.items():
                if wh < -ENERGY_EPSILON_WH:
                    self._flag("energy", account.device,
                               f"negative draw in {category}: {wh} Wh")

    # -- kernel observer ------------------------------------------------------
    def attach_kernel(self) -> None:
        """Wrap the environment's dispatch to watch clock monotonicity.

        This is the only invasive hook, and it is chaos-only: the wrapper
        just compares floats, scheduling nothing, so dispatch order and
        event times are untouched.
        """
        if self._kernel_attached:
            return
        self._kernel_attached = True
        env = self.env
        inner = env._dispatch

        def observed_dispatch(event):
            now = env._now
            if now < self._kernel_last_now:
                self._flag("kernel_clock", "environment",
                           f"clock moved backwards "
                           f"{self._kernel_last_now:.9f} -> {now:.9f}")
            self._kernel_last_now = now
            inner(event)

        env._dispatch = observed_dispatch

    # -- finalization ------------------------------------------------------
    def finalize(self, energy_accounts=None) -> List[Violation]:
        """Close the books: unaccounted tasks become violations."""
        if self._finalized:
            return self.violations
        self._finalized = True
        if energy_accounts is not None:
            self.check_energy(energy_accounts)
        for task_id, submitted_at in self._submitted.items():
            if task_id not in self._completed and task_id not in self._lost:
                self._flag("exactly_once", task_id,
                           f"submitted at t={submitted_at:.3f} but never "
                           f"completed nor accounted lost")
        return self.violations

    def summary(self) -> Dict[str, Any]:
        return {
            "submitted": self.submitted_count,
            "completed": self.completed_count,
            "lost": self.lost_count,
            "violations": len(self.violations),
            "violation_details": [str(v) for v in self.violations],
        }
