"""Per-layer fault injection: a FaultPlan applied to a live simulation.

The :class:`FaultInjector` walks a plan's events in time order from one
driver process and applies each to the layer it targets:

- ``device_crash`` / ``battery_brownout`` — edge devices (``fail()`` /
  an immediate battery drain).
- ``link_degrade`` / ``cloud_partition`` — the wireless fabric
  (capacity derating / the partition flag the RPC retry layer observes).
- ``server_crash`` / ``invoker_crash`` — the cluster + serverless stack
  via the platform's crash hooks, which interrupt in-flight activations
  and requeue them.
- ``couchdb_outage`` / ``kafka_outage`` — service-delay windows on the
  stores.
- ``function_faults`` — the invokers' existing mid-execution fault +
  respawn machinery (Fig 5c), switched on at the event time.

Windowed events (``duration_s`` set) schedule their own restore.

Determinism: the injector schedules events only at the plan's instants
and draws randomness only from its own ``faults.injector`` stream (and
currently draws none — every fault in a plan is explicit). An injector is
never constructed unless a plan is armed.
"""

from __future__ import annotations

from typing import Dict, Generator, List, Optional

from .plan import FaultEvent, FaultPlan
from .report import RecoveryLog

__all__ = ["FaultInjector"]


class FaultInjector:
    """Applies a :class:`FaultPlan` to the simulation's layers."""

    def __init__(self, env, plan: FaultPlan, *,
                 wireless=None, platform=None, cluster=None,
                 devices: Optional[Dict[str, object]] = None,
                 recovery_log: Optional[RecoveryLog] = None):
        if not plan.armed:
            raise ValueError("refusing to arm an empty fault plan")
        self.env = env
        self.plan = plan
        self.wireless = wireless
        self.platform = platform
        self.cluster = cluster
        self.devices = devices or {}
        self.recovery_log = recovery_log
        #: (time, kind, target) of every event actually applied.
        self.applied: List[tuple] = []
        self._driver = None

    def start(self) -> None:
        """Launch the driver process that walks the plan."""
        if self._driver is not None:
            raise RuntimeError("injector already started")
        self._driver = self.env.process(self._drive())

    # -- driver ------------------------------------------------------------
    def _drive(self) -> Generator:
        for event in self.plan.sorted_events():
            if event.time > self.env.now:
                yield self.env.timeout_at(event.time)
            self._apply(event)

    def _apply(self, event: FaultEvent) -> None:
        handler = getattr(self, f"_apply_{event.kind}")
        handler(event)
        self.applied.append((self.env.now, event.kind, event.target))

    def _schedule_restore(self, delay_s: float, restore) -> None:
        def _restorer() -> Generator:
            yield self.env.timeout(delay_s)
            restore()
        self.env.process(_restorer())

    # -- target resolution ---------------------------------------------------
    def _device(self, target: str):
        """A device by id, or by index into the sorted id order."""
        found = self.devices.get(target)
        if found is not None:
            return found
        ids = sorted(self.devices)
        try:
            return self.devices[ids[int(target)]]
        except (ValueError, IndexError):
            raise KeyError(f"unknown device target {target!r}")

    # -- edge layer ------------------------------------------------------------
    def _apply_device_crash(self, event: FaultEvent) -> None:
        self._device(event.target).fail()

    def _apply_battery_brownout(self, event: FaultEvent) -> None:
        device = self._device(event.target)
        account = device.energy
        # Drain `magnitude` of the *remaining* charge instantly (a cell
        # failure / voltage sag, not a steady draw). Charged to idle: the
        # lost charge did no useful work.
        lost_wh = event.magnitude * account.remaining_wh
        account.draw_energy("idle", lost_wh * 3600.0)
        if account.depleted:
            device.fail()

    # -- network layer ----------------------------------------------------------
    def _apply_link_degrade(self, event: FaultEvent) -> None:
        self.wireless.degrade(event.magnitude)
        if event.duration_s:
            self._schedule_restore(event.duration_s,
                                   self.wireless.restore_capacity)

    def _apply_cloud_partition(self, event: FaultEvent) -> None:
        self.wireless.set_partitioned(True)
        self._schedule_restore(
            event.duration_s, lambda: self.wireless.set_partitioned(False))

    # -- cluster / serverless layer ---------------------------------------------
    def _apply_server_crash(self, event: FaultEvent) -> None:
        self.platform.crash_server(event.target)
        if event.duration_s:
            self._schedule_restore(
                event.duration_s,
                lambda: self.platform.restore_server(event.target))

    def _apply_invoker_crash(self, event: FaultEvent) -> None:
        self.platform.crash_invoker(event.target)
        if event.duration_s:
            self._schedule_restore(
                event.duration_s,
                lambda: self.platform.restore_invoker(event.target))

    def _apply_couchdb_outage(self, event: FaultEvent) -> None:
        self.platform.couchdb.set_outage(self.env.now + event.duration_s)

    def _apply_kafka_outage(self, event: FaultEvent) -> None:
        self.platform.kafka.set_outage(self.env.now + event.duration_s)

    def _apply_function_faults(self, event: FaultEvent) -> None:
        for invoker in self.platform.invokers:
            invoker.fault_rate = event.magnitude
