"""Declarative fault schedules.

A :class:`FaultPlan` is a seed-stamped, time-ordered list of
:class:`FaultEvent` records. Plans are pure data: building one touches no
simulation state, so the same plan can be replayed against any scenario
(and serialized through ``to_dict``/``from_dict`` for harness configs).

Determinism/RNG-stream rule: events fire at the exact times written in
the plan. Any randomness used to *compose* a plan (e.g. picking which
server crashes) happens here, at build time, from the plan's own seed —
never at injection time — so arming a plan perturbs no workload stream.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Tuple

__all__ = ["FaultEvent", "FaultPlan", "PartitionedPlan", "named_plan",
           "plan_names"]

#: Every fault kind the injector understands, with the layer it targets.
KINDS = {
    "device_crash": "edge",        # target: device index (int) or id
    "battery_brownout": "edge",    # magnitude: battery fraction drained
    "link_degrade": "network",     # magnitude: capacity factor in (0, 1]
    "cloud_partition": "network",  # duration_s: unreachable window
    "server_crash": "cluster",     # target: server id; duration_s: reboot
    "invoker_crash": "serverless",  # target: server id; duration_s: reboot
    "couchdb_outage": "serverless",  # duration_s: store stalls
    "kafka_outage": "serverless",  # duration_s: bus stalls
    "function_faults": "serverless",  # magnitude: per-execution fault rate
}


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault."""

    time: float
    kind: str
    target: Optional[str] = None
    #: Length of windowed faults (outages, partitions, reboot delay of a
    #: crash). Zero means permanent (crashes) or instantaneous (brownout).
    duration_s: float = 0.0
    #: Kind-specific intensity: capacity factor for ``link_degrade``,
    #: drained battery fraction for ``battery_brownout``, per-execution
    #: failure probability for ``function_faults``.
    magnitude: float = 0.0

    def __post_init__(self):
        if self.kind not in KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; valid: {sorted(KINDS)}")
        if self.time < 0:
            raise ValueError("fault time must be non-negative")
        if self.duration_s < 0:
            raise ValueError("fault duration must be non-negative")
        if self.kind == "link_degrade" and not 0 < self.magnitude <= 1:
            raise ValueError("link_degrade magnitude is a capacity factor "
                             "in (0, 1]")
        if self.kind == "battery_brownout" and not 0 < self.magnitude <= 1:
            raise ValueError("brownout magnitude is a battery fraction "
                             "in (0, 1]")
        if self.kind == "function_faults" and not 0 <= self.magnitude < 1:
            raise ValueError("function fault rate must be in [0, 1)")

    @property
    def layer(self) -> str:
        return KINDS[self.kind]

    def to_dict(self) -> Dict[str, Any]:
        return {"time": self.time, "kind": self.kind, "target": self.target,
                "duration_s": self.duration_s, "magnitude": self.magnitude}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FaultEvent":
        return cls(time=float(data["time"]), kind=data["kind"],
                   target=data.get("target"),
                   duration_s=float(data.get("duration_s", 0.0)),
                   magnitude=float(data.get("magnitude", 0.0)))


@dataclass
class FaultPlan:
    """A named, deterministic schedule of fault events."""

    name: str = "adhoc"
    seed: int = 0
    events: List[FaultEvent] = field(default_factory=list)

    # -- composition ------------------------------------------------------
    def add(self, event: FaultEvent) -> "FaultPlan":
        self.events.append(event)
        return self

    def device_crash(self, time: float, target: str) -> "FaultPlan":
        return self.add(FaultEvent(time, "device_crash", target=target))

    def battery_brownout(self, time: float, target: str,
                         fraction: float) -> "FaultPlan":
        return self.add(FaultEvent(time, "battery_brownout", target=target,
                                   magnitude=fraction))

    def link_degrade(self, time: float, duration_s: float,
                     factor: float) -> "FaultPlan":
        return self.add(FaultEvent(time, "link_degrade",
                                   duration_s=duration_s, magnitude=factor))

    def cloud_partition(self, time: float,
                        duration_s: float) -> "FaultPlan":
        return self.add(FaultEvent(time, "cloud_partition",
                                   duration_s=duration_s))

    def server_crash(self, time: float, target: str,
                     reboot_s: float = 0.0) -> "FaultPlan":
        return self.add(FaultEvent(time, "server_crash", target=target,
                                   duration_s=reboot_s))

    def invoker_crash(self, time: float, target: str,
                      reboot_s: float = 0.0) -> "FaultPlan":
        return self.add(FaultEvent(time, "invoker_crash", target=target,
                                   duration_s=reboot_s))

    def couchdb_outage(self, time: float,
                       duration_s: float) -> "FaultPlan":
        return self.add(FaultEvent(time, "couchdb_outage",
                                   duration_s=duration_s))

    def kafka_outage(self, time: float, duration_s: float) -> "FaultPlan":
        return self.add(FaultEvent(time, "kafka_outage",
                                   duration_s=duration_s))

    def function_faults(self, time: float, rate: float) -> "FaultPlan":
        return self.add(FaultEvent(time, "function_faults",
                                   magnitude=rate))

    # -- views ------------------------------------------------------------
    @property
    def armed(self) -> bool:
        return bool(self.events)

    def sorted_events(self) -> List[FaultEvent]:
        """Events in firing order (time, then insertion order)."""
        return [event for _, event in
                sorted(enumerate(self.events),
                       key=lambda pair: (pair[1].time, pair[0]))]

    def horizon(self) -> float:
        """Last instant the plan touches (event end times included)."""
        if not self.events:
            return 0.0
        return max(e.time + e.duration_s for e in self.events)

    def kinds(self) -> Tuple[str, ...]:
        return tuple(sorted({e.kind for e in self.events}))

    def to_dict(self) -> Dict[str, Any]:
        return {"name": self.name, "seed": self.seed,
                "events": [e.to_dict() for e in self.events]}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FaultPlan":
        return cls(name=data.get("name", "adhoc"),
                   seed=int(data.get("seed", 0)),
                   events=[FaultEvent.from_dict(e)
                           for e in data.get("events", ())])

    def __len__(self) -> int:
        return len(self.events)

    # -- sharded decomposition --------------------------------------------
    def partition(self, n_devices: int,
                  cell_devices: int = 64,
                  region_devices: Optional[int] = None,
                  n_servers: Optional[int] = None) -> "PartitionedPlan":
        """Split this plan along the sharded runtime's cell decomposition.

        Device-layer events route to the cell that owns their target
        (target rewritten to the *local* index inside that cell, matching
        :func:`repro.sim.shard.plan_cells`). Network-layer events are
        replicated into every cell — each cell simulates its own slice of
        the access network, so a link degradation or cloud partition hits
        all of them. Cluster/serverless events land in the shared
        ``cloud`` plan, which the coordinating process owns.

        ``region_devices`` additionally builds per-region plans for the
        cloud-sharded runtime (``REPRO_CLOUD_SHARDS``) as a *parallel
        view* of the same backend events (the legacy ``cloud`` plan is
        unchanged): server/invoker crashes route to the region owning
        that server under the contiguous
        :func:`repro.serverless.region.region_server_count` split;
        CouchDB/Kafka outage windows replicate to every region (each
        region owns a proportional shard of the store/bus, so the
        outage stalls all of them — parity with the monolithic
        gateway); cloud-partition windows and function-fault rates
        replicate to every region. ``n_servers`` defaults to the swarm-scaled cluster
        size — pass it when partitioning for a custom cluster.

        Pure data in, pure data out: the method never touches simulation
        state, so a plan can be partitioned for any swarm size and the
        pieces serialized alongside the cells.
        """
        if n_devices <= 0:
            raise ValueError("n_devices must be positive")
        if cell_devices <= 0:
            raise ValueError("cell_devices must be positive")
        cell_devices = min(cell_devices, n_devices)
        cells: Dict[int, FaultPlan] = {}
        cloud = FaultPlan(name=f"{self.name}:cloud", seed=self.seed)
        regions: Dict[int, FaultPlan] = {}
        n_regions = None
        if region_devices is not None:
            if region_devices <= 0:
                raise ValueError("region_devices must be positive")
            n_regions = -(-n_devices // region_devices)
            if n_servers is None:
                from ..config import DEFAULT
                n_servers = DEFAULT.scaled_for_swarm(
                    n_devices).cluster.servers

        def cell_plan(index: int) -> FaultPlan:
            if index not in cells:
                cells[index] = FaultPlan(
                    name=f"{self.name}:cell{index}", seed=self.seed)
            return cells[index]

        def region_plan(index: int) -> FaultPlan:
            if index not in regions:
                regions[index] = FaultPlan(
                    name=f"{self.name}:region{index}", seed=self.seed)
            return regions[index]

        for event in self.sorted_events():
            layer = event.layer
            if layer == "edge":
                index = int(event.target)
                if not 0 <= index < n_devices:
                    raise ValueError(
                        f"device index {index} outside the swarm "
                        f"of {n_devices}")
                local = FaultEvent(
                    time=event.time, kind=event.kind,
                    target=str(index % cell_devices),
                    duration_s=event.duration_s,
                    magnitude=event.magnitude)
                cell_plan(index // cell_devices).add(local)
            elif layer == "network":
                n_cells = -(-n_devices // cell_devices)
                for cell in range(n_cells):
                    cell_plan(cell).add(event)
                if n_regions is not None and event.kind == "cloud_partition":
                    for region in range(n_regions):
                        region_plan(region).add(event)
            else:  # cluster / serverless — shared backend state.
                cloud.add(event)
                if n_regions is None:
                    continue
                if event.kind in ("server_crash", "invoker_crash"):
                    server = int("".join(
                        ch for ch in str(event.target) if ch.isdigit())
                        or 0)
                    region_plan(_owning_region(
                        server, n_regions, n_servers)).add(event)
                elif event.kind in ("couchdb_outage", "kafka_outage"):
                    # Every region owns a proportional shard of the
                    # store/bus, so an outage window stalls all of them
                    # — routing to region 0 only (the pre-supervision
                    # behaviour) under-injected cloud-sharded chaos runs
                    # versus the monolithic gateway.
                    for region in range(n_regions):
                        region_plan(region).add(event)
                else:  # function_faults — a platform-wide rate.
                    for region in range(n_regions):
                        region_plan(region).add(event)
        return PartitionedPlan(source=self, n_devices=n_devices,
                               cell_devices=cell_devices, cells=cells,
                               cloud=cloud, region_devices=region_devices,
                               regions=regions)


def _owning_region(server: int, n_regions: int, n_servers: int) -> int:
    """Region owning backend ``server`` under the contiguous split of
    :func:`repro.serverless.region.region_server_count` (when regions
    outnumber servers each region maps to one logical server, so the
    owner is the same-index region)."""
    if n_regions >= n_servers:
        return min(server, n_regions - 1)
    base, extra = divmod(n_servers, n_regions)
    cumulative = 0
    for region in range(n_regions):
        cumulative += base + (1 if region < extra else 0)
        if server < cumulative:
            return region
    return n_regions - 1


@dataclass(frozen=True)
class PartitionedPlan:
    """A :class:`FaultPlan` split along shard-cell ownership lines."""

    source: FaultPlan
    n_devices: int
    cell_devices: int
    #: Cell index -> that cell's local plan (device targets re-indexed;
    #: network events replicated). Cells with no events are absent.
    cells: Dict[int, FaultPlan]
    #: Cluster + serverless events; owned by the coordinating process.
    cloud: FaultPlan
    #: Region decomposition used for ``regions`` (None when the plan was
    #: partitioned without one; the legacy ``cloud`` plan is always
    #: built either way).
    region_devices: Optional[int] = None
    #: Region index -> that region's backend plan — a parallel view of
    #: the ``cloud`` events for the cloud-sharded runtime. Regions with
    #: no events are absent.
    regions: Dict[int, FaultPlan] = field(default_factory=dict)

    def cell(self, index: int) -> FaultPlan:
        """The plan for one cell (an empty plan when nothing targets it)."""
        return self.cells.get(
            index, FaultPlan(name=f"{self.source.name}:cell{index}",
                             seed=self.source.seed))

    def region(self, index: int) -> FaultPlan:
        """One region's backend plan (empty when nothing targets it)."""
        return self.regions.get(
            index, FaultPlan(name=f"{self.source.name}:region{index}",
                             seed=self.source.seed))

    def device_crash_schedule(self) -> List[Tuple[int, float]]:
        """(global device index, time) crash pairs for
        :func:`repro.sim.shard.run_sharded`'s ``device_faults``."""
        schedule = []
        for event in self.source.sorted_events():
            if event.kind == "device_crash":
                schedule.append((int(event.target), event.time))
        return schedule

    def __len__(self) -> int:
        return (len(self.cloud)
                + sum(len(plan) for plan in self.cells.values()))


# -- named plans ----------------------------------------------------------
def _mixed(duration_s: float) -> FaultPlan:
    """The acceptance plan: 20% function faults + one server crash + one
    cloud-partition window (ISSUE 4)."""
    plan = FaultPlan(name="mixed")
    plan.function_faults(0.0, 0.20)
    plan.server_crash(0.30 * duration_s, "server0")
    plan.cloud_partition(0.55 * duration_s, 0.10 * duration_s)
    return plan


def _partition(duration_s: float) -> FaultPlan:
    plan = FaultPlan(name="partition")
    plan.cloud_partition(0.40 * duration_s, 0.20 * duration_s)
    return plan


def _cluster_storm(duration_s: float) -> FaultPlan:
    """Cloud-side pile-up: invoker crash with reboot, CouchDB and Kafka
    outage windows, and a degraded wireless link."""
    plan = FaultPlan(name="cluster_storm")
    plan.invoker_crash(0.25 * duration_s, "server1",
                       reboot_s=0.10 * duration_s)
    plan.couchdb_outage(0.40 * duration_s, 0.05 * duration_s)
    plan.kafka_outage(0.50 * duration_s, 0.05 * duration_s)
    plan.link_degrade(0.60 * duration_s, 0.20 * duration_s, 0.5)
    return plan


def _edge_attrition(duration_s: float) -> FaultPlan:
    """Edge-side decay: a crash plus a brownout on two distinct devices."""
    plan = FaultPlan(name="edge_attrition")
    plan.device_crash(0.30 * duration_s, "0")
    plan.battery_brownout(0.50 * duration_s, "1", 0.95)
    return plan


_NAMED = {
    "mixed": _mixed,
    "partition": _partition,
    "cluster_storm": _cluster_storm,
    "edge_attrition": _edge_attrition,
}


def plan_names() -> List[str]:
    return sorted(_NAMED)


def named_plan(name: str, duration_s: float) -> FaultPlan:
    """Build one of the canonical plans, scaled to ``duration_s``."""
    builder = _NAMED.get(name)
    if builder is None:
        raise KeyError(f"unknown fault plan {name!r}; valid: {plan_names()}")
    if duration_s <= 0:
        raise ValueError("duration must be positive")
    return builder(duration_s)
