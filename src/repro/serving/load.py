"""Deterministic open-loop load generation for the serverless tier.

Every swarm scenario is closed-loop: a device submits its next batch
only after the previous one lands. The HiveMind paper, though, frames
the cloud tier as a *shared serverless service* — independent user
traffic arrives whether or not earlier queries completed. This module
produces that traffic: per-tenant arrival streams (Poisson, bursty
on/off flash crowds, diurnal envelopes), priced as tenant-tagged
:class:`~repro.sim.shard.CloudCall` messages and injected into the
cloud tier alongside swarm calls.

Determinism contract (the same one every other stream in the repo
honours):

- Each tenant draws from its own named stream in the seeded
  :class:`~repro.sim.rng.RandomStreams` registry
  (``serving.<tenant>`` under ``seed + SERVING_SEED_OFFSET``), so the
  arrival sequence is a pure function of ``(seed, tenant spec,
  duration)`` — identical across process restarts and across any
  ``(shards, cloud_shards)`` worker grouping.
- Phase boundaries of the on/off flash crowd and the diurnal envelope
  are *deterministic* (only arrivals within a phase are stochastic), so
  reaction-time measurements against the burst onset are well-defined.
- Region assignment is front-door round-robin over the per-tenant
  sequence number — a pure function of the call, never of worker
  scheduling.

All three processes are piecewise-homogeneous Poisson: a tenant's kind
expands to ``(start, end, rate)`` segments and one inverse-CDF sampler
walks them. Generation is bounded by ``max_calls`` per tenant; hitting
the cap is reported, never silent (see :func:`generate_serving_calls`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..sim.rng import RandomStreams

__all__ = ["TenantSpec", "LoadGenerator", "parse_serving_spec",
           "arrival_times", "generate_serving_calls",
           "SERVING_SEED_OFFSET", "SERVING_CELL_BASE",
           "DEFAULT_DURATION_S", "MAX_CALLS_PER_TENANT"]

#: Stream-namespace offset for serving tenants (cells use ``seed +
#: 1000*k``, the gateway ``seed + 271_828``; this keeps serving clear of
#: both).
SERVING_SEED_OFFSET = 314_159

#: Cell ids stamped on serving calls. Real cells are numbered from 0 by
#: the plan; serving tenants live far above so ``(cell, seq)`` join keys
#: can never collide with swarm traffic.
SERVING_CELL_BASE = 1_000_000

#: Horizon of background load injected into swarm runs when the spec
#: does not say otherwise (roughly one mission's worth).
DEFAULT_DURATION_S = 120.0

#: Per-tenant arrival cap — a backstop against runaway specs (e.g. a
#: mistyped rate), not a tuning knob. Hitting it is reported.
MAX_CALLS_PER_TENANT = 200_000

#: Serving queries are lookups against swarm-produced state, not frame
#: uploads: small request/response payloads.
QUERY_INPUT_MB = 0.2
QUERY_OUTPUT_MB = 0.05

#: Hour-by-hour weights of the diurnal envelope (normalized so the
#: tenant's configured rate is the *mean*; the evening peak is ~1.9x).
DIURNAL_PROFILE: Tuple[float, ...] = (
    0.30, 0.22, 0.18, 0.16, 0.18, 0.26, 0.42, 0.66,
    0.92, 1.10, 1.20, 1.28, 1.32, 1.28, 1.24, 1.22,
    1.26, 1.40, 1.62, 1.86, 1.90, 1.60, 1.10, 0.62)

_KINDS = ("poisson", "onoff", "diurnal")


@dataclass(frozen=True)
class TenantSpec:
    """One tenant's arrival process (pure data, picklable).

    ``rate_rps`` is the tenant's *mean* arrival rate; the on/off kind
    bursts to ``rate_rps * burst_mult`` during its on-phases and the
    diurnal kind modulates around the mean with
    :data:`DIURNAL_PROFILE`. ``weight`` is the tenant's fair share under
    admission-control overload (see
    :class:`~repro.serving.admission.AdmissionController`).
    """

    name: str
    kind: str = "poisson"
    rate_rps: float = 40.0
    weight: float = 1.0
    #: on/off kind: burst multiplier and the deterministic phase plan
    #: (the stream starts in the off/baseline phase, so the first burst
    #: onset is exactly ``off_s`` — the instant reaction times are
    #: measured against).
    burst_mult: float = 8.0
    on_s: float = 10.0
    off_s: float = 30.0
    #: diurnal kind: one full envelope period, compressed from 24 h so
    #: short experiments still sweep through peak and trough.
    period_s: float = 240.0

    def __post_init__(self):
        if self.kind not in _KINDS:
            raise ValueError(
                f"unknown arrival kind {self.kind!r} (want one of "
                f"{', '.join(_KINDS)})")
        if self.rate_rps <= 0:
            raise ValueError("tenant rate must be positive")
        if self.weight <= 0:
            raise ValueError("tenant weight must be positive")

    def segments(self, duration_s: float
                 ) -> List[Tuple[float, float, float]]:
        """Expand to deterministic ``(start, end, rate)`` segments."""
        if duration_s <= 0:
            return []
        if self.kind == "poisson":
            return [(0.0, duration_s, self.rate_rps)]
        if self.kind == "onoff":
            # Baseline rate off-phase, burst on-phase; the mean over one
            # full cycle is kept at rate_rps by deflating the baseline.
            cycle = self.on_s + self.off_s
            mean_mult = (self.off_s + self.burst_mult * self.on_s) / cycle
            base = self.rate_rps / mean_mult
            out, t, phase_on = [], 0.0, False
            while t < duration_s:
                span = self.on_s if phase_on else self.off_s
                end = min(t + span, duration_s)
                out.append((t, end, base * (self.burst_mult
                                            if phase_on else 1.0)))
                t, phase_on = end, not phase_on
            return out
        # diurnal: hourly buckets compressed into period_s.
        mean = sum(DIURNAL_PROFILE) / len(DIURNAL_PROFILE)
        bucket = self.period_s / len(DIURNAL_PROFILE)
        out, t = [], 0.0
        while t < duration_s:
            index = int(t / bucket) % len(DIURNAL_PROFILE)
            end = min((math.floor(t / bucket) + 1) * bucket, duration_s)
            out.append((t, end,
                        self.rate_rps * DIURNAL_PROFILE[index] / mean))
            t = end
        return out

    @property
    def burst_start_s(self) -> float:
        """First burst onset (on/off kind): the reaction-time anchor."""
        if self.kind != "onoff":
            raise ValueError(f"tenant {self.name!r} has no burst phase")
        return self.off_s


def parse_serving_spec(spec: str) -> Tuple[TenantSpec, ...]:
    """Parse a ``REPRO_SERVING`` / ``--serving`` spec string.

    Grammar: comma-separated tenants, each
    ``kind:rate[:name[:weight]]`` — e.g.
    ``poisson:200,onoff:80:flash:0.5``. The bare convenience values
    ``1``/``on`` arm one default Poisson tenant.
    """
    spec = spec.strip()
    if not spec:
        raise ValueError("empty serving spec")
    if spec in ("1", "on", "true"):
        return (TenantSpec(name="users"),)
    tenants: List[TenantSpec] = []
    for position, chunk in enumerate(spec.split(",")):
        parts = [part.strip() for part in chunk.split(":")]
        if not parts[0]:
            raise ValueError(f"empty tenant spec in {spec!r}")
        kind = parts[0]
        if kind not in _KINDS:
            raise ValueError(
                f"unknown arrival kind {kind!r} in {chunk!r} "
                f"(want one of {', '.join(_KINDS)})")
        rate = float(parts[1]) if len(parts) > 1 and parts[1] else 40.0
        name = (parts[2] if len(parts) > 2 and parts[2]
                else f"{kind}{position}")
        weight = float(parts[3]) if len(parts) > 3 and parts[3] else 1.0
        tenants.append(TenantSpec(name=name, kind=kind, rate_rps=rate,
                                  weight=weight))
    names = [tenant.name for tenant in tenants]
    if len(set(names)) != len(names):
        raise ValueError(f"duplicate tenant names in {spec!r}")
    return tuple(tenants)


def arrival_times(tenant: TenantSpec, duration_s: float, rng,
                  max_calls: int = MAX_CALLS_PER_TENANT
                  ) -> Tuple[List[float], bool]:
    """Sample the tenant's arrival instants on ``[0, duration_s)``.

    Inverse-CDF exponential gaps over the tenant's deterministic rate
    segments, drawn in strict sequence from ``rng`` so the result is a
    pure function of the stream state. Returns ``(times, truncated)``.
    """
    times: List[float] = []
    for start, end, rate in tenant.segments(duration_s):
        if rate <= 0:
            continue
        t = start
        while True:
            t += -math.log(1.0 - rng.random()) / rate
            if t >= end:
                break
            if len(times) >= max_calls:
                return times, True
            times.append(t)
    return times, False


def generate_serving_calls(tenants: Sequence[TenantSpec],
                           duration_s: float, seed: int, scenario,
                           n_regions: int = 1,
                           max_calls: int = MAX_CALLS_PER_TENANT):
    """Price every tenant's arrivals as tenant-tagged cloud calls.

    Returns ``(calls, truncated_tenants)``: the calls in canonical
    ``(arrival_s, cell, seq)`` order, and the names of tenants whose
    streams hit the ``max_calls`` backstop (callers must surface these
    — a silently truncated stream would read as "served everything").

    Each call invokes the scenario's recognition function (so serving
    traffic contends for the same warm pools, cores, and controller
    slots as swarm traffic) with a query-sized payload and a service
    draw from the tenant's own stream. Calls are ``synthetic`` (no
    straggler mitigation, never joined into swarm latency rows) and
    carry ``tenant`` for the admission controller's fairness ledger.
    """
    from ..sim.shard import CloudCall
    if duration_s <= 0:
        raise ValueError("serving duration must be positive")
    if n_regions < 1:
        raise ValueError("n_regions must be at least 1")
    app = scenario.recognition
    log_service = math.log(app.cloud_service_s)
    streams = RandomStreams(seed + SERVING_SEED_OFFSET)
    calls: List[CloudCall] = []
    truncated: List[str] = []
    for index, tenant in enumerate(tenants):
        rng = streams.stream(f"serving.{tenant.name}")
        times, hit_cap = arrival_times(tenant, duration_s, rng,
                                       max_calls=max_calls)
        if hit_cap:
            truncated.append(tenant.name)
        cell = SERVING_CELL_BASE + index
        for seq, arrival in enumerate(times):
            service_s = float(rng.lognormal(log_service,
                                            app.service_sigma))
            calls.append(CloudCall(
                cell=cell, seq=seq, device_id=f"tenant:{tenant.name}",
                arrival_s=arrival, recognition_s=service_s,
                dedup_s=None, input_mb=QUERY_INPUT_MB,
                output_mb=QUERY_OUTPUT_MB,
                region=seq % n_regions,
                synthetic=True, weight=1.0,
                tenant=tenant.name))
    calls.sort(key=lambda call: call.sort_key)
    return calls, truncated


class LoadGenerator:
    """Convenience bundle: a tenant set plus its seeded registry.

    The functional API above is what the sharded driver uses; this
    class exists for interactive/standalone use (fig19, notebooks)."""

    def __init__(self, tenants: Sequence[TenantSpec], seed: int = 0):
        if not tenants:
            raise ValueError("need at least one tenant")
        self.tenants = tuple(tenants)
        self.seed = seed

    def calls(self, duration_s: float, scenario, n_regions: int = 1,
              max_calls: int = MAX_CALLS_PER_TENANT):
        return generate_serving_calls(
            self.tenants, duration_s, self.seed, scenario,
            n_regions=n_regions, max_calls=max_calls)
