"""Open-loop serving: load generation, admission control, autoscaling.

The HiveMind cloud tier is a shared serverless service; this package
makes it face *open-loop* user traffic (arrivals that never wait for
completions) and react with elasticity instead of melting:

- :mod:`repro.serving.load` — deterministic per-tenant arrival streams
  (Poisson, on/off flash crowds, diurnal envelopes) priced as
  tenant-tagged cloud calls.
- :mod:`repro.serving.admission` — queue-length / delay-bound load
  shedding with per-tenant weighted fairness (swarm calls never shed).
- :mod:`repro.serving.autoscale` — reactive invoker-pool scaling with
  real provisioning lag and cold-start costs.

Arming: ``REPRO_SERVING=<spec>`` (or ``--serving``) injects background
load into sharded swarm runs (the serving stream is served by the
regional cloud tier, which serving arms implicitly — exactly the
hybrid mean-field precedent); ``REPRO_SERVING_ADMISSION=0`` and
``REPRO_SERVING_AUTOSCALE=0`` disarm each policy independently.
Unarmed runs never construct any of this and stay byte-identical to
the seed.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Optional, Tuple

from .admission import AdmissionConfig, AdmissionController
from .autoscale import AutoscaleConfig, InvokerAutoscaler, ScaleEvent
from .load import (DEFAULT_DURATION_S, LoadGenerator, SERVING_CELL_BASE,
                   SERVING_SEED_OFFSET, TenantSpec, generate_serving_calls,
                   parse_serving_spec)

__all__ = ["TenantSpec", "LoadGenerator", "parse_serving_spec",
           "generate_serving_calls", "AdmissionConfig",
           "AdmissionController", "AutoscaleConfig", "InvokerAutoscaler",
           "ScaleEvent", "ServingConfig", "ServingPolicy",
           "emit_serving_spans", "SERVING_CELL_BASE",
           "SERVING_SEED_OFFSET", "DEFAULT_DURATION_S"]


@dataclass(frozen=True)
class ServingConfig:
    """Everything a worker needs to rebuild the serving stack (pure
    data, picklable — it crosses the shard/cloud worker pipes)."""

    tenants: Tuple[TenantSpec, ...]
    duration_s: float = DEFAULT_DURATION_S
    admission_enabled: bool = True
    autoscale_enabled: bool = True
    admission: AdmissionConfig = AdmissionConfig()
    autoscale: AutoscaleConfig = AutoscaleConfig()

    @classmethod
    def from_spec(cls, spec: str,
                  admission: Optional[bool] = None,
                  autoscale: Optional[bool] = None,
                  duration_s: Optional[float] = None) -> "ServingConfig":
        """Resolve a spec string plus the sub-switch flags."""
        from ..sim import flags
        return cls(
            tenants=parse_serving_spec(spec),
            duration_s=(duration_s if duration_s is not None
                        else DEFAULT_DURATION_S),
            admission_enabled=flags.serving_admission_enabled(admission),
            autoscale_enabled=flags.serving_autoscale_enabled(autoscale))

    def with_policies(self, admission: Optional[AdmissionConfig] = None,
                      autoscale: Optional[AutoscaleConfig] = None
                      ) -> "ServingConfig":
        out = self
        if admission is not None:
            out = replace(out, admission=admission)
        if autoscale is not None:
            out = replace(out, autoscale=autoscale)
        return out

    @property
    def tenant_weights(self) -> Dict[str, float]:
        return {tenant.name: tenant.weight for tenant in self.tenants}


class ServingPolicy:
    """One region's (or one gateway's) reactive serving stack.

    Built inside whichever process owns the gateway — policies hold
    mutable counters and are never pickled; only :class:`ServingConfig`
    crosses process boundaries.
    """

    def __init__(self, config: ServingConfig, n_servers: int,
                 cores_per_server: int):
        cores = max(1, n_servers * cores_per_server)
        self.config = config
        self.admission = (AdmissionController(
            config.admission, cores,
            tenant_weights=config.tenant_weights)
            if config.admission_enabled else None)
        self.autoscaler = (InvokerAutoscaler(
            config.autoscale, n_servers, cores_per_server)
            if config.autoscale_enabled else None)

    def observe(self, t: float, backlog: int) -> None:
        if self.autoscaler is not None:
            self.autoscaler.observe(t, backlog)

    def admit(self, t: float, tenant: Optional[str], weight: float,
              backlog: int, est_delay_s: float) -> bool:
        if self.admission is None:
            return True
        return self.admission.offer(t, tenant, weight, backlog,
                                    est_delay_s)

    def active_servers(self, t: float) -> Optional[int]:
        """Autoscaled active-server count, or ``None`` when the pool is
        static (autoscaler disarmed)."""
        if self.autoscaler is None:
            return None
        return self.autoscaler.active(t)

    def stats(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "admission_enabled": self.admission is not None,
            "autoscale_enabled": self.autoscaler is not None,
        }
        if self.admission is not None:
            out["admission"] = self.admission.stats()
        if self.autoscaler is not None:
            out["autoscale"] = self.autoscaler.stats()
        return out


def emit_serving_spans(tracer, stats: Dict[str, object], label: str,
                       replica: int = 0) -> int:
    """Record shed/scale events as spans on an armed tracer.

    ``stats`` is a :meth:`ServingPolicy.stats` dict (possibly shipped
    back from a worker). Spans land under one ``serving:<label>`` root
    in the ``serving`` layer, so trace exports show elasticity
    reactions on the same timeline as the call pipeline. Returns the
    number of spans emitted; a ``None``/disarmed tracer is a no-op.
    """
    if tracer is None or not stats:
        return 0
    emitted = 0
    root = tracer.start_trace(f"serving:{label}", "serving", 0.0,
                              replica=replica)
    end = 0.0
    admission = stats.get("admission")
    if admission:
        for t, tenant in admission.get("shed_samples", ()):
            root.emit("shed", "serving", t, t, tenant=tenant)
            emitted += 1
            end = max(end, t)
    autoscale = stats.get("autoscale")
    if autoscale:
        for event in autoscale.get("events", ()):
            root.emit(f"scale_{event['direction']}", "serving",
                      event["decided_s"], event["ready_s"],
                      active_before=event["active_before"],
                      active_after=event["active_after"])
            emitted += 1
            end = max(end, event["ready_s"])
    root.close(end)
    return emitted + 1
