"""Admission control and load shedding at the controller's front door.

Under open-loop overload the platform's own concurrency limit only
*delays* admission (arrivals queue on the regional ``_admitted`` heap
and wait), so queues — and tail latency — grow without bound. The
admission controller sheds instead: a queue-length / delay-bound gate
in front of the pipeline, with per-tenant weighted fairness so bulk
background tenants cannot starve swarm-critical calls.

The gate has three regimes, keyed on the in-flight backlog ``q`` and
the estimated queueing delay:

- ``q <= queue_bound`` and delay within bound: admit everything.
- ``queue_bound < q <= hard_bound`` (the *fair-trim* band): background
  tenants are trimmed by weighted fair share — a tenant is admitted
  only while its normalized admitted work ``admitted/weight`` does not
  exceed the minimum across active background tenants (start-time
  weighted fairness, the WFQ virtual-clock rule collapsed to
  unit-work calls). Over-share tenants shed first; an on-weight tenant
  keeps its proportional trickle.
- ``q > hard_bound`` or delay beyond ``delay_bound_s``: shed every
  background call.

Swarm-critical calls (``tenant is None``) are **never** shed — they
bypass the gate entirely and only appear in the ledger as offered
work. Decisions are pure functions of the call sequence, so armed runs
stay byte-deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

__all__ = ["AdmissionConfig", "AdmissionController"]

#: Shed-event sample retention: enough to reconstruct the shed
#: trajectory in spans/tests without shipping an unbounded list across
#: worker pipes.
MAX_SHED_SAMPLES = 512


@dataclass(frozen=True)
class AdmissionConfig:
    """Gate bounds (pure data, picklable).

    ``queue_bound``/``hard_bound`` are in-flight call counts; ``None``
    derives them from the serving cluster size at policy build time
    (2x and 4x the region's core count — queues past "every core busy
    twice over" are pure waiting).
    """

    queue_bound: Optional[int] = None
    hard_bound: Optional[int] = None
    delay_bound_s: float = 2.0

    def resolved(self, cores: int) -> Tuple[int, int]:
        soft = (self.queue_bound if self.queue_bound is not None
                else max(8, 2 * cores))
        hard = (self.hard_bound if self.hard_bound is not None
                else max(soft + 1, 2 * soft))
        if hard <= soft:
            raise ValueError("hard_bound must exceed queue_bound")
        return soft, hard


class AdmissionController:
    """The per-region gate; one instance per
    :class:`~repro.serverless.region.RegionGateway`."""

    def __init__(self, config: AdmissionConfig, cores: int,
                 tenant_weights: Optional[Dict[str, float]] = None):
        self.queue_bound, self.hard_bound = config.resolved(cores)
        self.delay_bound_s = config.delay_bound_s
        self._weights = dict(tenant_weights or {})
        #: Normalized admitted work per background tenant (the WFQ
        #: virtual clock: admitted unit-calls / weight).
        self._vtime: Dict[str, float] = {}
        self.offered: Dict[str, int] = {}
        self.admitted: Dict[str, int] = {}
        self.shed: Dict[str, int] = {}
        #: First shed instants ``(t, tenant)`` — capped, for spans.
        self.shed_samples: List[Tuple[float, str]] = []
        self.total_shed = 0

    def _bump(self, ledger: Dict[str, int], tenant: str) -> None:
        ledger[tenant] = ledger.get(tenant, 0) + 1

    def offer(self, t: float, tenant: Optional[str], weight: float,
              backlog: int, est_delay_s: float) -> bool:
        """Admit or shed one arrival; swarm calls always pass."""
        key = tenant if tenant is not None else "swarm"
        self._bump(self.offered, key)
        if tenant is None:
            self._bump(self.admitted, key)
            return True
        weight = self._weights.get(tenant, weight)
        vt = self._vtime.setdefault(tenant, 0.0)
        if backlog > self.hard_bound or est_delay_s > self.delay_bound_s:
            admit = False
        elif backlog > self.queue_bound:
            # Fair-trim band: only tenants at the minimum normalized
            # admitted work may claim slots (epsilon absorbs float
            # accumulation; decisions stay deterministic).
            admit = vt <= min(self._vtime.values()) + 1e-9
        else:
            admit = True
        if admit:
            self._bump(self.admitted, key)
            self._vtime[tenant] = vt + 1.0 / weight
        else:
            self._bump(self.shed, key)
            self.total_shed += 1
            if len(self.shed_samples) < MAX_SHED_SAMPLES:
                self.shed_samples.append((t, key))
        return admit

    def stats(self) -> Dict[str, object]:
        return {
            "queue_bound": self.queue_bound,
            "hard_bound": self.hard_bound,
            "delay_bound_s": self.delay_bound_s,
            "offered": dict(self.offered),
            "admitted": dict(self.admitted),
            "shed": dict(self.shed),
            "total_shed": self.total_shed,
            "shed_samples": list(self.shed_samples),
        }
