"""Invoker-pool autoscaling for the regional serverless tier.

The fixed backend cluster of the figure harnesses is the paper's
configuration, but a serverless service under open-loop load reacts to
demand: this module scales the *active* invoker-server pool of one
region up and down between ``min_servers`` and the region's full
slice. Placement (:meth:`~repro.serverless.region.RegionGateway.
_healthy`) only considers active servers, so a scaled-in pool
concentrates load — and a scale-out pays real cold-start costs through
the existing invoker model, because a newly activated server's warm
pool is empty until its first containers return.

Policy (deliberately the simple reactive controller the serving
literature baselines against):

- **Scale out** when the in-flight backlog exceeds
  ``scale_out_backlog`` calls per active server: activate enough
  servers to bring the ratio back under the threshold (bounded by the
  pool), each becoming *ready* only after ``provision_s`` — the
  provisioning lead time users perceive as reaction lag.
- **Scale in** one server after the backlog has stayed under a quarter
  of the scale-out threshold for ``scale_in_idle_s`` continuously.
- A ``cooldown_s`` guard after every decision damps oscillation.

Every decision appends a :class:`ScaleEvent`; the flash-crowd
experiment measures reaction time as ``ready_s - burst_start`` of the
first scale-out after the burst onset. Decisions depend only on the
observed ``(t, backlog)`` sequence, so armed runs stay
byte-deterministic.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional

__all__ = ["AutoscaleConfig", "ScaleEvent", "InvokerAutoscaler"]

#: Scale-event retention shipped across worker pipes (a run makes a
#: handful; the cap is a backstop, and hitting it is counted).
MAX_SCALE_EVENTS = 256


@dataclass(frozen=True)
class AutoscaleConfig:
    """Controller knobs (pure data, picklable). ``scale_out_backlog``
    of ``None`` derives "every active core busy" at build time."""

    min_servers: int = 1
    scale_out_backlog: Optional[int] = None
    scale_in_idle_s: float = 30.0
    cooldown_s: float = 10.0
    #: Provisioning lead time before an activated server can take
    #: placements (boot + runtime pull; its container cold starts are
    #: then priced by the invoker model on first use).
    provision_s: float = 8.0


@dataclass(frozen=True)
class ScaleEvent:
    decided_s: float
    ready_s: float
    direction: str  # "out" | "in"
    active_before: int
    active_after: int

    def to_dict(self) -> Dict[str, object]:
        return {"decided_s": self.decided_s, "ready_s": self.ready_s,
                "direction": self.direction,
                "active_before": self.active_before,
                "active_after": self.active_after}


class InvokerAutoscaler:
    """One region's reactive pool controller."""

    def __init__(self, config: AutoscaleConfig, n_servers: int,
                 cores_per_server: int):
        if n_servers < 1:
            raise ValueError("need at least one server to scale")
        self.max_servers = n_servers
        self.min_servers = max(1, min(config.min_servers, n_servers))
        self.threshold = (config.scale_out_backlog
                          if config.scale_out_backlog is not None
                          else max(1, cores_per_server))
        self.scale_in_idle_s = config.scale_in_idle_s
        self.cooldown_s = config.cooldown_s
        self.provision_s = config.provision_s
        #: Activation instants of servers beyond the always-on base;
        #: ``_targets[i]`` ready at that time (sorted by construction —
        #: decisions arrive in non-decreasing t).
        self._ready_at: List[float] = []
        self._target = self.min_servers
        self._cooldown_until = -math.inf
        self._low_since: Optional[float] = None
        self.events: List[ScaleEvent] = []
        self.dropped_events = 0

    def active(self, t: float) -> int:
        """Servers able to take placements at ``t`` (provisioned and
        past their readiness instant)."""
        ready = sum(1 for at in self._ready_at if at <= t)
        return min(self.max_servers, self.min_servers + ready)

    def _record(self, event: ScaleEvent) -> None:
        if len(self.events) < MAX_SCALE_EVENTS:
            self.events.append(event)
        else:
            self.dropped_events += 1

    def observe(self, t: float, backlog: int) -> None:
        """Feed one ``(t, backlog)`` observation (non-decreasing t)."""
        active = self.active(t)
        if (backlog > self.threshold * active
                and self._target < self.max_servers
                and t >= self._cooldown_until):
            want = min(self.max_servers,
                       max(self._target + 1,
                           math.ceil(backlog / self.threshold)))
            added = want - self._target
            self._ready_at.extend([t + self.provision_s] * added)
            self._record(ScaleEvent(
                decided_s=t, ready_s=t + self.provision_s,
                direction="out", active_before=self._target,
                active_after=want))
            self._target = want
            self._cooldown_until = t + self.cooldown_s
            self._low_since = None
            return
        if backlog * 4 < self.threshold * active:
            if self._low_since is None:
                self._low_since = t
            elif (t - self._low_since >= self.scale_in_idle_s
                    and self._target > self.min_servers
                    and t >= self._cooldown_until):
                self._ready_at.pop()
                self._record(ScaleEvent(
                    decided_s=t, ready_s=t, direction="in",
                    active_before=self._target,
                    active_after=self._target - 1))
                self._target -= 1
                self._cooldown_until = t + self.cooldown_s
                self._low_since = t
        else:
            self._low_since = None

    def reaction_s(self, burst_start_s: float) -> Optional[float]:
        """Time from a burst onset to the first post-onset scale-out
        capacity coming online, or ``None`` if none fired."""
        for event in self.events:
            if event.direction == "out" and event.decided_s >= burst_start_s:
                return event.ready_s - burst_start_s
        return None

    def stats(self) -> Dict[str, object]:
        outs = [e for e in self.events if e.direction == "out"]
        ins = [e for e in self.events if e.direction == "in"]
        return {
            "min_servers": self.min_servers,
            "max_servers": self.max_servers,
            "threshold": self.threshold,
            "target": self._target,
            "scale_outs": len(outs),
            "scale_ins": len(ins),
            "dropped_events": self.dropped_events,
            "events": [e.to_dict() for e in self.events],
        }
