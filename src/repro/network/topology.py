"""Topology builder: wires the swarm, access network, and cluster together."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional


from ..config import PaperConstants
from ..sim import Environment, RandomStreams
from ..telemetry import BandwidthMeter
from .rpc import EdgeCloudRpc, SoftwareClusterRpc
from .switch import ClusterNetwork
from .wireless import WirelessNetwork

__all__ = ["Fabric", "build_fabric"]


@dataclass
class Fabric:
    """All network pieces of one simulated deployment."""

    wireless: WirelessNetwork
    cluster: ClusterNetwork
    edge_rpc: EdgeCloudRpc
    cluster_rpc: SoftwareClusterRpc
    wireless_meter: BandwidthMeter
    cluster_meter: BandwidthMeter
    server_ids: List[str]


def build_fabric(env: Environment, constants: PaperConstants,
                 streams: Optional[RandomStreams] = None,
                 analytic: Optional[bool] = None) -> Fabric:
    """Build the full network fabric for one experiment.

    Registers ``constants.cluster.servers`` servers on the ToR and returns
    the transports the serverless and edge layers use. ``analytic``
    selects the virtual-clock link models (None: the
    ``REPRO_ANALYTIC_NET`` default, see :mod:`repro.sim.flags`).
    """
    # The shared loss stream is the hottest RNG consumer in the fabric
    # (one geometric draw per stochastic transfer grant): serve it from a
    # draw-ahead buffer. Exact-parity: the stream is single-lane (every
    # wireless link draws geometric with the same fixed p), see
    # repro.sim.rng. REPRO_BATCHED_RNG=0 restores the raw generator.
    rng = streams.buffered("network.loss") if streams is not None else None
    wireless_meter = BandwidthMeter("wireless")
    cluster_meter = BandwidthMeter("cluster")
    wireless = WirelessNetwork(env, constants.wireless,
                               meter=wireless_meter, rng=rng,
                               analytic=analytic)
    cluster = ClusterNetwork(env, constants.cluster, meter=cluster_meter,
                             analytic=analytic)
    server_ids = [f"server{i}" for i in range(constants.cluster.servers)]
    for server_id in server_ids:
        cluster.register_server(server_id)
    return Fabric(
        wireless=wireless,
        cluster=cluster,
        edge_rpc=EdgeCloudRpc(env, wireless),
        cluster_rpc=SoftwareClusterRpc(env, cluster),
        wireless_meter=wireless_meter,
        cluster_meter=cluster_meter,
        server_ids=server_ids,
    )
