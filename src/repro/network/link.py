"""Point-to-point serialized links.

A :class:`Link` is a one-way channel with finite bandwidth and a fixed
propagation/processing latency. Transfers serialize through the link FIFO,
so offered load beyond capacity queues — this is what produces the
saturation knees in Figs 3b and 17. Random loss is modeled as an expected
retransmission inflation of the serialization time (adequate for the
throughput/latency shapes the paper reports; we do not model per-packet
ARQ state).
"""

from __future__ import annotations

from typing import Generator, Optional

import numpy as np

from ..sim import Environment, Resource
from ..telemetry import BandwidthMeter

__all__ = ["Link"]


class Link:
    """One-way channel: FIFO serialization at ``bandwidth_mbs`` + latency."""

    def __init__(self, env: Environment, name: str, bandwidth_mbs: float,
                 latency_s: float = 0.0, loss_rate: float = 0.0,
                 meter: Optional[BandwidthMeter] = None,
                 rng: Optional[np.random.Generator] = None,
                 contention_penalty: float = 0.0,
                 max_collapse: float = 2.5):
        if bandwidth_mbs <= 0:
            raise ValueError("bandwidth must be positive")
        if latency_s < 0:
            raise ValueError("latency must be non-negative")
        if not 0 <= loss_rate < 1:
            raise ValueError("loss rate must be in [0, 1)")
        if contention_penalty < 0 or max_collapse < 1:
            raise ValueError("invalid contention parameters")
        self.env = env
        self.name = name
        self.bandwidth_mbs = bandwidth_mbs
        self.latency_s = latency_s
        self.loss_rate = loss_rate
        self.meter = meter
        self._rng = rng
        #: CSMA congestion collapse: with many stations backlogged the
        #: effective goodput degrades (collisions, exponential backoff).
        #: Each queued transfer inflates service by this fraction, capped
        #: at ``max_collapse``. Zero for wired links.
        self.contention_penalty = contention_penalty
        self.max_collapse = max_collapse
        self._channel = Resource(env, capacity=1)
        self._busy_s = 0.0

    def serialization_time(self, megabytes: float) -> float:
        """Time on the wire for ``megabytes``, including expected loss."""
        base = megabytes / self.bandwidth_mbs
        if self.loss_rate:
            base /= (1.0 - self.loss_rate)
        return base

    def transfer(self, megabytes: float) -> Generator:
        """Process: queue for the link, serialize, then propagate.

        Yields until the payload is fully delivered; returns the total
        seconds the transfer took (queueing + serialization + latency).
        """
        if megabytes < 0:
            raise ValueError("megabytes must be non-negative")
        start = self.env.now
        backlog = self.queue_length
        with self._channel.request() as grant:
            yield grant
            service = self.serialization_time(megabytes)
            if self._rng is not None and self.loss_rate:
                # Jitter the retransmission inflation around its mean.
                retries = self._rng.geometric(1.0 - self.loss_rate) - 1
                service = (megabytes / self.bandwidth_mbs) * (1 + retries)
            if self.contention_penalty:
                service *= min(self.max_collapse,
                               1.0 + self.contention_penalty * backlog)
            self._busy_s += service
            yield self.env.timeout(service)
        yield self.env.timeout(self.latency_s)
        if self.meter is not None:
            self.meter.record(self.env.now, megabytes)
        return self.env.now - start

    @property
    def queue_length(self) -> int:
        return len(self._channel.queue)

    def busy_fraction(self, horizon_s: float) -> float:
        """Fraction of ``horizon_s`` the link spent serializing."""
        if horizon_s <= 0:
            raise ValueError("horizon must be positive")
        return min(1.0, self._busy_s / horizon_s)
