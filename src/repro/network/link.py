"""Point-to-point serialized links.

A :class:`Link` is a one-way channel with finite bandwidth and a fixed
propagation/processing latency. Transfers serialize through the link FIFO,
so offered load beyond capacity queues — this is what produces the
saturation knees in Figs 3b and 17. Random loss is modeled as an expected
retransmission inflation of the serialization time (adequate for the
throughput/latency shapes the paper reports; we do not model per-packet
ARQ state).

Two executions of the same FIFO discipline exist (see DESIGN.md,
"Virtual-clock queueing"):

- **Analytic (default)** — the link keeps a ``free_at`` virtual clock and
  computes each transfer's queueing + serialization + propagation in
  closed form, scheduling **one** kernel event per transfer (two for a
  queued transfer on a lossy link, where the retry draw must wait for the
  grant instant to preserve the shared RNG stream's draw order). Exact
  departure floats go on the heap via ``Environment.timeout_at``, so the
  results are bit-identical to the legacy path at fixed seeds.
- **Legacy** (``REPRO_ANALYTIC_NET=0`` / ``analytic=False``) — a
  capacity-1 :class:`~repro.sim.Resource` plus two timeouts per transfer:
  the original request/grant/release machinery, kept as the parity
  oracle.

Either way the bandwidth meter records at **serialization end** (when the
payload leaves the wire), so utilization windows line up with
``busy_fraction`` instead of lagging it by the propagation latency.
"""

from __future__ import annotations

from collections import deque
from typing import Generator, Optional

import numpy as np

from ..sim import Environment, Resource
from ..sim.accounting import tally
from ..sim.flags import analytic_net_enabled
from ..telemetry import BandwidthMeter

__all__ = ["Link"]


class Link:
    """One-way channel: FIFO serialization at ``bandwidth_mbs`` + latency."""

    def __init__(self, env: Environment, name: str, bandwidth_mbs: float,
                 latency_s: float = 0.0, loss_rate: float = 0.0,
                 meter: Optional[BandwidthMeter] = None,
                 rng: Optional[np.random.Generator] = None,
                 contention_penalty: float = 0.0,
                 max_collapse: float = 2.5,
                 analytic: Optional[bool] = None):
        if bandwidth_mbs <= 0:
            raise ValueError("bandwidth must be positive")
        if latency_s < 0:
            raise ValueError("latency must be non-negative")
        if not 0 <= loss_rate < 1:
            raise ValueError("loss rate must be in [0, 1)")
        if contention_penalty < 0 or max_collapse < 1:
            raise ValueError("invalid contention parameters")
        self.env = env
        self.name = name
        self.bandwidth_mbs = bandwidth_mbs
        #: Rated capacity; ``scale_capacity`` (chaos link degradation)
        #: derates ``bandwidth_mbs`` relative to this.
        self._nominal_mbs = bandwidth_mbs
        self.latency_s = latency_s
        self.loss_rate = loss_rate
        self.meter = meter
        self._rng = rng
        #: CSMA congestion collapse: with many stations backlogged the
        #: effective goodput degrades (collisions, exponential backoff).
        #: Each queued transfer inflates service by this fraction, capped
        #: at ``max_collapse``. Zero for wired links.
        self.contention_penalty = contention_penalty
        self.max_collapse = max_collapse
        self.analytic = analytic_net_enabled(analytic)
        self._busy_s = 0.0
        if self.analytic:
            #: Virtual clock: when the wire finishes its last accepted
            #: serialization.
            self._free_at = 0.0
            #: Deterministic links: pending serialization-start times, for
            #: the backlog (= legacy wait-queue length) at each arrival.
            self._grants: deque = deque()
            #: Stochastic links: the gate armed for the next grant instant
            #: plus the unarmed FIFO behind it, and the current
            #: serializer's release slot — (serialization end, insertion
            #: id reserved at its grant) — where that gate fires.
            self._armed = None
            self._waiting: deque = deque()
            self._release = (0.0, 0)
        else:
            self._channel = Resource(env, capacity=1)

    def scale_capacity(self, factor: float) -> None:
        """Derate (or restore) the link to ``factor`` × nominal bandwidth.

        Chaos link-degradation hook. Applies to transfers *granted* from
        now on; payloads already on the wire keep their committed
        serialization schedule (their service time was computed at grant).
        """
        if factor <= 0:
            raise ValueError("capacity factor must be positive")
        self.bandwidth_mbs = self._nominal_mbs * factor

    def serialization_time(self, megabytes: float) -> float:
        """Time on the wire for ``megabytes``, including expected loss."""
        base = megabytes / self.bandwidth_mbs
        if self.loss_rate:
            base /= (1.0 - self.loss_rate)
        return base

    def transfer(self, megabytes: float,
                 extra_delay_s: float = 0.0, trace=None) -> Generator:
        """Process: queue for the link, serialize, then propagate.

        Yields until the payload is fully delivered; returns the total
        seconds the transfer took (queueing + serialization + latency).
        ``extra_delay_s`` is a fixed post-propagation delay (e.g. the
        wireless base RTT) folded into the completion event on the
        analytic path so the caller does not pay a separate timeout.
        ``trace`` is an optional causal-trace context (``repro.obs``);
        when set, the transfer emits queue/serialize/propagate child
        spans at its (possibly closed-form) instants.
        """
        if megabytes < 0:
            raise ValueError("megabytes must be non-negative")
        if not self.analytic:
            result = yield from self._transfer_legacy(
                megabytes, extra_delay_s, trace)
            return result
        if self._rng is not None and self.loss_rate:
            result = yield from self._transfer_stochastic(
                megabytes, extra_delay_s, trace)
            return result
        result = yield from self._transfer_deterministic(
            megabytes, extra_delay_s, trace)
        return result

    def _emit_transfer_spans(self, trace, start: float, grant_at: float,
                             ser_end: float, completion: float) -> None:
        """Record the queue/serialize/propagate split of one transfer.

        Called after the completion yield, so both the legacy and
        analytic paths report the same instants — the analytic ones are
        simply known in closed form before the payload ever 'moves'.
        """
        if grant_at > start:
            trace.emit("queue", "network", start, grant_at, link=self.name)
        trace.emit("serialize", "network", grant_at, ser_end,
                   link=self.name)
        if completion > ser_end:
            trace.emit("propagate", "network", ser_end, completion,
                       link=self.name)

    # -- legacy path (REPRO_ANALYTIC_NET=0): the parity oracle --------------
    def _transfer_legacy(self, megabytes: float,
                         extra_delay_s: float, trace=None) -> Generator:
        tally("network", 3 + (1 if extra_delay_s else 0))
        start = self.env.now
        backlog = self.queue_length
        with self._channel.request() as grant:
            yield grant
            grant_at = self.env.now
            service = self.serialization_time(megabytes)
            if self._rng is not None and self.loss_rate:
                # Jitter the retransmission inflation around its mean.
                retries = self._rng.geometric(1.0 - self.loss_rate) - 1
                service = (megabytes / self.bandwidth_mbs) * (1 + retries)
            if self.contention_penalty:
                service *= min(self.max_collapse,
                               1.0 + self.contention_penalty * backlog)
            self._busy_s += service
            yield self.env.timeout(service)
        ser_end = self.env.now
        yield self.env.timeout(self.latency_s)
        if self.meter is not None:
            self.meter.record(ser_end, megabytes)
        if extra_delay_s:
            yield self.env.timeout(extra_delay_s)
        if trace:
            self._emit_transfer_spans(trace, start, grant_at, ser_end,
                                      self.env.now)
        return self.env.now - start

    # -- analytic paths -----------------------------------------------------
    def _transfer_deterministic(self, megabytes: float,
                                extra_delay_s: float,
                                trace=None) -> Generator:
        """Closed-form FIFO: no RNG involved, so the grant instant is
        computable at arrival and one completion event suffices."""
        tally("network", 1)
        env = self.env
        start = env.now
        grants = self._grants
        while grants and grants[0] <= start:
            grants.popleft()
        backlog = len(grants)
        grant_at = self._free_at
        if grant_at < start:
            grant_at = start
        else:
            grants.append(grant_at)
        service = self.serialization_time(megabytes)
        if self.contention_penalty:
            service *= min(self.max_collapse,
                           1.0 + self.contention_penalty * backlog)
        self._busy_s += service
        ser_end = grant_at + service
        self._free_at = ser_end
        completion = ser_end + self.latency_s
        if extra_delay_s:
            completion = completion + extra_delay_s
        yield env.timeout_at(completion)
        if self.meter is not None:
            self.meter.record(ser_end, megabytes)
        if trace:
            self._emit_transfer_spans(trace, start, grant_at, ser_end,
                                      completion)
        return env.now - start

    def _transfer_stochastic(self, megabytes: float,
                             extra_delay_s: float, trace=None) -> Generator:
        """Lossy links draw their retry count from a stream *shared with
        the other wireless links*, so draws must happen at the grant
        instant in global grant order — exactly where the legacy path
        draws. A queued transfer parks on a gate event armed at the
        predecessor's *release slot* — its serialization end under an
        insertion id reserved at its grant dispatch, the heap position
        the legacy service timeout (whose dispatch performs the release)
        would have occupied — so same-instant grants across links keep
        the legacy order. An idle link grants (and draws) inline at
        arrival."""
        env = self.env
        start = env.now
        backlog = ((1 if self._armed is not None else 0) +
                   len(self._waiting))
        if (self._armed is None and not self._waiting and
                self._free_at <= start):
            tally("network", 1)
            grant_at = start
        else:
            tally("network", 2)
            gate = env.event()
            if self._armed is None:
                # The current serializer's release slot is known: arm there.
                self._armed = gate
                when, eid = self._release
                env.succeed_at_eid(gate, when, eid)
            else:
                self._waiting.append(gate)
            yield gate
            self._armed = None
            grant_at = env.now
        release_eid = env.reserve_eid()
        retries = self._rng.geometric(1.0 - self.loss_rate) - 1
        service = (megabytes / self.bandwidth_mbs) * (1 + retries)
        if self.contention_penalty:
            service *= min(self.max_collapse,
                           1.0 + self.contention_penalty * backlog)
        self._busy_s += service
        ser_end = grant_at + service
        self._free_at = ser_end
        self._release = (ser_end, release_eid)
        if self._waiting:
            follower = self._waiting.popleft()
            self._armed = follower
            env.succeed_at_eid(follower, ser_end, release_eid)
        completion = ser_end + self.latency_s
        if extra_delay_s:
            completion = completion + extra_delay_s
        yield env.timeout_at(completion)
        if self.meter is not None:
            self.meter.record(ser_end, megabytes)
        if trace:
            self._emit_transfer_spans(trace, start, grant_at, ser_end,
                                      completion)
        return env.now - start

    @property
    def queue_length(self) -> int:
        """Transfers arrived but not yet serializing (the wait queue)."""
        if not self.analytic:
            return len(self._channel.queue)
        if self._rng is not None and self.loss_rate:
            return ((1 if self._armed is not None else 0) +
                    len(self._waiting))
        grants = self._grants
        now = self.env.now
        while grants and grants[0] <= now:
            grants.popleft()
        return len(grants)

    def busy_fraction(self, horizon_s: float) -> float:
        """Fraction of ``horizon_s`` the link spent serializing."""
        if horizon_s <= 0:
            raise ValueError("horizon must be positive")
        return min(1.0, self._busy_s / horizon_s)
