"""Network substrate: links, wireless access, cluster fabric, RPC transports."""

from .link import Link
from .rpc import (EdgeCloudRpc, ReliableEdgeRpc, RetryPolicy,
                  RpcResult, RpcTimeout, SoftwareClusterRpc,
                  boundary_lookahead)
from .switch import ClusterNetwork, ToRSwitch
from .topology import Fabric, build_fabric
from .wireless import AccessPoint, NetworkPartitioned, WirelessNetwork

__all__ = [
    "Link",
    "AccessPoint",
    "WirelessNetwork",
    "NetworkPartitioned",
    "ToRSwitch",
    "ClusterNetwork",
    "RpcResult",
    "EdgeCloudRpc",
    "ReliableEdgeRpc",
    "RetryPolicy",
    "RpcTimeout",
    "SoftwareClusterRpc",
    "Fabric",
    "build_fabric",
    "boundary_lookahead",
]
