"""Network substrate: links, wireless access, cluster fabric, RPC transports."""

from .link import Link
from .rpc import EdgeCloudRpc, RpcResult, SoftwareClusterRpc
from .switch import ClusterNetwork, ToRSwitch
from .topology import Fabric, build_fabric
from .wireless import AccessPoint, WirelessNetwork

__all__ = [
    "Link",
    "AccessPoint",
    "WirelessNetwork",
    "ToRSwitch",
    "ClusterNetwork",
    "RpcResult",
    "EdgeCloudRpc",
    "SoftwareClusterRpc",
    "Fabric",
    "build_fabric",
]
