"""Intra-cluster network: server NICs behind a top-of-rack switch.

Every server owns a full-duplex NIC (two :class:`Link` objects); the ToR
fabric itself is modeled as a shared link at the switch's rated capacity.
A server-to-server transfer crosses sender NIC -> ToR -> receiver NIC. At
the message sizes in the paper (KB result objects, MB frame batches) the
NIC links dominate; the ToR only matters under cluster-wide incast.
"""

from __future__ import annotations

from typing import Dict, Generator, Optional

import numpy as np

from ..config import ClusterConstants
from ..sim import Environment
from ..telemetry import BandwidthMeter
from .link import Link

__all__ = ["ToRSwitch", "ClusterNetwork"]

MB_PER_MBIT = 1.0 / 8.0


class ToRSwitch:
    """Shared switching fabric with a per-hop latency."""

    def __init__(self, env: Environment, constants: ClusterConstants,
                 meter: Optional[BandwidthMeter] = None,
                 analytic: Optional[bool] = None):
        self.fabric = Link(
            env, "tor", constants.tor_mbps * MB_PER_MBIT,
            latency_s=constants.tor_latency_s, meter=meter,
            analytic=analytic)


class ClusterNetwork:
    """NICs + ToR connecting the backend servers (section 2.1)."""

    def __init__(self, env: Environment, constants: ClusterConstants,
                 meter: Optional[BandwidthMeter] = None,
                 rng: Optional[np.random.Generator] = None,
                 analytic: Optional[bool] = None):
        self.env = env
        self.constants = constants
        self.meter = meter if meter is not None else BandwidthMeter("cluster")
        self._analytic = analytic
        self.tor = ToRSwitch(env, constants, meter=None, analytic=analytic)
        self._tx: Dict[str, Link] = {}
        self._rx: Dict[str, Link] = {}

    def register_server(self, server_id: str) -> None:
        if server_id in self._tx:
            raise ValueError(f"server {server_id!r} already registered")
        nic_mbs = self.constants.nic_mbps * MB_PER_MBIT
        self._tx[server_id] = Link(self.env, f"{server_id}.tx", nic_mbs,
                                   analytic=self._analytic)
        self._rx[server_id] = Link(self.env, f"{server_id}.rx", nic_mbs,
                                   analytic=self._analytic)

    def has_server(self, server_id: str) -> bool:
        return server_id in self._tx

    def transfer(self, src: str, dst: str, megabytes: float) -> Generator:
        """Process: move ``megabytes`` from ``src`` to ``dst`` server."""
        if src not in self._tx:
            raise KeyError(f"unknown source server {src!r}")
        if dst not in self._rx:
            raise KeyError(f"unknown destination server {dst!r}")
        start = self.env.now
        if src == dst:
            return 0.0  # loopback; no wire time
        yield from self._tx[src].transfer(megabytes)
        yield from self.tor.fabric.transfer(megabytes)
        yield from self._rx[dst].transfer(megabytes)
        self.meter.record(self.env.now, megabytes)
        return self.env.now - start

    def one_way_latency(self) -> float:
        """Unloaded propagation/processing latency server-to-server."""
        return self.constants.tor_latency_s
