"""RPC transports.

Two RPC paths exist in the paper's system:

- **Edge <-> cloud** (Apache Thrift over TCP/IP over WiFi): sensor payloads
  up, responses/route updates down. Modeled by :class:`EdgeCloudRpc`.
- **Server <-> server** inside the cluster: either the kernel TCP/IP stack
  (:class:`SoftwareClusterRpc`, ~tens of microseconds of per-RPC CPU cost)
  or HiveMind's FPGA offload (see :mod:`repro.hardware.rpc_accel`, 2.1 us
  RTT). Both expose the same ``call`` coroutine so the serverless layer can
  swap them.

A call returns :class:`RpcResult` with the wall-clock split the breakdown
accounting needs (wire vs. per-call processing).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, Optional

from ..config import ClusterConstants
from ..sim import Environment
from .switch import ClusterNetwork
from .wireless import WirelessNetwork

__all__ = ["RpcResult", "EdgeCloudRpc", "SoftwareClusterRpc"]


@dataclass(frozen=True)
class RpcResult:
    """Timing of a completed RPC."""

    total_s: float
    wire_s: float
    processing_s: float
    request_mb: float
    response_mb: float


class EdgeCloudRpc:
    """Thrift-style RPC between an edge device and the backend cloud.

    The HiveMind compiler generates these stubs for tasks that may run at
    the edge (section 4.1); serialization cost is charged per call on both
    ends.
    """

    #: Per-call marshal/unmarshal + kernel stack cost at each end (calibrated
    #: for Thrift compact protocol on the A8 / Xeon pair).
    EDGE_PROC_S = 2.4e-3
    CLOUD_PROC_S = 0.12e-3
    PER_MB_MARSHAL_S = 0.9e-3

    def __init__(self, env: Environment, wireless: WirelessNetwork):
        self.env = env
        self.wireless = wireless

    def call(self, device_id: str, request_mb: float,
             response_mb: float) -> Generator:
        """Process: device-initiated RPC; returns :class:`RpcResult`."""
        start = self.env.now
        processing = (self.EDGE_PROC_S + self.CLOUD_PROC_S +
                      self.PER_MB_MARSHAL_S * (request_mb + response_mb))
        yield self.env.timeout(processing)
        wire_s = yield from self.wireless.round_trip(
            device_id, request_mb, response_mb)
        return RpcResult(
            total_s=self.env.now - start,
            wire_s=wire_s,
            processing_s=processing,
            request_mb=request_mb,
            response_mb=response_mb,
        )

    def push(self, device_id: str, megabytes: float) -> Generator:
        """Process: one-way upload (streaming sensor data). The TCP ack
        still crosses the air, so the caller pays one base RTT — folded
        into the upload's completion event on the analytic link path."""
        processing = (self.EDGE_PROC_S + self.CLOUD_PROC_S +
                      self.PER_MB_MARSHAL_S * megabytes)
        yield self.env.timeout(processing)
        wire_s = yield from self.wireless.upload(
            device_id, megabytes,
            extra_delay_s=self.wireless.constants.base_rtt_s)
        return RpcResult(
            total_s=processing + wire_s, wire_s=wire_s,
            processing_s=processing, request_mb=megabytes, response_mb=0.0)


class SoftwareClusterRpc:
    """Kernel TCP/IP RPC between cluster servers (the baseline stack)."""

    def __init__(self, env: Environment, network: ClusterNetwork,
                 constants: Optional[ClusterConstants] = None):
        self.env = env
        self.network = network
        self.constants = constants or network.constants

    @property
    def per_call_cpu_s(self) -> float:
        """Host-CPU seconds consumed per RPC (freed by FPGA offload)."""
        return 2 * self.constants.sw_rpc_overhead_s

    def call(self, src: str, dst: str, request_mb: float,
             response_mb: float) -> Generator:
        """Process: request to ``dst`` and response back; RpcResult."""
        start = self.env.now
        processing = self.per_call_cpu_s
        yield self.env.timeout(processing)
        wire = yield from self.network.transfer(src, dst, request_mb)
        wire_back = yield from self.network.transfer(dst, src, response_mb)
        return RpcResult(
            total_s=self.env.now - start,
            wire_s=wire + wire_back,
            processing_s=processing,
            request_mb=request_mb,
            response_mb=response_mb,
        )
