"""RPC transports.

Two RPC paths exist in the paper's system:

- **Edge <-> cloud** (Apache Thrift over TCP/IP over WiFi): sensor payloads
  up, responses/route updates down. Modeled by :class:`EdgeCloudRpc`.
- **Server <-> server** inside the cluster: either the kernel TCP/IP stack
  (:class:`SoftwareClusterRpc`, ~tens of microseconds of per-RPC CPU cost)
  or HiveMind's FPGA offload (see :mod:`repro.hardware.rpc_accel`, 2.1 us
  RTT). Both expose the same ``call`` coroutine so the serverless layer can
  swap them.

A call returns :class:`RpcResult` with the wall-clock split the breakdown
accounting needs (wire vs. per-call processing).

RPC transports draw no randomness of their own — all stochastic loss
retries happen inside the links they ride (see
:class:`~repro.network.wireless.WirelessNetwork`, whose shared loss
stream is served from a vectorized draw-ahead buffer).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, Optional

from ..config import ClusterConstants
from ..sim import Environment
from .switch import ClusterNetwork
from .wireless import NetworkPartitioned, WirelessNetwork

__all__ = ["RpcResult", "RpcTimeout", "RetryPolicy", "EdgeCloudRpc",
           "ReliableEdgeRpc", "SoftwareClusterRpc", "boundary_lookahead"]


def boundary_lookahead(constants) -> float:
    """Minimum edge->cloud boundary latency (seconds) for ``constants``.

    No event inside an edge cell can cause an effect at the cloud tier
    sooner than one uplink propagation (half the wireless base RTT plus
    one hop) plus the RPC floor through the ToR. This is the conservative
    lookahead bound of the sharded runtime (:mod:`repro.sim.shard`):
    shards synchronized at barriers no further apart than this bound can
    never deliver a cloud-bound message into the cloud shard's past, so
    any barrier window >= this value is causally safe. ``constants`` is a
    :class:`~repro.config.PaperConstants` bundle.
    """
    wireless = constants.wireless
    return (wireless.base_rtt_s / 2.0 + wireless.per_hop_latency_s +
            constants.cluster.tor_latency_s)


@dataclass(frozen=True)
class RpcResult:
    """Timing of a completed RPC."""

    total_s: float
    wire_s: float
    processing_s: float
    request_mb: float
    response_mb: float


class RpcTimeout(Exception):
    """An RPC exhausted its retry attempts / total timeout budget."""

    def __init__(self, device_id: str, attempts: int, waited_s: float):
        super().__init__(
            f"{device_id}: RPC gave up after {attempts} attempts "
            f"({waited_s:.3f}s)")
        self.device_id = device_id
        self.attempts = attempts
        self.waited_s = waited_s


@dataclass(frozen=True)
class RetryPolicy:
    """Retry/backoff parameters for :class:`ReliableEdgeRpc`.

    Each failed attempt costs up to ``attempt_timeout_s`` of discovery
    (the client waits that long before concluding the cloud is gone)
    plus an exponential backoff before the next try; the whole call never
    exceeds ``total_budget_s`` of wall time spent on failures.
    """

    max_attempts: int = 4
    base_backoff_s: float = 0.25
    backoff_factor: float = 2.0
    attempt_timeout_s: float = 1.0
    total_budget_s: float = 10.0

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ValueError("need at least one attempt")
        if min(self.base_backoff_s, self.attempt_timeout_s,
               self.total_budget_s) < 0 or self.backoff_factor < 1:
            raise ValueError("invalid retry policy parameters")


class EdgeCloudRpc:
    """Thrift-style RPC between an edge device and the backend cloud.

    The HiveMind compiler generates these stubs for tasks that may run at
    the edge (section 4.1); serialization cost is charged per call on both
    ends.
    """

    #: Per-call marshal/unmarshal + kernel stack cost at each end (calibrated
    #: for Thrift compact protocol on the A8 / Xeon pair).
    EDGE_PROC_S = 2.4e-3
    CLOUD_PROC_S = 0.12e-3
    PER_MB_MARSHAL_S = 0.9e-3

    def __init__(self, env: Environment, wireless: WirelessNetwork):
        self.env = env
        self.wireless = wireless

    def call(self, device_id: str, request_mb: float,
             response_mb: float, trace=None) -> Generator:
        """Process: device-initiated RPC; returns :class:`RpcResult`."""
        start = self.env.now
        processing = (self.EDGE_PROC_S + self.CLOUD_PROC_S +
                      self.PER_MB_MARSHAL_S * (request_mb + response_mb))
        yield self.env.timeout(processing)
        if trace:
            trace.emit("rpc_processing", "network", start, self.env.now)
        wire_s = yield from self.wireless.round_trip(
            device_id, request_mb, response_mb, trace=trace)
        return RpcResult(
            total_s=self.env.now - start,
            wire_s=wire_s,
            processing_s=processing,
            request_mb=request_mb,
            response_mb=response_mb,
        )

    def push(self, device_id: str, megabytes: float,
             trace=None) -> Generator:
        """Process: one-way upload (streaming sensor data). The TCP ack
        still crosses the air, so the caller pays one base RTT — folded
        into the upload's completion event on the analytic link path."""
        start = self.env.now
        processing = (self.EDGE_PROC_S + self.CLOUD_PROC_S +
                      self.PER_MB_MARSHAL_S * megabytes)
        yield self.env.timeout(processing)
        if trace:
            trace.emit("rpc_processing", "network", start, self.env.now)
        wire_s = yield from self.wireless.upload(
            device_id, megabytes,
            extra_delay_s=self.wireless.constants.base_rtt_s,
            trace=trace)
        return RpcResult(
            total_s=processing + wire_s, wire_s=wire_s,
            processing_s=processing, request_mb=megabytes, response_mb=0.0)


class ReliableEdgeRpc:
    """Retry wrapper for an edge<->cloud transport (chaos recovery layer).

    Wraps any object with ``call``/``push`` coroutines (stock
    :class:`EdgeCloudRpc` or the accelerated variant). When a transfer
    hits a cloud-partition window (:class:`NetworkPartitioned`), the
    caller pays the per-attempt discovery timeout plus exponential
    backoff, then retries; when the policy's attempt or budget ceiling is
    exhausted it raises :class:`RpcTimeout` so the runtime can shed the
    task to on-device compute. Used only by chaos runs — fault-free runs
    keep the bare transport, so their event streams are untouched.
    """

    def __init__(self, env: Environment, inner,
                 policy: Optional[RetryPolicy] = None,
                 recovery_log=None):
        self.env = env
        self.inner = inner
        self.policy = policy or RetryPolicy()
        self.recovery_log = recovery_log
        self.retries = 0

    def call(self, device_id: str, request_mb: float,
             response_mb: float, trace=None) -> Generator:
        result = yield from self._reliable(
            device_id,
            lambda: self.inner.call(device_id, request_mb, response_mb,
                                    trace=trace),
            trace=trace)
        return result

    def push(self, device_id: str, megabytes: float,
             trace=None) -> Generator:
        result = yield from self._reliable(
            device_id,
            lambda: self.inner.push(device_id, megabytes, trace=trace),
            trace=trace)
        return result

    def _reliable(self, device_id: str, attempt, trace=None) -> Generator:
        policy = self.policy
        start = self.env.now
        deadline = start + policy.total_budget_s
        backoff = policy.base_backoff_s
        attempts = 0
        action = None
        while True:
            attempts += 1
            try:
                result = yield from attempt()
            except NetworkPartitioned:
                remaining = deadline - self.env.now
                if attempts >= policy.max_attempts or remaining <= 0:
                    raise RpcTimeout(device_id, attempts,
                                     self.env.now - start)
                if action is None and self.recovery_log is not None:
                    action = self.recovery_log.record("rpc_retry", device_id)
                self.retries += 1
                # Discovery timeout for the dead attempt + backoff before
                # the next, clipped to the remaining budget.
                retry_start = self.env.now
                yield self.env.timeout(
                    min(policy.attempt_timeout_s + backoff, remaining))
                if trace:
                    trace.emit("rpc_retry", "network", retry_start,
                               self.env.now, attempt=attempts)
                backoff *= policy.backoff_factor
                continue
            if action is not None:
                self.recovery_log.complete(action)
            return result


class SoftwareClusterRpc:
    """Kernel TCP/IP RPC between cluster servers (the baseline stack)."""

    def __init__(self, env: Environment, network: ClusterNetwork,
                 constants: Optional[ClusterConstants] = None):
        self.env = env
        self.network = network
        self.constants = constants or network.constants

    @property
    def per_call_cpu_s(self) -> float:
        """Host-CPU seconds consumed per RPC (freed by FPGA offload)."""
        return 2 * self.constants.sw_rpc_overhead_s

    def call(self, src: str, dst: str, request_mb: float,
             response_mb: float) -> Generator:
        """Process: request to ``dst`` and response back; RpcResult."""
        start = self.env.now
        processing = self.per_call_cpu_s
        yield self.env.timeout(processing)
        wire = yield from self.network.transfer(src, dst, request_mb)
        wire_back = yield from self.network.transfer(dst, src, response_mb)
        return RpcResult(
            total_s=self.env.now - start,
            wire_s=wire + wire_back,
            processing_s=processing,
            request_mb=request_mb,
            response_mb=response_mb,
        )
