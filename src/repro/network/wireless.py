"""Shared wireless medium between the swarm and the backend (section 2.1).

The testbed uses two 867 Mbps MU-MIMO access points. Each access point is a
pair of serialized links (uplink toward the cloud carries the sensor data;
downlink carries responses/route updates), and devices are statically
balanced across access points — matching how the real swarm associates with
whichever router it joined. Saturation emerges naturally: when offered load
exceeds the per-AP capacity, the link FIFO queues and tail latency explodes
(Fig 3b).
"""

from __future__ import annotations

from typing import Dict, Generator, List, Optional

import numpy as np

from ..config import WirelessConstants
from ..sim import Environment
from ..telemetry import BandwidthMeter
from .link import Link

__all__ = ["AccessPoint", "NetworkPartitioned", "WirelessNetwork"]


class NetworkPartitioned(Exception):
    """The edge<->cloud path is down (chaos cloud-partition window).

    Raised synchronously at transfer start — the radio's carrier sense /
    association logic knows immediately that the AP is gone; the
    *latency* cost of discovering an unreachable cloud is charged by the
    RPC retry layer's per-attempt timeout budget, not here.
    """

    def __init__(self, device_id: str):
        super().__init__(device_id)
        self.device_id = device_id


class AccessPoint:
    """One router: an uplink and a downlink sharing its rated capacity.

    MU-MIMO routers schedule air-time across directions; we give each
    direction the full rated capacity but track combined utilization, which
    reproduces the saturation point within the fidelity the figures need.
    """

    def __init__(self, env: Environment, name: str,
                 constants: WirelessConstants,
                 meter: Optional[BandwidthMeter] = None,
                 rng: Optional[np.random.Generator] = None,
                 analytic: Optional[bool] = None):
        self.name = name
        self.uplink = Link(
            env, f"{name}.up", constants.ap_mbs,
            latency_s=constants.per_hop_latency_s,
            loss_rate=constants.loss_rate, meter=meter, rng=rng,
            contention_penalty=constants.contention_penalty,
            max_collapse=constants.max_collapse, analytic=analytic)
        self.downlink = Link(
            env, f"{name}.down", constants.ap_mbs,
            latency_s=constants.per_hop_latency_s,
            loss_rate=constants.loss_rate, meter=meter, rng=rng,
            contention_penalty=constants.contention_penalty,
            max_collapse=constants.max_collapse, analytic=analytic)


class WirelessNetwork:
    """The swarm's access network: devices balanced across access points.

    ``rng`` is shared by every link and draws only fixed-``p`` geometric
    retry counts, so :func:`~repro.network.topology.build_fabric` passes a
    draw-ahead :class:`~repro.sim.rng.BufferedStream` here — the hottest
    RNG consumer in a run refills in vectorized blocks instead of paying
    one Generator call per transfer grant (``REPRO_BATCHED_RNG=0``
    restores scalar draws; the sequence is bit-identical either way).
    """

    def __init__(self, env: Environment, constants: WirelessConstants,
                 meter: Optional[BandwidthMeter] = None,
                 rng: Optional[np.random.Generator] = None,
                 analytic: Optional[bool] = None):
        self.env = env
        self.constants = constants
        self.meter = meter if meter is not None else BandwidthMeter("wireless")
        self.access_points: List[AccessPoint] = [
            AccessPoint(env, f"ap{i}", constants, meter=self.meter, rng=rng,
                        analytic=analytic)
            for i in range(constants.access_points)
        ]
        self._assignment: Dict[str, AccessPoint] = {}
        self._next_ap = 0
        #: Chaos cloud-partition state: while True, new transfers raise
        #: :class:`NetworkPartitioned`. Never set outside chaos runs.
        self.partitioned = False
        self._heal_listeners: List = []

    # -- chaos hooks -----------------------------------------------------
    def set_partitioned(self, partitioned: bool) -> None:
        """Enter/leave a cloud-partition window (fault injection)."""
        was = self.partitioned
        self.partitioned = partitioned
        if was and not partitioned:
            for listener in self._heal_listeners:
                listener()

    def add_heal_listener(self, callback) -> None:
        """Zero-arg callback fired when a partition window closes."""
        self._heal_listeners.append(callback)

    def degrade(self, factor: float) -> None:
        """Scale every link's capacity by ``factor`` (chaos injection).

        Applies to transfers *granted* from now on; payloads already on
        the wire keep their committed serialization schedule.
        """
        for ap in self.access_points:
            ap.uplink.scale_capacity(factor)
            ap.downlink.scale_capacity(factor)

    def restore_capacity(self) -> None:
        """Undo :meth:`degrade`: links return to nominal bandwidth."""
        for ap in self.access_points:
            ap.uplink.scale_capacity(1.0)
            ap.downlink.scale_capacity(1.0)

    def attach(self, device_id: str) -> AccessPoint:
        """Associate a device with an access point (round-robin balance)."""
        if device_id in self._assignment:
            return self._assignment[device_id]
        ap = self.access_points[self._next_ap % len(self.access_points)]
        self._next_ap += 1
        self._assignment[device_id] = ap
        return ap

    def access_point_of(self, device_id: str) -> AccessPoint:
        ap = self._assignment.get(device_id)
        if ap is None:
            raise KeyError(f"device {device_id!r} is not attached")
        return ap

    def upload(self, device_id: str, megabytes: float,
               extra_delay_s: float = 0.0, trace=None) -> Generator:
        """Process: send ``megabytes`` from device to the cloud edge."""
        if self.partitioned:
            raise NetworkPartitioned(device_id)
        ap = self.attach(device_id)
        took = yield from ap.uplink.transfer(megabytes,
                                             extra_delay_s=extra_delay_s,
                                             trace=trace)
        return took

    def download(self, device_id: str, megabytes: float,
                 extra_delay_s: float = 0.0, trace=None) -> Generator:
        """Process: send ``megabytes`` from the cloud edge to the device."""
        if self.partitioned:
            raise NetworkPartitioned(device_id)
        ap = self.attach(device_id)
        took = yield from ap.downlink.transfer(megabytes,
                                               extra_delay_s=extra_delay_s,
                                               trace=trace)
        return took

    def round_trip(self, device_id: str, up_mb: float,
                   down_mb: float, trace=None) -> Generator:
        """Process: request up, response down; returns total seconds.

        The association/MAC overhead per exchange (``base_rtt_s``) is a
        fixed trailing delay, folded into the download's completion event
        on the analytic link path."""
        start = self.env.now
        yield from self.upload(device_id, up_mb, trace=trace)
        yield from self.download(device_id, down_mb,
                                 extra_delay_s=self.constants.base_rtt_s,
                                 trace=trace)
        return self.env.now - start

    @property
    def total_capacity_mbs(self) -> float:
        return self.constants.total_mbs

    def utilization(self, horizon_s: float) -> float:
        """Mean uplink busy fraction across access points."""
        fractions = [ap.uplink.busy_fraction(horizon_s)
                     for ap in self.access_points]
        return sum(fractions) / len(fractions)
