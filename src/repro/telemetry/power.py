"""Battery/energy accounting for edge devices (Figs 1, 14a, 16b).

An :class:`EnergyAccount` tracks watt-hours drawn per category (motion,
compute, radio_tx, radio_rx, idle) against a battery capacity. Devices call
:meth:`draw_power` for steady draws over an interval and :meth:`draw_energy`
for one-shot costs. Consumed-battery percentages are what the paper plots.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List

__all__ = ["EnergyAccount", "BatteryDepleted", "fleet_consumed_percent"]

CATEGORIES = ("motion", "compute", "radio_tx", "radio_rx", "idle")

WH_PER_JOULE = 1.0 / 3600.0


class BatteryDepleted(Exception):
    """Raised when a draw would take the battery below zero."""

    def __init__(self, device: str, category: str):
        super().__init__(f"{device}: battery depleted during {category}")
        self.device = device
        self.category = category


class EnergyAccount:
    """Watt-hour ledger for one device's battery."""

    def __init__(self, capacity_wh: float, device: str = "device",
                 strict: bool = False):
        if capacity_wh <= 0:
            raise ValueError("battery capacity must be positive")
        self.capacity_wh = float(capacity_wh)
        self.device = device
        #: When strict, exhausting the battery raises BatteryDepleted —
        #: used by scenario runs where drones can drop out (section 2.3
        #: reports Scenario B left incomplete on the distributed platform).
        self.strict = strict
        self._drawn: Dict[str, float] = {name: 0.0 for name in CATEGORIES}

    def draw_power(self, category: str, watts: float, seconds: float) -> None:
        """Draw ``watts`` for ``seconds`` of simulated time."""
        if watts < 0 or seconds < 0:
            raise ValueError("watts and seconds must be non-negative")
        self._draw(category, watts * seconds * WH_PER_JOULE)

    def draw_energy(self, category: str, joules: float) -> None:
        if joules < 0:
            raise ValueError("joules must be non-negative")
        self._draw(category, joules * WH_PER_JOULE)

    def _draw(self, category: str, wh: float) -> None:
        if category not in self._drawn:
            raise KeyError(f"unknown energy category {category!r}")
        self._drawn[category] += wh
        if self.strict and self.depleted:
            raise BatteryDepleted(self.device, category)

    @property
    def consumed_wh(self) -> float:
        return sum(self._drawn.values())

    @property
    def consumed_percent(self) -> float:
        """May exceed 100 in non-strict mode (battery-swap abstraction)."""
        return 100.0 * self.consumed_wh / self.capacity_wh

    @property
    def remaining_wh(self) -> float:
        return max(0.0, self.capacity_wh - self.consumed_wh)

    @property
    def remaining_fraction(self) -> float:
        return self.remaining_wh / self.capacity_wh

    @property
    def depleted(self) -> bool:
        return self.consumed_wh >= self.capacity_wh

    def by_category(self) -> Dict[str, float]:
        return dict(self._drawn)

    def category_percent(self, category: str) -> float:
        return 100.0 * self._drawn[category] / self.capacity_wh


def fleet_consumed_percent(accounts: Iterable[EnergyAccount]) -> "tuple[float, float]":
    """(mean, worst-case) consumed-battery percent across a fleet.

    Fig 14a plots the average as bars and the tail as markers; Fig 16b uses
    worst-case markers for the car swarm.
    """
    percents: List[float] = [account.consumed_percent for account in accounts]
    if not percents:
        raise ValueError("no energy accounts")
    return (sum(percents) / len(percents), max(percents))
