"""End-to-end latency breakdown accounting (Figs 3a, 6b, 12).

Every task execution is decomposed into the paper's components:

- ``network``     — time on the wire between edge and cloud (both ways)
- ``management``  — scheduling, container instantiation, control-plane hops
- ``data_io``     — data sharing between dependent functions
- ``execution``   — useful compute (cloud and/or edge)

A :class:`LatencyBreakdown` is attached to each task record; a
:class:`BreakdownAggregate` reduces a population of them to the
median/tail fraction bars the paper plots.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List

import numpy as np

__all__ = ["COMPONENTS", "LatencyBreakdown", "BreakdownAggregate"]

COMPONENTS = ("network", "management", "data_io", "execution")


@dataclass
class LatencyBreakdown:
    """Per-task seconds spent in each latency component."""

    network: float = 0.0
    management: float = 0.0
    data_io: float = 0.0
    execution: float = 0.0

    def charge(self, component: str, seconds: float) -> None:
        if component not in COMPONENTS:
            raise KeyError(f"unknown latency component {component!r}")
        if seconds < 0:
            raise ValueError(f"negative charge {seconds} to {component}")
        setattr(self, component, getattr(self, component) + seconds)

    @property
    def total(self) -> float:
        return self.network + self.management + self.data_io + self.execution

    def fractions(self) -> Dict[str, float]:
        total = self.total
        if total == 0:
            return {name: 0.0 for name in COMPONENTS}
        return {name: getattr(self, name) / total for name in COMPONENTS}

    def as_dict(self) -> Dict[str, float]:
        return {name: getattr(self, name) for name in COMPONENTS}

    def __add__(self, other: "LatencyBreakdown") -> "LatencyBreakdown":
        return LatencyBreakdown(
            network=self.network + other.network,
            management=self.management + other.management,
            data_io=self.data_io + other.data_io,
            execution=self.execution + other.execution,
        )


class BreakdownAggregate:
    """Reduces many per-task breakdowns to the paper's stacked bars.

    The paper's breakdown figures show, at the median and the 99th
    percentile of *total* latency, how that latency divides into components.
    We follow the same construction: pick tasks in a small quantile band
    around the target percentile and average their component shares.
    """

    def __init__(self) -> None:
        self._records: List[LatencyBreakdown] = []

    def add(self, breakdown: LatencyBreakdown) -> None:
        self._records.append(breakdown)

    def extend(self, breakdowns: Iterable[LatencyBreakdown]) -> None:
        self._records.extend(breakdowns)

    def __len__(self) -> int:
        return len(self._records)

    def _band(self, percentile: float, width: float = 5.0) -> List[LatencyBreakdown]:
        if not self._records:
            raise ValueError("no breakdown records")
        totals = np.array([r.total for r in self._records])
        low = np.percentile(totals, max(0.0, percentile - width),
                            method="linear")
        high = np.percentile(totals, min(100.0, percentile + width),
                             method="linear")
        chosen = [r for r, t in zip(self._records, totals) if low <= t <= high]
        return chosen or list(self._records)

    def at_percentile(self, percentile: float) -> Dict[str, float]:
        """Mean component *seconds* among tasks near the given percentile."""
        band = self._band(percentile)
        return {
            name: float(np.mean([getattr(r, name) for r in band]))
            for name in COMPONENTS
        }

    def fractions_at_percentile(self, percentile: float) -> Dict[str, float]:
        """Component shares (summing to 1) near the given percentile."""
        seconds = self.at_percentile(percentile)
        total = sum(seconds.values())
        if total == 0:
            return {name: 0.0 for name in COMPONENTS}
        return {name: value / total for name, value in seconds.items()}

    def median_fractions(self) -> Dict[str, float]:
        return self.fractions_at_percentile(50.0)

    def tail_fractions(self) -> Dict[str, float]:
        return self.fractions_at_percentile(99.0)

    def mean_fraction(self, component: str) -> float:
        """Population-mean share of one component (e.g. networking 33%)."""
        if component not in COMPONENTS:
            raise KeyError(component)
        shares = [r.fractions()[component] for r in self._records if r.total > 0]
        if not shares:
            raise ValueError("no breakdown records with nonzero total")
        return float(np.mean(shares))
