"""Telemetry: metric series, latency breakdowns, power and bandwidth meters."""

from .bandwidth import BandwidthMeter
from .breakdown import COMPONENTS, BreakdownAggregate, LatencyBreakdown
from .metrics import DistributionSummary, MetricRegistry, MetricSeries
from .power import BatteryDepleted, EnergyAccount, fleet_consumed_percent
from .report import format_value, render_series, render_table

__all__ = [
    "MetricSeries",
    "MetricRegistry",
    "DistributionSummary",
    "LatencyBreakdown",
    "BreakdownAggregate",
    "COMPONENTS",
    "EnergyAccount",
    "BatteryDepleted",
    "fleet_consumed_percent",
    "BandwidthMeter",
    "render_table",
    "render_series",
    "format_value",
]
