"""Plain-text table rendering for the benchmark harnesses.

Every figure's harness ends by printing rows/series in the same layout the
paper reports. :func:`render_table` produces aligned monospace tables;
:func:`render_series` prints (x, y...) sweeps.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Sequence

__all__ = ["render_table", "render_series", "format_value"]


def format_value(value: Any, precision: int = 3) -> str:
    """Human formatting: floats trimmed, large numbers grouped."""
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) < 0.001:
            return f"{value:.2e}"
        return f"{value:.{precision}g}"
    if isinstance(value, int) and abs(value) >= 1000:
        return f"{value:,}"
    return str(value)


def render_table(headers: Sequence[str],
                 rows: Iterable[Sequence[Any]],
                 title: str = "") -> str:
    """Render an aligned monospace table; right-aligns numeric columns."""
    rendered_rows: List[List[str]] = [
        [format_value(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(headers)}")
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def render_row(cells: Sequence[str]) -> str:
        return " | ".join(cell.rjust(widths[i]) if i else cell.ljust(widths[i])
                          for i, cell in enumerate(cells))

    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(render_row(list(headers)))
    lines.append("-+-".join("-" * w for w in widths))
    lines.extend(render_row(row) for row in rendered_rows)
    return "\n".join(lines)


def render_series(x_name: str, x_values: Sequence[Any],
                  series: Dict[str, Sequence[Any]],
                  title: str = "") -> str:
    """Render a sweep: one row per x value, one column per series."""
    headers = [x_name] + list(series)
    rows = []
    for index, x in enumerate(x_values):
        row = [x]
        for name in series:
            values = series[name]
            row.append(values[index] if index < len(values) else "")
        rows.append(row)
    return render_table(headers, rows, title=title)
