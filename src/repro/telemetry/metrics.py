"""Latency/scalar metric collection.

:class:`MetricSeries` accumulates scalar samples and answers the statistics
the paper's figures report: median, p99, mean, percentile bands for box and
violin plots. Percentiles use linear interpolation (numpy's default), and an
empty series raises rather than returning NaN so bugs surface early.
"""

from __future__ import annotations

import bisect
import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

__all__ = ["MetricSeries", "DistributionSummary", "MetricRegistry"]


@dataclass(frozen=True)
class DistributionSummary:
    """The summary statistics the paper's plots are built from."""

    count: int
    mean: float
    std: float
    minimum: float
    p5: float
    p25: float
    median: float
    p75: float
    p90: float
    p95: float
    p99: float
    maximum: float

    def as_dict(self) -> Dict[str, float]:
        return {
            "count": self.count, "mean": self.mean, "std": self.std,
            "min": self.minimum, "p5": self.p5, "p25": self.p25,
            "median": self.median, "p75": self.p75, "p90": self.p90,
            "p95": self.p95, "p99": self.p99, "max": self.maximum,
        }


class MetricSeries:
    """A named series of scalar samples with optional timestamps.

    Samples live in an amortized-growth numpy buffer so the statistics
    below (recomputed per invocation by e.g. the straggler watchdog) never
    pay a list-to-array conversion on the hot path.
    """

    def __init__(self, name: str = ""):
        self.name = name
        self._buffer = np.empty(64, dtype=float)
        self._time_buffer = np.empty(64, dtype=float)
        self._count = 0
        #: Sorted copy of the samples, maintained lazily for percentiles.
        self._sorted: List[float] = []

    def add(self, value: float, time: float = math.nan) -> None:
        count = self._count
        buffer = self._buffer
        if count == buffer.shape[0]:
            self._buffer = buffer = np.concatenate(
                [buffer, np.empty(buffer.shape[0], dtype=float)])
            self._time_buffer = np.concatenate(
                [self._time_buffer,
                 np.empty(self._time_buffer.shape[0], dtype=float)])
        buffer[count] = value
        self._time_buffer[count] = time
        self._count = count + 1

    def extend(self, values: Iterable[float]) -> None:
        for value in values:
            self.add(value)

    def __len__(self) -> int:
        return self._count

    def __bool__(self) -> bool:
        return self._count > 0

    @property
    def values(self) -> np.ndarray:
        return self._buffer[:self._count]

    @property
    def times(self) -> np.ndarray:
        return self._time_buffer[:self._count]

    def _require_samples(self) -> np.ndarray:
        if not self._count:
            raise ValueError(f"metric series {self.name!r} has no samples")
        return self._buffer[:self._count]

    def percentile(self, q: float) -> float:
        """Linear-interpolation percentile, bit-identical to
        ``np.percentile(..., method="linear")``.

        Hot-path friendly: the sorted view is maintained incrementally
        (``bisect.insort`` per new sample when queried after every add, as
        the straggler watchdog does; a full re-sort after bulk appends), so
        each query is O(1) instead of an O(n) selection over a fresh array.
        """
        count = self._count
        if not count:
            raise ValueError(f"metric series {self.name!r} has no samples")
        sorted_values = self._sorted
        stale = count - len(sorted_values)
        if stale:
            if stale <= 16:
                buffer = self._buffer
                for index in range(count - stale, count):
                    bisect.insort(sorted_values, float(buffer[index]))
            else:
                sorted_values = self._buffer[:count].tolist()
                sorted_values.sort()
                self._sorted = sorted_values
        if not 0 <= q <= 100:
            raise ValueError(f"percentile {q} outside [0, 100]")
        # numpy's "linear" method: virtual index q/100*(n-1), then
        # lerp(a, b, t) computed from b's side once t >= 0.5.
        virtual = (q / 100.0) * (count - 1)
        previous = math.floor(virtual)
        t = virtual - previous
        a = sorted_values[previous]
        b = sorted_values[math.ceil(virtual)]
        if t < 0.5:
            return a + (b - a) * t
        return b - (b - a) * (1 - t)

    @property
    def mean(self) -> float:
        return float(self._require_samples().mean())

    @property
    def median(self) -> float:
        return self.percentile(50)

    @property
    def p99(self) -> float:
        return self.percentile(99)

    @property
    def maximum(self) -> float:
        return float(self._require_samples().max())

    @property
    def minimum(self) -> float:
        return float(self._require_samples().min())

    @property
    def std(self) -> float:
        return float(self._require_samples().std())

    @property
    def cv(self) -> float:
        """Coefficient of variation — the variability measure for Fig 6a."""
        mean = self.mean
        if mean == 0:
            return 0.0
        return self.std / mean

    def iqr(self) -> float:
        return self.percentile(75) - self.percentile(25)

    def summary(self) -> DistributionSummary:
        # Percentile convention, pinned repo-wide: numpy's "linear"
        # interpolation (the pre-numpy-1.22 default), matching
        # MetricSeries.percentile() bit for bit.
        data = self._require_samples()
        return DistributionSummary(
            count=len(data),
            mean=float(data.mean()),
            std=float(data.std()),
            minimum=float(data.min()),
            p5=float(np.percentile(data, 5, method="linear")),
            p25=float(np.percentile(data, 25, method="linear")),
            median=float(np.percentile(data, 50, method="linear")),
            p75=float(np.percentile(data, 75, method="linear")),
            p90=float(np.percentile(data, 90, method="linear")),
            p95=float(np.percentile(data, 95, method="linear")),
            p99=float(np.percentile(data, 99, method="linear")),
            maximum=float(data.max()),
        )

    def histogram(self, bins: int = 40) -> "tuple[np.ndarray, np.ndarray]":
        """(counts, edges) — the PDF data behind the paper's violin plots."""
        return np.histogram(self._require_samples(), bins=bins)

    def windowed_counts(self, window_s: float,
                        horizon_s: Optional[float] = None) -> np.ndarray:
        """Samples per time window (used for active-task timelines)."""
        times = self.times
        times = times[~np.isnan(times)]
        if times.size == 0:
            return np.zeros(0)
        end = horizon_s if horizon_s is not None else float(times.max())
        n_windows = max(1, int(math.ceil(end / window_s)))
        counts = np.zeros(n_windows)
        indices = np.minimum((times / window_s).astype(int), n_windows - 1)
        for index in indices:
            counts[index] += 1
        return counts


class MetricRegistry:
    """Keyed collection of :class:`MetricSeries` (lazily created)."""

    def __init__(self) -> None:
        self._series: Dict[str, MetricSeries] = {}

    def series(self, name: str) -> MetricSeries:
        found = self._series.get(name)
        if found is None:
            found = MetricSeries(name)
            self._series[name] = found
        return found

    def add(self, name: str, value: float, time: float = math.nan) -> None:
        self.series(name).add(value, time)

    def names(self) -> Sequence[str]:
        return sorted(self._series)

    def __contains__(self, name: str) -> bool:
        return name in self._series

    def __getitem__(self, name: str) -> MetricSeries:
        return self._series[name]
