"""Latency/scalar metric collection.

:class:`MetricSeries` accumulates scalar samples and answers the statistics
the paper's figures report: median, p99, mean, percentile bands for box and
violin plots. Percentiles use linear interpolation (numpy's default), and an
empty series raises rather than returning NaN so bugs surface early.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

__all__ = ["MetricSeries", "DistributionSummary", "MetricRegistry"]


@dataclass(frozen=True)
class DistributionSummary:
    """The summary statistics the paper's plots are built from."""

    count: int
    mean: float
    std: float
    minimum: float
    p5: float
    p25: float
    median: float
    p75: float
    p90: float
    p95: float
    p99: float
    maximum: float

    def as_dict(self) -> Dict[str, float]:
        return {
            "count": self.count, "mean": self.mean, "std": self.std,
            "min": self.minimum, "p5": self.p5, "p25": self.p25,
            "median": self.median, "p75": self.p75, "p90": self.p90,
            "p95": self.p95, "p99": self.p99, "max": self.maximum,
        }


class MetricSeries:
    """A named series of scalar samples with optional timestamps."""

    def __init__(self, name: str = ""):
        self.name = name
        self._values: List[float] = []
        self._times: List[float] = []

    def add(self, value: float, time: float = math.nan) -> None:
        self._values.append(float(value))
        self._times.append(float(time))

    def extend(self, values: Iterable[float]) -> None:
        for value in values:
            self.add(value)

    def __len__(self) -> int:
        return len(self._values)

    def __bool__(self) -> bool:
        return bool(self._values)

    @property
    def values(self) -> np.ndarray:
        return np.asarray(self._values, dtype=float)

    @property
    def times(self) -> np.ndarray:
        return np.asarray(self._times, dtype=float)

    def _require_samples(self) -> np.ndarray:
        if not self._values:
            raise ValueError(f"metric series {self.name!r} has no samples")
        return self.values

    def percentile(self, q: float) -> float:
        return float(np.percentile(self._require_samples(), q))

    @property
    def mean(self) -> float:
        return float(self._require_samples().mean())

    @property
    def median(self) -> float:
        return self.percentile(50)

    @property
    def p99(self) -> float:
        return self.percentile(99)

    @property
    def maximum(self) -> float:
        return float(self._require_samples().max())

    @property
    def minimum(self) -> float:
        return float(self._require_samples().min())

    @property
    def std(self) -> float:
        return float(self._require_samples().std())

    @property
    def cv(self) -> float:
        """Coefficient of variation — the variability measure for Fig 6a."""
        mean = self.mean
        if mean == 0:
            return 0.0
        return self.std / mean

    def iqr(self) -> float:
        return self.percentile(75) - self.percentile(25)

    def summary(self) -> DistributionSummary:
        data = self._require_samples()
        return DistributionSummary(
            count=len(data),
            mean=float(data.mean()),
            std=float(data.std()),
            minimum=float(data.min()),
            p5=float(np.percentile(data, 5)),
            p25=float(np.percentile(data, 25)),
            median=float(np.percentile(data, 50)),
            p75=float(np.percentile(data, 75)),
            p90=float(np.percentile(data, 90)),
            p95=float(np.percentile(data, 95)),
            p99=float(np.percentile(data, 99)),
            maximum=float(data.max()),
        )

    def histogram(self, bins: int = 40) -> "tuple[np.ndarray, np.ndarray]":
        """(counts, edges) — the PDF data behind the paper's violin plots."""
        return np.histogram(self._require_samples(), bins=bins)

    def windowed_counts(self, window_s: float,
                        horizon_s: Optional[float] = None) -> np.ndarray:
        """Samples per time window (used for active-task timelines)."""
        times = self.times
        times = times[~np.isnan(times)]
        if times.size == 0:
            return np.zeros(0)
        end = horizon_s if horizon_s is not None else float(times.max())
        n_windows = max(1, int(math.ceil(end / window_s)))
        counts = np.zeros(n_windows)
        indices = np.minimum((times / window_s).astype(int), n_windows - 1)
        for index in indices:
            counts[index] += 1
        return counts


class MetricRegistry:
    """Keyed collection of :class:`MetricSeries` (lazily created)."""

    def __init__(self) -> None:
        self._series: Dict[str, MetricSeries] = {}

    def series(self, name: str) -> MetricSeries:
        found = self._series.get(name)
        if found is None:
            found = MetricSeries(name)
            self._series[name] = found
        return found

    def add(self, name: str, value: float, time: float = math.nan) -> None:
        self.series(name).add(value, time)

    def names(self) -> Sequence[str]:
        return sorted(self._series)

    def __contains__(self, name: str) -> bool:
        return name in self._series

    def __getitem__(self, name: str) -> MetricSeries:
        return self._series[name]
