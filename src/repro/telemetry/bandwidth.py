"""Network bandwidth accounting (Figs 3b, 14b, 17).

A :class:`BandwidthMeter` records byte transfers with timestamps and reduces
them to the windowed MB/s series the paper plots: average utilization (bars)
and 99th-percentile window (markers).
"""

from __future__ import annotations

import math
from typing import List, Tuple

import numpy as np

__all__ = ["BandwidthMeter"]


class BandwidthMeter:
    """Records (time, megabytes) transfer events on one medium."""

    def __init__(self, name: str = "", window_s: float = 1.0):
        if window_s <= 0:
            raise ValueError("window must be positive")
        self.name = name
        self.window_s = window_s
        self._events: List[Tuple[float, float]] = []

    def record(self, time: float, megabytes: float) -> None:
        if megabytes < 0:
            raise ValueError("megabytes must be non-negative")
        self._events.append((float(time), float(megabytes)))

    def __len__(self) -> int:
        return len(self._events)

    @property
    def events(self) -> Tuple[Tuple[float, float], ...]:
        """The raw (time, megabytes) records, in arrival order."""
        return tuple(self._events)

    @property
    def total_mb(self) -> float:
        # fsum: exact, so the total is independent of record order.
        return math.fsum(mb for _, mb in self._events)

    def _window_series(self, horizon_s: float = None) -> np.ndarray:
        """MB transferred per window, padded to the horizon.

        Records are reduced in canonical (time, megabytes) order, not
        arrival order: transfers completing at the same instant may be
        dispatched in either order by equivalent queue executions (see
        DESIGN.md, "Virtual-clock queueing"), and float accumulation must
        not expose that tie order as ULP noise in the windowed series.
        """
        if not self._events:
            return np.zeros(1)
        times = np.array([t for t, _ in self._events])
        sizes = np.array([mb for _, mb in self._events])
        order = np.lexsort((sizes, times))
        times = times[order]
        sizes = sizes[order]
        end = horizon_s if horizon_s is not None else float(times.max()) + 1e-9
        n_windows = max(1, int(math.ceil(end / self.window_s)))
        series = np.zeros(n_windows)
        indices = np.minimum((times / self.window_s).astype(int), n_windows - 1)
        np.add.at(series, indices, sizes)
        return series / self.window_s  # MB per window -> MB/s

    def mean_mbs(self, horizon_s: float = None) -> float:
        """Average MB/s over the run (the bars in Fig 14b)."""
        return float(self._window_series(horizon_s).mean())

    def percentile_mbs(self, q: float, horizon_s: float = None) -> float:
        """Windowed percentile MB/s (the p99 markers in Fig 14b)."""
        return float(np.percentile(self._window_series(horizon_s), q,
                                   method="linear"))

    def peak_mbs(self, horizon_s: float = None) -> float:
        return float(self._window_series(horizon_s).max())

    def series_mbs(self, horizon_s: float = None) -> np.ndarray:
        return self._window_series(horizon_s)
