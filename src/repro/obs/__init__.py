"""``repro.obs`` — span-based causal tracing + structured observability.

Every task/invocation gets a trace id at creation; each layer (edge
compute, wireless transfers, Kafka, invoker queue/cold-start/execute,
CouchDB, straggler respawns, fault-recovery requeues) opens child spans
through a :class:`TraceContext` handle carried on the existing request
objects. On top of the spans: per-request critical-path/latency
breakdowns (:mod:`.report`), a Chrome ``trace_event`` exporter loadable
in Perfetto (:mod:`.export`), and structured run manifests
(:mod:`.manifest`).

Process-global state: one :class:`SpanTracer` per process, enabled by
``REPRO_TRACE=1`` in the environment (so parallel-executor workers
inherit it) or an explicit :func:`install`. When no tracer is active,
:func:`root_span` returns the falsy :data:`NULL_CONTEXT` singleton and
the whole layer costs one branch per call site — zero kernel events,
zero RNG draws, byte-identical runs (the zero-overhead contract).
"""

from __future__ import annotations

import os
from typing import Any, Optional

from .export import to_chrome_trace, write_chrome_trace, write_trace_files
from .manifest import RunManifest, git_revision, runtime_flags
from .report import (TraceReport, aggregate_breakdown, latency_reports,
                     trace_report)
from .span import NULL_CONTEXT, NullTraceContext, Span, SpanTracer, \
    TraceContext

__all__ = [
    "Span", "SpanTracer", "TraceContext", "NullTraceContext",
    "NULL_CONTEXT",
    "TraceReport", "trace_report", "latency_reports",
    "aggregate_breakdown",
    "to_chrome_trace", "write_chrome_trace", "write_trace_files",
    "RunManifest", "git_revision", "runtime_flags",
    "active_tracer", "tracing_enabled", "install", "reset", "root_span",
]

#: The process-global tracer; None while tracing is off.
_ACTIVE: Optional[SpanTracer] = None
#: Whether the REPRO_TRACE environment variable has been consulted.
_ENV_CHECKED = False


def active_tracer() -> Optional[SpanTracer]:
    """The process-global tracer, or None when tracing is off.

    First call consults ``REPRO_TRACE`` (so pool workers spawned with
    the variable set trace automatically); afterwards only
    :func:`install` / :func:`reset` change the answer.
    """
    global _ACTIVE, _ENV_CHECKED
    if _ACTIVE is None and not _ENV_CHECKED:
        _ENV_CHECKED = True
        if os.environ.get("REPRO_TRACE", "0") not in ("", "0"):
            _ACTIVE = SpanTracer()
    return _ACTIVE


def tracing_enabled() -> bool:
    return active_tracer() is not None


def install(tracer: Optional[SpanTracer] = None) -> SpanTracer:
    """Enable tracing for this process (idempotent when already on)."""
    global _ACTIVE, _ENV_CHECKED
    _ENV_CHECKED = True
    if tracer is not None:
        _ACTIVE = tracer
    elif _ACTIVE is None:
        _ACTIVE = SpanTracer()
    return _ACTIVE


def reset() -> None:
    """Disable tracing and forget the environment decision (tests)."""
    global _ACTIVE, _ENV_CHECKED
    _ACTIVE = None
    _ENV_CHECKED = False


def root_span(name: str, layer: str, start: float,
              **attrs: Any) -> Any:
    """Open a new trace root, or return :data:`NULL_CONTEXT` when off.

    This is the single entry point the runners use at task creation;
    everything downstream hangs off the returned handle.
    """
    tracer = active_tracer()
    if tracer is None:
        return NULL_CONTEXT
    return tracer.start_trace(name, layer, start, **attrs)
