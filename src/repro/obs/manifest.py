"""Structured run manifests: what produced a result, exactly.

Every :class:`~repro.experiments.common.ExperimentResult` (and every
``--trace-out`` export) carries a :class:`RunManifest`: the figure id,
seed, fast-path flags, git revision, wall clock, and the kernel-event /
layer accounting — enough to re-run the experiment bit-for-bit and to
tell two trace files apart six months later. Manifests round-trip
through JSON (``to_json`` / ``from_json``).
"""

from __future__ import annotations

import datetime
import json
import os
import subprocess
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Optional

__all__ = ["RunManifest", "git_revision", "runtime_flags"]

_GIT_REV: Optional[str] = None


def git_revision() -> str:
    """The repo's short git revision, or ``"unknown"`` outside a
    checkout (cached; the subprocess runs at most once per process)."""
    global _GIT_REV
    if _GIT_REV is None:
        try:
            _GIT_REV = subprocess.run(
                ["git", "rev-parse", "--short", "HEAD"],
                cwd=os.path.dirname(os.path.abspath(__file__)),
                capture_output=True, text=True, timeout=5,
                check=True).stdout.strip() or "unknown"
        except Exception:
            _GIT_REV = "unknown"
    return _GIT_REV


def runtime_flags() -> Dict[str, Any]:
    """The fast-path/observability switches in effect right now."""
    from . import tracing_enabled
    from ..sim.flags import (analytic_net_enabled, batched_rng_enabled,
                             fast_dispatch_enabled)
    from ..sim.flags import (chaos_workers, serving_admission_enabled,
                             serving_autoscale_enabled, serving_spec)
    flags = {
        "vector_edge": os.environ.get("REPRO_VECTOR_EDGE", "1") != "0",
        "analytic_net": analytic_net_enabled(),
        "fast_dispatch": fast_dispatch_enabled(),
        "batched_rng": batched_rng_enabled(),
        "trace": tracing_enabled(),
    }
    # Armed worker chaos is part of a run's provenance (it perturbs
    # wall-clock and accounting); unarmed runs stay unstamped so
    # existing manifests compare clean.
    chaos_spec = chaos_workers()
    if chaos_spec:
        flags["chaos_workers"] = chaos_spec
    # Same convention for open-loop serving: only armed runs stamp the
    # spec (plus its sub-switches, which matter only when armed).
    serving = serving_spec()
    if serving:
        flags["serving"] = serving
        flags["serving_admission"] = serving_admission_enabled()
        flags["serving_autoscale"] = serving_autoscale_enabled()
    return flags


@dataclass
class RunManifest:
    """Provenance + accounting for one experiment run."""

    figure: str
    seed: Optional[int] = None
    flags: Dict[str, Any] = field(default_factory=dict)
    git_rev: str = "unknown"
    created: str = ""
    elapsed_s: float = 0.0
    sim_events: int = 0
    layer_events: Dict[str, int] = field(default_factory=dict)
    spans: int = 0
    trace_files: List[str] = field(default_factory=list)
    extra: Dict[str, Any] = field(default_factory=dict)

    @classmethod
    def collect(cls, figure: str, seed: Optional[int] = None,
                **fields: Any) -> "RunManifest":
        """Build a manifest stamped with the current flags/rev/time.

        ``created`` is timezone-aware UTC: naive local stamps made two
        manifests from the same run look hours apart when compared
        across hosts.
        """
        return cls(figure=figure, seed=seed, flags=runtime_flags(),
                   git_rev=git_revision(),
                   created=datetime.datetime.now(
                       datetime.timezone.utc).isoformat(
                       timespec="seconds"),
                   **fields)

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True,
                          default=str)

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "RunManifest":
        known = {f for f in cls.__dataclass_fields__}  # noqa: C416
        fields = {key: value for key, value in payload.items()
                  if key in known}
        # Unknown keys (written by a newer version) survive the round
        # trip inside ``extra`` instead of being dropped.
        unknown = {key: value for key, value in payload.items()
                   if key not in known}
        if unknown:
            fields.setdefault("extra", {}).update(unknown)
        return cls(**fields)

    @classmethod
    def from_json(cls, text: str) -> "RunManifest":
        return cls.from_dict(json.loads(text))

    def write(self, path: str) -> str:
        with open(path, "w") as handle:
            handle.write(self.to_json())
            handle.write("\n")
        return path
