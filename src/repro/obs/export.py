"""Chrome ``trace_event`` JSON exporter (Perfetto / chrome://tracing).

Spans become complete (``"ph": "X"``) events with microsecond
timestamps. The process id is the replica index (each parallel-executor
replica gets its own process lane), the thread id is the span's layer
(one track per stack layer), and the causal ids travel in ``args`` so a
selected slice shows its trace/span/parent linkage.
"""

from __future__ import annotations

import json
import pathlib
from typing import Any, Dict, Iterable, List, Optional, Sequence

from .span import Span

__all__ = ["to_chrome_trace", "write_chrome_trace", "write_trace_files"]

#: Stable track (tid) order for the known layers; unknown layers are
#: appended after these in first-seen order.
_LAYER_TRACKS = ("task", "edge", "network", "serverless", "data_io",
                 "execution")


def _track_of(layer: str, extra: Dict[str, int]) -> int:
    try:
        return _LAYER_TRACKS.index(layer)
    except ValueError:
        if layer not in extra:
            extra[layer] = len(_LAYER_TRACKS) + len(extra)
        return extra[layer]


def to_chrome_trace(spans: Iterable[Span]) -> Dict[str, Any]:
    """Render spans as a Chrome trace-event JSON object."""
    events: List[Dict[str, Any]] = []
    extra_tracks: Dict[str, int] = {}
    seen_tracks: Dict[int, Dict[int, str]] = {}
    for span in spans:
        tid = _track_of(span.layer, extra_tracks)
        seen_tracks.setdefault(span.replica, {})[tid] = span.layer
        args: Dict[str, Any] = {
            "trace_id": span.trace_id,
            "span_id": span.span_id,
        }
        if span.parent_id is not None:
            args["parent_id"] = span.parent_id
        args.update(span.attr_dict())
        events.append({
            "ph": "X",
            "name": span.name,
            "cat": span.layer,
            "pid": span.replica,
            "tid": tid,
            "ts": span.start * 1e6,
            "dur": max(0.0, span.end - span.start) * 1e6,
            "args": args,
        })
    metadata: List[Dict[str, Any]] = []
    for replica in sorted(seen_tracks):
        metadata.append({
            "ph": "M", "name": "process_name", "pid": replica, "tid": 0,
            "args": {"name": f"replica {replica}"},
        })
        for tid, layer in sorted(seen_tracks[replica].items()):
            metadata.append({
                "ph": "M", "name": "thread_name", "pid": replica,
                "tid": tid, "args": {"name": layer},
            })
    return {"traceEvents": metadata + events, "displayTimeUnit": "ms"}


def write_chrome_trace(path: str, spans: Iterable[Span]) -> str:
    """Write one Chrome trace file; returns the path written."""
    target = pathlib.Path(path)
    if target.parent != pathlib.Path(""):
        target.parent.mkdir(parents=True, exist_ok=True)
    with open(target, "w") as handle:
        json.dump(to_chrome_trace(spans), handle, indent=1, default=str)
        handle.write("\n")
    return str(target)


def write_trace_files(path: str, spans: Sequence[Span]) -> List[str]:
    """Write the merged trace plus one file per replica (when several).

    ``trace.json`` always gets the merged view; replicas beyond a lone
    replica 0 additionally get ``trace.r<k>.json`` siblings so each
    worker's timeline loads standalone. Returns every path written,
    merged file first.
    """
    written = [write_chrome_trace(path, spans)]
    replicas = sorted({span.replica for span in spans})
    if len(replicas) > 1:
        target = pathlib.Path(path)
        for replica in replicas:
            sibling = target.with_name(
                f"{target.stem}.r{replica}{target.suffix or '.json'}")
            write_chrome_trace(
                str(sibling),
                [span for span in spans if span.replica == replica])
            written.append(str(sibling))
    return written
