"""Causal spans: the building block of the observability layer.

A :class:`Span` is one timed, named interval of work attributed to a
layer of the stack (``edge``, ``network``, ``serverless``, ``data_io``,
``execution``, ...), linked to its parent by span id and to its request
by trace id. Spans are recorded *after the fact* with explicit
timestamps, which is what lets the analytic fast paths (virtual-clock
link departures, SwarmEngine legs, the k-server CouchDB heap) emit
synthesized spans at their closed-form instants: no kernel event, no RNG
draw, and no change to the simulation's event stream is ever needed to
trace it — the zero-overhead contract PR 4 established for chaos hooks.

The handle threaded through the stack is a :class:`TraceContext`. Code
that may or may not be traced carries one on its existing request
objects (``InvocationRequest.trace``) or receives one as an optional
argument, and guards every emission with a truthiness check::

    if trace:
        trace.emit("serialize", "network", grant_at, ser_end)

:data:`NULL_CONTEXT` — the handle when tracing is off — is falsy, so an
untraced run never allocates a span, never touches a tracer, and stays
byte-identical to a build without this module.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, replace
from typing import Any, Dict, Iterable, List, Optional, Tuple

__all__ = ["Span", "SpanTracer", "TraceContext", "NullTraceContext",
           "NULL_CONTEXT"]


@dataclass(frozen=True)
class Span:
    """One completed span. Frozen and picklable, so parallel-executor
    workers can ship their spans back to the coordinating process."""

    trace_id: int
    span_id: int
    parent_id: Optional[int]
    name: str
    layer: str
    start: float
    end: float
    attrs: Tuple[Tuple[str, Any], ...] = ()
    #: Which replica (parallel-executor task index) produced this span;
    #: 0 for serial runs. Becomes the exporter's ``pid``.
    replica: int = 0

    @property
    def duration(self) -> float:
        return self.end - self.start

    def attr_dict(self) -> Dict[str, Any]:
        return dict(self.attrs)


class TraceContext:
    """An *open* span: the causal handle carried through the stack.

    Created by :meth:`SpanTracer.start_trace` (a root) or
    :meth:`TraceContext.span` (a child). Closing it records the
    finished :class:`Span`; :meth:`emit` records an already-finished
    child in one call — the form the analytic fast paths use, since
    their start/end instants are known in closed form.
    """

    __slots__ = ("_tracer", "trace_id", "span_id", "parent_id",
                 "name", "layer", "start", "_attrs", "_closed")

    def __init__(self, tracer: "SpanTracer", trace_id: int, span_id: int,
                 parent_id: Optional[int], name: str, layer: str,
                 start: float, attrs: Dict[str, Any]):
        self._tracer = tracer
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.layer = layer
        self.start = start
        self._attrs = attrs
        self._closed = False

    def __bool__(self) -> bool:
        return True

    def span(self, name: str, layer: str, start: float,
             **attrs: Any) -> "TraceContext":
        """Open a child span; close it later with :meth:`close`."""
        return TraceContext(self._tracer, self.trace_id,
                            self._tracer._next_span_id(), self.span_id,
                            name, layer, start, attrs)

    def emit(self, name: str, layer: str, start: float, end: float,
             **attrs: Any) -> None:
        """Record a finished child span (both instants already known)."""
        self._tracer.record(Span(
            trace_id=self.trace_id,
            span_id=self._tracer._next_span_id(),
            parent_id=self.span_id,
            name=name, layer=layer, start=start, end=end,
            attrs=tuple(sorted(attrs.items()))))

    def annotate(self, **attrs: Any) -> None:
        """Attach attributes, included when this span closes."""
        self._attrs.update(attrs)

    def close(self, end: float, **attrs: Any) -> None:
        """Record this span. Idempotent: later closes are ignored (a
        straggler race can reach both completion paths)."""
        if self._closed:
            return
        self._closed = True
        if attrs:
            self._attrs.update(attrs)
        self._tracer.record(Span(
            trace_id=self.trace_id, span_id=self.span_id,
            parent_id=self.parent_id, name=self.name, layer=self.layer,
            start=self.start, end=end,
            attrs=tuple(sorted(self._attrs.items()))))


class NullTraceContext:
    """The no-op handle used when tracing is off. Falsy, a singleton,
    and it returns itself from :meth:`span` so whole call chains cost
    one attribute lookup and one branch."""

    __slots__ = ()

    def __bool__(self) -> bool:
        return False

    def span(self, name: str, layer: str, start: float,
             **attrs: Any) -> "NullTraceContext":
        return self

    def emit(self, name: str, layer: str, start: float, end: float,
             **attrs: Any) -> None:
        pass

    def annotate(self, **attrs: Any) -> None:
        pass

    def close(self, end: float, **attrs: Any) -> None:
        pass


NULL_CONTEXT = NullTraceContext()


class SpanTracer:
    """Accumulates completed spans for one process.

    Trace ids are allocated at DSL-task creation (one per task /
    invocation root); span ids are process-unique. :meth:`absorb`
    re-maps ids when merging spans shipped back from parallel-executor
    workers, so (replica, trace) timelines never collide.
    """

    def __init__(self) -> None:
        self.spans: List[Span] = []
        self._trace_ids = itertools.count(1)
        self._span_ids = itertools.count(1)

    # -- emission ---------------------------------------------------------
    def _next_span_id(self) -> int:
        return next(self._span_ids)

    def start_trace(self, name: str, layer: str, start: float,
                    **attrs: Any) -> TraceContext:
        """Open a new root span (one causal request timeline)."""
        return TraceContext(self, next(self._trace_ids),
                            self._next_span_id(), None,
                            name, layer, start, attrs)

    def record(self, span: Span) -> None:
        self.spans.append(span)

    def __len__(self) -> int:
        return len(self.spans)

    def clear(self) -> None:
        self.spans.clear()

    # -- parallel-executor plumbing --------------------------------------
    def take_from(self, index: int) -> List[Span]:
        """Pop and return every span recorded at or after ``index``
        (the per-task delta a worker ships back in its TaskResult)."""
        delta = self.spans[index:]
        del self.spans[index:]
        return delta

    def absorb(self, spans: Iterable[Span], replica: int = 0) -> None:
        """Merge spans from another tracer (a pool worker), re-mapping
        trace and span ids into this tracer's id space and tagging each
        span with its replica index."""
        spans = list(spans)
        if not spans:
            return
        trace_map: Dict[int, int] = {}
        span_map: Dict[int, int] = {}
        for span in spans:
            if span.trace_id not in trace_map:
                trace_map[span.trace_id] = next(self._trace_ids)
            if span.span_id not in span_map:
                span_map[span.span_id] = self._next_span_id()
        for span in spans:
            parent = span.parent_id
            self.spans.append(replace(
                span,
                trace_id=trace_map[span.trace_id],
                span_id=span_map[span.span_id],
                parent_id=(span_map.get(parent) if parent is not None
                           else None),
                replica=replica))

    # -- queries ----------------------------------------------------------
    def traces(self) -> Dict[int, List[Span]]:
        """Spans grouped by trace id (absorption keeps ids unique)."""
        grouped: Dict[int, List[Span]] = {}
        for span in self.spans:
            grouped.setdefault(span.trace_id, []).append(span)
        return grouped

    def roots(self) -> List[Span]:
        return [span for span in self.spans if span.parent_id is None]
