"""Per-request critical-path and latency-breakdown reports.

Given one trace's spans, the report partitions the root span's
``[start, end]`` window at every child-span boundary and attributes each
elementary interval to the *deepest* span covering it (ties broken by
latest start, then highest span id — i.e. the most recently opened
span). The per-layer sums therefore add up to the root's end-to-end
latency exactly (up to float summation error), which is the property the
fig12-style breakdowns need: nothing double-counted, nothing dropped.

The time-ordered sequence of attributed intervals *is* the request's
critical path — at every instant it names the span actually holding the
request up.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from .span import Span

__all__ = ["TraceReport", "trace_report", "latency_reports",
           "aggregate_breakdown"]


class TraceReport:
    """The condensed view of one causal trace."""

    def __init__(self, trace_id: int, root: Span,
                 layers: Dict[str, float],
                 critical_path: List[Tuple[str, str, float, float]]):
        self.trace_id = trace_id
        self.root = root
        #: Seconds attributed to each layer; sums to ``latency_s``.
        self.layers = layers
        #: Time-ordered ``(name, layer, start, end)`` segments.
        self.critical_path = critical_path

    @property
    def latency_s(self) -> float:
        return self.root.duration

    @property
    def breakdown_sum_s(self) -> float:
        return sum(self.layers.values())

    def fractions(self) -> Dict[str, float]:
        total = self.breakdown_sum_s
        if total <= 0:
            return {layer: 0.0 for layer in self.layers}
        return {layer: seconds / total
                for layer, seconds in self.layers.items()}

    def to_dict(self) -> Dict[str, Any]:
        return {
            "trace_id": self.trace_id,
            "name": self.root.name,
            "replica": self.root.replica,
            "start": self.root.start,
            "latency_s": self.latency_s,
            "layers": dict(self.layers),
            "critical_path": [
                {"name": name, "layer": layer, "start": start, "end": end}
                for name, layer, start, end in self.critical_path],
            "attrs": self.root.attr_dict(),
        }


def _depths(spans: Sequence[Span]) -> Dict[int, int]:
    parents = {span.span_id: span.parent_id for span in spans}
    depths: Dict[int, int] = {}

    def depth(span_id: int) -> int:
        found = depths.get(span_id)
        if found is not None:
            return found
        parent = parents.get(span_id)
        value = 0 if parent is None or parent not in parents \
            else depth(parent) + 1
        depths[span_id] = value
        return value

    for span in spans:
        depth(span.span_id)
    return depths


def trace_report(spans: Sequence[Span]) -> Optional[TraceReport]:
    """Build the report for one trace's spans; None without a root."""
    roots = [span for span in spans if span.parent_id is None]
    if not roots:
        return None
    root = roots[0]
    lo, hi = root.start, root.end
    if hi <= lo:
        return TraceReport(root.trace_id, root, {root.layer: 0.0}, [])
    depths = _depths(spans)
    by_start = {span.span_id: span.start for span in spans}
    # Every span boundary inside the root window partitions it.
    cuts = {lo, hi}
    for span in spans:
        if lo < span.start < hi:
            cuts.add(span.start)
        if lo < span.end < hi:
            cuts.add(span.end)
    boundaries = sorted(cuts)
    layers: Dict[str, float] = {}
    path: List[Tuple[str, str, float, float]] = []
    for a, b in zip(boundaries, boundaries[1:]):
        if b <= a:
            continue
        # Deepest covering span; ties go to the latest-started (then
        # highest-id) span — the innermost work at that instant.
        winner = root
        winner_key = (depths[root.span_id], root.start, root.span_id)
        for span in spans:
            if span.start <= a and span.end >= b and span is not root:
                key = (depths[span.span_id], by_start[span.span_id],
                       span.span_id)
                if key > winner_key:
                    winner, winner_key = span, key
        layers[winner.layer] = layers.get(winner.layer, 0.0) + (b - a)
        if path and path[-1][0] == winner.name and \
                path[-1][1] == winner.layer and path[-1][3] == a:
            name, layer, seg_start, _ = path[-1]
            path[-1] = (name, layer, seg_start, b)
        else:
            path.append((winner.name, winner.layer, a, b))
    return TraceReport(root.trace_id, root, layers, path)


def latency_reports(spans: Iterable[Span]) -> List[TraceReport]:
    """One report per trace, ordered by root start time."""
    grouped: Dict[int, List[Span]] = {}
    for span in spans:
        grouped.setdefault(span.trace_id, []).append(span)
    reports = [report for report in
               (trace_report(group) for group in grouped.values())
               if report is not None]
    reports.sort(key=lambda r: (r.root.replica, r.root.start, r.trace_id))
    return reports


def aggregate_breakdown(spans: Iterable[Span],
                        root_name: Optional[str] = None) -> Dict[str, Any]:
    """Mean per-layer latency fractions across every trace.

    ``root_name`` restricts the aggregate to traces whose root span has
    that name (e.g. ``"task"`` for request traces, excluding flight
    traces).
    """
    reports = [report for report in latency_reports(spans)
               if root_name is None or report.root.name == root_name]
    totals: Dict[str, float] = {}
    latency = 0.0
    for report in reports:
        latency += report.latency_s
        for layer, seconds in report.layers.items():
            totals[layer] = totals.get(layer, 0.0) + seconds
    grand = sum(totals.values())
    return {
        "traces": len(reports),
        "total_latency_s": latency,
        "layer_seconds": totals,
        "layer_fractions": ({layer: seconds / grand
                             for layer, seconds in totals.items()}
                            if grand > 0 else {}),
    }
