"""Platform configurations and run results.

The evaluation compares these systems (Figs 1, 11, 13):

- **Centralized IaaS** — all computation in the cloud on statically
  provisioned resources of equal cost.
- **Centralized FaaS** — all computation in the cloud on OpenWhisk.
- **Distributed Edge** — all computation on the devices; only final
  outputs go upstream.
- **HiveMind** — hybrid placement by the compiler, HiveMind's serverless
  scheduler, FPGA network + remote-memory acceleration, straggler
  mitigation, fault tolerance.

Ablation configs (Fig 13) toggle individual mechanisms: "Centr-Net Accel",
"+Remote Mem", "Distr-Net Accel", "HiveMind-No Accel".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from ..telemetry import (
    BandwidthMeter,
    BreakdownAggregate,
    EnergyAccount,
    MetricSeries,
    fleet_consumed_percent,
)

__all__ = ["PlatformConfig", "RunResult", "PLATFORMS", "platform_config"]

EXECUTION_MODES = ("cloud_faas", "cloud_iaas", "edge", "hybrid")


@dataclass(frozen=True)
class PlatformConfig:
    """Everything that distinguishes one system under test."""

    name: str
    execution: str
    #: FPGA RPC offload for edge<->cloud traffic (section 4.5).
    net_accel: bool = False
    #: FPGA remote-memory fabric for function data exchange (section 4.4).
    remote_mem: bool = False
    #: Serverless placement policy.
    scheduler: str = "openwhisk"
    #: Straggler watchdog + duplicate launches (section 4.6).
    straggler_mitigation: bool = False
    #: Shared-state scheduler instances (HiveMind scales these out).
    n_controllers: int = 1
    #: Hybrid on-board filtering before upload (partial edge execution).
    edge_filtering: bool = False
    #: Idle-container lifetime. Stock OpenWhisk reclaims aggressively
    #: (which is what makes instantiation ~22% of median latency, Fig 6b);
    #: HiveMind deliberately keeps idling containers 10-30 s (section 4.3).
    container_keepalive_s: float = 1.5

    def __post_init__(self):
        if self.execution not in EXECUTION_MODES:
            raise ValueError(f"unknown execution mode {self.execution!r}")
        if self.n_controllers <= 0:
            raise ValueError("need at least one controller")

    @property
    def sharing(self) -> str:
        return "remote_memory" if self.remote_mem else "couchdb"


PLATFORMS: Dict[str, PlatformConfig] = {
    "centralized_iaas": PlatformConfig(
        name="centralized_iaas", execution="cloud_iaas"),
    "centralized_faas": PlatformConfig(
        name="centralized_faas", execution="cloud_faas"),
    "distributed_edge": PlatformConfig(
        name="distributed_edge", execution="edge"),
    "hivemind": PlatformConfig(
        name="hivemind", execution="hybrid", net_accel=True,
        remote_mem=True, scheduler="hivemind",
        straggler_mitigation=True, n_controllers=4, edge_filtering=True,
        container_keepalive_s=20.0),
    # -- Fig 13 ablations -------------------------------------------------
    "centralized_net_accel": PlatformConfig(
        name="centralized_net_accel", execution="cloud_faas",
        net_accel=True),
    "centralized_net_remote": PlatformConfig(
        name="centralized_net_remote", execution="cloud_faas",
        net_accel=True, remote_mem=True),
    "distributed_net_accel": PlatformConfig(
        name="distributed_net_accel", execution="edge", net_accel=True),
    "hivemind_no_accel": PlatformConfig(
        name="hivemind_no_accel", execution="hybrid", net_accel=False,
        remote_mem=False, scheduler="hivemind",
        straggler_mitigation=True, n_controllers=4, edge_filtering=True,
        container_keepalive_s=20.0),
    # -- Section 4.7: deploying on a public cloud -------------------------
    # Without full system control HiveMind keeps the programmability and
    # task-placement benefits (DSL + hybrid execution + filtering) but
    # loses physical placement (stock scheduler, no colocation) and, when
    # the provider has no network-attached FPGAs, both fabrics.
    "hivemind_public_cloud": PlatformConfig(
        name="hivemind_public_cloud", execution="hybrid",
        net_accel=False, remote_mem=False, scheduler="openwhisk",
        straggler_mitigation=True, n_controllers=1, edge_filtering=True,
        container_keepalive_s=20.0),
}


def platform_config(name: str) -> PlatformConfig:
    found = PLATFORMS.get(name)
    if found is None:
        raise KeyError(
            f"unknown platform {name!r}; valid: {sorted(PLATFORMS)}")
    return found


@dataclass
class RunResult:
    """Everything one run of (platform, workload) produced."""

    platform: str
    workload: str
    task_latencies: MetricSeries
    breakdowns: BreakdownAggregate
    energy_accounts: List[EnergyAccount]
    wireless_meter: BandwidthMeter
    duration_s: float
    completed: bool = True
    #: Workload-specific outputs (detection counts, unique people, ...).
    extras: Dict[str, object] = field(default_factory=dict)

    @property
    def median_latency_s(self) -> float:
        return self.task_latencies.median

    @property
    def tail_latency_s(self) -> float:
        return self.task_latencies.p99

    def battery_summary(self) -> "tuple[float, float]":
        """(mean %, worst %) consumed battery across the fleet."""
        return fleet_consumed_percent(self.energy_accounts)

    def bandwidth_summary(self) -> "tuple[float, float]":
        """(mean MB/s, p99 MB/s) on the wireless medium."""
        return (self.wireless_meter.mean_mbs(self.duration_s),
                self.wireless_meter.percentile_mbs(99, self.duration_s))
