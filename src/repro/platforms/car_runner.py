"""Robotic-car scenario runner (paper section 5.5, Fig 16).

Fourteen cars run one of two missions concurrently, sharing the wireless
medium and the serverless backend:

- **Treasure Hunt** — drive to an instruction panel, photograph it, OCR the
  text (S9 profile) to learn the next move, repeat until the final target.
  The OCR result feeds a second *interpret* stage, so the mission exercises
  multi-phase data sharing (where HiveMind's remote-memory fabric shows).
- **Maze** — navigate an unknown perfect maze with the wall follower; each
  step needs a perception decision (front-camera still + S6-style compute)
  before the car moves.

Both missions are latency-critical: the car cannot move until the decision
returns, so perception latency translates directly into job latency.
"""

from __future__ import annotations

import math
from typing import Generator, List, Optional

from ..apps import CarScenarioSpec
from ..cluster import Cluster, FixedPool
from ..config import DEFAULT, PaperConstants
from ..core import StragglerMitigator
from ..dsl import HiveMindCompiler
from ..edge import RoboticCar
from ..hardware import AcceleratedEdgeRpc, RemoteMemoryFabric
from ..network import EdgeCloudRpc, build_fabric
from ..routing import WallFollower, generate_maze
from ..serverless import InvocationRequest, OpenWhiskPlatform
from ..sim import Environment, RandomStreams
from ..telemetry import BreakdownAggregate, LatencyBreakdown, MetricSeries
from .base import PlatformConfig, RunResult
from .runner import TX_DUTY

__all__ = ["CarScenarioRunner"]

#: Cloud-core seconds for the interpret stage consuming the OCR output.
INTERPRET_SERVICE_S = 0.08
#: Cloud-core seconds per maze movement decision.
MAZE_DECISION_S = 0.30


class CarScenarioRunner:
    """Executes one car scenario on one platform configuration."""

    def __init__(self, config: PlatformConfig, scenario: CarScenarioSpec,
                 constants: PaperConstants = DEFAULT,
                 seed: int = 0,
                 n_devices: Optional[int] = None):
        self.config = config
        self.scenario = scenario
        self.constants = constants
        self.seed = seed
        self.n_devices = (n_devices if n_devices is not None
                          else constants.car.count)
        if self.n_devices <= 0:
            raise ValueError("need at least one car")

    @property
    def _device_ratio(self) -> float:
        """Car slowdown relative to the drone-calibrated app profiles."""
        return (self.constants.car.cloud_to_edge_slowdown /
                self.constants.drone.cloud_to_edge_slowdown)

    def _n_controllers(self) -> int:
        if self.config.scheduler != "hivemind":
            return self.config.n_controllers
        return max(self.config.n_controllers,
                   math.ceil(self.n_devices / 64))

    def _fabric_constants(self) -> PaperConstants:
        """See SingleTierRunner._fabric_constants."""
        if not self.config.net_accel:
            return self.constants
        from dataclasses import replace
        return replace(self.constants, wireless=replace(
            self.constants.wireless,
            mac_efficiency=self.constants.accel.mac_efficiency_accel))

    def run(self) -> RunResult:
        env = Environment()
        streams = RandomStreams(self.seed)
        constants = self.constants
        fabric = build_fabric(env, self._fabric_constants(), streams)
        rng = streams.stream("cars.workload")
        app = self.scenario.perception

        platform = None
        mitigator = None
        pool = None
        execution = self.config.execution
        if execution in ("cloud_faas", "hybrid"):
            cluster = Cluster(env, constants.cluster)
            remote_memory = (RemoteMemoryFabric(env, constants.accel)
                             if self.config.remote_mem else None)
            platform = OpenWhiskPlatform(
                env, cluster, streams,
                constants=constants.serverless,
                scheduler=self.config.scheduler,
                sharing=self.config.sharing,
                keepalive_s=self.config.container_keepalive_s,
                n_controllers=self._n_controllers(),
                cluster_network=fabric.cluster,
                remote_memory=remote_memory)
            if self.config.straggler_mitigation:
                mitigator = StragglerMitigator(env, platform,
                                               constants.control)
        elif execution == "cloud_iaas":
            demand = self.n_devices * app.cloud_service_s * 0.5
            pool = FixedPool(env, cores=max(1, math.ceil(demand)))

        if self.config.net_accel:
            edge_rpc = AcceleratedEdgeRpc(env, fabric.wireless,
                                          constants.accel)
        else:
            edge_rpc = EdgeCloudRpc(env, fabric.wireless)

        if execution == "hybrid":
            graph, directives = app.dsl_graph()
            compiler = HiveMindCompiler(constants, n_devices=self.n_devices,
                                        device_kind="car",
                                        accelerated=self.config.net_accel)
            perception_tier = compiler.compile(
                graph, directives).placement.tier_of("process")
        elif execution == "edge":
            perception_tier = "edge"
        else:
            perception_tier = "cloud"

        cars = [
            RoboticCar(env, f"car{i:02d}", constants.car,
                       rng=streams.stream(f"cars.car{i}"))
            for i in range(self.n_devices)
        ]
        phase_latencies = MetricSeries(
            f"{self.scenario.key}.{self.config.name}")
        breakdowns = BreakdownAggregate()
        job_latencies: List[float] = []

        def invoke_cloud(request: InvocationRequest) -> Generator:
            if mitigator is not None:
                result = yield from mitigator.invoke(request)
            else:
                result = yield from platform.invoke(request)
            return result

        def perceive(car: RoboticCar, service_s: float, photo_mb: float,
                     chain_interpret: bool) -> Generator:
            """One perception decision; returns when the car may move."""
            start = env.now
            breakdown = LatencyBreakdown()
            if perception_tier == "edge":
                spent = yield from car.execute(
                    service_s,
                    slowdown=app.edge_slowdown * self._device_ratio)
                breakdown.charge("execution", spent)
                if chain_interpret:
                    spent = yield from car.execute(
                        INTERPRET_SERVICE_S, slowdown=2.0)
                    breakdown.charge("execution", spent)
            else:
                push = yield from edge_rpc.push(car.device_id, photo_mb)
                car.account_tx(TX_DUTY * push.total_s)
                breakdown.charge("network", push.total_s)
                if platform is not None:
                    request = InvocationRequest(
                        spec=app.function_spec(), service_s=service_s,
                        input_mb=photo_mb, output_mb=0.5)
                    invocation = yield from invoke_cloud(request)
                    breakdown.charge("management",
                                     invocation.breakdown.management)
                    breakdown.charge("data_io",
                                     invocation.breakdown.data_io)
                    breakdown.charge("execution",
                                     invocation.breakdown.execution)
                    if chain_interpret:
                        child = InvocationRequest(
                            spec=app.function_spec(),
                            service_s=INTERPRET_SERVICE_S,
                            input_mb=0.5, output_mb=0.02,
                            parent=invocation)
                        invocation = yield from invoke_cloud(child)
                        breakdown.charge("management",
                                         invocation.breakdown.management)
                        breakdown.charge("data_io",
                                         invocation.breakdown.data_io)
                        breakdown.charge("execution",
                                         invocation.breakdown.execution)
                else:
                    wait_s, spent = yield from pool.execute(service_s)
                    breakdown.charge("management", wait_s)
                    breakdown.charge("execution", spent)
                down = yield from fabric.wireless.download(
                    car.device_id, 0.02)
                car.account_rx(TX_DUTY * down)
                breakdown.charge("network", down)
            phase_latencies.add(env.now - start, time=start)
            breakdowns.add(breakdown)

        def treasure_hunt(car: RoboticCar) -> Generator:
            car.start_mission()
            start = env.now
            for _ in range(self.scenario.panels):
                for step in range(self.scenario.steps_between_panels):
                    target = (car.cell[0] + 1, car.cell[1])
                    yield from car.drive_to_cell(target)
                service = app.sample_cloud_service(rng)
                yield from perceive(
                    car, service, car.photograph(), chain_interpret=True)
            job_latencies.append(env.now - start)

        def maze_run(car: RoboticCar, maze_index: int) -> Generator:
            car.start_mission()
            start = env.now
            side = self.scenario.maze_side
            maze = generate_maze(
                side, side, streams.stream(f"cars.maze{maze_index}"))
            follower = WallFollower(maze, (0, 0), (side - 1, side - 1))
            while not follower.done:
                yield from perceive(
                    car, MAZE_DECISION_S, 1.0, chain_interpret=False)
                previous = follower.position
                follower.step()
                # Map maze cells onto the car's grid odometry.
                car.cell = previous
                yield from car.drive_to_cell(follower.position)
            job_latencies.append(env.now - start)

        missions = []
        for index, car in enumerate(cars):
            if self.scenario.panels:
                missions.append(env.process(treasure_hunt(car)))
            else:
                missions.append(env.process(maze_run(car, index)))
        env.run(env.all_of(missions))
        end = env.now
        for car in cars:
            car.finalize_mission(end)

        job_series = MetricSeries(f"{self.scenario.key}.jobs")
        job_series.extend(job_latencies)
        return RunResult(
            platform=self.config.name,
            workload=self.scenario.key,
            task_latencies=phase_latencies,
            breakdowns=breakdowns,
            energy_accounts=[car.energy for car in cars],
            wireless_meter=fabric.wireless_meter,
            duration_s=end,
            extras={
                "job_latencies": job_series,
                "perception_tier": perception_tier,
            },
        )
