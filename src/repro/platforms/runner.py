"""Single-tier job runner: executes one application on one platform.

Reproduces the methodology of section 2.3: each job runs for a fixed window
(default 120 s) on the full swarm, and every task's end-to-end latency is
decomposed into network / management / data-I/O / execution.

Load model: devices emit one task per ``1/rate`` seconds with small jitter.
The default rate is chosen so the heaviest job offers roughly
``load_fraction`` of the wireless capacity ("services are not running at
max load here", section 2.2); saturation experiments pass
``load_fraction`` near or above 1. A device keeps at most
``MAX_OUTSTANDING`` tasks in flight (sensor data is perishable; fresh
batches supersede a hopeless backlog), which keeps saturated systems at a
finite operating point instead of an unbounded queue.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, Generator, Optional

from ..apps import AppSpec
from ..cluster import Cluster, FixedPool
from ..config import DEFAULT, PaperConstants
from ..core import StragglerMitigator
from ..dsl import HiveMindCompiler
from ..edge import Drone
from ..faults import FaultInjector, FaultPlan, InvariantChecker, RecoveryLog
from ..hardware import AcceleratedEdgeRpc, RemoteMemoryFabric
from ..network import (EdgeCloudRpc, NetworkPartitioned, ReliableEdgeRpc,
                       RpcTimeout, build_fabric)
from .. import obs
from ..serverless import InvocationRequest, OpenWhiskPlatform
from ..sim import Environment, RandomStreams
from ..telemetry import BreakdownAggregate, LatencyBreakdown, MetricSeries
from .base import PlatformConfig, RunResult

__all__ = ["SingleTierRunner"]

#: A filter/crop/compress pass is simple streaming work: it does not suffer
#: the cache-starved CNN slowdown on the A8.
EDGE_FILTER_SLOWDOWN = 1.5
#: Per-device in-flight task cap (perishable sensor data).
MAX_OUTSTANDING = 8
#: Bounded on-board compute backlog for the distributed platform.
EDGE_OUTSTANDING = 3
#: Fraction of a transfer's wall time the radio spends at TX-level power;
#: while queued behind other stations it idles in backoff (CSMA carrier
#: sense and retries keep it partially active).
TX_DUTY = 0.35
#: Content bound on HiveMind's filtered upload: the useful content of a
#: frame batch (detected regions of interest) does not grow with raw
#: resolution, so the on-board filter ships at most this much per batch.
FILTER_CEILING_MB = 8.0

LoadProfile = Callable[[float], float]


class SingleTierRunner:
    """Runs one app on one platform configuration and collects metrics."""

    def __init__(self, config: PlatformConfig, app: AppSpec,
                 constants: PaperConstants = DEFAULT,
                 seed: int = 0,
                 duration_s: Optional[float] = None,
                 n_devices: Optional[int] = None,
                 load_fraction: float = 0.5,
                 fault_rate: float = 0.0,
                 keepalive_s: Optional[float] = None,
                 intra_task_parallelism: bool = False,
                 load_profile: Optional[LoadProfile] = None,
                 frame_mb: Optional[float] = None,
                 fps: Optional[float] = None,
                 iaas_headroom: float = 1.25,
                 bursty: bool = True,
                 rate_override: Optional[float] = None,
                 analytic_net: Optional[bool] = None,
                 fault_plan: Optional[FaultPlan] = None):
        self.config = config
        self.app = app
        self.constants = constants
        self.seed = seed
        self.duration_s = (duration_s if duration_s is not None
                           else constants.job_duration_s)
        self.n_devices = (n_devices if n_devices is not None
                          else constants.drone.count)
        if self.n_devices <= 0:
            raise ValueError("need at least one device")
        if not 0 < load_fraction:
            raise ValueError("load fraction must be positive")
        self.load_fraction = load_fraction
        self.fault_rate = fault_rate
        self.keepalive_s = keepalive_s
        self.intra_task_parallelism = intra_task_parallelism
        self.load_profile = load_profile
        self.frame_mb = frame_mb
        self.fps = fps
        if iaas_headroom <= 0:
            raise ValueError("IaaS headroom must be positive")
        #: Reserved-pool sizing relative to mean demand. 1.0 models the
        #: paper's "equal cost" fixed deployment (Fig 5a); the default
        #: leaves modest provisioning headroom.
        self.iaas_headroom = iaas_headroom
        #: Variable tasks-per-batch (Poisson, mean 1). Disable for
        #: strictly periodic workloads.
        self.bursty = bursty
        if rate_override is not None and rate_override <= 0:
            raise ValueError("rate override must be positive")
        #: Exact per-device task rate (validation runs pin this so the
        #: analytical model shares the operating point).
        self.rate_override = rate_override
        #: Analytic virtual-clock queueing (None = REPRO_ANALYTIC_NET env,
        #: default on); False restores the legacy network/serverless path.
        self.analytic_net = analytic_net
        #: Chaos mode: a :class:`~repro.faults.FaultPlan` to inject during
        #: the run. ``None`` (or an empty plan) keeps every chaos hook
        #: unarmed — the run is then byte-identical to one without this
        #: parameter.
        self.fault_plan = fault_plan

    # -- derived workload parameters ------------------------------------------
    @property
    def input_mb(self) -> float:
        if self.frame_mb is None and self.fps is None:
            return self.app.input_mb
        frame = (self.frame_mb if self.frame_mb is not None
                 else self.constants.drone.frame_mb)
        fps = self.fps if self.fps is not None else \
            self.constants.drone.frames_per_second
        return frame * fps  # one-second batch at the chosen resolution

    def task_rate_hz(self) -> float:
        """Per-device task rate under the modest-load rule."""
        if self.rate_override is not None:
            return self.rate_override
        if self.input_mb <= 0:
            return self.app.rate_hz
        network_bound = (self.load_fraction *
                         self.constants.wireless.total_mbs /
                         (self.n_devices * self.input_mb))
        return min(self.app.rate_hz, network_bound)

    def _n_controllers(self) -> int:
        """HiveMind spawns shared-state schedulers as the swarm grows
        (section 4.3); stock OpenWhisk keeps its single controller."""
        if self.config.scheduler != "hivemind":
            return self.config.n_controllers
        return max(self.config.n_controllers,
                   math.ceil(self.n_devices / 64))

    def _fabric_constants(self) -> PaperConstants:
        """Wireless goodput improves when the cloud endpoint is offloaded
        (section 4.5); the workload rate is always derived from the base
        constants so every platform sees the identical offered load."""
        if not self.config.net_accel:
            return self.constants
        from dataclasses import replace
        return replace(self.constants, wireless=replace(
            self.constants.wireless,
            mac_efficiency=self.constants.accel.mac_efficiency_accel))

    # -- run ------------------------------------------------------------
    def run(self) -> RunResult:
        env = Environment()
        streams = RandomStreams(self.seed)
        fabric = build_fabric(env, self._fabric_constants(), streams,
                              analytic=self.analytic_net)
        latencies = MetricSeries(f"{self.app.key}.{self.config.name}")
        breakdowns = BreakdownAggregate()
        rng = streams.stream("runner.workload")

        # Chaos machinery (armed plans only; fault-free runs construct
        # nothing and take the exact pre-chaos code paths).
        chaos = self.fault_plan is not None and self.fault_plan.armed
        checker: Optional[InvariantChecker] = None
        recovery_log: Optional[RecoveryLog] = None
        if chaos:
            checker = InvariantChecker(env)
            checker.attach_kernel()
            recovery_log = RecoveryLog(env)

        # Cloud side.
        cluster = None
        platform = None
        mitigator = None
        pool = None
        remote_memory = None
        execution = self.config.execution
        rate = self.task_rate_hz()
        if execution in ("cloud_faas", "hybrid"):
            cluster = Cluster(env, self.constants.cluster)
            if self.config.remote_mem:
                remote_memory = RemoteMemoryFabric(env, self.constants.accel)
            platform = OpenWhiskPlatform(
                env, cluster, streams,
                constants=self.constants.serverless,
                scheduler=self.config.scheduler,
                sharing=self.config.sharing,
                fault_rate=self.fault_rate,
                keepalive_s=(self.keepalive_s if self.keepalive_s is not None
                             else self.config.container_keepalive_s),
                n_controllers=self._n_controllers(),
                cluster_network=fabric.cluster,
                remote_memory=remote_memory,
                analytic=self.analytic_net)
            if self.config.straggler_mitigation:
                mitigator = StragglerMitigator(
                    env, platform, self.constants.control,
                    harden_races=chaos)
            if chaos:
                platform.recovery_log = recovery_log
                platform.add_completion_listener(
                    checker.invocation_finished)
        elif execution == "cloud_iaas":
            demand = self.n_devices * rate * self.app.cloud_service_s
            pool = FixedPool(
                env, cores=max(1, math.ceil(demand * self.iaas_headroom)),
                name=f"iaas.{self.app.key}")

        # Edge <-> cloud transport.
        if self.config.net_accel:
            edge_rpc = AcceleratedEdgeRpc(env, fabric.wireless,
                                          self.constants.accel)
        else:
            edge_rpc = EdgeCloudRpc(env, fabric.wireless)
        if chaos:
            # Retries + backoff across partition windows; exhausted budgets
            # surface as RpcTimeout so tasks can shed to on-device compute.
            edge_rpc = ReliableEdgeRpc(env, edge_rpc,
                                       recovery_log=recovery_log)

        # Hybrid placement: ask the actual compiler where `process` goes.
        process_tier = "cloud"
        if execution == "hybrid":
            graph, directives = self.app.dsl_graph()
            compiler = HiveMindCompiler(
                self.constants, n_devices=self.n_devices,
                accelerated=self.config.net_accel)
            process_tier = compiler.compile(
                graph, directives).placement.tier_of("process")
        elif execution == "edge":
            process_tier = "edge"

        # Devices.
        # Single-tier drones draw only service-time lognormals (no sensor
        # captures here), so each per-device stream is a pure
        # standard-normal lane — safe for draw-ahead buffering (see
        # repro.sim.rng). A modest block: N devices each hold a buffer.
        devices = [
            Drone(env, f"drone{i:04d}", self.constants.drone,
                  rng=streams.buffered(f"runner.drone{i}", block=128))
            for i in range(self.n_devices)
        ]
        outstanding: Dict[str, int] = {d.device_id: 0 for d in devices}
        skipped = {"count": 0}
        function_spec = self.app.function_spec()

        # Heal gate (chaos only): processes stranded by a cloud partition
        # park on an event that the wireless fabric's heal listener fires.
        heal_waiters: list = []
        if chaos:
            def _on_heal() -> None:
                waiting, heal_waiters[:] = heal_waiters[:], []
                for gate in waiting:
                    gate.succeed()
            fabric.wireless.add_heal_listener(_on_heal)

        def wait_for_heal() -> Generator:
            if not fabric.wireless.partitioned:
                return
            gate = env.event()
            heal_waiters.append(gate)
            yield gate

        def download_response(device: Drone, trace=None) -> Generator:
            if not chaos:
                down_s = yield from fabric.wireless.download(
                    device.device_id, self.app.output_mb, trace=trace)
                return down_s
            while True:
                try:
                    down_s = yield from fabric.wireless.download(
                        device.device_id, self.app.output_mb, trace=trace)
                    return down_s
                except NetworkPartitioned:
                    # The response waits cloud-side; re-fetch after heal.
                    yield from wait_for_heal()

        def shed_to_edge(device: Drone, intrinsic: float,
                         breakdown: LatencyBreakdown,
                         start: float, trace=obs.NULL_CONTEXT) -> Generator:
            """Cloud unreachable past the retry budget: fall back to
            on-device compute, then ship the (small) result once the
            partition heals so downstream consumers still get it."""
            action = recovery_log.record("shed", device.device_id)
            if trace:
                trace.emit("shed_to_edge", "serverless", env.now, env.now)
            exec_start = env.now
            service = yield from device.execute(
                intrinsic, slowdown=self.app.edge_slowdown)
            breakdown.charge("execution", service)
            if trace:
                trace.emit("edge_execute", "edge", exec_start, env.now)
            push_ctx = trace.span("upload", "network", env.now)
            while True:
                try:
                    push = yield from edge_rpc.push(device.device_id,
                                                    self.app.output_mb,
                                                    trace=push_ctx)
                    break
                except RpcTimeout:
                    yield from wait_for_heal()
            push_ctx.close(env.now, mb=self.app.output_mb)
            device.account_tx(TX_DUTY * push.total_s)
            breakdown.charge("network", push.total_s)
            recovery_log.complete(action)
            latencies.add(env.now - start, time=start)
            breakdowns.add(breakdown)

        def invoke_cloud(request: InvocationRequest) -> Generator:
            if mitigator is not None:
                result = yield from mitigator.invoke(request)
            else:
                result = yield from platform.invoke(request)
            return result

        def cloud_task(device: Drone, intrinsic: float,
                       trace=obs.NULL_CONTEXT) -> Generator:
            start = env.now
            breakdown = LatencyBreakdown()
            upload_mb = self.input_mb
            if (execution == "hybrid" and self.config.edge_filtering and
                    self.app.edge_filter_keep < 1.0):
                filter_start = env.now
                filter_s = yield from device.execute(
                    self.app.edge_filter_service_s,
                    slowdown=EDGE_FILTER_SLOWDOWN)
                breakdown.charge("execution", filter_s)
                upload_mb = min(upload_mb * self.app.edge_filter_keep,
                                FILTER_CEILING_MB)
                if trace:
                    trace.emit("edge_filter", "edge", filter_start, env.now)
            push_ctx = trace.span("upload", "network", env.now)
            try:
                push = yield from edge_rpc.push(device.device_id, upload_mb,
                                                trace=push_ctx)
            except RpcTimeout:
                # Chaos only: the bare transport never raises this.
                push_ctx.close(env.now, timed_out=True)
                yield from shed_to_edge(device, intrinsic, breakdown, start,
                                        trace=trace)
                return
            push_ctx.close(env.now, mb=upload_mb)
            # CSMA contention keeps the radio active for most of the
            # transfer's wall time, not just its serialization slice.
            device.account_tx(TX_DUTY * push.total_s)
            breakdown.charge("network", push.total_s)
            if platform is not None:
                request = InvocationRequest(
                    spec=function_spec, service_s=intrinsic,
                    input_mb=upload_mb, output_mb=self.app.output_mb,
                    trace=trace)
                if self.intra_task_parallelism and self.app.parallelism > 1:
                    shards = yield from platform.invoke_parallel(
                        request, self.app.parallelism)
                    for shard in shards:
                        breakdown.charge(
                            "management",
                            shard.breakdown.management / len(shards))
                        breakdown.charge(
                            "data_io", shard.breakdown.data_io / len(shards))
                    breakdown.charge(
                        "execution",
                        max(s.breakdown.execution for s in shards))
                else:
                    invocation = yield from invoke_cloud(request)
                    breakdown.charge("management",
                                     invocation.breakdown.management)
                    breakdown.charge("data_io",
                                     invocation.breakdown.data_io)
                    breakdown.charge("execution",
                                     invocation.breakdown.execution)
            else:
                pool_start = env.now
                wait_s, service_s = yield from pool.execute(intrinsic)
                breakdown.charge("management", wait_s)
                breakdown.charge("execution", service_s)
                if trace:
                    trace.emit("pool_queue", "serverless", pool_start,
                               pool_start + wait_s)
                    trace.emit("execute", "execution",
                               pool_start + wait_s, env.now)
            if self.app.response_to_device:
                down_ctx = trace.span("download", "network", env.now)
                down_s = yield from download_response(device,
                                                      trace=down_ctx)
                down_ctx.close(env.now, mb=self.app.output_mb)
                device.account_rx(TX_DUTY * down_s)
                breakdown.charge("network", down_s)
            latencies.add(env.now - start, time=start)
            breakdowns.add(breakdown)

        def edge_task(device: Drone, intrinsic: float,
                      trace=obs.NULL_CONTEXT) -> Generator:
            start = env.now
            breakdown = LatencyBreakdown()
            service = yield from device.execute(
                intrinsic, slowdown=self.app.edge_slowdown)
            breakdown.charge("execution", service)
            if trace:
                trace.emit("edge_execute", "edge", start, env.now)
            push_ctx = trace.span("upload", "network", env.now)
            while True:
                try:
                    push = yield from edge_rpc.push(device.device_id,
                                                    self.app.output_mb,
                                                    trace=push_ctx)
                    break
                except RpcTimeout:
                    # Chaos only: result is already computed on-board;
                    # hold it until the partition heals.
                    yield from wait_for_heal()
            push_ctx.close(env.now, mb=self.app.output_mb)
            device.account_tx(TX_DUTY * push.total_s)
            breakdown.charge("network", push.total_s)
            latencies.add(env.now - start, time=start)
            breakdowns.add(breakdown)

        task_seq = {"n": 0}

        def handle(device: Drone, intrinsic: float) -> Generator:
            task_id = None
            if checker is not None:
                task_seq["n"] += 1
                task_id = task_seq["n"]
                checker.task_submitted(task_id)
                checker.observe_clock(device.device_id, env.now)
            trace = obs.root_span("task", "task", env.now,
                                  app=self.app.key,
                                  device=device.device_id,
                                  platform=self.config.name)
            try:
                if process_tier == "edge":
                    yield from edge_task(device, intrinsic, trace=trace)
                else:
                    yield from cloud_task(device, intrinsic, trace=trace)
                if checker is not None:
                    checker.task_completed(task_id)
            except RpcTimeout:
                if checker is None:
                    raise
                # A shed/retry path still gave up (partition outlasted
                # every fallback): account the loss explicitly.
                checker.task_lost(task_id, "network_partition")
                trace.annotate(lost=True)
            finally:
                trace.close(env.now)
                outstanding[device.device_id] -= 1

        def generator(index: int, device: Drone) -> Generator:
            device.start_mission()
            interval = 1.0 / rate
            cap = (EDGE_OUTSTANDING if process_tier == "edge"
                   else MAX_OUTSTANDING)
            # Frame batches tick on near-synchronized wall-clock intervals
            # across the swarm (every drone samples at the same fps), which
            # is what makes fixed pools queue under bursts while serverless
            # absorbs them (Fig 5a). Periodic (non-bursty) mode instead
            # spreads phases across the full interval — the validation
            # operating point where closed-form models apply.
            phase = float(rng.uniform(0, 0.15 * interval if self.bursty
                                      else interval))
            tick = 0
            while True:
                next_t = phase + tick * interval
                tick += 1
                if next_t >= self.duration_s:
                    break
                yield env.timeout(next_t - env.now)
                if chaos and not device.alive:
                    break  # crashed devices stop emitting sensor batches
                if self.load_profile is not None:
                    active_fraction = self.load_profile(env.now)
                    if index >= active_fraction * self.n_devices:
                        continue
                # A batch spawns a variable number of tasks (e.g. one
                # recognition function per detected face) with mean 1.
                spawn = (int(rng.poisson(1.0)) if self.bursty else 1)
                for _ in range(spawn):
                    if outstanding[device.device_id] >= cap:
                        skipped["count"] += 1
                        continue
                    outstanding[device.device_id] += 1
                    intrinsic = self.app.sample_cloud_service(rng)
                    env.process(handle(device, intrinsic))

        injector = None
        if chaos:
            injector = FaultInjector(
                env, self.fault_plan,
                wireless=fabric.wireless, platform=platform,
                cluster=cluster,
                devices={d.device_id: d for d in devices},
                recovery_log=recovery_log)
            injector.start()

        for index, device in enumerate(devices):
            env.process(generator(index, device))
        env.run()

        end = env.now
        for device in devices:
            device.account_motion(end)
            device.finalize_mission(end)

        extras: Dict[str, object] = {
            "skipped": skipped["count"],
            "rate_hz": rate,
            "process_tier": process_tier,
        }
        if platform is not None:
            extras.update(
                cold_starts=platform.cold_starts,
                warm_starts=platform.warm_starts,
                respawns=platform.respawns,
                active_samples=platform.active_samples,
                invocations=len(platform.invocations),
            )
        if pool is not None:
            extras["pool_cores"] = pool.cores
            extras["pool_utilization"] = pool.utilization(end)
        if mitigator is not None:
            extras["stragglers"] = mitigator.stragglers_detected
        if checker is not None:
            checker.finalize([d.energy for d in devices])
            extras["chaos"] = {
                "invariants": checker.summary(),
                "recoveries": recovery_log.counts_by_kind(),
                "recovery_latencies_s": recovery_log.latencies(),
                "injected": list(injector.applied),
                "rpc_retries": edge_rpc.retries,
                "requeues": platform.requeues if platform else 0,
                "cancellations": platform.cancellations if platform else 0,
                "makespan_s": end,
            }
            extras["violations"] = len(checker.violations)
        return RunResult(
            platform=self.config.name,
            workload=self.app.key,
            task_latencies=latencies,
            breakdowns=breakdowns,
            energy_accounts=[d.energy for d in devices],
            wireless_meter=fabric.wireless_meter,
            duration_s=end,
            extras=extras,
        )
