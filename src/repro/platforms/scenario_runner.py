"""End-to-end scenario runner (Scenario A / Scenario B, Figs 1, 11-15).

Runs a full mission: the field is partitioned among the drones, each flies a
boustrophedon coverage route photographing the ground, obstacle avoidance
always runs on-board (section 2.1), recognition runs wherever the platform
places it, and Scenario B's deduplication aggregates in the cloud behind
the synchronization barrier. Detection quality is *real*: camera sightings
of world entities feed the embedding recognizer, whose accuracy depends on
the continuous-learning mode.

Fault tolerance runs live: heartbeats flow, a silent drone is declared
failed after 3 s, and its region is repartitioned to neighbours who then
fly the extra coverage (HiveMind / centralized platforms; the distributed
platform has no global view, so a failed drone's region simply goes
unsearched).

This runner is the *exact* tier: every device is discrete-event
simulated in one kernel. ``repro.sim.shard.run_sharded`` decomposes the
same mission into per-cell kernels (and, with ``REPRO_CLOUD_SHARDS``,
per-region cloud workers); hybrid runs keep a small exact focus with
this runner's semantics while ``repro.edge.meanfield`` prices the
background fleet.
Results from this runner remain the ground truth the sharded and hybrid
tiers are validated against (see tests/sim/test_shard_determinism.py
and tests/edge/test_meanfield_parity.py).
"""

from __future__ import annotations

import math
import os
from typing import Dict, Generator, List, Optional, Sequence, Set, Tuple

from ..apps import ScenarioSpec
from ..cluster import Cluster, FixedPool
from ..config import DEFAULT, PaperConstants
from ..core import FailureDetector, StragglerMitigator
from ..dsl import HiveMindCompiler
from ..edge import Drone, FieldWorld, FrameBatch, Swarm, SwarmEngine
from ..hardware import AcceleratedEdgeRpc, RemoteMemoryFabric
from ..learning import DeduplicationEngine, IdentitySpace, RetrainingMode
from ..learning.retraining import OnlineRecognizer
from ..network import EdgeCloudRpc, build_fabric
from ..routing import Region, coverage_route
from ..serverless import Invocation, InvocationRequest, OpenWhiskPlatform
from ..sim import Environment, RandomStreams
from ..telemetry import BreakdownAggregate, LatencyBreakdown, MetricSeries
from .. import obs
from .base import PlatformConfig, RunResult
from .runner import EDGE_FILTER_SLOWDOWN, FILTER_CEILING_MB, TX_DUTY

__all__ = ["ScenarioRunner"]

#: On-board obstacle avoidance cost (cloud-core seconds; S4's profile).
OBSTACLE_SERVICE_S = 0.06
OBSTACLE_SLOWDOWN = 1.2
#: HiveMind reserves cloud headroom for performance predictability (cores
#: are pinned, never shared, and other tenants coexist): when the swarm's
#: aggregate recognition demand would exceed this many dedicated cores,
#: the runtime remaps the excess batches to on-board execution — the
#: task-granularity runtime remapping of section 4.2, and the reason
#: Fig 17b's bandwidth grows sublinearly ("accommodates more computation
#: on-board" at scale).
CLOUD_BUDGET_CORES = 96.0


class ScenarioRunner:
    """Executes one end-to-end scenario on one platform."""

    def __init__(self, config: PlatformConfig, scenario: ScenarioSpec,
                 constants: PaperConstants = DEFAULT,
                 seed: int = 0,
                 n_devices: Optional[int] = None,
                 retraining: Optional[str] = None,
                 fail_device_at: Optional[Tuple[int, float]] = None,
                 frame_mb: Optional[float] = None,
                 fps: Optional[float] = None,
                 iaas_baseline_devices: int = 16,
                 passes: int = 1,
                 vector_edge: Optional[bool] = None,
                 analytic_net: Optional[bool] = None,
                 cloud_boundary: Optional[object] = None,
                 device_id_base: int = 0,
                 cloud_budget_cores: Optional[float] = None,
                 placement_devices: Optional[int] = None,
                 fail_devices_at: Optional[Sequence[Tuple[int, float]]]
                 = None):
        self.config = config
        self.scenario = scenario
        self.constants = (constants if n_devices is None
                          else constants.scaled_for_swarm(n_devices))
        self.seed = seed
        self.retraining = retraining
        self.fail_device_at = fail_device_at
        self.frame_mb = frame_mb
        self.fps = fps
        if iaas_baseline_devices <= 0:
            raise ValueError("baseline fleet must be positive")
        self.iaas_baseline_devices = iaas_baseline_devices
        if passes <= 0:
            raise ValueError("passes must be positive")
        #: Coverage passes over the field (continuous-surveillance runs
        #: use several so online learning has material to learn from).
        self.passes = passes
        #: Vectorized SwarmEngine for flight + heartbeats (default on;
        #: REPRO_VECTOR_EDGE=0 or vector_edge=False falls back to the
        #: legacy per-device tick processes — bit-identical results).
        self.vector_edge = (
            vector_edge if vector_edge is not None
            else os.environ.get("REPRO_VECTOR_EDGE", "1") != "0")
        #: Analytic virtual-clock queueing in the network and serverless
        #: layers (default on; REPRO_ANALYTIC_NET=0 or analytic_net=False
        #: falls back to the legacy Resource-based machinery —
        #: bit-identical results).
        self.analytic_net = analytic_net
        #: Sharded-mode cloud boundary (see :mod:`repro.sim.shard`): when
        #: set, this runner simulates one *edge cell* — cloud-bound work
        #: is recorded as timestamped messages on the boundary instead of
        #: being served by an in-process platform, and task latencies for
        #: those messages are resolved later by the cloud shard. None
        #: (the default) is the unsharded single-process path, untouched.
        self.cloud_boundary = cloud_boundary
        if cloud_boundary is not None and config.execution not in (
                "cloud_faas", "hybrid"):
            raise ValueError(
                "cloud_boundary mode requires a cloud-backed platform "
                f"(got execution={config.execution!r})")
        if device_id_base < 0:
            raise ValueError("device_id_base must be non-negative")
        #: First global device index in this runner's swarm (sharded mode
        #: gives each cell a disjoint id range so merged results keep
        #: globally unique device ids).
        self.device_id_base = device_id_base
        #: Cloud headroom admitted to this runner's swarm (sharded mode
        #: hands each cell its population-proportional share of
        #: :data:`CLOUD_BUDGET_CORES` so the hybrid runtime-remapping
        #: fraction matches the whole-swarm value).
        self.cloud_budget_cores = (
            CLOUD_BUDGET_CORES if cloud_budget_cores is None
            else cloud_budget_cores)
        #: Swarm size the DSL compiler sees when placing recognition
        #: (sharded mode passes the *global* device count so every cell
        #: compiles the same whole-swarm placement).
        self.placement_devices = placement_devices
        #: Scheduled device failures ((local index, time) pairs) — the
        #: multi-device generalization of ``fail_device_at``, used by the
        #: shard runtime to apply a partitioned fault plan per cell.
        self.fail_devices_at = list(fail_devices_at or ())
        self._st: Optional[Dict[str, object]] = None
        self._finished = False
        self._makespan = 0.0

    # -- defaults -------------------------------------------------------------
    def _default_retraining(self) -> RetrainingMode:
        """Centralized backends learn swarm-wide; distributed cannot."""
        if self.retraining is not None:
            return RetrainingMode(self.retraining)
        if self.config.execution == "edge":
            return RetrainingMode.SELF
        return RetrainingMode.SWARM

    def _n_controllers(self) -> int:
        """HiveMind spawns shared-state schedulers as the swarm grows
        (section 4.3); stock OpenWhisk keeps its single controller."""
        if self.config.scheduler != "hivemind":
            return self.config.n_controllers
        return max(self.config.n_controllers,
                   math.ceil(self.constants.drone.count / 64))

    def _fabric_constants(self) -> PaperConstants:
        """See SingleTierRunner._fabric_constants."""
        if not self.config.net_accel:
            return self.constants
        from dataclasses import replace
        return replace(self.constants, wireless=replace(
            self.constants.wireless,
            mac_efficiency=self.constants.accel.mac_efficiency_accel))

    # -- run ------------------------------------------------------------
    def run(self) -> RunResult:
        """The whole mission in one call (the established interface).

        Equivalent to ``start()`` + ``advance_to(inf)`` + ``finish()``;
        the incremental phases exist so the sharded runtime can step many
        cells in conservative lookahead windows (:mod:`repro.sim.shard`).
        The event sequence is identical either way.
        """
        self.start()
        self.advance_to(float("inf"))
        return self.finish()

    def start(self) -> None:
        """Build the world and schedule the mission; dispatch no events."""
        env = Environment()
        boundary = self.cloud_boundary
        engine = SwarmEngine(env) if self.vector_edge else None
        streams = RandomStreams(self.seed)
        constants = self.constants
        fabric = build_fabric(env, self._fabric_constants(), streams,
                              analytic=self.analytic_net)
        app = self.scenario.recognition
        rng = streams.stream("scenario.workload")

        # World + ground truth.
        world = FieldWorld(constants.field_width_m, constants.field_height_m,
                           streams.stream("scenario.world"))
        if self.scenario.moving_targets:
            n_targets = constants.scenario_b_people
            world.place_people(n_targets)
        else:
            n_targets = constants.scenario_a_items
            world.place_items(n_targets)
        space = IdentitySpace(n_targets, dim=16,
                              rng=streams.stream("scenario.identities"))

        # Swarm.
        drones = [
            Drone(env, f"drone{self.device_id_base + i:04d}",
                  constants.drone,
                  rng=streams.stream(f"scenario.drone{i}"),
                  frame_mb=self.frame_mb, fps=self.fps)
            for i in range(constants.drone.count)
        ]
        swarm = Swarm(env, drones, control=constants.control)
        swarm.assign_regions(constants.field_width_m,
                             constants.field_height_m)

        # Recognizer + dedup. Pretraining is deliberately thin (one noisy
        # example per identity) so Fig 15's never-retrained baseline shows
        # material error; sensor noise is calibrated against the accept
        # radius for the same reason.
        recognizer = OnlineRecognizer(
            space, [d.device_id for d in drones],
            self._default_retraining(),
            rng=streams.stream("scenario.recognizer"),
            sensor_noise=0.50, pretrain_noise=0.55,
            pretrain_samples=1, clutter_rate=0.08)
        dedup = DeduplicationEngine(merge_radius=0.75)

        # Cloud side.
        platform = None
        mitigator = None
        pool = None
        execution = self.config.execution
        if boundary is not None:
            # Sharded cell: the cloud tier lives in the cloud shard; this
            # runner only records cloud-bound messages on the boundary.
            pass
        elif execution in ("cloud_faas", "hybrid"):
            cluster = Cluster(env, constants.cluster)
            remote_memory = (RemoteMemoryFabric(env, constants.accel)
                             if self.config.remote_mem else None)
            platform = OpenWhiskPlatform(
                env, cluster, streams,
                constants=constants.serverless,
                scheduler=self.config.scheduler,
                sharing=self.config.sharing,
                keepalive_s=self.config.container_keepalive_s,
                n_controllers=self._n_controllers(),
                cluster_network=fabric.cluster,
                remote_memory=remote_memory,
                analytic=self.analytic_net)
            if self.config.straggler_mitigation:
                mitigator = StragglerMitigator(env, platform,
                                               constants.control)
        elif execution == "cloud_iaas":
            # Statically provisioned resources of equal cost: sized for the
            # real 16-drone testbed's long-run average demand (missions are
            # intermittent; reserving for the peak would idle the fleet at
            # several times the cost). Being *static*, the reservation does
            # not grow with simulated swarm size — the scalability wall of
            # Fig 1 — and the fleet boots at mission start, paying the
            # instance spin-up lag (Fig 5b's inelasticity).
            demand = (self.iaas_baseline_devices * app.cloud_service_s *
                      min(1.0, app.rate_hz))
            pool = FixedPool(env, cores=1)
            env.process(pool.resize(max(1, math.ceil(demand * 0.5))))

        if self.config.net_accel:
            edge_rpc = AcceleratedEdgeRpc(env, fabric.wireless,
                                          constants.accel)
        else:
            edge_rpc = EdgeCloudRpc(env, fabric.wireless)

        # Recognition placement.
        if execution == "hybrid":
            graph, directives = self.scenario.dsl_graph()
            compiler = HiveMindCompiler(
                constants,
                n_devices=self.placement_devices or len(drones),
                accelerated=self.config.net_accel)
            recognition_tier = compiler.compile(
                graph, directives).placement.tier_of("recognition")
        elif execution == "edge":
            recognition_tier = "edge"
        else:
            recognition_tier = "cloud"

        # Runtime remapping: fraction of batches the cloud budget admits.
        cloud_fraction = 1.0
        if execution == "hybrid" and recognition_tier == "cloud":
            demand_cores = len(drones) * app.cloud_service_s
            cloud_fraction = min(1.0, self.cloud_budget_cores / demand_cores)

        # Fault tolerance (global-view platforms only).
        detector = None
        if execution != "edge":
            swarm.start_heartbeats(engine=engine)
            detector = FailureDetector(env, swarm, constants.control)
        if self.fail_device_at is not None:
            index, at_time = self.fail_device_at
            swarm.fail_device_at(drones[index].device_id, at_time)
        for index, at_time in self.fail_devices_at:
            swarm.fail_device_at(drones[index].device_id, at_time)

        # Metrics + scenario state.
        latencies = MetricSeries(f"{self.scenario.key}.{self.config.name}")
        breakdowns = BreakdownAggregate()
        found_items: Set[int] = set()
        pending = {"count": 0}
        recognition_spec = app.function_spec()
        dedup_spec = (self.scenario.dedup.function_spec()
                      if self.scenario.dedup is not None else None)
        input_mb = (self.frame_mb * (self.fps or
                                     constants.drone.frames_per_second)
                    if self.frame_mb is not None
                    else app.input_mb)

        def record_sightings(device: Drone, batch: FrameBatch) -> None:
            sightings = (batch.people_sightings
                         if self.scenario.moving_targets
                         else batch.item_sightings)
            for identity in sightings:
                predicted = recognizer.sight(device.device_id, identity)
                if predicted is None:
                    continue
                if self.scenario.moving_targets:
                    dedup.add(space.observe(identity, 0.25))
                else:
                    found_items.add(predicted)

        def invoke_cloud(request: InvocationRequest) -> Generator:
            if mitigator is not None:
                result = yield from mitigator.invoke(request)
            else:
                result = yield from platform.invoke(request)
            return result

        def recognition_cloud(device: Drone, batch: FrameBatch,
                              breakdown: LatencyBreakdown,
                              trace=obs.NULL_CONTEXT) -> Generator:
            upload_mb = input_mb
            if (execution == "hybrid" and self.config.edge_filtering and
                    app.edge_filter_keep < 1.0):
                filter_start = env.now
                filter_s = yield from device.execute(
                    app.edge_filter_service_s,
                    slowdown=EDGE_FILTER_SLOWDOWN)
                breakdown.charge("execution", filter_s)
                upload_mb = min(upload_mb * app.edge_filter_keep,
                                FILTER_CEILING_MB)
                if trace:
                    trace.emit("edge_filter", "edge", filter_start, env.now)
            push_ctx = trace.span("upload", "network", env.now)
            push = yield from edge_rpc.push(device.device_id, upload_mb,
                                            trace=push_ctx)
            push_ctx.close(env.now, mb=upload_mb)
            device.account_tx(TX_DUTY * push.total_s)
            breakdown.charge("network", push.total_s)
            intrinsic = app.sample_cloud_service(rng)
            if boundary is not None:
                # Sharded cell: the upload has crossed the boundary; hand
                # the cloud shard a timestamped message carrying every
                # service-time draw it needs (drawn *here*, from this
                # cell's streams, so the cloud side stays deterministic
                # at any shard count). The returned ticket is finalized
                # by handle_batch once the edge side of the task is done.
                dedup_s = (self.scenario.dedup.sample_cloud_service(rng)
                           if dedup_spec is not None else None)
                return boundary.submit(
                    device_id=device.device_id, arrival_s=env.now,
                    recognition_s=intrinsic, dedup_s=dedup_s,
                    input_mb=upload_mb, output_mb=app.output_mb)
            if platform is not None:
                request = InvocationRequest(
                    spec=recognition_spec, service_s=intrinsic,
                    input_mb=upload_mb, output_mb=app.output_mb,
                    trace=trace)
                invocation = yield from invoke_cloud(request)
                breakdown.charge("management",
                                 invocation.breakdown.management)
                breakdown.charge("data_io", invocation.breakdown.data_io)
                breakdown.charge("execution",
                                 invocation.breakdown.execution)
                return invocation
            pool_start = env.now
            wait_s, service_s = yield from pool.execute(intrinsic)
            breakdown.charge("management", wait_s)
            breakdown.charge("execution", service_s)
            if trace:
                trace.emit("pool_queue", "serverless", pool_start,
                           pool_start + wait_s)
                trace.emit("execute", "execution", pool_start + wait_s,
                           env.now)
            return None

        def recognition_edge(device: Drone,
                             breakdown: LatencyBreakdown,
                             trace=obs.NULL_CONTEXT) -> Generator:
            intrinsic = (app.sample_cloud_service(rng) +
                         self.scenario.edge_extra_service_s)
            exec_start = env.now
            service = yield from device.execute(
                intrinsic, slowdown=app.edge_slowdown)
            breakdown.charge("execution", service)
            if trace:
                trace.emit("edge_execute", "edge", exec_start, env.now)
            push_ctx = trace.span("upload", "network", env.now)
            push = yield from edge_rpc.push(device.device_id, app.output_mb,
                                            trace=push_ctx)
            push_ctx.close(env.now, mb=app.output_mb)
            device.account_tx(TX_DUTY * push.total_s)
            breakdown.charge("network", push.total_s)
            return None

        # Persist directives (Listing 2): outputs of the marked tasks go
        # to persistent storage (CouchDB on the cloud platforms).
        _, scenario_directives = self.scenario.dsl_graph()
        persisted_tasks = set(scenario_directives.persisted)
        persist_counter = {"count": 0}

        def persist_output(task_name: str, key: str, megabytes: float,
                           trace=obs.NULL_CONTEXT) -> Generator:
            if platform is None or task_name not in persisted_tasks:
                return
            store_start = env.now
            yield from platform.couchdb.store(key, megabytes)
            if trace:
                trace.emit("persist", "data_io", store_start, env.now,
                           key=key)
            persist_counter["count"] += 1

        def aggregate_stage(parent: Optional[Invocation],
                            breakdown: LatencyBreakdown,
                            trace=obs.NULL_CONTEXT) -> Generator:
            """Scenario B deduplication / Scenario A location merge."""
            if platform is None or dedup_spec is None:
                return
            intrinsic = self.scenario.dedup.sample_cloud_service(rng)
            request = InvocationRequest(
                spec=dedup_spec, service_s=intrinsic,
                input_mb=(parent.request.output_mb if parent else 0.1),
                output_mb=0.05, parent=parent, trace=trace)
            invocation = yield from invoke_cloud(request)
            breakdown.charge("management", invocation.breakdown.management)
            breakdown.charge("data_io", invocation.breakdown.data_io)
            breakdown.charge("execution", invocation.breakdown.execution)
            yield from persist_output(
                "aggregate", f"agg-{invocation.invocation_id}", 0.05,
                trace=trace)

        def handle_batch(device: Drone, batch: FrameBatch) -> Generator:
            start = env.now
            breakdown = LatencyBreakdown()
            ticket = None
            trace = obs.root_span("task", "task", env.now,
                                  scenario=self.scenario.key,
                                  device=device.device_id,
                                  platform=self.config.name)
            try:
                # Obstacle avoidance always on-board (section 2.1), and
                # declared Parallel(obstacleAvoidance, recognition) in the
                # Listing-3 graph: it runs concurrently with the
                # recognition pipeline, contending only for the device CPU.
                obstacle = env.process(device.execute(
                    OBSTACLE_SERVICE_S, slowdown=OBSTACLE_SLOWDOWN))
                to_cloud = (recognition_tier == "cloud" and device.alive and
                            (cloud_fraction >= 1.0 or
                             float(rng.random()) < cloud_fraction))
                if to_cloud:
                    parent = yield from recognition_cloud(
                        device, batch, breakdown, trace=trace)
                    if boundary is not None:
                        ticket, parent = parent, None
                    if parent is not None:
                        yield from persist_output(
                            "recognition",
                            f"rec-{parent.invocation_id}",
                            app.output_mb, trace=trace)
                else:
                    parent = yield from recognition_edge(device, breakdown,
                                                         trace=trace)
                    if boundary is not None and dedup_spec is not None:
                        # The aggregate stage still runs at the cloud tier
                        # for edge-executed recognition: ship a dedup-only
                        # message (no recognition stage) across the
                        # boundary, mirroring aggregate_stage's no-parent
                        # invocation shape.
                        ticket = boundary.submit(
                            device_id=device.device_id, arrival_s=env.now,
                            recognition_s=None,
                            dedup_s=self.scenario.dedup.sample_cloud_service(
                                rng),
                            input_mb=0.1, output_mb=0.05)
                record_sightings(device, batch)
                yield from aggregate_stage(parent, breakdown, trace=trace)
                yield obstacle  # join the Parallel branch
                if ticket is not None:
                    # Deferred task: the cloud half runs in the cloud
                    # shard; the merge layer joins both halves into the
                    # final latency/breakdown row (canonical order).
                    ticket.start_s = start
                    ticket.edge_done_s = env.now
                    ticket.edge_breakdown = breakdown.as_dict()
                else:
                    latencies.add(env.now - start, time=start)
                    breakdowns.add(breakdown)
            finally:
                trace.close(env.now)
                pending["count"] -= 1

        def on_batch(device: Drone):
            def callback(batch: FrameBatch) -> None:
                if not device.alive:
                    return
                pending["count"] += 1
                env.process(handle_batch(device, batch))
            return callback

        completed = {"all": True}

        def mission(device: Drone) -> Generator:
            device.start_mission()
            swath = constants.drone.fov_width_m
            for _ in range(self.passes):
                covered: Set[Tuple[float, float, float, float]] = set()
                while device.alive:
                    region = self._next_region(swarm, device, covered)
                    if region is None:
                        break
                    covered.add((region.x0, region.y0,
                                 region.x1, region.y1))
                    route = coverage_route(region, swath)
                    if engine is not None:
                        yield engine.fly_route(
                            device, route, world, on_batch=on_batch(device))
                    else:
                        yield env.process(device.fly_route(
                            route, world, on_batch=on_batch(device)))
                    if device.energy.depleted:
                        device.fail()
                        completed["all"] = False
                if not device.alive:
                    break

        missions = [env.process(mission(d)) for d in drones]

        def orchestrate() -> Generator:
            yield env.all_of(missions)
            # Drain the processing pipeline.
            while pending["count"] > 0:
                yield env.timeout(0.5)

        done = env.process(orchestrate())

        def mark_done(event) -> None:
            self._makespan = env.now
            self._finished = True

        # mark_done must precede the stop callback: StopSimulation
        # propagates out of the dispatch loop immediately, so callbacks
        # appended after the raising one would never run.
        done.callbacks.append(mark_done)
        done.callbacks.append(env._stop_callback)

        self._st = {
            "env": env, "drones": drones, "swarm": swarm,
            "detector": detector, "platform": platform, "fabric": fabric,
            "latencies": latencies, "breakdowns": breakdowns,
            "persist_counter": persist_counter, "recognizer": recognizer,
            "dedup": dedup, "found_items": found_items,
            "n_targets": n_targets, "recognition_tier": recognition_tier,
            "cloud_fraction": cloud_fraction, "completed": completed,
        }

    @property
    def now(self) -> float:
        """Current simulated time of the cell's kernel."""
        if self._st is None:
            raise RuntimeError("start() has not been called")
        return self._st["env"].now

    @property
    def finished(self) -> bool:
        """True once the mission has completed and drained."""
        return self._finished

    @property
    def makespan(self) -> float:
        """Mission completion time (valid once :attr:`finished`)."""
        return self._makespan

    def advance_to(self, until: float) -> None:
        """Dispatch events up to simulated time ``until``.

        ``float('inf')`` runs to mission completion (the whole-run path);
        the sharded driver instead calls this with successive barrier
        times. No-op once the mission has drained.
        """
        if self._st is None:
            raise RuntimeError("start() has not been called")
        if self._finished:
            return
        env = self._st["env"]
        if until == float("inf"):
            env.run()
            if not self._finished:
                raise RuntimeError(
                    "event queue drained before the mission completed")
        elif until > env.now:
            env.run(until=until)

    def finish(self,
               duration_override: Optional[float] = None) -> RunResult:
        """Finalize mission accounting and build the :class:`RunResult`.

        ``duration_override`` lets the sharded driver stretch the
        accounting horizon to the *global* makespan (the last cloud-side
        completion across every cell), so hover/idle energy is charged
        over the same window in every cell regardless of which one
        finished flying first.
        """
        st = self._st
        if st is None or not self._finished:
            raise RuntimeError("finish() before the mission completed")
        makespan = self._makespan
        duration = (makespan if duration_override is None
                    else max(makespan, float(duration_override)))
        drones = st["drones"]
        for device in drones:
            device.finalize_mission(duration)

        completed = st["completed"]
        uncovered = self._uncovered_regions(st["swarm"], drones)
        if uncovered:
            completed["all"] = False

        detector = st["detector"]
        platform = st["platform"]
        extras: Dict[str, object] = {
            "makespan_s": makespan,
            "targets": st["n_targets"],
            "recognition_tier": st["recognition_tier"],
            "cloud_fraction": st["cloud_fraction"],
            "persisted_documents": st["persist_counter"]["count"],
            "tally": st["recognizer"].tally,
            "failed_devices": (detector.failed if detector is not None
                               else [d.device_id for d in drones
                                     if not d.alive]),
        }
        if self.scenario.moving_targets:
            extras["unique_people"] = st["dedup"].unique_count
        else:
            extras["items_found"] = len(st["found_items"])
        if platform is not None:
            extras["cold_starts"] = platform.cold_starts
        return RunResult(
            platform=self.config.name,
            workload=self.scenario.key,
            task_latencies=st["latencies"],
            breakdowns=st["breakdowns"],
            energy_accounts=[d.energy for d in drones],
            wireless_meter=st["fabric"].wireless_meter,
            duration_s=duration,
            completed=completed["all"],
            extras=extras,
        )

    # -- helpers ------------------------------------------------------------
    @staticmethod
    def _next_region(swarm: Swarm, device: Drone,
                     covered: Set) -> Optional[Region]:
        regions = swarm.regions.get(device.device_id, [])
        for region in regions:
            key = (region.x0, region.y0, region.x1, region.y1)
            if key not in covered:
                return region
        return None

    @staticmethod
    def _uncovered_regions(swarm: Swarm, drones: List[Drone]) -> List[Region]:
        """Regions belonging to dead devices with no heir."""
        dead = {d.device_id for d in drones if not d.alive}
        return [region for device_id, regions in swarm.regions.items()
                if device_id in dead for region in regions]
