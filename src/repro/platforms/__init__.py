"""Platform assemblies and runners for the systems under test."""

from .base import PLATFORMS, PlatformConfig, RunResult, platform_config
from .car_runner import CarScenarioRunner
from .runner import SingleTierRunner
from .scenario_runner import ScenarioRunner

__all__ = [
    "PlatformConfig",
    "PLATFORMS",
    "platform_config",
    "RunResult",
    "SingleTierRunner",
    "ScenarioRunner",
    "CarScenarioRunner",
]
