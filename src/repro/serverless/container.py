"""Container lifecycle for serverless functions.

Functions run in Docker containers instantiated by an invoker. The pieces
the paper's figures depend on:

- **Cold starts** cost hundreds of milliseconds (lognormal, Fig 6b's
  instantiation share); **warm starts** cost single-digit milliseconds.
- **Keep-alive**: an idling container lingers 10-30 s before termination so
  a near-future function can reuse it (section 4.3).
- **Pinning**: a running container holds dedicated logical cores; two
  containers may share a server but never a core (section 4.3). Idle (warm)
  containers keep their memory reservation but hold no core.
"""

from __future__ import annotations

import itertools
from enum import Enum
from typing import Optional

from .function import FunctionSpec

__all__ = ["ContainerState", "FunctionContainer"]

_container_ids = itertools.count()


class ContainerState(Enum):
    COLD_STARTING = "cold_starting"
    RUNNING = "running"
    WARM = "warm"
    TERMINATED = "terminated"


class FunctionContainer:
    """One Docker container hosting serverless function executions."""

    def __init__(self, server_id: str, image: str, memory_mb: float):
        self.container_id = f"c{next(_container_ids)}"
        self.server_id = server_id
        self.image = image
        self.memory_mb = memory_mb
        self.state = ContainerState.COLD_STARTING
        self.warm_expiry: float = 0.0
        self.executions = 0
        #: Identifier of the last invocation that ran here — lets a child
        #: confirm it landed in its parent's container (in-memory sharing).
        self.last_invocation_id: Optional[int] = None

    def compatible_with(self, spec: FunctionSpec) -> bool:
        """Warm reuse requires the same image and enough memory."""
        return self.image == spec.image and self.memory_mb >= spec.memory_mb

    def mark_running(self) -> None:
        if self.state is ContainerState.TERMINATED:
            raise RuntimeError(
                f"{self.container_id} is terminated; cannot run")
        self.state = ContainerState.RUNNING

    def mark_warm(self, now: float, keepalive_s: float) -> None:
        if self.state is not ContainerState.RUNNING:
            raise RuntimeError(
                f"{self.container_id} must be running to go warm")
        self.state = ContainerState.WARM
        self.warm_expiry = now + keepalive_s

    def mark_terminated(self) -> None:
        self.state = ContainerState.TERMINATED

    def is_warm(self, now: float) -> bool:
        return (self.state is ContainerState.WARM and
                now < self.warm_expiry)

    def is_expired(self, now: float) -> bool:
        return (self.state is ContainerState.WARM and
                now >= self.warm_expiry)

    def __repr__(self) -> str:
        return (f"<FunctionContainer {self.container_id} {self.image} "
                f"on {self.server_id} {self.state.value}>")
