"""Function and invocation records for the serverless platform.

- :class:`FunctionSpec` — static registration of a serverless action
  (name, memory reservation, runtime image), as registered with OpenWhisk.
- :class:`InvocationRequest` — one activation: the work to do (service
  seconds on one core), payload sizes, and the optional parent invocation
  whose output this function consumes (multi-tier jobs).
- :class:`Invocation` — the completed record with the timestamp trail and
  the latency breakdown the figures aggregate.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Optional

from ..obs import NULL_CONTEXT
from ..telemetry import LatencyBreakdown

__all__ = ["FunctionSpec", "InvocationRequest", "Invocation"]

_invocation_ids = itertools.count()


@dataclass(frozen=True)
class FunctionSpec:
    """A registered serverless action."""

    name: str
    memory_mb: float = 256.0
    runtime: str = "python3"
    #: Runtimes with identical images can share a warm container; different
    #: software dependencies force a cold start (section 4.3 notes a child
    #: may need different dependencies than its parent).
    image: str = "default"

    def __post_init__(self):
        if not self.name:
            raise ValueError("function name must be non-empty")
        if self.memory_mb <= 0:
            raise ValueError("memory reservation must be positive")


@dataclass
class InvocationRequest:
    """One activation of a function."""

    spec: FunctionSpec
    service_s: float
    input_mb: float = 0.0
    output_mb: float = 0.0
    #: Parent invocation whose output this function consumes; drives the
    #: data-sharing path (CouchDB / RPC / in-memory / remote memory).
    parent: Optional["Invocation"] = None
    #: HiveMind hint: the scheduler may place this function in its parent's
    #: container for in-memory data exchange (section 4.3).
    colocate_with_parent: bool = True
    #: Scheduling priority (exposed through the DSL's Schedule directive).
    priority: int = 0
    #: Dedicated container (the DSL's Isolate directive): never reuse a
    #: warm container, never share this one afterwards.
    isolate: bool = False
    #: Back-pointer to this request's live invocation record, filled in by
    #: the platform at invoke time. Lets wrappers (straggler mitigation,
    #: chaos recovery) attribute the request to the server it actually ran
    #: on instead of guessing from global history.
    inflight: Optional["Invocation"] = None
    #: Causal trace handle for this request (``repro.obs``); the falsy
    #: NULL_CONTEXT when tracing is off, so every span site is one branch.
    trace: Any = NULL_CONTEXT

    def __post_init__(self):
        if self.service_s < 0:
            raise ValueError("service time must be non-negative")
        if self.input_mb < 0 or self.output_mb < 0:
            raise ValueError("payload sizes must be non-negative")


@dataclass
class Invocation:
    """The completed (or in-flight) record of one activation."""

    request: InvocationRequest
    invocation_id: int = field(default_factory=lambda: next(_invocation_ids))
    t_arrive: float = 0.0
    t_scheduled: float = 0.0
    t_exec_start: float = 0.0
    t_complete: float = 0.0
    server_id: str = ""
    container_id: str = ""
    cold_start: bool = False
    colocated: bool = False
    failures: int = 0
    #: Times this activation was re-enqueued after its invoker/server
    #: crashed mid-flight (chaos recovery; always 0 in fault-free runs).
    requeues: int = 0
    #: Container instantiation seconds (the Fig 6b "instantiation" slice;
    #: also charged to the breakdown's management component).
    instantiation_s: float = 0.0
    #: Inter-function data exchange seconds (the Fig 6b "data I/O" slice).
    data_share_s: float = 0.0
    breakdown: LatencyBreakdown = field(default_factory=LatencyBreakdown)
    #: Per-invocation child trace context, opened by the platform at
    #: invoke time and closed when the invocation completes.
    trace: Any = NULL_CONTEXT

    @property
    def spec(self) -> FunctionSpec:
        return self.request.spec

    @property
    def latency_s(self) -> float:
        """End-to-end latency inside the cloud (arrival to completion)."""
        return self.t_complete - self.t_arrive

    @property
    def queueing_s(self) -> float:
        return self.t_scheduled - self.t_arrive

    @property
    def execution_s(self) -> float:
        return self.t_complete - self.t_exec_start
