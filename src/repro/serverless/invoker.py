"""The Invoker: per-server function launcher (OpenWhisk's executor).

Each backend server runs one invoker. It maintains a warm-container pool,
pays cold/warm start costs, pins a core for the execution, models
interference from co-located functions, injects faults when an experiment
asks for them, and respawns failed executions (OpenWhisk respawns failed
tasks by default — Fig 5c).
"""

from __future__ import annotations

from typing import Dict, Generator, List, Optional

import numpy as np

from ..cluster import Server
from ..config import ServerlessConstants
from ..sim import Environment, Interrupt
from ..sim.accounting import tally
from ..sim.flags import analytic_net_enabled
from .container import FunctionContainer
from .function import Invocation, InvocationRequest

__all__ = ["ActivationCancelled", "ActivationMessage", "Invoker"]


class ActivationCancelled(Exception):
    """The platform reaped this activation (e.g. a losing straggler
    replica); its ``done`` event fails with this so the waiting caller
    can distinguish a deliberate cancel from a genuine crash."""

    def __init__(self, invocation_id: int):
        super().__init__(f"invocation {invocation_id} cancelled")
        self.invocation_id = invocation_id


class ActivationMessage:
    """One activation handed to an invoker over the Kafka bus.

    Carries the request, the in-flight invocation record, the optional
    container-colocation hint, and the event the controller-side caller
    blocks on until the invoker finishes."""

    def __init__(self, request: InvocationRequest, invocation: Invocation,
                 prefer_container: Optional[FunctionContainer],
                 done):
        self.request = request
        self.invocation = invocation
        self.prefer_container = prefer_container
        self.done = done
        #: Set by :meth:`Invoker.cancel` if the cancel lands before the
        #: handler process has started.
        self.cancelled = False


class Invoker:
    """Launches functions in containers on one server.

    ``rng`` arrives as a draw-ahead :class:`~repro.sim.rng.BufferedStream`
    (see :meth:`ControlPlane` wiring in :mod:`repro.serverless.openwhisk`):
    fault-free runs draw only service/jitter lognormals, which share one
    standard-normal lane. Chaos runs that raise :attr:`fault_rate` mid-run
    add ``random``/``uniform`` draws; the buffer rewinds and degrades to
    scalar passthrough after a few lane switches, keeping the draw
    sequence bit-identical to an unbuffered generator.
    """

    #: How long to back off when the server has no memory for a container.
    MEMORY_RETRY_S = 0.05

    def __init__(self, env: Environment, server: Server,
                 constants: ServerlessConstants,
                 rng: np.random.Generator,
                 fault_rate: float = 0.0,
                 keepalive_s: Optional[float] = None,
                 analytic: Optional[bool] = None):
        if not 0 <= fault_rate < 1:
            raise ValueError("fault rate must be in [0, 1)")
        self.env = env
        self.server = server
        self.constants = constants
        self.rng = rng
        self.fault_rate = fault_rate
        self.keepalive_s = (keepalive_s if keepalive_s is not None
                            else constants.default_keepalive_s)
        self.analytic = analytic_net_enabled(analytic)
        self._warm: Dict[str, List[FunctionContainer]] = {}
        #: Earliest warm-container expiry across every pool (stale-low is
        #: safe: it only costs one wasted scan). Lets _reap_expired exit
        #: in O(1) on the hot take_warm path when nothing can be expired.
        self._warm_min_expiry = float("inf")
        #: Activations asleep waiting for container memory (analytic
        #: path): woken by the server's free-memory hook or by a new
        #: evictable warm container instead of a retry timer.
        self._mem_waiters: List = []
        if self.analytic:
            server.add_free_memory_listener(self._signal_memory)
        #: Machine-health multiplier on service times (thermal throttling,
        #: failing disks, noisy neighbours outside our control): the
        #: straggler source the p90 mitigation targets (section 4.6).
        self.slow_factor = 1.0
        #: Cleared by :meth:`crash` (chaos invoker/server-crash injection).
        self.alive = True
        #: In-flight activations: invocation_id -> (message, handler
        #: process). Registered at handler spawn, removed at handler exit;
        #: :meth:`crash` interrupts them all, :meth:`cancel` one.
        self._active: Dict[int, tuple] = {}
        self.cold_starts = 0
        self.warm_starts = 0
        self.respawns = 0

    # -- chaos hooks -----------------------------------------------------------
    def crash(self) -> list:
        """Kill the invoker daemon: containers die, activations abort.

        Every in-flight handler is interrupted (cause ``"crash"``) —
        cleanup releases its cores and frees its container memory — and
        the warm pool is torn down. Returns the orphaned activation
        messages so the platform can re-enqueue them; their ``done``
        events stay pending until the requeued execution completes.
        """
        self.alive = False
        orphans = []
        for _, (message, process) in sorted(self._active.items()):
            if process.is_alive:
                try:
                    process.interrupt("crash")
                except RuntimeError:
                    # Handler spawned but not yet started: the liveness
                    # guard in _handle makes it a no-op instead.
                    pass
            orphans.append(message)
        self._active.clear()
        for pool in self._warm.values():
            for container in pool:
                container.mark_terminated()
                self.server.free_memory(container.memory_mb)
        self._warm.clear()
        self._warm_min_expiry = float("inf")
        return orphans

    def restore(self) -> None:
        """Reboot complete: start taking activations again."""
        self.alive = True

    def cancel(self, invocation_id: int) -> bool:
        """Reap one in-flight activation (straggler-loser cleanup).

        The handler is interrupted with cause ``"cancel"``; it releases
        its resources and fails its ``done`` event with
        :class:`ActivationCancelled`. Returns False when the activation
        is not executing here (already finished, or still upstream).
        """
        entry = self._active.get(invocation_id)
        if entry is None:
            return False
        message, process = entry
        message.cancelled = True
        if process.is_alive:
            try:
                process.interrupt("cancel")
            except RuntimeError:
                pass  # not yet started; _handle sees `cancelled` and aborts
        return True

    # -- warm pool ----------------------------------------------------------
    def _reap_expired(self) -> None:
        # Every container in a pool shares this invoker's keepalive, so a
        # pool is sorted by expiry (appended at completion time, removals
        # keep the order): only an expired *prefix* can exist, which makes
        # reaping O(expired) instead of a full scan per invocation.
        now = self.env.now
        if now < self._warm_min_expiry:
            return
        for image in [image for image, pool in self._warm.items()
                      if pool and pool[0].is_expired(now)]:
            pool = self._warm[image]
            drop = 0
            for container in pool:
                if not container.is_expired(now):
                    break
                container.mark_terminated()
                self.server.free_memory(container.memory_mb)
                drop += 1
            if drop == len(pool):
                del self._warm[image]
            else:
                del pool[:drop]
        self._warm_min_expiry = min(
            (pool[0].warm_expiry for pool in self._warm.values() if pool),
            default=float("inf"))

    def take_warm(self, request: InvocationRequest,
                  prefer: Optional[FunctionContainer] = None
                  ) -> Optional[FunctionContainer]:
        """Claim a warm container compatible with the request, if any."""
        self._reap_expired()
        pool = self._warm.get(request.spec.image, [])
        if prefer is not None and prefer in pool \
                and prefer.compatible_with(request.spec):
            pool.remove(prefer)
            return prefer
        if pool and pool[0].compatible_with(request.spec):
            # Indexed hit: the image keys the pool and in steady state
            # every container of an image has the same memory class, so
            # the oldest (head) container is the match — no scan.
            return pool.pop(0)
        for container in pool:
            if container.compatible_with(request.spec):
                pool.remove(container)
                return container
        return None

    def has_warm(self, image: str) -> bool:
        self._reap_expired()
        return bool(self._warm.get(image))

    def warm_container_of(self, invocation: Invocation
                          ) -> Optional[FunctionContainer]:
        """The still-warm container a past invocation ran in, if alive."""
        self._reap_expired()
        for pool in self._warm.values():
            for container in pool:
                if container.container_id == invocation.container_id:
                    return container
        return None

    def _evict_one_warm(self) -> bool:
        """Terminate the stalest warm container to free memory."""
        victim: Optional[FunctionContainer] = None
        for pool in self._warm.values():
            for container in pool:
                if victim is None or container.warm_expiry < victim.warm_expiry:
                    victim = container
        if victim is None:
            return False
        self._warm[victim.image].remove(victim)
        if not self._warm[victim.image]:
            del self._warm[victim.image]
        victim.mark_terminated()
        self.server.free_memory(victim.memory_mb)
        return True

    @property
    def warm_count(self) -> int:
        return sum(len(pool) for pool in self._warm.values())

    # -- memory waits --------------------------------------------------------
    def _signal_memory(self) -> None:
        """Wake every sleeping activation: memory state changed."""
        if not self._mem_waiters:
            return
        waiters, self._mem_waiters = self._mem_waiters, []
        now = self.env.now
        for gate in waiters:
            gate.succeed(now)

    def _reserve_container_memory(self, memory_mb: float) -> Generator:
        """Process: claim ``memory_mb``, evicting stale warm containers.

        The legacy path polls every ``MEMORY_RETRY_S``; between memory
        releases and warm-container arrivals those polls are provably
        no-ops (nothing to reserve, nothing to evict), so the analytic
        path sleeps on the release hook and then resumes at the first
        boundary of the legacy poll grid after the signal — the same
        accumulated ``now + 0.05 + 0.05 + ...`` floats, so reservations
        land at identical instants.
        """
        if not self.analytic:
            while not self.server.reserve_memory(memory_mb):
                if not self._evict_one_warm():
                    tally("serverless", 1)
                    yield self.env.timeout(self.MEMORY_RETRY_S)
            return
        boundary = None
        while not self.server.reserve_memory(memory_mb):
            if self._evict_one_warm():
                continue
            if boundary is None:
                boundary = self.env.now
            tally("serverless", 2)
            gate = self.env.event()
            self._mem_waiters.append(gate)
            signal_time = yield gate
            while boundary <= signal_time:
                boundary += self.MEMORY_RETRY_S
            yield self.env.timeout_at(boundary)

    # -- execution ------------------------------------------------------------
    def _cold_start_time(self) -> float:
        median = self.constants.cold_start_median_s
        sigma = self.constants.cold_start_sigma
        return float(self.rng.lognormal(np.log(median), sigma))

    def _interference_factor(self) -> float:
        """Latency inflation from sharing the node with other functions."""
        occupancy = self.server.utilization
        excess = max(0.0, occupancy - 0.5)
        inflation = 1.0 + self.constants.interference_slope * excess
        # Multi-tenant noise: the node also hosts other tenants' functions
        # (serverless gives no machine-type or colocation guarantees) —
        # the variability reserved deployments do not see (Fig 6a).
        jitter = float(self.rng.lognormal(0.0, 0.16))
        return inflation * jitter * self.slow_factor

    def _acquire_container(self, request: InvocationRequest,
                           invocation: Invocation,
                           prefer: Optional[FunctionContainer]) -> Generator:
        container = (None if request.isolate
                     else self.take_warm(request, prefer=prefer))
        try:
            if container is not None:
                start_cost = self.constants.warm_start_s
                self.warm_starts += 1
            else:
                # Cold path: reserve memory (evicting stale warm containers
                # if needed), then pay the Docker instantiation cost.
                yield from self._reserve_container_memory(
                    request.spec.memory_mb)
                container = FunctionContainer(
                    self.server.server_id, request.spec.image,
                    request.spec.memory_mb)
                start_cost = self._cold_start_time()
                self.cold_starts += 1
                invocation.cold_start = True
            tally("serverless", 1)
            yield self.env.timeout(start_cost)
        except Interrupt:
            # Killed mid-start (invoker crash / cancel): the half-built
            # container dies with us; its memory goes back to the server.
            if container is not None:
                container.mark_terminated()
                self.server.free_memory(container.memory_mb)
            raise
        invocation.instantiation_s += start_cost
        invocation.breakdown.charge("management", start_cost)
        container.mark_running()
        return container

    def run(self, request: InvocationRequest, invocation: Invocation,
            prefer_container: Optional[FunctionContainer] = None) -> Generator:
        """Process: execute one activation on this server.

        Fills in the invocation's container/server fields, instantiation
        and execution charges, and handles fault-respawn loops.
        Interrupt-safe: a crash/cancel mid-execution releases the pinned
        cores and frees the container's memory before propagating.
        """
        trace = invocation.trace
        acquire_start = self.env.now
        container = yield from self._acquire_container(
            request, invocation, prefer_container)
        invocation.server_id = self.server.server_id
        invocation.container_id = container.container_id
        invocation.colocated = (
            prefer_container is not None and container is prefer_container)
        if trace:
            trace.emit("cold_start" if invocation.cold_start
                       else "warm_start", "serverless",
                       acquire_start, self.env.now,
                       server=self.server.server_id)

        grant = None
        try:
            while True:
                attempt_start = self.env.now
                tally("serverless", 2)  # core grant + compute timeout
                grant = yield from self.server.acquire_cores(1)
                invocation.t_exec_start = (
                    invocation.t_exec_start or self.env.now)
                service = request.service_s * self._interference_factor()
                faulty = (self.fault_rate > 0 and
                          float(self.rng.random()) < self.fault_rate)
                if faulty:
                    # Fail partway through, release the core, respawn.
                    failed_after = service * float(self.rng.uniform(0.1, 0.9))
                    yield from self.server.compute(grant, failed_after)
                    grant.release()
                    grant = None
                    invocation.failures += 1
                    invocation.breakdown.charge("execution", failed_after)
                    self.respawns += 1
                    if trace:
                        trace.emit("execute_failed", "execution",
                                   attempt_start, self.env.now)
                    continue
                yield from self.server.compute(grant, service)
                grant.release()
                grant = None
                invocation.breakdown.charge("execution", service)
                if trace:
                    trace.emit("execute", "execution",
                               attempt_start, self.env.now)
                break
        except Interrupt:
            if grant is not None:
                grant.release()
            container.mark_terminated()
            self.server.free_memory(container.memory_mb)
            raise

        container.executions += 1
        container.last_invocation_id = invocation.invocation_id
        if request.isolate:
            # Dedicated container (Isolate directive): tear down rather
            # than offering it for reuse.
            container.mark_warm(self.env.now, 0.0)
            container.mark_terminated()
            self.server.free_memory(container.memory_mb)
        else:
            container.mark_warm(self.env.now, self.keepalive_s)
            self._warm.setdefault(container.image, []).append(container)
            if container.warm_expiry < self._warm_min_expiry:
                self._warm_min_expiry = container.warm_expiry
            if self.analytic:
                # A fresh warm container is evictable: wake memory waits.
                self._signal_memory()
        return invocation

    # -- Kafka consumer -------------------------------------------------------
    def start_consumer(self, bus, topic: str) -> None:
        """Begin consuming activations from this invoker's topic.

        OpenWhisk's controller passes function information to the chosen
        invoker via Kafka's publish-subscribe model (section 4.3); each
        consumed activation runs concurrently (containers start in
        parallel) and signals its ``done`` event on completion.
        """
        if self.analytic and hasattr(bus, "subscribe"):
            bus.subscribe(topic, self._spawn_handler)
            return
        self._consumer = self.env.process(self._consume(bus, topic))

    def _spawn_handler(self, message: ActivationMessage) -> None:
        tally("serverless", 1)  # the handler process start
        process = self.env.process(self._handle(message))
        self._active[message.invocation.invocation_id] = (message, process)

    def _consume(self, bus, topic: str) -> Generator:
        while True:
            message = yield from bus.consume(topic)
            tally("serverless", 1)  # the handler process start
            process = self.env.process(self._handle(message))
            self._active[message.invocation.invocation_id] = (
                message, process)

    def _handle(self, message: ActivationMessage) -> Generator:
        iid = message.invocation.invocation_id
        try:
            if message.cancelled:
                message.done.fail(ActivationCancelled(iid))
                return
            if not self.alive:
                # Crashed between Kafka delivery and handler start; crash()
                # already handed the message back for requeueing.
                return
            yield from self.run(
                message.request, message.invocation,
                prefer_container=message.prefer_container)
            message.done.succeed(message.invocation)
        except Interrupt as interrupt:
            if interrupt.cause == "cancel":
                message.done.fail(ActivationCancelled(iid))
            # "crash": leave `done` pending — the platform requeues the
            # activation and the replacement execution will succeed it.
        except BaseException as error:  # surface crashes to the caller
            message.done.fail(error)
        finally:
            self._active.pop(iid, None)
