"""CouchDB model (OpenWhisk's authentication and data-sharing store).

OpenWhisk consults CouchDB for subject authentication on every request and —
because functions may not communicate directly — stores intermediate results
there for dependent functions (sections 2.3, 3.3). The model captures what
the figures depend on:

- a per-operation base latency with a heavy (Pareto) tail, reproducing the
  compaction/contention spikes behind Fig 6c's tall CouchDB whiskers;
- limited effective throughput, so many-MB intermediate objects are slow;
- a single serialized service queue, so concurrent accessors interfere
  (section 4.4: "expensive, especially when many functions try to access
  data concurrently").
"""

from __future__ import annotations

from typing import Generator, Optional

import numpy as np

from ..config import ServerlessConstants
from ..sim import Environment, Resource

__all__ = ["CouchDB"]


class CouchDB:
    """Shared document store with tail-heavy access latency."""

    def __init__(self, env: Environment,
                 constants: Optional[ServerlessConstants] = None,
                 rng: Optional[np.random.Generator] = None,
                 concurrency: int = 8):
        self.env = env
        self.constants = constants or ServerlessConstants()
        self._rng = rng
        self._service = Resource(env, capacity=concurrency)
        self.operations = 0
        self._documents = {}

    def _op_latency(self, megabytes: float) -> float:
        base = (self.constants.couchdb_latency_s +
                megabytes / self.constants.couchdb_mbs)
        if self._rng is None:
            return base
        # Pareto-tailed multiplier, mean ~ alpha/(alpha-1).
        alpha = self.constants.couchdb_tail_alpha
        multiplier = (1.0 + self._rng.pareto(alpha))
        return base * multiplier

    def access(self, megabytes: float = 0.0) -> Generator:
        """Process: one read-or-write of ``megabytes``; returns seconds."""
        if megabytes < 0:
            raise ValueError("size must be non-negative")
        start = self.env.now
        with self._service.request() as grant:
            yield grant
            yield self.env.timeout(self._op_latency(megabytes))
        self.operations += 1
        return self.env.now - start

    def authenticate(self) -> Generator:
        """Process: the per-request subject/auth lookup; returns seconds."""
        start = self.env.now
        with self._service.request() as grant:
            yield grant
            yield self.env.timeout(self.constants.auth_check_s)
        self.operations += 1
        return self.env.now - start

    def store(self, key: str, megabytes: float) -> Generator:
        """Process: persist a document (used by the Persist directive)."""
        took = yield from self.access(megabytes)
        self._documents[key] = megabytes
        return took

    def load(self, key: str) -> Generator:
        """Process: fetch a document; returns its size in MB."""
        if key not in self._documents:
            raise KeyError(f"unknown document {key!r}")
        megabytes = self._documents[key]
        yield from self.access(megabytes)
        return megabytes

    def has_document(self, key: str) -> bool:
        return key in self._documents

    @property
    def document_count(self) -> int:
        return len(self._documents)
