"""CouchDB model (OpenWhisk's authentication and data-sharing store).

OpenWhisk consults CouchDB for subject authentication on every request and —
because functions may not communicate directly — stores intermediate results
there for dependent functions (sections 2.3, 3.3). The model captures what
the figures depend on:

- a per-operation base latency with a heavy (Pareto) tail, reproducing the
  compaction/contention spikes behind Fig 6c's tall CouchDB whiskers;
- limited effective throughput, so many-MB intermediate objects are slow;
- a single serialized service queue, so concurrent accessors interfere
  (section 4.4: "expensive, especially when many functions try to access
  data concurrently").

The concurrency-``k`` FIFO service runs analytically by default: a
``k``-entry min-heap of server-free times yields each operation's grant
instant in O(log k), and one ``timeout_at`` event replaces the legacy
request/grant/timeout/release machinery. CouchDB owns its RNG stream
exclusively and FIFO multi-server grant order equals arrival order, so the
Pareto tail draw can move to arrival time without perturbing the draw
sequence (see DESIGN.md, "Virtual-clock queueing").
``REPRO_ANALYTIC_NET=0`` / ``analytic=False`` restores the legacy path.
"""

from __future__ import annotations

import heapq
from typing import Generator, List, Optional

import numpy as np

from ..config import ServerlessConstants
from ..sim import Environment, Resource
from ..sim.accounting import tally
from ..sim.flags import analytic_net_enabled

__all__ = ["CouchDB"]


class CouchDB:
    """Shared document store with tail-heavy access latency."""

    def __init__(self, env: Environment,
                 constants: Optional[ServerlessConstants] = None,
                 rng: Optional[np.random.Generator] = None,
                 concurrency: int = 8,
                 analytic: Optional[bool] = None):
        self.env = env
        self.constants = constants or ServerlessConstants()
        self._rng = rng
        self.analytic = analytic_net_enabled(analytic)
        if self.analytic:
            #: Virtual clocks: when each of the ``concurrency`` servers
            #: frees up. Lazily grown so an idle store costs nothing.
            self._free: List[float] = [0.0] * concurrency
            heapq.heapify(self._free)
        else:
            self._service = Resource(env, capacity=concurrency)
        self.operations = 0
        self._documents = {}
        #: Chaos outage window: no operation starts service before this
        #: instant. 0.0 (the past) in fault-free runs, where the guard in
        #: :meth:`_serve` never fires.
        self._outage_until = 0.0

    def set_outage(self, until: float) -> None:
        """Refuse service until ``until`` (chaos CouchDB outage window).

        Queued operations are not lost — they stall and drain when the
        store comes back, which is how the real CouchDB behaves across a
        compaction stall or restart."""
        self._outage_until = max(self._outage_until, until)

    def _op_latency(self, megabytes: float) -> float:
        base = (self.constants.couchdb_latency_s +
                megabytes / self.constants.couchdb_mbs)
        if self._rng is None:
            return base
        # Pareto-tailed multiplier, mean ~ alpha/(alpha-1).
        alpha = self.constants.couchdb_tail_alpha
        multiplier = (1.0 + self._rng.pareto(alpha))
        return base * multiplier

    def _serve(self, duration: float) -> Generator:
        """Process: one FIFO pass through the concurrency-k service."""
        if self.analytic:
            tally("serverless", 1)
            free_at = heapq.heappop(self._free)
            grant_at = free_at if free_at > self.env.now else self.env.now
            if grant_at < self._outage_until:  # chaos outage window
                grant_at = self._outage_until
            end = grant_at + duration
            heapq.heappush(self._free, end)
            yield self.env.timeout_at(end)
        else:
            tally("serverless", 2)
            with self._service.request() as grant:
                yield grant
                if self.env.now < self._outage_until:  # chaos outage window
                    tally("serverless", 1)
                    yield self.env.timeout_at(self._outage_until)
                yield self.env.timeout(duration)
        self.operations += 1

    def access(self, megabytes: float = 0.0) -> Generator:
        """Process: one read-or-write of ``megabytes``; returns seconds."""
        if megabytes < 0:
            raise ValueError("size must be non-negative")
        start = self.env.now
        yield from self._serve(self._op_latency(megabytes))
        return self.env.now - start

    def authenticate(self) -> Generator:
        """Process: the per-request subject/auth lookup; returns seconds."""
        start = self.env.now
        yield from self._serve(self.constants.auth_check_s)
        return self.env.now - start

    def store(self, key: str, megabytes: float) -> Generator:
        """Process: persist a document (used by the Persist directive)."""
        took = yield from self.access(megabytes)
        self._documents[key] = megabytes
        return took

    def load(self, key: str) -> Generator:
        """Process: fetch a document; returns its size in MB."""
        if key not in self._documents:
            raise KeyError(f"unknown document {key!r}")
        megabytes = self._documents[key]
        yield from self.access(megabytes)
        return megabytes

    def has_document(self, key: str) -> bool:
        return key in self._documents

    @property
    def document_count(self) -> int:
        return len(self._documents)
