"""Kafka publish-subscribe bus (the Controller-to-Invoker path).

The OpenWhisk controller hands activations to invokers through Kafka topics
(section 4.3). The model is a per-topic FIFO with a fixed publish-to-deliver
hop latency — enough to charge the management pipeline its real cost without
simulating brokers.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Generator, Optional

from ..config import ServerlessConstants
from ..sim import Environment, Store
from ..sim.accounting import tally
from ..sim.flags import analytic_net_enabled

__all__ = ["KafkaBus"]


class KafkaBus:
    """Named topics with a fixed hop latency.

    Topics are unbounded, so on the analytic fast path a publish appends
    its message inline after the hop latency (``Store.put_nowait``)
    instead of paying a put-event round trip; waiting consumers are
    served in exactly the order the blocking put would have produced.
    ``REPRO_ANALYTIC_NET=0`` / ``analytic=False`` restores the blocking
    put."""

    def __init__(self, env: Environment,
                 constants: Optional[ServerlessConstants] = None,
                 analytic: Optional[bool] = None):
        self.env = env
        self.constants = constants or ServerlessConstants()
        self.analytic = analytic_net_enabled(analytic)
        self._topics: Dict[str, Store] = {}
        self._subscribers: Dict[str, Callable[[Any], None]] = {}
        self.published = 0
        #: Chaos outage window: publishes stall until this instant (the
        #: broker is unreachable; producers buffer and retry). 0.0 in
        #: fault-free runs, where the guard in :meth:`publish` never fires.
        self._outage_until = 0.0

    def set_outage(self, until: float) -> None:
        """Stall publishes until ``until`` (chaos Kafka outage window)."""
        self._outage_until = max(self._outage_until, until)

    def topic(self, name: str) -> Store:
        found = self._topics.get(name)
        if found is None:
            found = Store(self.env)
            self._topics[name] = found
        return found

    def subscribe(self, topic: str, callback: Callable[[Any], None]) -> None:
        """Register a direct-delivery consumer for ``topic``.

        A publish then hands the message straight to ``callback`` at
        delivery time (after the hop latency) instead of waking a
        blocking-consume loop through the topic store — one fewer kernel
        event per activation, same delivery instant and FIFO order."""
        if topic in self._subscribers:
            raise ValueError(f"topic {topic!r} already has a subscriber")
        self._subscribers[topic] = callback

    def publish(self, topic: str, message: Any) -> Generator:
        """Process: publish after the bus hop latency."""
        if self.env.now < self._outage_until:  # chaos outage window
            tally("serverless", 1)
            yield self.env.timeout_at(self._outage_until)
        yield self.env.timeout(self.constants.kafka_hop_s)
        callback = self._subscribers.get(topic)
        if callback is not None:
            tally("serverless", 1)
            callback(message)
            self.published += 1
            return
        store = self.topic(topic)
        if self.analytic and store.put_nowait(message):
            tally("serverless", 1)
        else:
            tally("serverless", 2)
            yield store.put(message)
        self.published += 1

    def consume(self, topic: str) -> Generator:
        """Process: blocking consume of the next message on ``topic``."""
        tally("serverless", 1)
        message = yield self.topic(topic).get()
        return message

    def depth(self, topic: str) -> int:
        return len(self.topic(topic))
