"""Kafka publish-subscribe bus (the Controller-to-Invoker path).

The OpenWhisk controller hands activations to invokers through Kafka topics
(section 4.3). The model is a per-topic FIFO with a fixed publish-to-deliver
hop latency — enough to charge the management pipeline its real cost without
simulating brokers.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, Optional

from ..config import ServerlessConstants
from ..sim import Environment, Store

__all__ = ["KafkaBus"]


class KafkaBus:
    """Named topics with a fixed hop latency."""

    def __init__(self, env: Environment,
                 constants: Optional[ServerlessConstants] = None):
        self.env = env
        self.constants = constants or ServerlessConstants()
        self._topics: Dict[str, Store] = {}
        self.published = 0

    def topic(self, name: str) -> Store:
        found = self._topics.get(name)
        if found is None:
            found = Store(self.env)
            self._topics[name] = found
        return found

    def publish(self, topic: str, message: Any) -> Generator:
        """Process: publish after the bus hop latency."""
        yield self.env.timeout(self.constants.kafka_hop_s)
        yield self.topic(topic).put(message)
        self.published += 1

    def consume(self, topic: str) -> Generator:
        """Process: blocking consume of the next message on ``topic``."""
        message = yield self.topic(topic).get()
        return message

    def depth(self, topic: str) -> int:
        return len(self.topic(topic))
