"""Cloud-shard gateway for the sharded scenario runtime.

In sharded execution (:mod:`repro.sim.shard`) the swarm's edge cells run
in their own kernels and the cloud tier — the OpenWhisk platform, the
backend cluster and its network, CouchDB persistence, straggler
mitigation — runs here, in exactly one :class:`CloudGateway`. Edge cells
never observe cloud results mid-flight (the scenario graphs have no
cloud→edge data edge; only the final synchronization barrier joins the
tiers), so the gateway can lag the cells by a full barrier window and
still serve every message at its exact arrival timestamp.

Determinism: the gateway is fed the *merged* cloud-bound message stream
in canonical ``(arrival_s, cell, seq)`` order, each message carrying the
service-time draws its cell already made from its own streams. The
gateway adds randomness only from its own private stream namespace
(``seed + GATEWAY_SEED_OFFSET``). Since neither the merged stream nor
the gateway's seeds depend on how cells were grouped into shards, the
cloud side is byte-identical at any shard count.

When the cloud tier is itself decomposed (``REPRO_CLOUD_SHARDS``), the
per-region analytic model in :mod:`repro.serverless.region` replaces
this gateway entirely; hybrid exact/mean-field runs always take that
path, so synthetic background calls must never reach a
:class:`CloudGateway` — :meth:`CloudGateway.feed` enforces it.
"""

from __future__ import annotations

import math
from typing import Dict, Generator, List, Optional

from ..cluster import Cluster
from ..config import PaperConstants
from ..core import StragglerMitigator
from ..hardware import RemoteMemoryFabric
from ..network import build_fabric
from ..sim import Environment, RandomStreams
from ..telemetry import LatencyBreakdown
from .function import InvocationRequest
from .openwhisk import OpenWhiskPlatform

__all__ = ["CloudGateway", "GATEWAY_SEED_OFFSET"]

#: Seed offset separating the gateway's stream namespace from the cells'
#: (cells use ``seed + 1000 * cell_index``; the offset keeps the gateway
#: clear of any realistic cell count).
GATEWAY_SEED_OFFSET = 271_828


class CloudGateway:
    """The cloud half of a sharded scenario run.

    ``config`` is the :class:`~repro.platforms.base.PlatformConfig` under
    test (must be cloud-backed), ``constants`` the *globally scaled*
    :class:`~repro.config.PaperConstants`, ``n_devices`` the whole-swarm
    device count (drives HiveMind's controller scale-out exactly as the
    unsharded runner's ``_n_controllers`` does).
    """

    def __init__(self, config, scenario, constants: PaperConstants,
                 n_devices: int, seed: int = 0,
                 analytic: Optional[bool] = None, serving=None):
        if config.execution not in ("cloud_faas", "hybrid"):
            raise ValueError(
                "CloudGateway requires a cloud-backed platform "
                f"(got execution={config.execution!r})")
        self.config = config
        self.scenario = scenario
        env = self.env = Environment()
        streams = self.streams = RandomStreams(seed + GATEWAY_SEED_OFFSET)
        cluster = Cluster(env, constants.cluster)
        fabric = build_fabric(env, constants, streams, analytic=analytic)
        remote_memory = (RemoteMemoryFabric(env, constants.accel)
                         if config.remote_mem else None)
        n_controllers = config.n_controllers
        if config.scheduler == "hivemind":
            n_controllers = max(n_controllers, math.ceil(n_devices / 64))
        self.platform = OpenWhiskPlatform(
            env, cluster, streams,
            constants=constants.serverless,
            scheduler=config.scheduler,
            sharing=config.sharing,
            keepalive_s=config.container_keepalive_s,
            n_controllers=n_controllers,
            cluster_network=fabric.cluster,
            remote_memory=remote_memory,
            analytic=analytic)
        self.mitigator = (StragglerMitigator(env, self.platform,
                                             constants.control)
                          if config.straggler_mitigation else None)
        self.recognition_spec = scenario.recognition.function_spec()
        self.dedup_spec = (scenario.dedup.function_spec()
                           if scenario.dedup is not None else None)
        _, directives = scenario.dsl_graph()
        self._persisted_tasks = set(directives.persisted)
        self.persisted_documents = 0
        self.completions = 0
        self.last_completion_s = 0.0
        self.background_completions = 0
        self._outstanding = 0
        self._idle_event = None
        #: Open-loop serving stack (:class:`repro.serving.ServingPolicy`).
        #: On the kernel path only the admission gate applies — the
        #: monolithic cluster has no per-region invoker pool to
        #: autoscale; elastic serving runs use the regional tier.
        self._serving = serving
        self.shed_calls = 0

    # -- feeding --------------------------------------------------------
    def feed(self, calls) -> None:
        """Register cloud-bound messages (one barrier window's worth).

        ``calls`` must already be in canonical ``(arrival_s, cell, seq)``
        order and must all have ``arrival_s >= self.env.now`` — i.e. feed
        a window's batch *before* advancing the gateway past it.
        """
        for call in calls:
            if call.arrival_s < self.env.now:
                raise RuntimeError(
                    f"late cloud message: arrival {call.arrival_s:.6f} < "
                    f"gateway time {self.env.now:.6f} (barrier protocol "
                    "violated)")
            if (getattr(call, "synthetic", False)
                    and not (getattr(call, "tenant", None) is not None
                             and self._serving is not None)):
                raise RuntimeError(
                    "synthetic mean-field call fed to the monolithic "
                    "CloudGateway; hybrid runs must use the regional "
                    "cloud tier (cloud_shards >= 1)")
            self._outstanding += 1
            self.env.process(self._serve(call))

    def _invoke(self, request: InvocationRequest) -> Generator:
        if self.mitigator is not None:
            result = yield from self.mitigator.invoke(request)
        else:
            result = yield from self.platform.invoke(request)
        return result

    def _persist(self, task_name: str, key: str,
                 megabytes: float) -> Generator:
        if task_name not in self._persisted_tasks:
            return
        yield from self.platform.couchdb.store(key, megabytes)
        self.persisted_documents += 1

    def _serve(self, call) -> Generator:
        yield self.env.timeout_at(call.arrival_s)
        if self._serving is not None:
            # Admission at arrival time, on the live in-flight count
            # (this generator is one of the ``_outstanding``). Swarm
            # calls (no tenant) always pass; shed calls complete
            # nowhere — no pipeline stages run.
            backlog = self._outstanding - 1
            self._serving.observe(self.env.now, backlog)
            tenant = getattr(call, "tenant", None)
            if tenant is not None and not self._serving.admit(
                    self.env.now, tenant, getattr(call, "weight", 1.0),
                    backlog, 0.0):
                call.shed = True
                call.completion_s = None
                self.shed_calls += 1
                self._outstanding -= 1
                if self._outstanding == 0 and self._idle_event is not None:
                    event, self._idle_event = self._idle_event, None
                    event.succeed()
                return
        breakdown = LatencyBreakdown()
        try:
            parent = None
            if call.recognition_s is not None:
                request = InvocationRequest(
                    spec=self.recognition_spec,
                    service_s=call.recognition_s,
                    input_mb=call.input_mb, output_mb=call.output_mb)
                parent = yield from self._invoke(request)
                breakdown.charge("management",
                                 parent.breakdown.management)
                breakdown.charge("data_io", parent.breakdown.data_io)
                breakdown.charge("execution", parent.breakdown.execution)
                yield from self._persist(
                    "recognition", f"rec-{parent.invocation_id}",
                    call.output_mb)
            if call.dedup_s is not None and self.dedup_spec is not None:
                request = InvocationRequest(
                    spec=self.dedup_spec, service_s=call.dedup_s,
                    input_mb=(parent.request.output_mb
                              if parent is not None else call.input_mb),
                    output_mb=0.05, parent=parent)
                invocation = yield from self._invoke(request)
                breakdown.charge("management",
                                 invocation.breakdown.management)
                breakdown.charge("data_io",
                                 invocation.breakdown.data_io)
                breakdown.charge("execution",
                                 invocation.breakdown.execution)
                yield from self._persist(
                    "aggregate", f"agg-{invocation.invocation_id}", 0.05)
            call.completion_s = self.env.now
            call.cloud_breakdown = breakdown.as_dict()
            if getattr(call, "synthetic", False):
                self.background_completions += 1
            else:
                self.completions += 1
                self.last_completion_s = max(self.last_completion_s,
                                             self.env.now)
        finally:
            self._outstanding -= 1
            if self._outstanding == 0 and self._idle_event is not None:
                event, self._idle_event = self._idle_event, None
                event.succeed()

    # -- stepping -------------------------------------------------------
    @property
    def outstanding(self) -> int:
        """Messages fed but not yet completed."""
        return self._outstanding

    def advance_to(self, until: float) -> None:
        """Dispatch the cloud kernel up to simulated time ``until``."""
        if until > self.env.now:
            self.env.run(until=until)

    def drain(self) -> float:
        """Run until every fed message has completed; returns the time of
        the last completion (the cloud tier's contribution to the global
        makespan)."""
        while self._outstanding > 0:
            self._idle_event = self.env.event()
            self.env.run(until=self._idle_event)
        return self.last_completion_s

    @property
    def cold_starts(self) -> int:
        return self.platform.cold_starts
