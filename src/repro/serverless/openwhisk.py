"""The assembled serverless platform (OpenWhisk emulation).

Ties together the front end, CouchDB, the controller, Kafka, per-server
invokers, a placement policy, and a data-sharing protocol into the pipeline
the paper describes (section 2.3): an HTTP request hits the NGINX front end,
the controller authenticates against CouchDB and selects an invoker, the
activation travels over Kafka, and the invoker instantiates the function in
a Docker container.

:class:`OpenWhiskPlatform.invoke` is the single entry point; it returns a
completed :class:`~repro.serverless.function.Invocation` whose breakdown
carries the management / data-I/O / execution split of Figs 3a, 6b and 12.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Generator, List, Optional, Tuple

from ..cluster import Cluster
from ..config import ServerlessConstants
from ..hardware.remote_memory import RemoteMemoryFabric
from ..network.rpc import SoftwareClusterRpc
from ..network.switch import ClusterNetwork
from ..sim.accounting import tally
from ..sim.flags import analytic_net_enabled
from ..sim import Environment, NullTracer, RandomStreams, Resource
from .couchdb import CouchDB
from .datasharing import (
    CouchDBSharing,
    InMemorySharing,
    RemoteMemorySharing,
    RpcSharing,
)
from .function import Invocation, InvocationRequest
from .invoker import ActivationMessage, Invoker
from .kafka import KafkaBus
from .scheduler import HiveMindScheduler, OpenWhiskScheduler, Placement

__all__ = ["OpenWhiskPlatform"]

SHARING_PROTOCOLS = ("couchdb", "rpc", "remote_memory")


class OpenWhiskPlatform:
    """A serverless cloud on top of a :class:`~repro.cluster.Cluster`."""

    def __init__(self, env: Environment, cluster: Cluster,
                 streams: RandomStreams,
                 constants: Optional[ServerlessConstants] = None,
                 scheduler: str = "openwhisk",
                 sharing: str = "couchdb",
                 fault_rate: float = 0.0,
                 keepalive_s: Optional[float] = None,
                 n_controllers: int = 1,
                 cluster_network: Optional[ClusterNetwork] = None,
                 remote_memory: Optional[RemoteMemoryFabric] = None,
                 tracer=None,
                 analytic: Optional[bool] = None):
        if sharing not in SHARING_PROTOCOLS:
            raise ValueError(f"unknown sharing protocol {sharing!r}")
        if n_controllers <= 0:
            raise ValueError("need at least one controller")
        self.env = env
        self.cluster = cluster
        self.constants = constants or ServerlessConstants()
        # Draw-ahead buffers (see repro.sim.rng): CouchDB owns a pure
        # Pareto-tail lane; each invoker's stream is a pure lognormal
        # (standard-normal) lane while fault injection is off, and the
        # wrapper's rewind-and-replay keeps the sequence exact if chaos
        # flips fault_rate mid-run. REPRO_BATCHED_RNG=0 restores raw
        # generators.
        self.couchdb = CouchDB(env, self.constants,
                               rng=streams.buffered("serverless.couchdb"),
                               analytic=analytic)
        self.kafka = KafkaBus(env, self.constants, analytic=analytic)
        self.invokers: List[Invoker] = [
            Invoker(env, server, self.constants,
                    rng=streams.buffered(f"serverless.invoker.{server_id}"),
                    fault_rate=fault_rate, keepalive_s=keepalive_s,
                    analytic=analytic)
            for server_id, server in sorted(cluster.servers.items())
        ]
        # Each invoker consumes its own Kafka topic (section 4.3).
        for invoker in self.invokers:
            invoker.start_consumer(
                self.kafka, self._topic_of(invoker))
        if scheduler == "hivemind":
            self.scheduler = HiveMindScheduler(self.invokers)
        elif scheduler == "openwhisk":
            self.scheduler = OpenWhiskScheduler(self.invokers)
        else:
            raise ValueError(f"unknown scheduler {scheduler!r}")
        #: Shared-state controller capacity: HiveMind can run several
        #: schedulers with global visibility (section 4.3); stock OpenWhisk
        #: has one. This is the centralized-scalability bottleneck of Fig 1.
        #: The hold time is fixed, so the analytic path replaces the
        #: Resource with a k-entry min-heap of controller-free times
        #: (grant order = arrival order either way).
        self.analytic = analytic_net_enabled(analytic)
        if self.analytic:
            self._controller_free = [0.0] * n_controllers
            heapq.heapify(self._controller_free)
        else:
            self._controller = Resource(env, capacity=n_controllers)
        #: Admission control (the platform-wide in-flight cap). The hold
        #: spans the whole activation, so this cannot become a virtual
        #: clock; instead the analytic path keeps an integer occupancy and
        #: only materializes an event for admissions that actually wait.
        if self.analytic:
            self._admitted = 0
            self._adm_waiters: deque = deque()
        else:
            self._concurrency = Resource(
                env, capacity=self.constants.concurrency_limit)
        self.sharing_name = sharing
        self._sharing_couchdb = CouchDBSharing(env, self.couchdb,
                                               self.constants)
        self._sharing_inmem = InMemorySharing(env, self.constants)
        self._sharing_rpc = (
            RpcSharing(env, SoftwareClusterRpc(env, cluster_network),
                       self.constants)
            if cluster_network is not None else None)
        self._sharing_remote = (
            RemoteMemorySharing(env, remote_memory)
            if remote_memory is not None else None)
        self.invocations: List[Invocation] = []
        #: Optional observability hook: every completed activation emits a
        #: trace record (category "invocation") with its timing split.
        self.tracer = tracer if tracer is not None else NullTracer()
        self.active_tasks = 0
        #: (time, active_count) samples, appended on every change (Fig 5c).
        self.active_samples: List[Tuple[float, int]] = [(0.0, 0)]
        self._invoker_by_server = {
            invoker.server.server_id: invoker for invoker in self.invokers}
        #: Chaos wiring (all empty/None in fault-free runs, where they add
        #: no events): completion observers, the resilience recovery log,
        #: and requeue actions awaiting their activation's completion.
        self._completion_listeners: List = []
        self.recovery_log = None
        self._pending_recovery = {}
        self.requeues = 0
        self.cancellations = 0

    @staticmethod
    def _topic_of(invoker: Invoker) -> str:
        return f"invoker-{invoker.server.server_id}"

    # -- chaos: crash, recover, cancel ----------------------------------------
    def invoker_of(self, server_id: str) -> Invoker:
        found = self._invoker_by_server.get(server_id)
        if found is None:
            raise KeyError(f"no invoker on server {server_id!r}")
        return found

    def add_completion_listener(self, listener) -> None:
        """``listener(invocation)`` fires on every finished activation."""
        self._completion_listeners.append(listener)

    def crash_server(self, server_id: str) -> int:
        """Hard server crash: cores, memory, containers, invoker all die.

        In-flight activations are interrupted and re-enqueued through the
        scheduler onto surviving servers; returns how many were requeued.
        """
        invoker = self.invoker_of(server_id)
        invoker.server.fail()
        return self._crash_and_requeue(invoker)

    def crash_invoker(self, server_id: str) -> int:
        """Invoker-daemon crash: the server stays up but its executor and
        containers die; in-flight activations are re-enqueued."""
        return self._crash_and_requeue(self.invoker_of(server_id))

    def restore_server(self, server_id: str) -> None:
        invoker = self.invoker_of(server_id)
        invoker.server.restore()
        invoker.restore()

    def restore_invoker(self, server_id: str) -> None:
        self.invoker_of(server_id).restore()

    def _crash_and_requeue(self, invoker: Invoker) -> int:
        orphans = invoker.crash()
        for message in orphans:
            self._requeue(message)
        return len(orphans)

    def _requeue(self, message: ActivationMessage) -> None:
        """Re-enqueue a crash-orphaned activation on a healthy invoker."""
        invocation = message.invocation
        invocation.requeues += 1
        self.requeues += 1
        if invocation.trace:
            invocation.trace.emit("requeue", "serverless",
                                  self.env.now, self.env.now)
        if self.recovery_log is not None:
            self._pending_recovery[invocation.invocation_id] = \
                self.recovery_log.record(
                    "requeue", f"invocation {invocation.invocation_id}")
        self.env.process(self._republish(message))

    def _republish(self, message: ActivationMessage) -> Generator:
        # Fresh placement: the scheduler skips dead invokers. The original
        # container hint is moot — it died with the old invoker.
        placement = self.scheduler.place(message.request)
        message.prefer_container = placement.container
        yield from self.kafka.publish(
            self._topic_of(placement.invoker), message)

    def cancel_invocation(self, invocation: Invocation) -> bool:
        """Reap an executing activation (straggler-loser cleanup).

        Best-effort: returns False when the activation is not currently
        executing on its invoker (still upstream in the pipeline, or
        already finished) — then it simply runs out on its own.
        """
        if not invocation.server_id:
            return False
        invoker = self._invoker_by_server.get(invocation.server_id)
        if invoker is None:
            return False
        cancelled = invoker.cancel(invocation.invocation_id)
        if cancelled:
            self.cancellations += 1
        return cancelled

    # -- bookkeeping ----------------------------------------------------------
    def _task_started(self) -> None:
        self.active_tasks += 1
        self.active_samples.append((self.env.now, self.active_tasks))

    def _task_finished(self) -> None:
        self.active_tasks -= 1
        self.active_samples.append((self.env.now, self.active_tasks))

    @property
    def cold_starts(self) -> int:
        return sum(inv.cold_starts for inv in self.invokers)

    @property
    def warm_starts(self) -> int:
        return sum(inv.warm_starts for inv in self.invokers)

    @property
    def respawns(self) -> int:
        return sum(inv.respawns for inv in self.invokers)

    # -- data sharing -----------------------------------------------------------
    def _select_sharing(self, colocated: bool):
        if colocated:
            return self._sharing_inmem
        if self.sharing_name == "rpc":
            if self._sharing_rpc is None:
                raise RuntimeError(
                    "RPC sharing requires a cluster network")
            return self._sharing_rpc
        if self.sharing_name == "remote_memory":
            if self._sharing_remote is None:
                raise RuntimeError(
                    "remote-memory sharing requires an FPGA fabric")
            return self._sharing_remote
        return self._sharing_couchdb

    def _share_parent_output(self, request: InvocationRequest,
                             invocation: Invocation,
                             placement: Placement) -> Generator:
        parent = request.parent
        if parent is None or parent.request.output_mb == 0:
            return
        colocated = placement.container is not None
        protocol = self._select_sharing(colocated)
        dst = placement.invoker.server.server_id
        src = dst if colocated else (parent.server_id or dst)
        took = yield from protocol.share(src, dst,
                                         parent.request.output_mb)
        invocation.data_share_s += took
        invocation.breakdown.charge("data_io", took)

    # -- the activation pipeline -----------------------------------------------
    def invoke(self, request: InvocationRequest) -> Generator:
        """Process: run one activation end to end; returns the Invocation."""
        invocation = Invocation(request=request, t_arrive=self.env.now)
        request.inflight = invocation
        if request.trace:
            invocation.trace = request.trace.span(
                "invocation", "serverless", self.env.now,
                function=request.spec.name)
        if self.analytic:
            result = yield from self._invoke_admitted(request, invocation)
            return result
        with self._concurrency.request() as admitted:
            yield admitted
            self._task_started()
            try:
                yield from self._pipeline(request, invocation)
            finally:
                self._task_finished()
        self._finish_invocation(invocation)
        return invocation

    def _pipeline(self, request: InvocationRequest,
                  invocation: Invocation) -> Generator:
        """Process: the admitted activation pipeline (front end through
        completion), shared by the legacy and analytic admission paths."""
        trace = invocation.trace
        # Front end + auth check against CouchDB.
        front_start = self.env.now
        yield self.env.timeout(self.constants.frontend_latency_s)
        auth_start = self.env.now
        auth_s = yield from self.couchdb.authenticate()
        invocation.breakdown.charge(
            "management", self.constants.frontend_latency_s + auth_s)
        if trace:
            trace.emit("frontend", "serverless", front_start, auth_start)
            trace.emit("couchdb_auth", "data_io", auth_start, self.env.now)
        # Controller: queue for a scheduler slot, decide placement.
        queue_start = self.env.now
        hold = (self.constants.controller_decision_s +
                self.constants.controller_service_s)
        if self.analytic:
            tally("serverless", 1)
            free_at = heapq.heappop(self._controller_free)
            grant_at = free_at if free_at > self.env.now else self.env.now
            end = grant_at + hold
            heapq.heappush(self._controller_free, end)
            yield self.env.timeout_at(end)
        else:
            tally("serverless", 2)
            with self._controller.request() as slot:
                yield slot
                yield self.env.timeout(hold)
        placement = self.scheduler.place(request)
        invocation.breakdown.charge(
            "management", self.env.now - queue_start)
        if trace:
            trace.emit("controller", "serverless", queue_start,
                       self.env.now)
        # Fetch the parent's output (protocol depends on placement).
        share_start = self.env.now
        yield from self._share_parent_output(request, invocation, placement)
        if trace and self.env.now > share_start:
            trace.emit("data_share", "data_io", share_start, self.env.now,
                       protocol=self.sharing_name)
        # Activation travels over Kafka to the chosen invoker's topic; its
        # consumer instantiates and executes, and the caller blocks on the
        # completion event.
        kafka_start = self.env.now
        done = self.env.event()
        message = ActivationMessage(
            request, invocation, placement.container, done)
        yield from self.kafka.publish(
            self._topic_of(placement.invoker), message)
        invocation.breakdown.charge(
            "management", self.env.now - kafka_start)
        if trace:
            trace.emit("kafka", "serverless", kafka_start, self.env.now)
        invocation.t_scheduled = self.env.now
        yield done
        invocation.t_complete = self.env.now

    def _invoke_admitted(self, request: InvocationRequest,
                         invocation: Invocation) -> Generator:
        """Analytic admission: claim a slot inline when one is free; park
        on a gate (granted FIFO at release time, exactly when the legacy
        Resource would grant) otherwise."""
        if self._admitted < self.constants.concurrency_limit:
            self._admitted += 1
        else:
            tally("serverless", 1)
            gate = self.env.event()
            self._adm_waiters.append(gate)
            yield gate
        self._task_started()
        try:
            yield from self._pipeline(request, invocation)
        finally:
            self._task_finished()
            if self._adm_waiters:
                self._adm_waiters.popleft().succeed(None)
            else:
                self._admitted -= 1
        self._finish_invocation(invocation)
        return invocation

    def _finish_invocation(self, invocation: Invocation) -> None:
        self.invocations.append(invocation)
        for listener in self._completion_listeners:
            listener(invocation)
        if self._pending_recovery:
            action = self._pending_recovery.pop(
                invocation.invocation_id, None)
            if action is not None:
                self.recovery_log.complete(action)
        self.tracer.emit(
            self.env.now, "invocation",
            function=invocation.spec.name,
            server=invocation.server_id,
            latency_s=invocation.latency_s,
            cold=invocation.cold_start,
            colocated=invocation.colocated,
            failures=invocation.failures)
        invocation.trace.close(
            invocation.t_complete,
            server=invocation.server_id, cold=invocation.cold_start,
            requeues=invocation.requeues)
        return invocation

    def invoke_parallel(self, request: InvocationRequest,
                        ways: int) -> Generator:
        """Process: fan one task out across ``ways`` functions (Fig 5a).

        The task's work and payload divide evenly; the task completes when
        every shard does. Returns the list of shard invocations.
        """
        if ways <= 0:
            raise ValueError("parallelism must be positive")
        if ways == 1:
            single = yield from self.invoke(request)
            return [single]
        shard = InvocationRequest(
            spec=request.spec,
            service_s=request.service_s / ways,
            input_mb=request.input_mb / ways,
            output_mb=request.output_mb / ways,
            parent=request.parent,
            colocate_with_parent=request.colocate_with_parent,
            priority=request.priority,
        )
        shards = [self.env.process(self.invoke(InvocationRequest(
            spec=shard.spec, service_s=shard.service_s,
            input_mb=shard.input_mb, output_mb=shard.output_mb,
            parent=shard.parent,
            colocate_with_parent=shard.colocate_with_parent,
            priority=shard.priority,
            trace=request.trace))) for _ in range(ways)]
        results = yield self.env.all_of(shards)
        return list(results.values())
