"""Function placement policies.

The base :class:`OpenWhiskScheduler` reproduces the stock behaviour: prefer
an invoker with a compatible warm container (OpenWhisk's home-invoker
affinity), otherwise the least-loaded healthy server. HiveMind's scheduler
(:class:`HiveMindScheduler`, used by :mod:`repro.core`) adds the two
optimizations of section 4.3:

1. place a child function in its parent's still-live container for
   in-memory data exchange;
2. reuse idling containers before starting new ones (the base scheduler
   already benefits from warm pools; HiveMind additionally steers requests
   toward them deliberately), while never letting two containers share a
   logical core.
"""

from __future__ import annotations

from typing import List, Optional

from .container import FunctionContainer
from .function import Invocation, InvocationRequest
from .invoker import Invoker

__all__ = ["Placement", "OpenWhiskScheduler", "HiveMindScheduler"]


class Placement:
    """A scheduling decision: which invoker, optionally which container."""

    def __init__(self, invoker: Invoker,
                 container: Optional[FunctionContainer] = None):
        self.invoker = invoker
        self.container = container


class OpenWhiskScheduler:
    """Stock placement: warm-pool affinity, then least-loaded."""

    name = "openwhisk"

    def __init__(self, invokers: List[Invoker]):
        if not invokers:
            raise ValueError("scheduler needs at least one invoker")
        self.invokers = list(invokers)
        self._rotation = 0

    def _healthy(self) -> List[Invoker]:
        """Schedulable invokers: alive first, then probation-free.

        Dead invokers/servers (chaos crashes) are never candidates while
        any peer survives; probation only thins the alive set. With the
        whole cluster down we fall back to everyone — the activation
        queues rather than crashing the scheduler, exactly like a real
        controller publishing into a dead invoker's topic.
        """
        alive = [inv for inv in self.invokers
                 if inv.alive and inv.server.alive]
        candidates = alive or self.invokers
        healthy = [inv for inv in candidates
                   if not inv.server.on_probation]
        return healthy or candidates

    def _least_loaded(self, candidates: List[Invoker]) -> Invoker:
        """Lowest-utilization invoker; ties rotate (OpenWhisk's hashing
        spreads actions across invokers rather than piling onto one)."""
        best = min(inv.server.utilization for inv in candidates)
        tied = [inv for inv in candidates
                if inv.server.utilization == best]
        chosen = tied[self._rotation % len(tied)]
        self._rotation += 1
        return chosen

    def place(self, request: InvocationRequest) -> Placement:
        candidates = self._healthy()
        for invoker in candidates:
            if invoker.has_warm(request.spec.image) and \
                    invoker.server.utilization < 1.0:
                return Placement(invoker)
        return Placement(self._least_loaded(candidates))


class HiveMindScheduler(OpenWhiskScheduler):
    """HiveMind's serverless scheduler (section 4.3)."""

    name = "hivemind"

    def place(self, request: InvocationRequest) -> Placement:
        # Optimization 1: child into the parent's container when possible
        # (never for isolated requests — they demand a dedicated container).
        parent = request.parent
        if parent is not None and request.colocate_with_parent and \
                not request.isolate:
            invoker = self._invoker_for(parent.server_id)
            if invoker is not None and invoker.alive and \
                    invoker.server.alive and not invoker.server.on_probation:
                container = invoker.warm_container_of(parent)
                if container is not None and \
                        container.compatible_with(request.spec):
                    return Placement(invoker, container=container)
        # Optimization 2: prefer idling containers anywhere, then load.
        return super().place(request)

    def _invoker_for(self, server_id: str) -> Optional[Invoker]:
        for invoker in self.invokers:
            if invoker.server.server_id == server_id:
                return invoker
        return None
