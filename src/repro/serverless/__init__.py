"""Serverless platform emulation (Apache OpenWhisk-style)."""

from .container import ContainerState, FunctionContainer
from .couchdb import CouchDB
from .datasharing import (
    CouchDBSharing,
    InMemorySharing,
    RemoteMemorySharing,
    RpcSharing,
    SharingProtocol,
)
from .function import FunctionSpec, Invocation, InvocationRequest
from .invoker import ActivationCancelled, Invoker
from .kafka import KafkaBus
from .openwhisk import OpenWhiskPlatform
from .region import RegionGateway, region_server_count
from .scheduler import HiveMindScheduler, OpenWhiskScheduler, Placement

__all__ = [
    "FunctionSpec",
    "InvocationRequest",
    "Invocation",
    "FunctionContainer",
    "ContainerState",
    "CouchDB",
    "KafkaBus",
    "ActivationCancelled",
    "Invoker",
    "OpenWhiskScheduler",
    "HiveMindScheduler",
    "Placement",
    "OpenWhiskPlatform",
    "RegionGateway",
    "region_server_count",
    "SharingProtocol",
    "CouchDBSharing",
    "RpcSharing",
    "InMemorySharing",
    "RemoteMemorySharing",
]
