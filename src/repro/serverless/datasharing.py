"""Data-sharing protocols between dependent functions (Fig 6c, section 4.4).

OpenWhisk (and commercial FaaS) forbid direct function communication; a
child reaches its parent's output through a third party. The paper compares
four paths, all implemented here behind one interface:

- :class:`CouchDBSharing` — the OpenWhisk default: a controller round trip
  for the database handle, a write by the parent, a read by the child.
- :class:`RpcSharing` — direct RPC between the two containers' servers
  (breaks the location-transparency rule; measured in Fig 6c for contrast).
- :class:`InMemorySharing` — child placed in the parent's live container;
  data never leaves the address space.
- :class:`RemoteMemorySharing` — HiveMind's FPGA fabric: microsecond-scale
  virtualized object access that preserves location transparency.

Each ``share`` coroutine returns the seconds spent, which the platform
charges to the invocation's ``data_io`` component.
"""

from __future__ import annotations

from typing import Generator, Optional, Protocol


from ..config import ServerlessConstants
from ..hardware.remote_memory import RemoteMemoryFabric
from ..network.rpc import SoftwareClusterRpc
from ..sim import Environment
from .couchdb import CouchDB

__all__ = [
    "SharingProtocol",
    "CouchDBSharing",
    "RpcSharing",
    "InMemorySharing",
    "RemoteMemorySharing",
]


class SharingProtocol(Protocol):
    """Common interface: move ``megabytes`` from parent to child."""

    name: str

    def share(self, src_server: str, dst_server: str,
              megabytes: float) -> Generator:
        """Process returning the seconds the exchange took."""
        ...


class CouchDBSharing:
    """OpenWhisk default: intermediate results through CouchDB."""

    name = "couchdb"

    def __init__(self, env: Environment, couchdb: CouchDB,
                 constants: Optional[ServerlessConstants] = None):
        self.env = env
        self.couchdb = couchdb
        self.constants = constants or couchdb.constants

    def share(self, src_server: str, dst_server: str,
              megabytes: float) -> Generator:
        start = self.env.now
        # Both functions round-trip the controller for a database handle.
        yield self.env.timeout(2 * self.constants.couchdb_handle_s)
        yield from self.couchdb.access(megabytes)  # parent write
        yield from self.couchdb.access(megabytes)  # child read
        return self.env.now - start


class RpcSharing:
    """Direct RPC between parent and child servers."""

    name = "rpc"

    def __init__(self, env: Environment, rpc: SoftwareClusterRpc,
                 constants: Optional[ServerlessConstants] = None):
        self.env = env
        self.rpc = rpc
        self.constants = constants or ServerlessConstants()

    def share(self, src_server: str, dst_server: str,
              megabytes: float) -> Generator:
        start = self.env.now
        yield self.env.timeout(self.constants.rpc_share_latency_s)
        result = yield from self.rpc.call(src_server, dst_server,
                                          megabytes, 0.001)
        return self.env.now - start


class InMemorySharing:
    """Child runs in the parent's container: an address-space handoff."""

    name = "in_memory"

    def __init__(self, env: Environment,
                 constants: Optional[ServerlessConstants] = None):
        self.env = env
        self.constants = constants or ServerlessConstants()

    def share(self, src_server: str, dst_server: str,
              megabytes: float) -> Generator:
        if src_server != dst_server:
            raise ValueError(
                "in-memory sharing requires parent and child on the same "
                f"server (got {src_server!r} -> {dst_server!r})")
        cost = (self.constants.inmem_latency_s +
                megabytes / self.constants.inmem_mbs)
        yield self.env.timeout(cost)
        return cost


class RemoteMemorySharing:
    """HiveMind's FPGA remote-memory fabric (section 4.4)."""

    name = "remote_memory"

    def __init__(self, env: Environment, fabric: RemoteMemoryFabric):
        self.env = env
        self.fabric = fabric

    def share(self, src_server: str, dst_server: str,
              megabytes: float) -> Generator:
        start = self.env.now
        handle = yield from self.fabric.write(src_server, megabytes)
        yield from self.fabric.read(dst_server, handle)
        self.fabric.evict(handle)
        return self.env.now - start
