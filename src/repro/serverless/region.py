"""Per-region cloud controller slices for the sharded runtime.

PR 7 sharded the *edge* tier into cells but still drained every cloud
call through one :class:`~repro.serverless.gateway.CloudGateway` kernel
in the parent process — at large N the controller/OpenWhisk/CouchDB path
becomes the serial wall-clock bottleneck (Amdahl), exactly the
centralized ceiling the paper measures. This module decomposes the cloud
tier along a multi-region controller layout: each region owns a slice of
the backend (its share of the controller pool, the invoker servers, and
the CouchDB/Kafka shard) and serves the calls of the cells it owns.

:class:`RegionGateway` is an **analytic virtual-clock** model of one
regional slice: instead of stepping a discrete-event kernel it computes
each call's pipeline departure times in closed form against per-resource
free-time heaps — the same technique the PR 3 analytic queueing layer
uses inside the kernel, here lifted out of the kernel entirely (zero
events per call). The pipeline mirrors the OpenWhisk platform stage for
stage: admission occupancy, frontend + CouchDB auth, the controller
k-server pool, placement (HiveMind parent-colocation then stock
warm-affinity/least-loaded with rotation), parent-output data sharing
(in-memory / remote-memory fabric / CouchDB), the Kafka hop, warm/cold
container claim against keepalive'd pools, per-server core heaps with
utilization-dependent interference, and CouchDB persistence — plus the
straggler-mitigation duplicate race for exact (non-synthetic) calls.

Three deliberate simplifications, accepted because the regional tier is
a throughput/latency *model* of the slice rather than a byte-exact
replay of the monolithic gateway (armed runs are held to the milestone
observable tolerance instead):

- Calls are served one at a time in canonical per-region arrival order,
  so a call's later stages are priced before the next call's earlier
  stages. The free-time heaps still order grants correctly
  (``grant = max(free, t)``); only cross-call FIFO inversions inside one
  stage are approximated, a second-order effect on aggregate
  percentiles.
- The CouchDB shard and the controller pool are fluid queues
  (cumulative work against ``k`` handlers) rather than per-slot
  reservations, because their operations are requested at very
  different pipeline depths and a reservation heap mutated in pricing
  order stalls head-of-pipe requests behind future-dated ones (see the
  constructor comment).
- On a duplicate win the straggler strike lands on the primary's server
  (the legacy scan's "most recent same-named invocation" is overwhelmingly
  the primary itself in the regional slice).

Determinism: a region's stream is ``default_rng([seed + GATEWAY_SEED_
OFFSET, region])`` and its call sequence is a pure function of the cell
plan and the region size — never of how cells or regions were grouped
onto worker processes — so merged rows are identical at any
``(shards, cloud_shards)`` combination.
"""

from __future__ import annotations

import heapq
import math
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..config import PaperConstants
from ..telemetry import LatencyBreakdown, MetricSeries
from .gateway import GATEWAY_SEED_OFFSET

__all__ = ["RegionGateway", "region_server_count",
           "region_server_offset"]

#: Straggler-mitigation mirror constants — keep in lockstep with
#: :class:`repro.core.StragglerMitigator`.
_MIN_HISTORY = 20
_THRESHOLD_SLACK = 1.5
_PROBATION_THRESHOLD = 3

#: The monolithic CouchDB store runs 8 concurrent request handlers; each
#: region gets its proportional shard of them (total conserved).
_COUCH_SLOTS = 8


def region_server_count(region: int, n_regions: int, n_servers: int) -> int:
    """Backend servers owned by ``region``.

    The fixed cluster is split contiguously and as evenly as possible;
    when regions outnumber servers every region still gets one logical
    server (the model's resolution floor — the alternative, fractional
    servers, would misprice core contention).
    """
    if not 0 <= region < n_regions:
        raise ValueError(f"region {region} outside 0..{n_regions - 1}")
    if n_regions >= n_servers:
        return 1
    base, extra = divmod(n_servers, n_regions)
    return base + (1 if region < extra else 0)


def region_server_offset(region: int, n_regions: int,
                         n_servers: int) -> int:
    """First *global* backend server index owned by ``region`` under the
    same contiguous split as :func:`region_server_count` (when regions
    outnumber servers, region ``r`` maps to logical server
    ``min(r, n_servers - 1)``). Used to translate a fault plan's global
    server targets into a region's local server indices."""
    if not 0 <= region < n_regions:
        raise ValueError(f"region {region} outside 0..{n_regions - 1}")
    if n_regions >= n_servers:
        return min(region, n_servers - 1)
    base, extra = divmod(n_servers, n_regions)
    return region * base + min(region, extra)


class RegionGateway:
    """One region's cloud slice, priced on a virtual clock.

    ``constants`` must be the *globally scaled*
    :class:`~repro.config.PaperConstants` (same object the monolithic
    gateway receives); ``region_devices`` is this region's device count
    and ``total_devices`` the whole fleet's (the controller pool scales
    with the fleet exactly as the unsharded runner's ``_n_controllers``
    does, then splits across regions).
    """

    def __init__(self, config, scenario, constants: PaperConstants,
                 region: int, n_regions: int, region_devices: int,
                 total_devices: int, seed: int = 0, serving=None):
        if config.execution not in ("cloud_faas", "hybrid"):
            raise ValueError(
                "RegionGateway requires a cloud-backed platform "
                f"(got execution={config.execution!r})")
        if region_devices <= 0:
            raise ValueError("region must own at least one device")
        self.config = config
        self.region = region
        self.n_regions = n_regions
        cst = self._cst = constants.serverless
        self._control = constants.control
        self._accel = constants.accel
        self._rng = np.random.default_rng(
            [seed + GATEWAY_SEED_OFFSET, region])

        # -- regional cluster slice ------------------------------------
        n_servers = region_server_count(region, n_regions,
                                        constants.cluster.servers)
        cores = constants.cluster.cores_per_server
        self._n_servers = n_servers
        self._cores = cores
        #: Per-server min-heaps of core free instants.
        self._core_free: List[List[float]] = [
            [0.0] * cores for _ in range(n_servers)]
        #: Per-server warm pools: image -> {"ready": heap, "expiry":
        #: heap, "live": int}. A container is a mutable record
        #: ``[ready_s, expiry_s, claimed, image]`` (the record object
        #: doubles as the container identity for parent colocation);
        #: heap entries are ``(key, n, record)`` snapshots and are
        #: dropped lazily when the record was claimed or re-warmed since
        #: the entry was pushed, so every pool operation is O(log n) —
        #: a linear-scan pool dominated the whole armed run's profile.
        self._warm: List[Dict[str, Dict]] = [{} for _ in range(n_servers)]
        self._pool_counter = 0
        self._probation_until = [0.0] * n_servers
        self._strikes = [0] * n_servers
        self._rotation = 0

        # -- regional controller pool ----------------------------------
        # Fluid-backlog like the couch shard below (and for the same
        # reason): a recognition's and its dedup's controller requests
        # are priced seconds apart, so slot reservations made in pricing
        # order would stall later head-of-pipe requests behind them.
        n_controllers = config.n_controllers
        if config.scheduler == "hivemind":
            n_controllers = max(n_controllers,
                                math.ceil(total_devices / 64))
        self._controller_slots = max(
            1, math.ceil(n_controllers / n_regions))
        self._controller_work = 0.0
        # -- regional CouchDB shard ------------------------------------
        # Fluid-backlog model rather than absolute slot reservations:
        # couch operations are requested at wildly different pipeline
        # depths (auth at the head, persists after execution), so a
        # free-time heap mutated in call-pricing order fills with
        # future-dated ends and stalls every later head-of-pipe auth at
        # those instants — a positive-feedback cascade the time-ordered
        # kernel can't exhibit. The fluid queue sidesteps ordering
        # entirely: an operation requested at ``t`` waits
        # ``max(0, W/k - t)`` where ``W`` is the cumulative busy work
        # handed to the ``k``-handler shard — zero wait while the shard
        # keeps up, linearly growing delay past saturation (the regime
        # the fig17 curves measure).
        self._couch_slots = max(1, math.ceil(_COUCH_SLOTS / n_regions))
        self._couch_work = 0.0
        # -- admission (regional share of the per-user limit) ----------
        self._admission_limit = max(
            1, math.ceil(cst.concurrency_limit / n_regions))
        self._admitted: List[float] = []

        #: Chaos outage windows ``(start_s, end_s)`` from a
        #: region-partitioned fault plan (:meth:`apply_fault_plan`): a
        #: CouchDB/Kafka operation landing inside a window is pushed to
        #: its end; operations before the window are untouched.
        self._couch_outages: List[Tuple[float, float]] = []
        self._kafka_outages: List[Tuple[float, float]] = []
        self._total_servers = constants.cluster.servers
        #: Backend fault-plan events this region actually armed
        #: (outage windows + local server crashes).
        self.injected_faults = 0

        self.recognition_spec = scenario.recognition.function_spec()
        self.dedup_spec = (scenario.dedup.function_spec()
                           if scenario.dedup is not None else None)
        #: Mean recognition service time (lognormal mean), the
        #: occupancy scale the admission delay estimate divides by.
        self._mean_service_s = (
            scenario.recognition.cloud_service_s
            * math.exp(scenario.recognition.service_sigma ** 2 / 2.0))
        _, directives = scenario.dsl_graph()
        self._persisted_tasks = set(directives.persisted)
        self._keepalive_s = config.container_keepalive_s
        self._mitigate = bool(config.straggler_mitigation)
        self._history: Dict[str, MetricSeries] = {}

        #: Open-loop serving stack (:class:`repro.serving.ServingPolicy`)
        #: — admission gate + invoker-pool autoscaler. ``None`` (the
        #: unarmed default) leaves every path below byte-identical to
        #: the serving-free gateway.
        self._serving = serving
        self.shed_calls = 0

        # -- counters --------------------------------------------------
        self.completions = 0
        self.last_completion_s = 0.0
        self.background_completions = 0
        self.last_background_s = 0.0
        self.persisted_documents = 0
        self.cold_starts = 0
        self.warm_starts = 0
        self.duplicate_launches = 0
        self._last_arrival = 0.0

    # -- chaos arming ---------------------------------------------------
    def apply_fault_plan(self, plan) -> None:
        """Arm this region's slice of a partitioned backend
        :class:`~repro.faults.FaultPlan` (see
        :meth:`~repro.faults.FaultPlan.partition`).

        CouchDB/Kafka outages become shard-local stall windows;
        server/invoker crashes put the targeted server (translated from
        its global index to this region's local slice) on probation for
        the reboot window (permanently for ``duration_s == 0``).
        Network-layer and function-fault events are ignored here — in
        exact runs those are injected by the cell-side network and
        serverless layers, not the analytic regional model.
        """
        offset = region_server_offset(self.region, self.n_regions,
                                      self._total_servers)
        for event in plan.sorted_events():
            if event.kind == "couchdb_outage":
                self._couch_outages.append(
                    (event.time, event.time + event.duration_s))
                self.injected_faults += 1
            elif event.kind == "kafka_outage":
                self._kafka_outages.append(
                    (event.time, event.time + event.duration_s))
                self.injected_faults += 1
            elif event.kind in ("server_crash", "invoker_crash"):
                server = int("".join(
                    ch for ch in str(event.target) if ch.isdigit()) or 0)
                local = server - offset
                if 0 <= local < self._n_servers:
                    until = (math.inf if event.duration_s == 0
                             else event.time + event.duration_s)
                    self._probation_until[local] = max(
                        self._probation_until[local], until)
                    self.injected_faults += 1
        self._couch_outages.sort()
        self._kafka_outages.sort()

    @staticmethod
    def _after_outages(t: float,
                       windows: List[Tuple[float, float]]) -> float:
        """Push ``t`` past every outage window it lands in (windows are
        sorted by start, so chained/overlapping windows cascade)."""
        for start, end in windows:
            if start <= t < end:
                t = end
        return t

    # -- resource primitives -------------------------------------------
    def _couch_serve(self, t: float, duration: float) -> float:
        """One store operation of fixed ``duration`` (auth checks)."""
        grant = max(t, self._couch_work / self._couch_slots)
        if self._couch_outages:
            grant = self._after_outages(grant, self._couch_outages)
        self._couch_work += duration
        return grant + duration

    def _couch_access(self, t: float, megabytes: float) -> float:
        """One tail-heavy document access (reads, writes, persists)."""
        cst = self._cst
        duration = ((cst.couchdb_latency_s + megabytes / cst.couchdb_mbs)
                    * (1.0 + self._rng.pareto(cst.couchdb_tail_alpha)))
        return self._couch_serve(t, duration)

    def _utilization(self, server: int, t: float) -> float:
        busy = sum(1 for free in self._core_free[server] if free > t)
        return busy / self._cores

    def _reap(self, pool: Dict, t: float) -> None:
        """Drop expired records (lazy: stale heap entries are skipped)."""
        expiry = pool["expiry"]
        while expiry and expiry[0][0] <= t:
            _, _, record = heapq.heappop(expiry)
            if record[2] or record[1] > t:
                continue  # claimed, or re-warmed since this entry
            record[2] = True
            pool["live"] -= 1

    def _warm_available(self, server: int, image: str, t: float) -> bool:
        pool = self._warm[server].get(image)
        if not pool:
            return False
        self._reap(pool, t)
        return pool["live"] > 0

    def _claim_warm(self, server: int, image: str, t: float
                    ) -> Optional[List]:
        """Claim the earliest-ready live container, if any is ready."""
        pool = self._warm[server].get(image)
        if not pool:
            return None
        self._reap(pool, t)
        ready = pool["ready"]
        while ready and ready[0][0] <= t:
            key, _, record = heapq.heappop(ready)
            if record[2] or record[0] != key:
                continue  # claimed/expired, or re-warmed since pushed
            record[2] = True
            pool["live"] -= 1
            return record
        return None

    def _return_warm(self, server: int, record: List) -> None:
        pool = self._warm[server].setdefault(
            record[3], {"ready": [], "expiry": [], "live": 0})
        record[2] = False
        self._pool_counter += 1
        heapq.heappush(pool["ready"],
                       (record[0], self._pool_counter, record))
        heapq.heappush(pool["expiry"],
                       (record[1], self._pool_counter, record))
        pool["live"] += 1

    # -- placement mirror ----------------------------------------------
    def _healthy(self, t: float) -> List[int]:
        limit = self._n_servers
        if self._serving is not None:
            active = self._serving.active_servers(t)
            if active is not None:
                # Autoscaled pool: placement only sees the active
                # prefix. A just-activated server joins with an empty
                # warm pool, so scale-out pays cold starts through the
                # existing invoker model.
                limit = max(1, min(limit, active))
        healthy = [s for s in range(limit)
                   if self._probation_until[s] <= t]
        return healthy or list(range(limit))

    def _place(self, spec, t: float, parent: Optional[Tuple]
               ) -> Tuple[int, Optional[List[float]]]:
        """Mirror of the scheduler: (server, claimed parent container)."""
        if (self.config.scheduler == "hivemind" and parent is not None):
            parent_server, parent_record = parent
            if (self._probation_until[parent_server] <= t
                    and not parent_record[2]
                    and parent_record[3] == spec.image
                    and parent_record[1] > t and parent_record[0] <= t):
                # Same-image + still-warm: claim the parent's very
                # container for in-memory data exchange.
                parent_record[2] = True
                self._warm[parent_server][spec.image]["live"] -= 1
                return parent_server, parent_record
        candidates = self._healthy(t)
        for server in candidates:
            if (self._warm_available(server, spec.image, t)
                    and self._utilization(server, t) < 1.0):
                return server, None
        utilization = [self._utilization(s, t) for s in candidates]
        best = min(utilization)
        tied = [s for s, u in zip(candidates, utilization) if u == best]
        chosen = tied[self._rotation % len(tied)]
        self._rotation += 1
        return chosen, None

    # -- one invocation through the regional pipeline ------------------
    def _invoke(self, t_submit: float, spec, service_s: float,
                parent: Optional[Tuple], parent_output_mb: float,
                colocate: bool, breakdown: LatencyBreakdown
                ) -> Tuple[float, int, List[float]]:
        """Price one invocation; returns (done, server, container)."""
        cst = self._cst
        t = t_submit
        # Admission: regional share of the concurrency limit.
        while self._admitted and self._admitted[0] <= t:
            heapq.heappop(self._admitted)
        if len(self._admitted) >= self._admission_limit:
            t = heapq.heappop(self._admitted)
        # Frontend + CouchDB auth (fixed-duration, no compaction tail).
        t += cst.frontend_latency_s
        t = self._couch_serve(t, cst.auth_check_s)
        breakdown.charge("management",
                         cst.frontend_latency_s + cst.auth_check_s)
        # Controller: fluid k-server pool, decision + service hold.
        queue_start = t
        hold = cst.controller_decision_s + cst.controller_service_s
        grant = max(t, self._controller_work / self._controller_slots)
        self._controller_work += hold
        t = grant + hold
        breakdown.charge("management", t - queue_start)
        # Placement (after the controller decision, as in the platform).
        server, container = self._place(
            spec, t, parent if colocate else None)
        colocated = container is not None
        # Parent-output data sharing.
        if parent is not None and parent_output_mb > 0:
            share_start = t
            if colocated:
                t += (cst.inmem_latency_s
                      + parent_output_mb / cst.inmem_mbs)
            elif self.config.sharing == "remote_memory":
                hop = (self._accel.remote_mem_latency_s
                       + parent_output_mb / self._accel.remote_mem_mbs)
                t += 2 * hop  # producer write + consumer read
            else:
                t += 2 * cst.couchdb_handle_s
                t = self._couch_access(t, parent_output_mb)
                t = self._couch_access(t, parent_output_mb)
            breakdown.charge("data_io", t - share_start)
        # Kafka hop to the invoker's topic.
        hop_start = t
        t += cst.kafka_hop_s
        if self._kafka_outages:
            t = self._after_outages(t, self._kafka_outages)
        breakdown.charge("management", t - hop_start)
        # Container: keepalive'd warm claim, else a cold start.
        if container is None:
            container = self._claim_warm(server, spec.image, t)
        if container is not None:
            start_cost = cst.warm_start_s
            self.warm_starts += 1
        else:
            start_cost = float(self._rng.lognormal(
                math.log(cst.cold_start_median_s), cst.cold_start_sigma))
            self.cold_starts += 1
            container = [0.0, 0.0, True, spec.image]
        t += start_cost
        breakdown.charge("management", start_cost)
        # Core grant + utilization-dependent interference.
        heap = self._core_free[server]
        free = heapq.heappop(heap)
        grant = max(free, t)
        busy = 1 + sum(1 for other in heap if other > grant)
        interference = ((1.0 + cst.interference_slope
                         * max(0.0, busy / self._cores - 0.5))
                        * float(self._rng.lognormal(0.0, 0.16)))
        service = service_s * interference
        t = grant + service
        heapq.heappush(heap, t)
        breakdown.charge("execution", service)
        # Return the container to the warm pool.
        container[0] = t
        container[1] = t + self._keepalive_s
        self._return_warm(server, container)
        heapq.heappush(self._admitted, t)
        return t, server, container

    def _strike(self, server: int, t: float) -> None:
        self._strikes[server] += 1
        if self._strikes[server] >= _PROBATION_THRESHOLD:
            self._probation_until[server] = t + self._control.probation_s
            self._strikes[server] = 0

    def _mitigated_invoke(self, t_submit: float, spec, service_s: float,
                          parent: Optional[Tuple],
                          parent_output_mb: float,
                          breakdown: LatencyBreakdown
                          ) -> Tuple[float, int, List[float]]:
        """The straggler watchdog's duplicate race, priced analytically."""
        history = self._history.get(spec.name)
        threshold = None
        if history is not None and len(history) >= _MIN_HISTORY:
            threshold = (history.percentile(
                self._control.straggler_percentile) * _THRESHOLD_SLACK)
        primary_bd = LatencyBreakdown()
        done, server, container = self._invoke(
            t_submit, spec, service_s, parent, parent_output_mb,
            colocate=True, breakdown=primary_bd)
        if threshold is None or done - t_submit <= threshold:
            self._record(spec.name, done - t_submit)
            self._merge(breakdown, primary_bd)
            return done, server, container
        # Primary blew the p90*slack watchdog: a duplicate launches at
        # the firing instant, never colocated; first completion wins
        # (the loser keeps running, as in the legacy parity mode).
        self.duplicate_launches += 1
        dup_bd = LatencyBreakdown()
        dup = self._invoke(
            t_submit + threshold, spec, service_s, parent,
            parent_output_mb, colocate=False, breakdown=dup_bd)
        if dup[0] < done:
            self._strike(server, dup[0])
            done, server, container = dup
            primary_bd = dup_bd
        self._record(spec.name, done - t_submit)
        self._merge(breakdown, primary_bd)
        return done, server, container

    def _record(self, name: str, latency: float) -> None:
        series = self._history.get(name)
        if series is None:
            series = self._history[name] = MetricSeries(f"region-{name}")
        series.add(latency)

    @staticmethod
    def _merge(into: LatencyBreakdown, part: LatencyBreakdown) -> None:
        into.charge("management", part.management)
        into.charge("data_io", part.data_io)
        into.charge("execution", part.execution)
        into.charge("network", part.network)

    def _backlog(self, t: float) -> int:
        """In-flight admitted calls at ``t`` (the queue-depth signal
        both reactive serving policies key on). Popping expired entries
        here is the same maintenance :meth:`_invoke` performs at its
        admission step, just earlier."""
        while self._admitted and self._admitted[0] <= t:
            heapq.heappop(self._admitted)
        return len(self._admitted)

    # -- serving --------------------------------------------------------
    def serve(self, calls) -> List[Tuple[int, int, float, Dict[str, float]]]:
        """Serve one canonical-order batch; returns completion tuples
        ``(cell, seq, completion_s, breakdown_dict)`` and stamps the
        calls in place. Calls shed by the admission gate are stamped
        ``shed=True`` and yield no completion tuple."""
        out = []
        for call in calls:
            if call.arrival_s < self._last_arrival:
                raise RuntimeError(
                    f"region {self.region}: out-of-order cloud message "
                    f"({call.arrival_s:.6f} < {self._last_arrival:.6f})")
            self._last_arrival = call.arrival_s
            served = self._serve(call)
            if served is not None:
                out.append(served)
        return out

    def _serve(self, call
               ) -> Optional[Tuple[int, int, float, Dict[str, float]]]:
        t = call.arrival_s
        if self._serving is not None:
            backlog = self._backlog(t)
            self._serving.observe(t, backlog)
            tenant = getattr(call, "tenant", None)
            if tenant is not None:
                # Estimated queueing delay: in-flight work beyond the
                # regional core pool, at mean service occupancy.
                cores = self._n_servers * self._cores
                excess = max(0, backlog - cores)
                est_delay = (excess / cores) * self._mean_service_s
                if not self._serving.admit(t, tenant, call.weight,
                                           backlog, est_delay):
                    call.shed = True
                    call.completion_s = None
                    self.shed_calls += 1
                    return None
        breakdown = LatencyBreakdown()
        synthetic = bool(getattr(call, "synthetic", False))
        mitigate = self._mitigate and not synthetic
        parent: Optional[Tuple[int, List[float]]] = None
        parent_output = 0.0
        if call.recognition_s is not None:
            if mitigate:
                done, server, container = self._mitigated_invoke(
                    t, self.recognition_spec, call.recognition_s,
                    None, 0.0, breakdown)
            else:
                done, server, container = self._invoke(
                    t, self.recognition_spec, call.recognition_s,
                    None, 0.0, colocate=True, breakdown=breakdown)
            t = done
            if "recognition" in self._persisted_tasks:
                t = self._couch_access(t, call.output_mb)
                self.persisted_documents += 1
            parent = (server, container)
            parent_output = call.output_mb
        if call.dedup_s is not None and self.dedup_spec is not None:
            share_mb = parent_output if parent is not None else 0.0
            if mitigate:
                t, _, _ = self._mitigated_invoke(
                    t, self.dedup_spec, call.dedup_s, parent,
                    share_mb, breakdown)
            else:
                t, _, _ = self._invoke(
                    t, self.dedup_spec, call.dedup_s, parent, share_mb,
                    colocate=True, breakdown=breakdown)
            if "aggregate" in self._persisted_tasks:
                t = self._couch_access(t, 0.05)
                self.persisted_documents += 1
        call.completion_s = t
        call.cloud_breakdown = breakdown.as_dict()
        if synthetic:
            self.background_completions += 1
            self.last_background_s = max(self.last_background_s, t)
        else:
            self.completions += 1
            self.last_completion_s = max(self.last_completion_s, t)
        return (call.cell, call.seq, t, call.cloud_breakdown)

    def stats(self) -> Dict[str, float]:
        out = {
            "completions": self.completions,
            "last_completion_s": self.last_completion_s,
            "background_completions": self.background_completions,
            "last_background_s": self.last_background_s,
            "persisted_documents": self.persisted_documents,
            "cold_starts": self.cold_starts,
            "warm_starts": self.warm_starts,
            "duplicate_launches": self.duplicate_launches,
            "injected_faults": self.injected_faults,
        }
        if self._serving is not None:
            out["shed_calls"] = self.shed_calls
            out["serving"] = self._serving.stats()
        return out
