"""Fig 6: the challenges of serverless for edge applications.

(a) Latency variability (coefficient of variation) on reserved vs
serverless deployments at modest load. Expected shape: serverless CV is
consistently higher (instantiation churn + interference + scheduler).

(b) Latency breakdown into instantiation, inter-function data sharing, and
execution, per application, measured under intermittent arrivals (where
stock OpenWhisk reclaims idle containers and cold starts dominate the
management share: ~22% of median latency on average, >40% for the
short-running weather analytics, <20% for long maze tasks).

(c) Data-sharing protocol comparison — CouchDB vs direct RPC vs in-memory
— for parent->child function pairs. Expected shape: CouchDB slowest with a
heavy tail, RPC considerably faster, in-memory nearly free.
"""

from __future__ import annotations

from typing import Dict, Generator, List

from ..apps import all_apps
from ..cluster import Cluster
from ..config import DEFAULT
from ..network import ClusterNetwork
from ..platforms import SingleTierRunner, platform_config
from ..serverless import FunctionSpec, InvocationRequest, OpenWhiskPlatform
from ..sim import Environment, RandomStreams
from ..telemetry import MetricSeries
from .common import ExperimentResult

#: Intermittent arrivals: exponential gaps whose tail exceeds the stock
#: keep-alive, so a realistic ~quarter of tasks cold-start.
MEAN_GAP_S = 0.8


def run_variability(duration_s: float = 60.0,
                    base_seed: int = 0) -> ExperimentResult:
    """Fig 6a: reserved vs serverless coefficient of variation."""
    rows: List[List] = []
    data: Dict[str, Dict] = {}
    # "Each application runs at modest load to avoid overloading the
    # reserved resources" (section 3.3): steady arrivals, ample pool.
    for spec in all_apps():
        reserved = SingleTierRunner(
            platform_config("centralized_iaas"), spec, seed=base_seed,
            duration_s=duration_s, load_fraction=0.25,
            iaas_headroom=3.0, bursty=False).run()
        serverless = SingleTierRunner(
            platform_config("centralized_faas"), spec, seed=base_seed,
            duration_s=duration_s, load_fraction=0.25,
            bursty=False).run()
        rows.append([spec.key,
                     round(reserved.task_latencies.cv, 3),
                     round(serverless.task_latencies.cv, 3)])
        data[spec.key] = {
            "reserved_cv": reserved.task_latencies.cv,
            "serverless_cv": serverless.task_latencies.cv,
        }
    return ExperimentResult(
        figure="fig06a",
        title="Latency variability (CV): reserved vs serverless",
        headers=["job", "reserved_cv", "serverless_cv"],
        rows=rows,
        data=data,
    )


def _chain_workload(platform: OpenWhiskPlatform, env: Environment,
                    spec, n_tasks: int, rng,
                    results: List) -> Generator:
    """Parent -> child chains with intermittent exponential arrivals."""
    parent_spec = spec.function_spec()
    child_spec = FunctionSpec(
        name=f"{spec.key.lower()}-agg", memory_mb=spec.memory_mb,
        image=f"{spec.key.lower()}-agg-image")
    for _ in range(n_tasks):
        parent = yield env.process(platform.invoke(InvocationRequest(
            spec=parent_spec, service_s=spec.cloud_service_s * 0.7,
            input_mb=spec.input_mb,
            output_mb=max(0.5, spec.output_mb))))
        child = yield env.process(platform.invoke(InvocationRequest(
            spec=child_spec, service_s=spec.cloud_service_s * 0.3,
            input_mb=spec.output_mb, output_mb=0.02, parent=parent,
            colocate_with_parent=False)))
        results.append((parent, child))
        yield env.timeout(float(rng.exponential(MEAN_GAP_S)))


def run_breakdown(n_tasks: int = 60, base_seed: int = 0) -> ExperimentResult:
    """Fig 6b: instantiation / data I/O / execution shares."""
    rows: List[List] = []
    data: Dict[str, Dict] = {}
    for spec in all_apps():
        env = Environment()
        streams = RandomStreams(base_seed)
        cluster = Cluster(env, DEFAULT.cluster)
        platform = OpenWhiskPlatform(
            env, cluster, streams, constants=DEFAULT.serverless,
            keepalive_s=2.0)
        results: List = []
        rng = streams.stream("fig06b.gaps")
        env.run(env.process(_chain_workload(
            platform, env, spec, n_tasks, rng, results)))
        instantiation = data_io = execution = 0.0
        for parent, child in results:
            instantiation += parent.instantiation_s + child.instantiation_s
            data_io += parent.data_share_s + child.data_share_s
            execution += (parent.breakdown.execution +
                          child.breakdown.execution)
        total = instantiation + data_io + execution
        rows.append([spec.key,
                     round(100 * instantiation / total, 1),
                     round(100 * data_io / total, 1),
                     round(100 * execution / total, 1)])
        data[spec.key] = {
            "instantiation_pct": 100 * instantiation / total,
            "data_io_pct": 100 * data_io / total,
            "execution_pct": 100 * execution / total,
        }
    return ExperimentResult(
        figure="fig06b",
        title="Serverless latency shares: instantiation/data I/O/execution",
        headers=["job", "instantiation_pct", "data_io_pct",
                 "execution_pct"],
        rows=rows,
        data=data,
    )


def run_sharing(n_tasks: int = 50, base_seed: int = 0) -> ExperimentResult:
    """Fig 6c: CouchDB vs RPC vs in-memory task latency."""
    rows: List[List] = []
    data: Dict[str, Dict] = {}
    for spec in all_apps():
        latencies: Dict[str, MetricSeries] = {}
        for protocol in ("couchdb", "rpc", "in_memory"):
            env = Environment()
            streams = RandomStreams(base_seed)
            cluster = Cluster(env, DEFAULT.cluster)
            network = ClusterNetwork(env, DEFAULT.cluster)
            for server_id in cluster.servers:
                network.register_server(server_id)
            platform = OpenWhiskPlatform(
                env, cluster, streams, constants=DEFAULT.serverless,
                sharing=protocol if protocol != "in_memory" else "couchdb",
                scheduler=("hivemind" if protocol == "in_memory"
                           else "openwhisk"),
                keepalive_s=25.0,
                cluster_network=network)
            series = MetricSeries(protocol)
            shares = MetricSeries(f"{protocol}.share")

            def chains() -> Generator:
                parent_spec = spec.function_spec()
                # In-memory requires the same image so the child can run
                # in the parent's container.
                child_spec = (parent_spec if protocol == "in_memory"
                              else FunctionSpec(
                                  name=f"{spec.key.lower()}-agg",
                                  memory_mb=spec.memory_mb,
                                  image=f"{spec.key.lower()}-agg-image"))
                for _ in range(n_tasks):
                    start = env.now
                    parent = yield env.process(platform.invoke(
                        InvocationRequest(
                            spec=parent_spec,
                            service_s=spec.cloud_service_s * 0.7,
                            output_mb=max(0.5, spec.output_mb))))
                    child = yield env.process(platform.invoke(
                        InvocationRequest(
                            spec=child_spec,
                            service_s=spec.cloud_service_s * 0.3,
                            parent=parent,
                            colocate_with_parent=(
                                protocol == "in_memory"))))
                    series.add(env.now - start, time=start)
                    shares.add(child.data_share_s)
                    yield env.timeout(0.6)

            env.run(env.process(chains()))
            latencies[protocol] = series
            latencies[f"{protocol}.share"] = shares
        rows.append([spec.key,
                     round(latencies["couchdb"].median * 1000, 1),
                     round(latencies["rpc"].median * 1000, 1),
                     round(latencies["in_memory"].median * 1000, 1),
                     round(latencies["couchdb.share"].median * 1000, 2),
                     round(latencies["rpc.share"].median * 1000, 2),
                     round(latencies["in_memory.share"].median * 1000, 2)])
        data[spec.key] = {name: series.summary()
                          for name, series in latencies.items()}
    return ExperimentResult(
        figure="fig06c",
        title="Task latency (ms) by data-sharing protocol",
        headers=["job", "couchdb_med_ms", "rpc_med_ms", "inmem_med_ms",
                 "couch_share_ms", "rpc_share_ms", "inmem_share_ms"],
        rows=rows,
        data=data,
    )


def run(base_seed: int = 0) -> ExperimentResult:
    return run_breakdown(base_seed=base_seed)
