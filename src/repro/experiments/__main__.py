"""CLI: ``python -m repro.experiments fig11`` regenerates one figure.

``python -m repro.experiments --list`` enumerates the available figures;
``python -m repro.experiments all`` runs every harness (slow);
``--csv DIR`` additionally writes each figure's rows to ``DIR/<fig>.csv``.
"""

from __future__ import annotations

import argparse
import csv
import pathlib
import sys
import time

from .common import ExperimentResult
from .registry import experiment_ids, run_experiment


def write_csv(result: ExperimentResult, directory: str) -> str:
    """Write one figure's rows to ``directory/<figure>.csv``."""
    target = pathlib.Path(directory)
    target.mkdir(parents=True, exist_ok=True)
    path = target / f"{result.figure}.csv"
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(result.headers)
        writer.writerows(result.rows)
    return str(path)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.experiments",
        description="Regenerate HiveMind paper figures on the simulator")
    parser.add_argument("figure", nargs="?", default=None,
                        help="figure id (e.g. fig11) or 'all'")
    parser.add_argument("--list", action="store_true",
                        help="list available figures")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--csv", metavar="DIR", default=None,
                        help="also write each figure's rows to DIR")
    args = parser.parse_args(argv)

    if args.list or args.figure is None:
        print("Available experiments:")
        for figure in experiment_ids():
            print(f"  {figure}")
        return 0

    figures = experiment_ids() if args.figure == "all" else [args.figure]
    for figure in figures:
        start = time.time()
        result = run_experiment(figure, base_seed=args.seed)
        print(result.render())
        if args.csv:
            print(f"[csv written to {write_csv(result, args.csv)}]")
        print(f"[{figure} completed in {time.time() - start:.1f}s]\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
