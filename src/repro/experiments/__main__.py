"""CLI: ``python -m repro.experiments fig11`` regenerates one figure.

``python -m repro.experiments --list`` enumerates the available figures;
``python -m repro.experiments all`` runs every harness (slow);
``--csv DIR`` additionally writes each figure's rows to ``DIR/<fig>.csv``;
``--workers N`` fans the parallel-aware harnesses out over N processes
(numeric results are identical at any worker count);
``--bench-smoke`` runs the fixed ~30 s smoke workload and appends its
timings to ``BENCH_kernel.json``;
``--bench-fig17`` records the fig17 256-drone legacy/vector milestone pair;
``--bench-fig11`` records the fig11 legacy/analytic queueing milestone pair;
``--profile`` prints cProfile's top 25 cumulative entries for the run —
it composes with any figure id, ``all``, and every bench mode;
``--no-vector-edge`` forces the legacy per-device flight processes
(``REPRO_VECTOR_EDGE=0`` equivalent);
``--no-analytic-net`` forces the legacy Resource-based network/serverless
queues (``REPRO_ANALYTIC_NET=0`` equivalent);
``--no-fast-dispatch`` forces the legacy kernel dispatch loop
(``REPRO_FAST_DISPATCH=0`` equivalent);
``--no-batched-rng`` forces scalar per-draw RNG calls
(``REPRO_BATCHED_RNG=0`` equivalent);
``--bench-dispatch`` records the fast/legacy dispatch+RNG milestone pair;
``--bench-shard`` records the fig17b 1024-drone 1-shard/4-shard pair;
``--bench-cloudshard`` records the fig17b 1024-drone edge-sharded/
cloud-sharded pair;
``--shards N`` decomposes each swarm run into cells over N shard
processes (``REPRO_SHARDS=N`` equivalent; byte-identical results);
``--cloud-shards N`` additionally decomposes the cloud tier into
per-region controller workers (``REPRO_CLOUD_SHARDS=N`` equivalent;
rows identical at any N >= 1);
``--hybrid-exact N`` keeps an N-device exact focus and rides the rest
of the fleet as mean-field synthetic load (``REPRO_HYBRID_EXACT=N``
equivalent; arms the sharded cloud tier);
``--meanfield`` collapses homogeneous swarm cells into the O(1)
population model (``REPRO_MEANFIELD=1`` equivalent; approximate);
``--serving SPEC`` overlays open-loop background tenants on the
regional cloud tier of sharded runs (``REPRO_SERVING=SPEC``
equivalent; arms the sharded cloud tier — see ``repro.serving``);
``--no-serving-admission`` / ``--no-serving-autoscale`` disarm each
reactive serving policy independently
(``REPRO_SERVING_ADMISSION=0`` / ``REPRO_SERVING_AUTOSCALE=0``);
``--trace`` arms causal request tracing (``REPRO_TRACE=1`` equivalent);
``--trace-out PATH`` additionally exports the spans as Chrome
``trace_event`` JSON (Perfetto-loadable; one extra file per pool replica)
plus a ``<stem>.manifest.json`` run manifest;
``--profile-out PATH`` dumps per-replica cProfile stats to
``PATH.r<index>`` (works under the parallel executor, where ``--profile``
alone can only see the coordinating process);
``--chaos-workers [SPEC]`` kills/hangs real shard worker processes
mid-run and asserts the supervised recovery merged rows byte-identical
to an undisturbed twin (``--lanes``, ``--worker-deadline S``, and
``--incidents-out PATH`` refine/record the sweep).
"""

from __future__ import annotations

import argparse
import cProfile
import csv
import inspect
import os
import pathlib
import pstats
import sys

from .. import obs
from .common import ExperimentResult
from .registry import EXPERIMENTS, experiment_ids, run_experiment


def write_csv(result: ExperimentResult, directory: str) -> str:
    """Write one figure's rows to ``directory/<figure>.csv``."""
    target = pathlib.Path(directory)
    target.mkdir(parents=True, exist_ok=True)
    path = target / f"{result.figure}.csv"
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(result.headers)
        writer.writerows(result.rows)
    return str(path)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.experiments",
        description="Regenerate HiveMind paper figures on the simulator")
    parser.add_argument("figure", nargs="?", default=None,
                        help="figure id (e.g. fig11) or 'all'")
    parser.add_argument("--list", action="store_true",
                        help="list available figures")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--csv", metavar="DIR", default=None,
                        help="also write each figure's rows to DIR")
    parser.add_argument("--workers", type=int, default=None,
                        help="process-pool size for parallel-aware "
                             "figures (default: one per core)")
    parser.add_argument("--bench-smoke", action="store_true",
                        help="run the ~30s perf smoke workload and append "
                             "its timings to BENCH_kernel.json")
    parser.add_argument("--bench-fig17", action="store_true",
                        help="record the fig17 256-drone legacy/vector "
                             "milestone pair in BENCH_kernel.json")
    parser.add_argument("--bench-fig11", action="store_true",
                        help="record the fig11 legacy/analytic queueing "
                             "milestone pair in BENCH_kernel.json")
    parser.add_argument("--bench-dispatch", action="store_true",
                        help="record the legacy/fast dispatch+RNG "
                             "milestone pair in BENCH_kernel.json")
    parser.add_argument("--bench-shard", action="store_true",
                        help="record the fig17b 1024-drone 1-shard/4-shard "
                             "milestone pair in BENCH_kernel.json")
    parser.add_argument("--bench-cloudshard", action="store_true",
                        help="record the fig17b 1024-drone edge-sharded/"
                             "cloud-sharded milestone pair in "
                             "BENCH_kernel.json")
    parser.add_argument("--shards", type=int, default=None, metavar="N",
                        help="decompose each swarm run into cells over N "
                             "shard processes (sets REPRO_SHARDS=N; "
                             "results are byte-identical at any count)")
    parser.add_argument("--cloud-shards", type=int, default=None,
                        metavar="N",
                        help="decompose the cloud tier into per-region "
                             "controller workers over up to N processes "
                             "(sets REPRO_CLOUD_SHARDS=N; rows identical "
                             "at any N >= 1; 0 = monolithic gateway)")
    parser.add_argument("--hybrid-exact", type=int, default=None,
                        metavar="N",
                        help="keep an N-device exact focus and inject the "
                             "rest of the fleet as mean-field synthetic "
                             "load (sets REPRO_HYBRID_EXACT=N)")
    parser.add_argument("--meanfield", action="store_true",
                        help="collapse homogeneous swarm cells into the "
                             "O(1) mean-field population model (sets "
                             "REPRO_MEANFIELD=1; approximate — see "
                             "repro.edge.meanfield)")
    parser.add_argument("--serving", metavar="SPEC", default=None,
                        help="overlay open-loop background tenants on "
                             "the regional cloud tier (sets "
                             "REPRO_SERVING=SPEC, e.g. "
                             "'poisson:200,onoff:80:flash'; '1' arms "
                             "one default Poisson tenant; implies a "
                             "sharded cloud tier)")
    parser.add_argument("--no-serving-admission", action="store_true",
                        help="disarm the serving admission/shedding "
                             "gate (sets REPRO_SERVING_ADMISSION=0)")
    parser.add_argument("--no-serving-autoscale", action="store_true",
                        help="disarm the serving invoker-pool "
                             "autoscaler (sets "
                             "REPRO_SERVING_AUTOSCALE=0)")
    parser.add_argument("--profile", action="store_true",
                        help="run under cProfile and print the top 25 "
                             "functions by cumulative time")
    parser.add_argument("--chaos", action="store_true",
                        help="sweep fault plans over the scenario apps and "
                             "emit a resilience report (exit 1 on any "
                             "invariant violation)")
    parser.add_argument("--chaos-workers", nargs="?", const="", default=None,
                        metavar="SPEC",
                        help="kill/hang/slow real shard worker processes "
                             "mid-run and assert byte-identical recovery "
                             "against an undisturbed twin; optional SPEC "
                             "overrides each lane's default fault script "
                             "(action:scope:worker:op, comma-separated; "
                             "exit 1 on any divergence or missed recovery)")
    parser.add_argument("--lanes", metavar="NAMES", default=None,
                        help="comma-separated lane names for "
                             "--chaos-workers (default: sharded,"
                             "cloud_sharded,hybrid)")
    parser.add_argument("--worker-deadline", type=float, default=None,
                        metavar="S",
                        help="hang-detection deadline in seconds for "
                             "supervised workers (sets "
                             "REPRO_WORKER_DEADLINE=S; default: "
                             "max(60s, barrier window))")
    parser.add_argument("--incidents-out", metavar="PATH", default=None,
                        help="write the --chaos-workers incident report "
                             "(per-lane records + every WorkerIncident) "
                             "as JSON to PATH")
    parser.add_argument("--plans", metavar="NAMES", default=None,
                        help="comma-separated fault-plan names for --chaos "
                             "(default: every named plan)")
    parser.add_argument("--scenarios", metavar="KEYS", default=None,
                        help="comma-separated scenario keys for --chaos / "
                             "--chaos-workers (default: S1,S2,S3 / S1)")
    parser.add_argument("--no-vector-edge", action="store_true",
                        help="fall back to the legacy per-device flight "
                             "processes (sets REPRO_VECTOR_EDGE=0)")
    parser.add_argument("--no-analytic-net", action="store_true",
                        help="fall back to the legacy Resource-based "
                             "network/serverless queues (sets "
                             "REPRO_ANALYTIC_NET=0)")
    parser.add_argument("--no-fast-dispatch", action="store_true",
                        help="fall back to the legacy kernel dispatch "
                             "loop (sets REPRO_FAST_DISPATCH=0)")
    parser.add_argument("--no-batched-rng", action="store_true",
                        help="fall back to scalar per-draw RNG calls "
                             "(sets REPRO_BATCHED_RNG=0)")
    parser.add_argument("--trace", action="store_true",
                        help="arm causal request tracing (sets "
                             "REPRO_TRACE=1 so pool workers trace too)")
    parser.add_argument("--trace-out", metavar="PATH", default=None,
                        help="write the collected spans as Chrome "
                             "trace_event JSON (implies --trace); a run "
                             "manifest lands next to it")
    parser.add_argument("--profile-out", metavar="PATH", default=None,
                        help="dump per-replica cProfile stats to "
                             "PATH.r<index> (parallel-executor safe)")
    args = parser.parse_args(argv)

    if args.no_vector_edge:
        # Environment (not a runner kwarg) so pool workers inherit it.
        os.environ["REPRO_VECTOR_EDGE"] = "0"
    if args.no_analytic_net:
        os.environ["REPRO_ANALYTIC_NET"] = "0"
    if args.no_fast_dispatch:
        os.environ["REPRO_FAST_DISPATCH"] = "0"
    if args.no_batched_rng:
        os.environ["REPRO_BATCHED_RNG"] = "0"
    if args.shards is not None:
        # Environment (not a runner kwarg) so pool workers inherit it.
        os.environ["REPRO_SHARDS"] = str(args.shards)
    if args.cloud_shards is not None:
        os.environ["REPRO_CLOUD_SHARDS"] = str(args.cloud_shards)
    if args.hybrid_exact is not None:
        os.environ["REPRO_HYBRID_EXACT"] = str(args.hybrid_exact)
    if args.meanfield:
        os.environ["REPRO_MEANFIELD"] = "1"
    if args.serving is not None:
        os.environ["REPRO_SERVING"] = args.serving
    if args.no_serving_admission:
        os.environ["REPRO_SERVING_ADMISSION"] = "0"
    if args.no_serving_autoscale:
        os.environ["REPRO_SERVING_AUTOSCALE"] = "0"
    if args.worker_deadline is not None:
        os.environ["REPRO_WORKER_DEADLINE"] = str(args.worker_deadline)
    if args.trace_out:
        args.trace = True
    if args.trace:
        # Environment first (workers inherit), then the in-process tracer.
        os.environ["REPRO_TRACE"] = "1"
        obs.install()
    if args.profile_out:
        os.environ["REPRO_PROFILE_OUT"] = args.profile_out

    # --profile composes with every mode below: figures, 'all', and the
    # bench workloads all run under the same profiler when requested.
    profiler = None
    if args.profile:
        profiler = cProfile.Profile()
        profiler.enable()
    try:
        return _dispatch(args)
    finally:
        if profiler is not None:
            profiler.disable()
            stats = pstats.Stats(profiler, stream=sys.stdout)
            stats.strip_dirs().sort_stats("cumulative").print_stats(25)
        if args.trace_out:
            _export_trace(args)


def _export_trace(args) -> None:
    """Write the Chrome trace file(s) plus the run manifest."""
    tracer = obs.active_tracer()
    spans = tracer.spans if tracer is not None else []
    written = obs.write_trace_files(args.trace_out, spans)
    target = pathlib.Path(args.trace_out)
    mode = args.figure or \
        ("chaos" if args.chaos else
         "bench-smoke" if args.bench_smoke else
         "bench-fig17" if args.bench_fig17 else
         "bench-fig11" if args.bench_fig11 else
         "bench-dispatch" if args.bench_dispatch else
         "bench-shard" if args.bench_shard else
         "bench-cloudshard" if args.bench_cloudshard else "?")
    manifest = obs.RunManifest.collect(
        mode, seed=args.seed,
        spans=len(spans), trace_files=[str(p) for p in written])
    manifest_path = manifest.write(
        str(target.with_name(f"{target.stem}.manifest.json")))
    print(f"[trace written to {written[0]} "
          f"({len(spans)} spans, {len(written)} file(s)); "
          f"manifest at {manifest_path}]")


def _dispatch_chaos_workers(args) -> int:
    """Run the worker-chaos lanes; exit 0 only on full byte-parity."""
    import json

    options = {"base_seed": args.seed}
    if args.scenarios:
        options["scenarios"] = [
            key.strip() for key in args.scenarios.split(",") if key]
    if args.lanes:
        options["lanes"] = [
            name.strip() for name in args.lanes.split(",") if name]
    if args.chaos_workers:  # non-empty SPEC overrides the lane defaults
        options["faults"] = args.chaos_workers
    if args.worker_deadline is not None:
        options["deadline_s"] = args.worker_deadline
    result = run_experiment("chaos-workers", **options)
    print(result.render())
    if args.csv:
        print(f"[csv written to {write_csv(result, args.csv)}]")
    if args.incidents_out:
        payload = {
            "records": result.data["records"],
            "skipped": result.data["skipped"],
            "identical_all": result.data["identical_all"],
            "all_recovered": result.data["all_recovered"],
            "total_incidents": result.data["total_incidents"],
            "manifest": (result.manifest.to_dict()
                         if result.manifest is not None else None),
        }
        target = pathlib.Path(args.incidents_out)
        target.parent.mkdir(parents=True, exist_ok=True)
        with open(target, "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True,
                      default=str)
            handle.write("\n")
        print(f"[incident report written to {target}]")
    if result.data["skipped"]:
        print("[worker chaos skipped: this environment cannot spawn "
              "worker processes; nothing real to kill]")
        return 0
    identical = result.data["identical_all"]
    recovered = result.data["all_recovered"]
    print(f"[worker chaos: {result.data['total_incidents']} incidents "
          f"recovered; byte-parity "
          f"{'holds' if identical else 'BROKEN'}; recovery coverage "
          f"{'complete' if recovered else 'INCOMPLETE'}]")
    return 0 if identical and recovered else 1


def _print_bench(records) -> None:
    for record in records:
        rate = record["events_per_s"]
        line = (f"{record['label']}: {record['wall_s']}s, "
                f"{record['sim_events']} events "
                f"({rate if rate is not None else 'n/a'}/s)")
        layers = record.get("layer_events")
        if layers:
            parts = ", ".join(f"{layer}={n}"
                              for layer, n in layers.items())
            line += f" [{parts}]"
        print(line)


def _dispatch(args) -> int:
    if args.chaos_workers is not None:
        return _dispatch_chaos_workers(args)

    if args.chaos:
        from .chaos import DEFAULT_SCENARIOS, run as run_chaos
        options = {"base_seed": args.seed}
        if args.scenarios:
            options["scenarios"] = [
                key.strip() for key in args.scenarios.split(",") if key]
        if args.plans:
            options["plans"] = [
                name.strip() for name in args.plans.split(",") if name]
        result = run_chaos(**options)
        print(result.render())
        if args.csv:
            print(f"[csv written to {write_csv(result, args.csv)}]")
        violations = result.data["total_violations"]
        accounted = result.data["all_accounted"]
        print(f"[chaos sweep: {violations} invariant violations; "
              f"work conservation "
              f"{'holds' if accounted else 'BROKEN'}]")
        return 0 if violations == 0 and accounted else 1

    if args.bench_fig17:
        from .bench import bench_path, run_fig17_milestone
        _print_bench(run_fig17_milestone(seed=args.seed))
        print(f"[milestone pair appended to {bench_path()}]")
        return 0

    if args.bench_fig11:
        from .bench import bench_path, run_fig11_milestone
        _print_bench(run_fig11_milestone(seed=args.seed))
        print(f"[milestone pair appended to {bench_path()}]")
        return 0

    if args.bench_dispatch:
        from .bench import bench_path, run_dispatch_milestone
        _print_bench(run_dispatch_milestone(seed=args.seed))
        print(f"[milestone pair appended to {bench_path()}]")
        return 0

    if args.bench_shard:
        from .bench import bench_path, run_shard_milestone
        _print_bench(run_shard_milestone(seed=args.seed))
        print(f"[milestone pair appended to {bench_path()}]")
        return 0

    if args.bench_cloudshard:
        from .bench import bench_path, run_cloudshard_milestone
        _print_bench(run_cloudshard_milestone(seed=args.seed))
        print(f"[milestone pair appended to {bench_path()}]")
        return 0

    if args.bench_smoke:
        from .bench import bench_path, run_smoke
        _print_bench(run_smoke(max_workers=args.workers))
        print(f"[trajectory appended to {bench_path()}]")
        return 0

    if args.list or args.figure is None:
        print("Available experiments:")
        for figure in experiment_ids():
            print(f"  {figure}")
        return 0

    figures = experiment_ids() if args.figure == "all" else [args.figure]
    for figure in figures:
        options = {"base_seed": args.seed}
        runner_params = inspect.signature(EXPERIMENTS[figure]).parameters
        if args.workers is not None and "max_workers" in runner_params:
            options["max_workers"] = args.workers
        result = run_experiment(figure, **options)
        print(result.render())
        if args.csv:
            print(f"[csv written to {write_csv(result, args.csv)}]")
        layers = ", ".join(f"{layer}={n}"
                           for layer, n in result.layer_events.items())
        print(f"[{figure} completed in {result.elapsed_s:.1f}s, "
              f"{result.sim_events} kernel events ({layers})]\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
