"""Fig 15: decision quality without and with retraining.

Runs both end-to-end scenarios on HiveMind with the recognition model's
continuous learning set to ``none`` (never retrained), ``self`` (each
device retrains on its own decisions), and ``swarm`` (the whole swarm's
decisions retrain one global model).

Expected shape: never-retrained models leave a non-trivial rate of false
positives and negatives; per-device retraining improves accuracy; swarm-
wide retraining converges fastest and nearly eliminates both error kinds.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..apps import SCENARIO_A, SCENARIO_B
from ..platforms import ScenarioRunner, platform_config
from .common import ExperimentResult
from .parallel import run_sweep

MODES = ("none", "self", "swarm")

_SCENARIOS = {s.key: s for s in (SCENARIO_A, SCENARIO_B)}


def _mode_cell(scenario_key: str, mode: str, seed: int,
               passes: int) -> Tuple[float, float, float, int]:
    """(correct%, fn%, fp%, decisions) — picklable pool cell."""
    result = ScenarioRunner(
        platform_config("hivemind"), _SCENARIOS[scenario_key], seed=seed,
        retraining=mode, passes=passes).run()
    tally = result.extras["tally"]
    correct, fn, fp = tally.as_row()
    return (correct, fn, fp, tally.decisions)


def run(base_seed: int = 0, passes: int = 4,
        max_workers: Optional[int] = None) -> ExperimentResult:
    cells = [(scenario.key, mode, base_seed, passes)
             for scenario in (SCENARIO_A, SCENARIO_B)
             for mode in MODES]
    samples = run_sweep(_mode_cell, cells, max_workers=max_workers)

    rows: List[List] = []
    data: Dict[str, Dict] = {}
    for (scenario_key, mode, _, _), sample in zip(cells, samples):
        correct, fn, fp, decisions = sample.value
        key = f"{scenario_key}:{mode}"
        rows.append([key, round(correct, 1), round(fn, 1), round(fp, 1)])
        data[key] = {"correct_pct": correct, "fn_pct": fn,
                     "fp_pct": fp, "decisions": decisions}
    return ExperimentResult(
        figure="fig15",
        title="Detection accuracy by retraining mode",
        headers=["key", "correct_pct", "false_neg_pct", "false_pos_pct"],
        rows=rows,
        data=data,
    )
