"""Fig 15: decision quality without and with retraining.

Runs both end-to-end scenarios on HiveMind with the recognition model's
continuous learning set to ``none`` (never retrained), ``self`` (each
device retrains on its own decisions), and ``swarm`` (the whole swarm's
decisions retrain one global model).

Expected shape: never-retrained models leave a non-trivial rate of false
positives and negatives; per-device retraining improves accuracy; swarm-
wide retraining converges fastest and nearly eliminates both error kinds.
"""

from __future__ import annotations

from typing import Dict, List

from ..apps import SCENARIO_A, SCENARIO_B
from ..platforms import ScenarioRunner, platform_config
from .common import ExperimentResult

MODES = ("none", "self", "swarm")


def run(base_seed: int = 0, passes: int = 4) -> ExperimentResult:
    config = platform_config("hivemind")
    rows: List[List] = []
    data: Dict[str, Dict] = {}
    for scenario in (SCENARIO_A, SCENARIO_B):
        for mode in MODES:
            result = ScenarioRunner(
                config, scenario, seed=base_seed, retraining=mode,
                passes=passes).run()
            tally = result.extras["tally"]
            correct, fn, fp = tally.as_row()
            key = f"{scenario.key}:{mode}"
            rows.append([key, round(correct, 1), round(fn, 1),
                         round(fp, 1)])
            data[key] = {"correct_pct": correct, "fn_pct": fn,
                         "fp_pct": fp, "decisions": tally.decisions}
    return ExperimentResult(
        figure="fig15",
        title="Detection accuracy by retraining mode",
        headers=["key", "correct_pct", "false_neg_pct", "false_pos_pct"],
        rows=rows,
        data=data,
    )
