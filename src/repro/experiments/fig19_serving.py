"""Fig 19 (extension): open-loop serving under heavy traffic.

The paper's figures close the loop — every cloud call belongs to a
swarm device that waits for it — so offered load can never exceed what
the fleet generates. This extension measures the serverless tier the
way serving systems are measured: an *open-loop* load generator
(:mod:`repro.serving.load`) offers background traffic at a configured
rate regardless of completions, and the reactive policies
(:mod:`repro.serving.admission`, :mod:`repro.serving.autoscale`)
defend tail latency.

Two lanes, both on a deliberately small regional slice (2 servers x
4 cores) so the saturation knee sits at a few dozen rps and the whole
figure runs in seconds:

- **Knee sweep** (autoscaler pinned off, admission armed): one Poisson
  tenant offered at multiples of the slice's analytic capacity
  ``cores / E[service]``. Below the knee p50/p99/p999 are flat and
  nothing sheds; past it the gate engages and the shed rate — not the
  tail — absorbs the overload.
- **Flash crowd** (autoscaler armed): an on/off tenant bursts
  ``burst_mult``x over its baseline at a deterministic onset. The
  autoscaled lane starts from one active server and must react; the
  ``static`` lane is the peak-provisioned baseline (the full slice
  always on). The rows report the autoscaler's reaction time
  (decision lag + provisioning lead) and each lane's tail and shed
  rate.

Deterministic at a fixed seed: arrivals come from the seed's private
serving stream namespace, the gateway prices them on its own offset
namespace, and both policies are pure functions of the observed
``(t, backlog)`` sequence.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .. import obs
from ..apps import SCENARIO_A
from ..config import DEFAULT
from ..platforms import platform_config
from ..serverless.region import RegionGateway
from ..serving import (AdmissionConfig, AutoscaleConfig, ServingConfig,
                       ServingPolicy, TenantSpec, emit_serving_spans,
                       generate_serving_calls)
from ..sim import flags
from .common import ExperimentResult

__all__ = ["run", "SERVING_SERVERS", "SERVING_CORES",
           "OFFERED_MULTIPLIERS"]

#: The shrunk regional slice under test (the full 12x40 paper cluster
#: needs ~2k rps to saturate — pointless event count for the same
#: curve shape).
SERVING_SERVERS = 2
SERVING_CORES = 4

#: Offered load as multiples of the slice's analytic capacity.
OFFERED_MULTIPLIERS = (0.5, 0.8, 1.2, 1.6, 2.4)

#: Flash-crowd shape: baseline mean at 60% of capacity, 8x bursts.
FLASH_UTILISATION = 0.6
FLASH_BURST_MULT = 8.0
FLASH_ON_S = 12.0
FLASH_OFF_S = 28.0


def _serving_constants():
    """The paper constants with the cluster shrunk to the test slice."""
    return dataclasses.replace(
        DEFAULT, cluster=dataclasses.replace(
            DEFAULT.cluster, servers=SERVING_SERVERS,
            cores_per_server=SERVING_CORES))


def capacity_rps() -> float:
    """Analytic saturation rate of the slice: cores over mean service
    time (lognormal mean of the ScA recognition app)."""
    app = SCENARIO_A.recognition
    mean_service = (app.cloud_service_s
                    * math.exp(app.service_sigma ** 2 / 2.0))
    return SERVING_SERVERS * SERVING_CORES / mean_service


def _run_lane(tenants: Tuple[TenantSpec, ...], serving_cfg: ServingConfig,
              seed: int, label: str) -> Dict[str, object]:
    """One open-loop run against a fresh regional slice; returns the
    lane's latency/shed/scale summary."""
    constants = _serving_constants()
    policy = ServingPolicy(serving_cfg, n_servers=SERVING_SERVERS,
                           cores_per_server=SERVING_CORES)
    gateway = RegionGateway(
        platform_config("hivemind"), SCENARIO_A, constants,
        region=0, n_regions=1, region_devices=64, total_devices=64,
        seed=seed, serving=policy)
    calls, truncated = generate_serving_calls(
        tenants, serving_cfg.duration_s, seed, SCENARIO_A, n_regions=1)
    arrivals = {(call.cell, call.seq): call.arrival_s for call in calls}
    completions = gateway.serve(calls)
    latencies = np.asarray([done_s - arrivals[(cell, seq)]
                            for cell, seq, done_s, _ in completions])
    offered = len(calls)
    shed = gateway.shed_calls
    out: Dict[str, object] = {
        "offered_calls": offered,
        "served_calls": len(completions),
        "shed_calls": shed,
        "shed_rate": (shed / offered) if offered else 0.0,
        "cold_starts": gateway.cold_starts,
        "stats": policy.stats(),
    }
    if truncated:
        out["truncated_tenants"] = list(truncated)
    for quantile_label, quantile in (("p50", 50.0), ("p99", 99.0),
                                     ("p999", 99.9)):
        out[f"{quantile_label}_s"] = (
            float(np.percentile(latencies, quantile))
            if len(latencies) else float("nan"))
    if policy.autoscaler is not None:
        out["scale_outs"] = policy.autoscaler.stats()["scale_outs"]
    emit_serving_spans(obs.active_tracer(), policy.stats(), label)
    return out


def run(base_seed: int = 0, duration_s: float = 60.0,
        multipliers: Optional[Sequence[float]] = None,
        admission: Optional[bool] = None,
        autoscale: Optional[bool] = None) -> ExperimentResult:
    """p50/p99/p999 + shed rate vs offered load, and flash-crowd
    autoscaler reaction time.

    ``admission``/``autoscale`` override the
    ``REPRO_SERVING_ADMISSION``/``REPRO_SERVING_AUTOSCALE``
    sub-switches (the knee sweep always pins the autoscaler off — its
    subject is the fixed slice's knee; the flash lane runs once with
    the autoscaler as resolved, scaling up from one server, and once
    pinned off at full static provisioning, so the rows compare
    elasticity against the peak-provisioned baseline).
    """
    admission_on = flags.serving_admission_enabled(admission)
    autoscale_on = flags.serving_autoscale_enabled(autoscale)
    cap = capacity_rps()
    headers = ["lane", "offered_rps", "p50_ms", "p99_ms", "p999_ms",
               "shed_%", "scale_outs", "reaction_s"]
    rows: List[List] = []
    data: Dict[str, object] = {
        "capacity_rps": cap,
        "admission_enabled": admission_on,
        "autoscale_enabled": autoscale_on,
    }

    sweep: Dict[float, Dict[str, object]] = {}
    for multiplier in (multipliers or OFFERED_MULTIPLIERS):
        rate = cap * multiplier
        tenants = (TenantSpec(name="users", kind="poisson",
                              rate_rps=rate),)
        cfg = ServingConfig(
            tenants=tenants, duration_s=duration_s,
            admission_enabled=admission_on, autoscale_enabled=False)
        lane = _run_lane(tenants, cfg, base_seed,
                         f"sweep-{multiplier:g}x")
        sweep[multiplier] = lane
        rows.append([
            f"load-{multiplier:g}x", round(rate, 1),
            round(lane["p50_s"] * 1e3, 1), round(lane["p99_s"] * 1e3, 1),
            round(lane["p999_s"] * 1e3, 1),
            round(lane["shed_rate"] * 100.0, 2), "-", "-"])
    data["sweep"] = sweep

    flash_tenant = TenantSpec(
        name="flash", kind="onoff",
        rate_rps=cap * FLASH_UTILISATION, burst_mult=FLASH_BURST_MULT,
        on_s=FLASH_ON_S, off_s=FLASH_OFF_S)
    flash: Dict[str, Dict[str, object]] = {}
    for lane_key, armed in (("autoscaled", autoscale_on),
                            ("static", False)):
        cfg = ServingConfig(
            tenants=(flash_tenant,), duration_s=duration_s,
            admission_enabled=admission_on, autoscale_enabled=armed,
            admission=AdmissionConfig(),
            # The backlog signal counts every in-flight invocation
            # (recognition *and* its dedup hold admission slots), so
            # the per-core default threshold sits below baseline
            # occupancy; 3x cores clears the baseline and still trips
            # within a second of the burst onset.
            autoscale=AutoscaleConfig(
                min_servers=1,
                scale_out_backlog=3 * SERVING_CORES))
        policy_lane = _run_lane((flash_tenant,), cfg, base_seed,
                                f"flash-{lane_key}")
        reaction = None
        if armed:
            events = (policy_lane["stats"].get("autoscale") or {})
            for event in events.get("events", ()):
                if (event["direction"] == "out"
                        and event["decided_s"]
                        >= flash_tenant.burst_start_s):
                    reaction = (event["ready_s"]
                                - flash_tenant.burst_start_s)
                    break
        policy_lane["reaction_s"] = reaction
        flash[lane_key] = policy_lane
        rows.append([
            f"flash-{lane_key}",
            round(flash_tenant.rate_rps, 1),
            round(policy_lane["p50_s"] * 1e3, 1),
            round(policy_lane["p99_s"] * 1e3, 1),
            round(policy_lane["p999_s"] * 1e3, 1),
            round(policy_lane["shed_rate"] * 100.0, 2),
            policy_lane.get("scale_outs", 0) if armed else "-",
            round(reaction, 2) if reaction is not None else "-"])
    data["flash"] = flash

    return ExperimentResult(
        figure="fig19",
        title=("Open-loop serving: latency/shed vs offered load, "
               "flash-crowd elasticity"),
        headers=headers,
        rows=rows,
        data=data,
    )
