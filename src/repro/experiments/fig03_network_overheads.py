"""Fig 3: network overheads of fully centralized execution.

(a) Latency breakdown — network / management / cloud execution — at the
median and the 99th percentile for S1-S10 and both scenarios, all running
on the centralized FaaS platform. Expected shape: networking >= 22% of
median latency everywhere, ~33% on average, and a larger share at the tail.

(b) Wireless bandwidth and tail latency for face recognition (S1) as the
number of drones grows, per frame resolution (0.5-8 MB at 8 fps).
Expected shape: tail latency stays low until offered load crosses the
shared-medium capacity, then explodes; higher resolutions saturate at
fewer drones (8 MB saturates below 4 drones).
"""

from __future__ import annotations

from typing import Dict, List

from ..apps import SCENARIO_A, SCENARIO_B, all_apps, app
from ..platforms import ScenarioRunner, SingleTierRunner, platform_config
from .common import ExperimentResult

CENTRALIZED = "centralized_faas"


def run_breakdown(duration_s: float = 60.0, load_fraction: float = 0.45,
                  base_seed: int = 0) -> ExperimentResult:
    """Fig 3a."""
    config = platform_config(CENTRALIZED)
    rows: List[List] = []
    data: Dict[str, Dict] = {}
    for spec in all_apps():
        result = SingleTierRunner(
            config, spec, seed=base_seed, duration_s=duration_s,
            load_fraction=load_fraction).run()
        median = result.breakdowns.median_fractions()
        tail = result.breakdowns.tail_fractions()
        rows.append([spec.key,
                     round(100 * median["network"], 1),
                     round(100 * median["management"], 1),
                     round(100 * (median["execution"] +
                                  median["data_io"]), 1),
                     round(100 * tail["network"], 1)])
        data[spec.key] = {"median": median, "tail": tail}
    for scenario in (SCENARIO_A, SCENARIO_B):
        result = ScenarioRunner(config, scenario, seed=base_seed).run()
        median = result.breakdowns.median_fractions()
        tail = result.breakdowns.tail_fractions()
        rows.append([scenario.key,
                     round(100 * median["network"], 1),
                     round(100 * median["management"], 1),
                     round(100 * (median["execution"] +
                                  median["data_io"]), 1),
                     round(100 * tail["network"], 1)])
        data[scenario.key] = {"median": median, "tail": tail}
    return ExperimentResult(
        figure="fig03a",
        title="Centralized latency breakdown (percent of latency)",
        headers=["job", "network_med_pct", "mgmt_med_pct",
                 "exec_med_pct", "network_p99_pct"],
        rows=rows,
        data=data,
    )


def run_saturation(drone_counts=(2, 4, 6, 8, 10, 12, 14, 16),
                   frame_mbs=(0.5, 1.0, 2.0, 4.0, 8.0),
                   duration_s: float = 40.0,
                   base_seed: int = 0) -> ExperimentResult:
    """Fig 3b: S1 bandwidth + tail latency vs drones x resolution."""
    config = platform_config(CENTRALIZED)
    spec = app("S1")
    rows: List[List] = []
    data: Dict[str, Dict] = {}
    for frame_mb in frame_mbs:
        for n_drones in drone_counts:
            result = SingleTierRunner(
                config, spec, seed=base_seed, duration_s=duration_s,
                n_devices=n_drones, frame_mb=frame_mb,
                load_fraction=100.0).run()  # offered = full camera rate
            bandwidth, _ = result.bandwidth_summary()
            tail_ms = result.tail_latency_s * 1000
            rows.append([f"{frame_mb}MB:{n_drones}", frame_mb, n_drones,
                         round(bandwidth, 1), round(tail_ms, 0)])
            data[f"{frame_mb}MB:{n_drones}"] = {
                "bandwidth_mbs": bandwidth, "tail_ms": tail_ms}
    return ExperimentResult(
        figure="fig03b",
        title="S1 bandwidth and tail latency vs drones and resolution",
        headers=["key", "frame_mb", "drones", "bandwidth_mbs", "tail_ms"],
        rows=rows,
        data=data,
    )


def run(base_seed: int = 0) -> ExperimentResult:
    """Combined 3a (the headline sub-figure)."""
    return run_breakdown(base_seed=base_seed)
