"""Fig 11: task/job latency PDFs — centralized, distributed, HiveMind.

Expected shape: HiveMind's latency is consistently the lowest and the
tightest across S1-S10 and both scenarios; the largest wins come from the
compute- and memory-intensive jobs (maze, OCR, SLAM, Scenario B); S3/S4
show small gains. HiveMind's end-to-end performance is ~56% better than
centralized on average (up to 2.85x in the paper).
"""

from __future__ import annotations

from typing import Dict, List

from ..apps import SCENARIO_A, SCENARIO_B, all_apps
from ..platforms import ScenarioRunner, SingleTierRunner, platform_config
from .common import ExperimentResult

PLATFORMS = ("centralized_faas", "distributed_edge", "hivemind")


def run(duration_s: float = 60.0, load_fraction: float = 0.6,
        base_seed: int = 0) -> ExperimentResult:
    rows: List[List] = []
    data: Dict[str, Dict] = {}
    for spec in all_apps():
        for platform in PLATFORMS:
            result = SingleTierRunner(
                platform_config(platform), spec, seed=base_seed,
                duration_s=duration_s, load_fraction=load_fraction).run()
            summary = result.task_latencies.summary()
            key = f"{spec.key}:{platform}"
            rows.append([key, round(summary.median * 1000, 1),
                         round(summary.p99 * 1000, 1),
                         round(summary.std * 1000, 1)])
            data[key] = summary
    for scenario in (SCENARIO_A, SCENARIO_B):
        for platform in PLATFORMS:
            result = ScenarioRunner(
                platform_config(platform), scenario, seed=base_seed).run()
            key = f"{scenario.key}:{platform}"
            makespan = result.extras["makespan_s"]
            rows.append([key, round(makespan * 1000, 0), "", ""])
            data[key] = {"makespan_s": makespan}
    return ExperimentResult(
        figure="fig11",
        title="Latency (ms): centralized vs distributed vs HiveMind",
        headers=["key", "median_ms", "p99_ms", "std_ms"],
        rows=rows,
        data=data,
    )
