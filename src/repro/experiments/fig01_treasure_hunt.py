"""Fig 1: execution time and consumed battery for the treasure-hunt
scenario (Scenario A) on real-scale (16) and simulated (1000) swarms,
across Centralized IaaS, Centralized FaaS, Distributed Edge, and HiveMind.

Expected shape (paper): HiveMind fastest and most battery-efficient at
both scales; centralized systems degrade dramatically at 1000 drones
(control-plane and static-reservation walls); distributed scales in
execution time but burns the most battery of the scalable systems.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..apps import SCENARIO_A
from ..platforms import ScenarioRunner, platform_config
from .common import ExperimentResult, mean_over_seeds
from .parallel import replica_seeds, run_sweep

PLATFORM_ORDER = ("centralized_iaas", "centralized_faas",
                  "distributed_edge", "hivemind")


def _replica(seed: int, platform: str,
             n_devices: int) -> Tuple[float, float]:
    """One (makespan, consumed-battery) sample — picklable pool cell."""
    result = ScenarioRunner(
        platform_config(platform), SCENARIO_A, seed=seed,
        n_devices=n_devices).run()
    return (result.extras["makespan_s"], result.battery_summary()[0])


def run(repeats: int = 2, n_small: int = 16, n_large: int = 1000,
        base_seed: int = 0,
        max_workers: Optional[int] = None) -> ExperimentResult:
    # Every (swarm size, platform, replica) cell is independent, so the
    # whole grid is one flat sweep: the pool stays busy across groups
    # instead of draining per-platform.
    seeds = replica_seeds(repeats, base_seed)
    cells = [(seed, name, n_devices)
             for n_devices in (n_small, n_large)
             for name in PLATFORM_ORDER
             for seed in seeds]
    samples = run_sweep(_replica, cells, max_workers=max_workers)

    rows: List[List] = []
    data: Dict[str, Dict] = {}
    by_group = iter(samples)
    for n_devices in (n_small, n_large):
        for name in PLATFORM_ORDER:
            group = [next(by_group).value for _ in seeds]
            exec_time = mean_over_seeds([m for m, _ in group])
            battery = mean_over_seeds([b for _, b in group])
            rows.append([f"n={n_devices}:{name}", n_devices, name,
                         round(exec_time, 1), round(battery, 1)])
            data[f"{n_devices}:{name}"] = {
                "exec_time_s": exec_time, "battery_pct": battery}
    return ExperimentResult(
        figure="fig01",
        title="Treasure hunt: execution time and consumed battery",
        headers=["key", "devices", "platform", "exec_time_s",
                 "battery_pct"],
        rows=rows,
        data=data,
    )
