"""Fig 1: execution time and consumed battery for the treasure-hunt
scenario (Scenario A) on real-scale (16) and simulated (1000) swarms,
across Centralized IaaS, Centralized FaaS, Distributed Edge, and HiveMind.

Expected shape (paper): HiveMind fastest and most battery-efficient at
both scales; centralized systems degrade dramatically at 1000 drones
(control-plane and static-reservation walls); distributed scales in
execution time but burns the most battery of the scalable systems.
"""

from __future__ import annotations

from typing import Dict, List

from ..apps import SCENARIO_A
from ..platforms import ScenarioRunner, platform_config
from .common import ExperimentResult, mean_over_seeds, summarize_runs

PLATFORM_ORDER = ("centralized_iaas", "centralized_faas",
                  "distributed_edge", "hivemind")


def run(repeats: int = 2, n_small: int = 16, n_large: int = 1000,
        base_seed: int = 0) -> ExperimentResult:
    rows: List[List] = []
    data: Dict[str, Dict] = {}
    for n_devices in (n_small, n_large):
        for name in PLATFORM_ORDER:
            config = platform_config(name)
            results = summarize_runs(
                lambda seed: ScenarioRunner(
                    config, SCENARIO_A, seed=seed,
                    n_devices=n_devices).run(),
                repeats, base_seed)
            exec_time = mean_over_seeds(
                [r.extras["makespan_s"] for r in results])
            battery = mean_over_seeds(
                [r.battery_summary()[0] for r in results])
            rows.append([f"n={n_devices}:{name}", n_devices, name,
                         round(exec_time, 1), round(battery, 1)])
            data[f"{n_devices}:{name}"] = {
                "exec_time_s": exec_time, "battery_pct": battery}
    return ExperimentResult(
        figure="fig01",
        title="Treasure hunt: execution time and consumed battery",
        headers=["key", "devices", "platform", "exec_time_s",
                 "battery_pct"],
        rows=rows,
        data=data,
    )
