"""Shared experiment-harness utilities.

Every figure module exposes ``run(options) -> ExperimentResult``. Results
carry structured rows plus a rendered table so benchmarks can both assert
on the numbers and print the same series the paper reports.

Repeats default below the paper's (10x for jobs, 50x for scenarios) to keep
the full harness runnable in minutes; pass ``repeats=...`` for more.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Sequence

import numpy as np

from ..telemetry import render_table

__all__ = ["ExperimentResult", "mean_over_seeds", "summarize_runs"]


@dataclass
class ExperimentResult:
    """Structured output of one figure's harness."""

    figure: str
    title: str
    headers: List[str]
    rows: List[List[Any]]
    #: Free-form per-figure payloads (series, tallies) for assertions.
    data: Dict[str, Any] = field(default_factory=dict)

    def render(self) -> str:
        return render_table(self.headers, self.rows,
                            title=f"{self.figure}: {self.title}")

    def column(self, header: str) -> List[Any]:
        index = self.headers.index(header)
        return [row[index] for row in self.rows]

    def row_for(self, key: Any) -> List[Any]:
        for row in self.rows:
            if row[0] == key:
                return row
        raise KeyError(f"no row keyed {key!r} in {self.figure}")

    def cell(self, key: Any, header: str) -> Any:
        return self.row_for(key)[self.headers.index(header)]


def mean_over_seeds(values: Sequence[float]) -> float:
    if not values:
        raise ValueError("no values")
    return float(np.mean(values))


def summarize_runs(run_factory: Callable[[int], Any],
                   repeats: int, base_seed: int = 0) -> List[Any]:
    """Run ``repeats`` replicas with distinct seeds."""
    if repeats <= 0:
        raise ValueError("repeats must be positive")
    return [run_factory(base_seed + 1000 * replica)
            for replica in range(repeats)]
