"""Shared experiment-harness utilities.

Every figure module exposes ``run(options) -> ExperimentResult``. Results
carry structured rows plus a rendered table so benchmarks can both assert
on the numbers and print the same series the paper reports.

Repeats default below the paper's (10x for jobs, 50x for scenarios) to keep
the full harness runnable in minutes; pass ``repeats=...`` for more.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

import numpy as np

from ..telemetry import render_table
from .parallel import run_replicas

__all__ = ["ExperimentResult", "mean_over_seeds", "summarize_runs"]


@dataclass
class ExperimentResult:
    """Structured output of one figure's harness."""

    figure: str
    title: str
    headers: List[str]
    rows: List[List[Any]]
    #: Free-form per-figure payloads (series, tallies) for assertions.
    data: Dict[str, Any] = field(default_factory=dict)
    #: Wall-clock seconds the harness took (filled in by the registry).
    elapsed_s: float = 0.0
    #: Kernel events dispatched while producing this result, pool workers
    #: included (filled in by the registry).
    sim_events: int = 0
    #: Per-layer breakdown of ``sim_events`` (edge/network/serverless plus
    #: the untagged remainder under "other"; filled in by the registry).
    layer_events: Dict[str, int] = field(default_factory=dict)
    #: Structured run manifest (:class:`repro.obs.RunManifest`): seed,
    #: flags, git revision, accounting — attached by the registry.
    manifest: Optional[Any] = None

    def render(self) -> str:
        return render_table(self.headers, self.rows,
                            title=f"{self.figure}: {self.title}")

    def column(self, header: str) -> List[Any]:
        index = self.headers.index(header)
        return [row[index] for row in self.rows]

    def row_for(self, key: Any) -> List[Any]:
        for row in self.rows:
            if row[0] == key:
                return row
        raise KeyError(f"no row keyed {key!r} in {self.figure}")

    def cell(self, key: Any, header: str) -> Any:
        return self.row_for(key)[self.headers.index(header)]


def mean_over_seeds(values: Sequence[float]) -> float:
    if not values:
        raise ValueError("no values")
    return float(np.mean(values))


def summarize_runs(run_factory: Callable[[int], Any],
                   repeats: int, base_seed: int = 0,
                   max_workers: Optional[int] = None) -> List[Any]:
    """Run ``repeats`` replicas with distinct seeds, replica order kept.

    Replicas fan out over a process pool when ``run_factory`` is picklable
    (module-level functions — closures fall back to in-process execution);
    the seed schedule and result order are identical either way.
    """
    if repeats <= 0:
        raise ValueError("repeats must be positive")
    return [task.value for task in
            run_replicas(run_factory, repeats, base_seed,
                         max_workers=max_workers)]
