"""Registry of every figure's harness (the per-experiment index)."""

from __future__ import annotations

import time
from typing import Callable, Dict, List

from . import (
    chaos,
    fig01_treasure_hunt,
    fig03_network_overheads,
    fig04_centralized_vs_distributed,
    fig05_serverless_opportunities,
    fig06_serverless_challenges,
    fig11_performance,
    fig12_breakdown,
    fig13_ablation,
    fig14_power_bandwidth,
    fig15_learning,
    fig16_cars,
    fig17_scalability,
    fig18_validation,
    fig19_serving,
    sweep,
)
from .common import ExperimentResult
from .. import obs
from ..sim import supervisor
from ..sim.accounting import layer_breakdown
from .parallel import (pool_degradations, total_events_consumed,
                       total_layer_counts)

__all__ = ["EXPERIMENTS", "run_experiment", "experiment_ids"]

EXPERIMENTS: Dict[str, Callable[..., ExperimentResult]] = {
    "chaos": chaos.run,
    # Worker chaos: SIGKILL/hang real shard workers, assert byte-parity.
    "chaos-workers": chaos.run_workers,
    "fig01": fig01_treasure_hunt.run,
    "fig03a": fig03_network_overheads.run_breakdown,
    "fig03b": fig03_network_overheads.run_saturation,
    "fig04": fig04_centralized_vs_distributed.run,
    "fig05a": fig05_serverless_opportunities.run_concurrency,
    "fig05b": fig05_serverless_opportunities.run_elasticity,
    "fig05c": fig05_serverless_opportunities.run_fault_tolerance,
    "fig06a": fig06_serverless_challenges.run_variability,
    "fig06b": fig06_serverless_challenges.run_breakdown,
    "fig06c": fig06_serverless_challenges.run_sharing,
    "fig11": fig11_performance.run,
    "fig12": fig12_breakdown.run,
    "fig13": fig13_ablation.run,
    "fig14": fig14_power_bandwidth.run,
    "fig15": fig15_learning.run,
    "fig16": fig16_cars.run,
    "fig17a": fig17_scalability.run_resolution,
    "fig17b": fig17_scalability.run_swarm_size,
    # Mean-field extension of fig17b: 10k-1M devices, zero kernel events.
    "fig17c": fig17_scalability.run_extended,
    # Hybrid exact-focus + mean-field-background fleets (sharded cloud).
    "fig17d": fig17_scalability.run_hybrid,
    "fig18": fig18_validation.run,
    # Open-loop serving: latency/shed knee + flash-crowd elasticity.
    "fig19": fig19_serving.run,
    # Closed-form (app, platform, N) grid — zero kernel events by design.
    "sweep": sweep.run,
    # Exact-vs-analytic tolerance check at small N (CI's sweep-smoke job).
    "sweep-validate": sweep.validate,
}


def experiment_ids() -> List[str]:
    return sorted(EXPERIMENTS)


def run_experiment(figure: str, **options) -> ExperimentResult:
    """Run one figure's harness by id (e.g. ``"fig11"``).

    The returned result carries wall-clock seconds and the number of
    kernel events dispatched (pool workers included) in ``elapsed_s`` /
    ``sim_events``.
    """
    runner = EXPERIMENTS.get(figure)
    if runner is None:
        raise KeyError(
            f"unknown experiment {figure!r}; valid: {experiment_ids()}")
    events_before = total_events_consumed()
    layers_before = total_layer_counts()
    incident_mark = supervisor.incident_count()
    start = time.perf_counter()
    result = runner(**options)
    result.elapsed_s = time.perf_counter() - start
    result.sim_events = total_events_consumed() - events_before
    layers_after = total_layer_counts()
    result.layer_events = layer_breakdown(
        {layer: layers_after[layer] - layers_before.get(layer, 0)
         for layer in layers_after},
        result.sim_events)
    tracer = obs.active_tracer()
    # Anomalies stay out of the manifest unless they happened: absent
    # keys keep undisturbed manifests byte-comparable across revisions.
    extra: Dict[str, object] = {}
    degraded = pool_degradations()
    if degraded:
        extra["pool_degradations"] = degraded
    incidents = supervisor.incidents_since(incident_mark)
    if incidents:
        extra["worker_incidents"] = [i.to_dict() for i in incidents]
        extra["worker_recoveries"] = len(incidents)
    result.manifest = obs.RunManifest.collect(
        figure, seed=options.get("base_seed"),
        elapsed_s=result.elapsed_s,
        sim_events=result.sim_events,
        layer_events=dict(result.layer_events),
        spans=len(tracer) if tracer is not None else 0,
        extra=extra)
    return result
