"""Fig 17: HiveMind's scalability.

(a) Wireless bandwidth and tail (job) latency for both scenarios on
HiveMind as frame resolution rises (0.5-8 MB at 8 fps, plus 8 MB at 16 and
32 fps). Expected shape: the on-board filter bounds what ships upstream,
so bandwidth grows sublinearly and latency stays flat — no saturation even
at maximum resolution and frame rate (where the centralized system of
Fig 3b collapsed).

(b) Bandwidth and tail latency as the (simulated) swarm grows from 16
toward thousands of drones, field and access network scaled proportionally
while the backend cluster stays fixed. Expected shape: HiveMind's
bandwidth grows sublinearly in devices and its latency stays near-flat,
versus the centralized system's explosion (cf. Fig 1 bottom).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from ..apps import SCENARIO_A, SCENARIO_B
from ..platforms import ScenarioRunner, platform_config
from .common import ExperimentResult

RESOLUTIONS: Sequence[Tuple[float, float]] = (
    (0.5, 8), (1.0, 8), (2.0, 8), (4.0, 8), (8.0, 8), (8.0, 16), (8.0, 32))


def run_resolution(base_seed: int = 0) -> ExperimentResult:
    """Fig 17a."""
    config = platform_config("hivemind")
    rows: List[List] = []
    data: Dict[str, Dict] = {}
    for scenario in (SCENARIO_A, SCENARIO_B):
        for frame_mb, fps in RESOLUTIONS:
            result = ScenarioRunner(
                config, scenario, seed=base_seed,
                frame_mb=frame_mb, fps=fps).run()
            bw_mean, bw_tail = result.bandwidth_summary()
            tail_s = result.task_latencies.p99
            key = f"{scenario.key}:{frame_mb}MB@{int(fps)}fps"
            rows.append([key, round(bw_mean, 1),
                         round(tail_s, 2),
                         round(result.extras["makespan_s"], 1)])
            data[key] = {"bandwidth_mbs": bw_mean, "tail_s": tail_s,
                         "makespan_s": result.extras["makespan_s"]}
    return ExperimentResult(
        figure="fig17a",
        title="HiveMind bandwidth/latency vs resolution",
        headers=["key", "bw_mean_mbs", "task_p99_s", "makespan_s"],
        rows=rows,
        data=data,
    )


def run_swarm_size(sizes: Sequence[int] = (16, 32, 64, 128, 256, 512, 1024),
                   base_seed: int = 0,
                   include_centralized_upto: int = 256
                   ) -> ExperimentResult:
    """Fig 17b (the paper sweeps to 8k; default here caps at 1k for
    runtime — pass a larger ``sizes`` for the full sweep)."""
    rows: List[List] = []
    data: Dict[str, Dict] = {}
    for scenario in (SCENARIO_A, SCENARIO_B):
        for n_devices in sizes:
            result = ScenarioRunner(
                platform_config("hivemind"), scenario, seed=base_seed,
                n_devices=n_devices).run()
            bw_mean, _ = result.bandwidth_summary()
            key = f"{scenario.key}:hivemind:{n_devices}"
            rows.append([key, n_devices, round(bw_mean, 1),
                         round(result.task_latencies.p99, 2),
                         round(result.extras["makespan_s"], 1)])
            data[key] = {
                "bandwidth_mbs": bw_mean,
                "tail_s": result.task_latencies.p99,
                "makespan_s": result.extras["makespan_s"],
            }
            if n_devices <= include_centralized_upto:
                comparison = ScenarioRunner(
                    platform_config("centralized_faas"), scenario,
                    seed=base_seed, n_devices=n_devices).run()
                bw_centralized, _ = comparison.bandwidth_summary()
                ckey = f"{scenario.key}:centralized:{n_devices}"
                rows.append([ckey, n_devices, round(bw_centralized, 1),
                             round(comparison.task_latencies.p99, 2),
                             round(comparison.extras["makespan_s"], 1)])
                data[ckey] = {
                    "bandwidth_mbs": bw_centralized,
                    "tail_s": comparison.task_latencies.p99,
                    "makespan_s": comparison.extras["makespan_s"],
                }
    return ExperimentResult(
        figure="fig17b",
        title="Scalability with swarm size",
        headers=["key", "devices", "bw_mean_mbs", "task_p99_s",
                 "makespan_s"],
        rows=rows,
        data=data,
    )


def run(base_seed: int = 0) -> ExperimentResult:
    return run_resolution(base_seed=base_seed)
