"""Fig 17: HiveMind's scalability.

(a) Wireless bandwidth and tail (job) latency for both scenarios on
HiveMind as frame resolution rises (0.5-8 MB at 8 fps, plus 8 MB at 16 and
32 fps). Expected shape: the on-board filter bounds what ships upstream,
so bandwidth grows sublinearly and latency stays flat — no saturation even
at maximum resolution and frame rate (where the centralized system of
Fig 3b collapsed).

(b) Bandwidth and tail latency as the (simulated) swarm grows from 16
toward thousands of drones, field and access network scaled proportionally
while the backend cluster stays fixed. Expected shape: HiveMind's
bandwidth grows sublinearly in devices and its latency stays near-flat,
versus the centralized system's explosion (cf. Fig 1 bottom).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..apps import SCENARIO_A, SCENARIO_B
from ..platforms import ScenarioRunner, platform_config
from .common import ExperimentResult
from .parallel import run_sweep

RESOLUTIONS: Sequence[Tuple[float, float]] = (
    (0.5, 8), (1.0, 8), (2.0, 8), (4.0, 8), (8.0, 8), (8.0, 16), (8.0, 32))

_SCENARIOS = {s.key: s for s in (SCENARIO_A, SCENARIO_B)}


def _resolution_cell(scenario_key: str, frame_mb: float, fps: float,
                     seed: int) -> Tuple[float, float, float]:
    """(bandwidth mean, task p99, makespan) — picklable pool cell."""
    result = ScenarioRunner(
        platform_config("hivemind"), _SCENARIOS[scenario_key], seed=seed,
        frame_mb=frame_mb, fps=fps).run()
    bw_mean, _ = result.bandwidth_summary()
    return (bw_mean, result.task_latencies.p99,
            result.extras["makespan_s"])


def _swarm_cell(platform: str, scenario_key: str, n_devices: int,
                seed: int) -> Tuple[float, float, float]:
    """(bandwidth mean, task p99, makespan) — picklable pool cell.

    Routing honours the runtime kill switches (resolved here, in the
    pool worker, so ``REPRO_SHARDS``/``REPRO_CLOUD_SHARDS``/
    ``REPRO_HYBRID_EXACT``/``REPRO_MEANFIELD`` set by the CLI reach
    every replica): mean-field collapses the cell to the O(1)
    population model, ``REPRO_SHARDS=N`` fans the exact simulation out
    over N shard processes, ``REPRO_CLOUD_SHARDS=N`` additionally
    decomposes the cloud tier into per-region controller workers,
    ``REPRO_HYBRID_EXACT=N`` keeps an N-device exact focus and injects
    the rest as mean-field synthetic load, ``REPRO_SERVING=<spec>``
    overlays open-loop background traffic on the (implicitly sharded)
    regional cloud tier, and the unarmed default is the byte-identical
    single-process runner.
    """
    from ..sim import flags
    if flags.meanfield_enabled():
        from ..edge.meanfield import predict_cell
        return predict_cell(platform, scenario_key, n_devices,
                            seed=seed).triple
    shards = flags.shard_count()
    cloud_shards = flags.cloud_shard_count()
    hybrid_exact = flags.hybrid_exact_devices()
    serving = flags.serving_spec()
    if shards > 1 or cloud_shards > 0 or hybrid_exact > 0 or serving:
        from ..sim.shard import run_sharded
        result = run_sharded(
            platform_config(platform), _SCENARIOS[scenario_key],
            n_devices, seed=seed, shards=shards,
            cloud_shards=cloud_shards,
            exact_devices=hybrid_exact or None,
            serving=serving or None)
    else:
        result = ScenarioRunner(
            platform_config(platform), _SCENARIOS[scenario_key], seed=seed,
            n_devices=n_devices).run()
    bw_mean, _ = result.bandwidth_summary()
    return (bw_mean, result.task_latencies.p99,
            result.extras["makespan_s"])


def run_resolution(base_seed: int = 0,
                   max_workers: Optional[int] = None) -> ExperimentResult:
    """Fig 17a."""
    cells = [(scenario.key, frame_mb, fps, base_seed)
             for scenario in (SCENARIO_A, SCENARIO_B)
             for frame_mb, fps in RESOLUTIONS]
    samples = run_sweep(_resolution_cell, cells, max_workers=max_workers)

    rows: List[List] = []
    data: Dict[str, Dict] = {}
    for (scenario_key, frame_mb, fps, _), sample in zip(cells, samples):
        bw_mean, tail_s, makespan_s = sample.value
        key = f"{scenario_key}:{frame_mb}MB@{int(fps)}fps"
        rows.append([key, round(bw_mean, 1), round(tail_s, 2),
                     round(makespan_s, 1)])
        data[key] = {"bandwidth_mbs": bw_mean, "tail_s": tail_s,
                     "makespan_s": makespan_s}
    return ExperimentResult(
        figure="fig17a",
        title="HiveMind bandwidth/latency vs resolution",
        headers=["key", "bw_mean_mbs", "task_p99_s", "makespan_s"],
        rows=rows,
        data=data,
    )


def run_swarm_size(sizes: Sequence[int] = (16, 32, 64, 128, 256, 512, 1024),
                   base_seed: int = 0,
                   include_centralized_upto: int = 256,
                   max_workers: Optional[int] = None
                   ) -> ExperimentResult:
    """Fig 17b (the paper sweeps to 8k; default here caps at 1k for
    runtime — pass a larger ``sizes`` for the full sweep)."""
    cells: List[Tuple[str, str, int, int]] = []
    for scenario in (SCENARIO_A, SCENARIO_B):
        for n_devices in sizes:
            cells.append(("hivemind", scenario.key, n_devices, base_seed))
            if n_devices <= include_centralized_upto:
                cells.append(("centralized_faas", scenario.key, n_devices,
                              base_seed))
    samples = run_sweep(_swarm_cell, cells, max_workers=max_workers)

    rows: List[List] = []
    data: Dict[str, Dict] = {}
    for (platform, scenario_key, n_devices, _), sample in zip(cells,
                                                              samples):
        bw_mean, tail_s, makespan_s = sample.value
        label = "hivemind" if platform == "hivemind" else "centralized"
        key = f"{scenario_key}:{label}:{n_devices}"
        rows.append([key, n_devices, round(bw_mean, 1), round(tail_s, 2),
                     round(makespan_s, 1)])
        data[key] = {
            "bandwidth_mbs": bw_mean,
            "tail_s": tail_s,
            "makespan_s": makespan_s,
        }
    return ExperimentResult(
        figure="fig17b",
        title="Scalability with swarm size",
        headers=["key", "devices", "bw_mean_mbs", "task_p99_s",
                 "makespan_s"],
        rows=rows,
        data=data,
    )


EXTENDED_SIZES: Sequence[int] = (1024, 10_000, 100_000, 1_000_000)


def run_extended(sizes: Sequence[int] = EXTENDED_SIZES,
                 base_seed: int = 0,
                 max_workers: Optional[int] = None) -> ExperimentResult:
    """Fig 17c: the saturation curves pushed to 10k-1M devices.

    Every point goes through the mean-field population model of
    :mod:`repro.edge.meanfield` — a swarm this size is out of reach for
    the exact event-driven simulation (a 1M-device run would dispatch
    ~10^9 kernel events), but the aggregate cells are O(1) in device
    count, so the full grid costs milliseconds and zero kernel events.
    The model is parity-checked against the exact simulator at small N
    by ``tests/edge/test_meanfield_parity.py`` and the CI shard-smoke
    job. ``max_workers`` is accepted for CLI uniformity; the grid is
    cheap enough that it always runs in-process.
    """
    del max_workers  # O(1) cells; a pool would cost more than it saves.
    from ..edge.meanfield import predict_cell

    rows: List[List] = []
    data: Dict[str, Dict] = {}
    for scenario in (SCENARIO_A, SCENARIO_B):
        for platform in ("hivemind", "centralized_faas"):
            for n_devices in sizes:
                cell = predict_cell(platform, scenario.key, int(n_devices),
                                    seed=base_seed)
                bw_mean, tail_s, makespan_s = cell.triple
                label = ("hivemind" if platform == "hivemind"
                         else "centralized")
                key = f"{scenario.key}:{label}:{n_devices}"
                rows.append([key, n_devices, round(bw_mean, 1),
                             round(tail_s, 2), round(makespan_s, 1)])
                data[key] = {
                    "bandwidth_mbs": bw_mean,
                    "tail_s": tail_s,
                    "makespan_s": makespan_s,
                    "meanfield": True,
                }
    return ExperimentResult(
        figure="fig17c",
        title="Mean-field saturation curves (10k-1M devices)",
        headers=["key", "devices", "bw_mean_mbs", "task_p99_s",
                 "makespan_s"],
        rows=rows,
        data=data,
    )


HYBRID_FLEETS: Sequence[Tuple[int, int]] = (
    (256, 64), (1024, 256), (100_000, 256))


def run_hybrid(fleets: Sequence[Tuple[int, int]] = HYBRID_FLEETS,
               base_seed: int = 0,
               max_workers: Optional[int] = None) -> ExperimentResult:
    """Fig 17d: hybrid exact/mean-field curves on HiveMind.

    Each (fleet, exact) pair simulates an ``exact``-device focus
    sub-swarm event-by-event while the rest of the fleet rides as
    mean-field aggregate cells injecting calibrated synthetic load into
    the sharded cloud tier — e.g. 256 exact devices inside a 100k-drone
    fleet. The exact focus carries the latency rows; the background
    shows up in bandwidth and cloud counters (see DESIGN.md's hybrid
    trust boundary). Row order is fixed by the cell plan, so the table
    is deterministic at any worker count.
    """
    del max_workers  # each point is one sharded run; serial keeps RSS flat
    from ..sim import flags
    from ..sim.shard import run_sharded

    cloud_shards = max(1, flags.cloud_shard_count())
    rows: List[List] = []
    data: Dict[str, Dict] = {}
    for scenario in (SCENARIO_A, SCENARIO_B):
        for n_devices, exact in fleets:
            result = run_sharded(
                platform_config("hivemind"), scenario, int(n_devices),
                seed=base_seed, shards=max(1, flags.shard_count()),
                cloud_shards=cloud_shards, exact_devices=int(exact))
            bw_mean, _ = result.bandwidth_summary()
            tail_s = result.task_latencies.p99
            key = f"{scenario.key}:hybrid:{n_devices}x{exact}"
            rows.append([key, n_devices, exact, round(bw_mean, 1),
                         round(tail_s, 2),
                         round(result.extras["makespan_s"], 1)])
            data[key] = {
                "bandwidth_mbs": bw_mean,
                "tail_s": tail_s,
                "makespan_s": result.extras["makespan_s"],
                "exact_devices": int(exact),
                "meanfield_cells": result.extras.get("meanfield_cells", 0),
                "background_completions": result.extras.get(
                    "background_completions", 0),
            }
    return ExperimentResult(
        figure="fig17d",
        title="Hybrid exact/mean-field swarm curves",
        headers=["key", "devices", "exact_devices", "bw_mean_mbs",
                 "task_p99_s", "makespan_s"],
        rows=rows,
        data=data,
    )


def run(base_seed: int = 0,
        max_workers: Optional[int] = None) -> ExperimentResult:
    return run_resolution(base_seed=base_seed, max_workers=max_workers)
