"""Fig 17: HiveMind's scalability.

(a) Wireless bandwidth and tail (job) latency for both scenarios on
HiveMind as frame resolution rises (0.5-8 MB at 8 fps, plus 8 MB at 16 and
32 fps). Expected shape: the on-board filter bounds what ships upstream,
so bandwidth grows sublinearly and latency stays flat — no saturation even
at maximum resolution and frame rate (where the centralized system of
Fig 3b collapsed).

(b) Bandwidth and tail latency as the (simulated) swarm grows from 16
toward thousands of drones, field and access network scaled proportionally
while the backend cluster stays fixed. Expected shape: HiveMind's
bandwidth grows sublinearly in devices and its latency stays near-flat,
versus the centralized system's explosion (cf. Fig 1 bottom).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..apps import SCENARIO_A, SCENARIO_B
from ..platforms import ScenarioRunner, platform_config
from .common import ExperimentResult
from .parallel import run_sweep

RESOLUTIONS: Sequence[Tuple[float, float]] = (
    (0.5, 8), (1.0, 8), (2.0, 8), (4.0, 8), (8.0, 8), (8.0, 16), (8.0, 32))

_SCENARIOS = {s.key: s for s in (SCENARIO_A, SCENARIO_B)}


def _resolution_cell(scenario_key: str, frame_mb: float, fps: float,
                     seed: int) -> Tuple[float, float, float]:
    """(bandwidth mean, task p99, makespan) — picklable pool cell."""
    result = ScenarioRunner(
        platform_config("hivemind"), _SCENARIOS[scenario_key], seed=seed,
        frame_mb=frame_mb, fps=fps).run()
    bw_mean, _ = result.bandwidth_summary()
    return (bw_mean, result.task_latencies.p99,
            result.extras["makespan_s"])


def _swarm_cell(platform: str, scenario_key: str, n_devices: int,
                seed: int) -> Tuple[float, float, float]:
    """(bandwidth mean, task p99, makespan) — picklable pool cell."""
    result = ScenarioRunner(
        platform_config(platform), _SCENARIOS[scenario_key], seed=seed,
        n_devices=n_devices).run()
    bw_mean, _ = result.bandwidth_summary()
    return (bw_mean, result.task_latencies.p99,
            result.extras["makespan_s"])


def run_resolution(base_seed: int = 0,
                   max_workers: Optional[int] = None) -> ExperimentResult:
    """Fig 17a."""
    cells = [(scenario.key, frame_mb, fps, base_seed)
             for scenario in (SCENARIO_A, SCENARIO_B)
             for frame_mb, fps in RESOLUTIONS]
    samples = run_sweep(_resolution_cell, cells, max_workers=max_workers)

    rows: List[List] = []
    data: Dict[str, Dict] = {}
    for (scenario_key, frame_mb, fps, _), sample in zip(cells, samples):
        bw_mean, tail_s, makespan_s = sample.value
        key = f"{scenario_key}:{frame_mb}MB@{int(fps)}fps"
        rows.append([key, round(bw_mean, 1), round(tail_s, 2),
                     round(makespan_s, 1)])
        data[key] = {"bandwidth_mbs": bw_mean, "tail_s": tail_s,
                     "makespan_s": makespan_s}
    return ExperimentResult(
        figure="fig17a",
        title="HiveMind bandwidth/latency vs resolution",
        headers=["key", "bw_mean_mbs", "task_p99_s", "makespan_s"],
        rows=rows,
        data=data,
    )


def run_swarm_size(sizes: Sequence[int] = (16, 32, 64, 128, 256, 512, 1024),
                   base_seed: int = 0,
                   include_centralized_upto: int = 256,
                   max_workers: Optional[int] = None
                   ) -> ExperimentResult:
    """Fig 17b (the paper sweeps to 8k; default here caps at 1k for
    runtime — pass a larger ``sizes`` for the full sweep)."""
    cells: List[Tuple[str, str, int, int]] = []
    for scenario in (SCENARIO_A, SCENARIO_B):
        for n_devices in sizes:
            cells.append(("hivemind", scenario.key, n_devices, base_seed))
            if n_devices <= include_centralized_upto:
                cells.append(("centralized_faas", scenario.key, n_devices,
                              base_seed))
    samples = run_sweep(_swarm_cell, cells, max_workers=max_workers)

    rows: List[List] = []
    data: Dict[str, Dict] = {}
    for (platform, scenario_key, n_devices, _), sample in zip(cells,
                                                              samples):
        bw_mean, tail_s, makespan_s = sample.value
        label = "hivemind" if platform == "hivemind" else "centralized"
        key = f"{scenario_key}:{label}:{n_devices}"
        rows.append([key, n_devices, round(bw_mean, 1), round(tail_s, 2),
                     round(makespan_s, 1)])
        data[key] = {
            "bandwidth_mbs": bw_mean,
            "tail_s": tail_s,
            "makespan_s": makespan_s,
        }
    return ExperimentResult(
        figure="fig17b",
        title="Scalability with swarm size",
        headers=["key", "devices", "bw_mean_mbs", "task_p99_s",
                 "makespan_s"],
        rows=rows,
        data=data,
    )


def run(base_seed: int = 0,
        max_workers: Optional[int] = None) -> ExperimentResult:
    return run_resolution(base_seed=base_seed, max_workers=max_workers)
