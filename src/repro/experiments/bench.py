"""Kernel/harness performance trajectory (``BENCH_kernel.json``).

Timings for the same deterministic workloads, appended run over run, so
kernel regressions show up as a bend in the trajectory rather than being
discovered months later. The benchmark suite (``benchmarks/conftest.py``)
records every figure it runs; ``python -m repro.experiments --bench-smoke``
records a ~30 s fixed smoke workload on demand.

Records are self-describing: label, wall seconds, kernel events dispatched
(pool workers included), derived events/second, worker/core counts. The
events/second figure is the machine-independent-ish one — wall seconds
shift with the host, events do not (simulations are deterministic).
"""

from __future__ import annotations

import datetime
import json
import os
import pathlib
import time
from typing import Any, Dict, List, Optional

from . import parallel
from .registry import run_experiment

__all__ = ["bench_path", "load_bench", "record_bench", "run_smoke",
           "run_fig17_milestone", "run_fig11_milestone",
           "run_dispatch_milestone", "run_shard_milestone",
           "run_cloudshard_milestone"]

#: The fixed smoke workload: small deterministic figure harnesses that
#: together exercise every platform and both scenarios in ~30 s.
SMOKE_FIGURES = (
    ("fig17a", {}),
    ("fig04", {}),
    ("fig01", {"repeats": 1, "n_small": 16, "n_large": 128}),
)


def bench_path(path: Optional[str] = None) -> pathlib.Path:
    """Trajectory file: explicit arg, ``REPRO_BENCH_FILE``, or repo root."""
    if path is not None:
        return pathlib.Path(path)
    configured = os.environ.get("REPRO_BENCH_FILE")
    if configured:
        return pathlib.Path(configured)
    return pathlib.Path(__file__).resolve().parents[3] / "BENCH_kernel.json"


def load_bench(path: Optional[str] = None) -> Dict[str, Any]:
    target = bench_path(path)
    if target.exists():
        with open(target) as handle:
            return json.load(handle)
    return {"runs": []}


def record_bench(label: str, wall_s: float, sim_events: int,
                 path: Optional[str] = None,
                 extra: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
    """Append one timing record to the trajectory file and return it."""
    from ..obs import git_revision, runtime_flags
    record: Dict[str, Any] = {
        "label": label,
        "date": datetime.date.today().isoformat(),
        "wall_s": round(wall_s, 3),
        "sim_events": int(sim_events),
        # Zero-event runs (closed-form sweep / mean-field) have no
        # events/second figure: record null, not 0, so consumers skip
        # them explicitly instead of truthiness-dropping them.
        "events_per_s": (round(sim_events / wall_s)
                         if wall_s > 0 and sim_events else None),
        # Cgroup-aware: on a quota-limited container os.cpu_count() lies
        # about how many cores the workload can actually use, which made
        # cross-host events/s comparisons misleading. Keep the raw count
        # alongside for forensics on old records.
        "cores": parallel.default_workers(),
        "cores_source": "cgroup_quota",
        "os_cpu_count": os.cpu_count() or 1,
        # Manifest provenance: which code and which fast paths produced
        # this timing (consumers must tolerate unknown fields).
        "git_rev": git_revision(),
        "flags": runtime_flags(),
    }
    if extra:
        record.update(extra)
    trajectory = load_bench(path)
    trajectory.setdefault("runs", []).append(record)
    target = bench_path(path)
    with open(target, "w") as handle:
        json.dump(trajectory, handle, indent=2)
        handle.write("\n")
    return record


def run_smoke(max_workers: Optional[int] = None,
              path: Optional[str] = None) -> List[Dict[str, Any]]:
    """Run the fixed smoke workload, appending one record per figure."""
    records = []
    workers = (parallel.default_workers()
               if max_workers is None else max_workers)
    for figure, options in SMOKE_FIGURES:
        opts = dict(options)
        opts["max_workers"] = max_workers
        result = run_experiment(figure, **opts)
        records.append(record_bench(
            f"smoke:{figure}", result.elapsed_s, result.sim_events,
            path=path, extra={"workers": workers,
                              "layer_events": result.layer_events}))
    total_wall = sum(r["wall_s"] for r in records)
    total_events = sum(r["sim_events"] for r in records)
    layer_totals: Dict[str, int] = {}
    for record in records:
        for layer, n in record.get("layer_events", {}).items():
            layer_totals[layer] = layer_totals.get(layer, 0) + n
    records.append(record_bench(
        "smoke:total", total_wall, total_events, path=path,
        extra={"workers": workers, "layer_events": layer_totals}))
    return records


def run_fig17_milestone(n_devices: int = 256, seed: int = 0,
                        path: Optional[str] = None) -> List[Dict[str, Any]]:
    """Record the fig17 256-drone milestone pair: legacy vs vector engine.

    Runs the identical Scenario-A hivemind point through both flight
    paths and appends one record each, so BENCH_kernel.json carries the
    before/after evidence for the vectorized edge layer. The two runs
    must produce the same makespan (the determinism contract); a mismatch
    raises instead of recording misleading numbers.
    """
    from ..apps import SCENARIO_A
    from ..platforms import platform_config
    from ..platforms.scenario_runner import ScenarioRunner
    from ..sim.kernel import events_consumed

    records = []
    makespans = {}
    for engine_label, vector in (("legacy-tick", False), ("vector", True)):
        before = events_consumed()
        start = time.perf_counter()
        result = ScenarioRunner(
            platform_config("hivemind"), SCENARIO_A, seed=seed,
            n_devices=n_devices, vector_edge=vector).run()
        wall = time.perf_counter() - start
        makespans[engine_label] = result.extras["makespan_s"]
        records.append(record_bench(
            f"milestone:fig17b-{n_devices}:{engine_label}",
            wall, events_consumed() - before, path=path,
            extra={"makespan_s": round(result.extras["makespan_s"], 3),
                   "engine": engine_label}))
    if makespans["legacy-tick"] != makespans["vector"]:
        raise AssertionError(
            f"engine parity violated: legacy makespan "
            f"{makespans['legacy-tick']} != vector {makespans['vector']}")
    return records


def run_fig11_milestone(app_key: str = "S3", seed: int = 0,
                        duration_s: float = 60.0,
                        load_fraction: float = 0.6,
                        path: Optional[str] = None) -> List[Dict[str, Any]]:
    """Record the fig11 milestone pair: legacy vs analytic queueing.

    Runs one network/serverless-heavy fig11 cell (``app_key`` on the
    centralized FaaS platform) through the legacy Resource-based queue
    machinery and through the analytic virtual-clock path, appending one
    record each, so BENCH_kernel.json carries the before/after evidence
    for the flattened network and serverless service layers. The two runs
    must produce byte-identical task-latency rows (the determinism
    contract); a mismatch raises instead of recording misleading numbers.
    """
    from ..apps import app
    from ..platforms import SingleTierRunner, platform_config
    from ..sim.kernel import events_consumed

    records = []
    latencies = {}
    for label, analytic in (("legacy-queues", False), ("analytic", True)):
        before = events_consumed()
        start = time.perf_counter()
        result = SingleTierRunner(
            platform_config("centralized_faas"), app(app_key), seed=seed,
            duration_s=duration_s, load_fraction=load_fraction,
            analytic_net=analytic).run()
        wall = time.perf_counter() - start
        latencies[label] = tuple(result.task_latencies.values)
        records.append(record_bench(
            f"milestone:fig11-{app_key}:{label}",
            wall, events_consumed() - before, path=path,
            extra={"tasks": len(latencies[label]),
                   "queueing": label}))
    if latencies["legacy-queues"] != latencies["analytic"]:
        raise AssertionError(
            "queueing parity violated: legacy task latencies differ "
            "from the analytic virtual-clock path")
    return records


def run_dispatch_milestone(n_devices: int = 256, seed: int = 0,
                           path: Optional[str] = None
                           ) -> List[Dict[str, Any]]:
    """Record the dispatch+RNG milestone pair: legacy vs fast paths.

    Runs the identical fig17b Scenario-A hivemind point with the
    monomorphic kernel dispatch loop and batched RNG draw-ahead both off
    and both on, appending one record each, so BENCH_kernel.json carries
    the before/after evidence for this round. Both fast paths are
    toggled via their environment kill switches (the runners build their
    own ``Environment`` and streams, so the constructor override is out
    of reach here). The two runs must produce identical makespan and
    task-latency rows (the determinism contract); a mismatch raises
    instead of recording misleading numbers.
    """
    from ..apps import SCENARIO_A
    from ..platforms import platform_config
    from ..platforms.scenario_runner import ScenarioRunner
    from ..sim.kernel import events_consumed

    switches = ("REPRO_FAST_DISPATCH", "REPRO_BATCHED_RNG")
    saved = {name: os.environ.get(name) for name in switches}
    records = []
    outputs = {}
    try:
        for label, enabled in (("legacy-dispatch", "0"), ("fast", "1")):
            for name in switches:
                os.environ[name] = enabled
            before = events_consumed()
            start = time.perf_counter()
            result = ScenarioRunner(
                platform_config("hivemind"), SCENARIO_A, seed=seed,
                n_devices=n_devices).run()
            wall = time.perf_counter() - start
            outputs[label] = (result.extras["makespan_s"],
                              tuple(result.task_latencies.values))
            records.append(record_bench(
                f"milestone:dispatch-{n_devices}:{label}",
                wall, events_consumed() - before, path=path,
                extra={"makespan_s": round(result.extras["makespan_s"], 3),
                       "dispatch": label}))
    finally:
        for name, value in saved.items():
            if value is None:
                os.environ.pop(name, None)
            else:
                os.environ[name] = value
    if outputs["legacy-dispatch"] != outputs["fast"]:
        raise AssertionError(
            "dispatch parity violated: legacy loop outputs differ from "
            "the fast dispatch + batched RNG path")
    return records


def run_shard_milestone(n_devices: int = 1024, seed: int = 0,
                        shards: int = 4, tolerance_pct: float = 10.0,
                        path: Optional[str] = None) -> List[Dict[str, Any]]:
    """Record the sharded-runtime milestone pair: 1 shard vs ``shards``.

    Runs the fig17b 1024-drone hivemind Scenario-B point — the
    saturation workload whose cloud-side aggregation stage actually
    stresses the shared backend at scale (Scenario A at 1k devices is
    still flight-dominated) — through the single-process runner, exactly
    what an unarmed 1-shard run executes, byte-identical to the seed,
    and through the sharded cell-decomposed runtime of
    :func:`repro.sim.shard.run_sharded` at ``shards`` scheduling groups,
    appending one record each, so BENCH_kernel.json carries the
    before/after evidence for the sharded runtime. The win is
    algorithmic as well as parallel: cells sidestep the monolithic
    runner's superlinear shared-state costs (every capture scans the
    whole scaled field, schedulers track the whole swarm), so the pair
    shows a speedup even where the worker-process cap
    (:func:`~repro.experiments.parallel.default_workers`) collapses the
    shards onto one core.

    The sharded decomposition couples edge and cloud more coarsely than
    the monolithic kernel, so rows are *not* byte-identical across the
    two legs (that contract holds across shard counts of the sharded
    runtime itself — see ``tests/sim/test_shard_determinism.py``).
    Instead every scenario's observables (bandwidth mean, task p99,
    makespan) must agree within ``tolerance_pct``; a mismatch raises
    instead of recording misleading numbers.
    """
    from ..apps import SCENARIO_B
    from ..platforms import platform_config
    from ..platforms.scenario_runner import ScenarioRunner
    from ..sim.kernel import events_consumed
    from ..sim.shard import run_sharded

    def observables(result):
        bw_mean, _ = result.bandwidth_summary()
        return (bw_mean, result.task_latencies.p99,
                result.extras["makespan_s"])

    legs = (
        ("1shard", 1, lambda: ScenarioRunner(
            platform_config("hivemind"), SCENARIO_B, seed=seed,
            n_devices=n_devices).run()),
        (f"{shards}shard", shards, lambda: run_sharded(
            platform_config("hivemind"), SCENARIO_B, n_devices,
            seed=seed, shards=shards)),
    )
    records = []
    walls: Dict[str, float] = {}
    triples: Dict[str, tuple] = {}
    for label, count, runner in legs:
        before = events_consumed()
        start = time.perf_counter()
        result = runner()
        wall = time.perf_counter() - start
        walls[label] = wall
        triples[label] = observables(result)
        extra = {"makespan_s": round(result.extras["makespan_s"], 3),
                 "shards": count,
                 "scenario": SCENARIO_B.key}
        if label != "1shard":
            extra["speedup"] = round(walls["1shard"] / wall, 2)
        records.append(record_bench(
            f"milestone:fig17b-shard-{n_devices}:{label}",
            wall, events_consumed() - before, path=path, extra=extra))
    for name, got, want in zip(("bandwidth", "p99", "makespan"),
                               triples[f"{shards}shard"],
                               triples["1shard"]):
        deviation = abs(got - want) / want * 100.0
        if deviation > tolerance_pct:
            raise AssertionError(
                f"shard tolerance violated: {name} deviates "
                f"{deviation:.1f}% (> {tolerance_pct}%) from the "
                f"single-process runner")
    return records


def run_cloudshard_milestone(n_devices: int = 1024, seed: int = 0,
                             shards: int = 4, cloud_shards: int = 4,
                             tolerance_pct: float = 10.0,
                             path: Optional[str] = None
                             ) -> List[Dict[str, Any]]:
    """Record the cloud-sharded milestone pair: monolithic vs regional.

    Runs the fig17b 1024-drone hivemind Scenario-B point — the workload
    where the PR 7 trajectory showed the monolithic ``CloudGateway``
    eating roughly half the sharded run's wall clock — through the
    edge-sharded runtime with the monolithic cloud tier (exactly the
    PR 7 baseline leg, same core count) and through the per-region
    controller decomposition (``cloud_shards`` worker groups of
    :class:`~repro.serverless.region.RegionGateway` slices, each
    pricing its region's calls on a closed-form virtual clock instead
    of dispatching kernel events), appending one record each. The win
    is algorithmic as well as parallel: a region prices each cloud call
    in O(log cores) heap work with zero kernel events, so the pair
    shows a speedup even where the worker cap collapses the region
    groups onto one core.

    Rows are *not* byte-identical across the two legs (the regional
    tier draws its own RNG streams; the identity contract holds across
    ``(shards, cloud_shards)`` combinations of the armed runtime — see
    ``tests/sim/test_shard_determinism.py``). Instead the observables
    (bandwidth mean, task p99, makespan) must agree within
    ``tolerance_pct``; a mismatch raises instead of recording
    misleading numbers.
    """
    from ..apps import SCENARIO_B
    from ..platforms import platform_config
    from ..sim.kernel import events_consumed
    from ..sim.shard import run_sharded

    def observables(result):
        bw_mean, _ = result.bandwidth_summary()
        return (bw_mean, result.task_latencies.p99,
                result.extras["makespan_s"])

    legs = (
        ("edge-sharded", 0, lambda: run_sharded(
            platform_config("hivemind"), SCENARIO_B, n_devices,
            seed=seed, shards=shards)),
        ("cloud-sharded", cloud_shards, lambda: run_sharded(
            platform_config("hivemind"), SCENARIO_B, n_devices,
            seed=seed, shards=shards, cloud_shards=cloud_shards)),
    )
    records = []
    walls: Dict[str, float] = {}
    triples: Dict[str, tuple] = {}
    for label, count, runner in legs:
        before = events_consumed()
        start = time.perf_counter()
        result = runner()
        wall = time.perf_counter() - start
        walls[label] = wall
        triples[label] = observables(result)
        extra = {"makespan_s": round(result.extras["makespan_s"], 3),
                 "shards": shards,
                 "cloud_shards": count,
                 "scenario": SCENARIO_B.key}
        if label != "edge-sharded":
            extra["speedup"] = round(walls["edge-sharded"] / wall, 2)
        records.append(record_bench(
            f"milestone:fig17b-cloudshard-{n_devices}:{label}",
            wall, events_consumed() - before, path=path, extra=extra))
    for name, got, want in zip(("bandwidth", "p99", "makespan"),
                               triples["cloud-sharded"],
                               triples["edge-sharded"]):
        deviation = abs(got - want) / want * 100.0
        if deviation > tolerance_pct:
            raise AssertionError(
                f"cloud-shard tolerance violated: {name} deviates "
                f"{deviation:.1f}% (> {tolerance_pct}%) from the "
                f"monolithic cloud tier")
    return records
