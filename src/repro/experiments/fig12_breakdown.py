"""Fig 12: latency breakdown — centralized cloud vs HiveMind.

Expected shape: network acceleration + hybrid execution drop the network
share from ~33% (centralized average) to under ~15%; management
(scheduling + instantiation) and data-I/O shares also shrink; the
execution share *grows* in HiveMind (some tasks run on slower edge
devices), which is the deliberate trade for lower network traffic and
better scalability.
"""

from __future__ import annotations

from typing import Dict, List

from ..apps import SCENARIO_A, SCENARIO_B, all_apps
from ..platforms import ScenarioRunner, SingleTierRunner, platform_config
from .. import obs
from .common import ExperimentResult

PLATFORMS = ("centralized_faas", "hivemind")


def _fractions(result) -> Dict[str, float]:
    tail = result.breakdowns.fractions_at_percentile(99.0)
    return tail


def run(duration_s: float = 60.0, load_fraction: float = 0.75,
        base_seed: int = 0) -> ExperimentResult:
    rows: List[List] = []
    data: Dict[str, Dict] = {}
    for spec in all_apps():
        for platform in PLATFORMS:
            result = SingleTierRunner(
                platform_config(platform), spec, seed=base_seed,
                duration_s=duration_s, load_fraction=load_fraction).run()
            tail = _fractions(result)
            key = f"{spec.key}:{platform}"
            rows.append([key,
                         round(100 * tail["network"], 1),
                         round(100 * tail["management"], 1),
                         round(100 * tail["data_io"], 1),
                         round(100 * tail["execution"], 1)])
            data[key] = {
                "tail": tail,
                "mean_network": result.breakdowns.mean_fraction("network"),
            }
    for scenario in (SCENARIO_A, SCENARIO_B):
        for platform in PLATFORMS:
            result = ScenarioRunner(
                platform_config(platform), scenario, seed=base_seed).run()
            tail = _fractions(result)
            key = f"{scenario.key}:{platform}"
            rows.append([key,
                         round(100 * tail["network"], 1),
                         round(100 * tail["management"], 1),
                         round(100 * tail["data_io"], 1),
                         round(100 * tail["execution"], 1)])
            data[key] = {
                "tail": tail,
                "mean_network": result.breakdowns.mean_fraction("network"),
            }
    tracer = obs.active_tracer()
    if tracer is not None:
        # Causal-span cross-check of the component accounting above: the
        # per-layer split of every request trace, attributed by deepest
        # covering span, summing to end-to-end latency by construction.
        # Rows stay untouched so untraced output is byte-identical.
        data["span_breakdown"] = obs.aggregate_breakdown(
            tracer.spans, root_name="task")
    return ExperimentResult(
        figure="fig12",
        title="Tail-latency breakdown (%): centralized vs HiveMind",
        headers=["key", "network_pct", "mgmt_pct", "data_io_pct",
                 "exec_pct"],
        rows=rows,
        data=data,
    )
