"""Fig 5: the opportunities of serverless for edge jobs.

(a) Task latency with a fixed (equal-CPU-cost) deployment, serverless, and
serverless with intra-task parallelism, per application. Expected shape:
serverless beats fixed for every parallel job; intra-task parallelism adds
a large further win for S9/S10; S6/S7/S8 benefit little.

(b) Face-recognition latency under a fluctuating load (ramp up, ramp down)
for serverless vs average- and worst-case-provisioned fixed pools.
Expected shape: serverless tracks the load; the average-provisioned pool
saturates at the peak; the max-provisioned pool performs but idles.

(c) Active tasks over time when 0/5/10/20% of functions fail mid-run.
Expected shape: respawns absorb the failures — the task population stays
on the no-fault trajectory (slightly above it, from duplicated work).
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from ..apps import all_apps, app
from ..platforms import SingleTierRunner, platform_config
from .common import ExperimentResult

RAMP_DURATION_S = 120.0


def ramp_profile(t: float) -> float:
    """Fraction of devices active: one drone, ramp to all, ramp down."""
    if t < RAMP_DURATION_S / 2:
        return max(0.07, t / (RAMP_DURATION_S / 2))
    return max(0.07, (RAMP_DURATION_S - t) / (RAMP_DURATION_S / 2))


def run_concurrency(duration_s: float = 60.0, load_fraction: float = 0.6,
                    base_seed: int = 0) -> ExperimentResult:
    """Fig 5a."""
    rows: List[List] = []
    data: Dict[str, Dict] = {}
    faas = platform_config("centralized_faas")
    iaas = platform_config("centralized_iaas")
    for spec in all_apps():
        fixed = SingleTierRunner(
            iaas, spec, seed=base_seed, duration_s=duration_s,
            load_fraction=load_fraction, iaas_headroom=1.0).run()
        serverless = SingleTierRunner(
            faas, spec, seed=base_seed, duration_s=duration_s,
            load_fraction=load_fraction).run()
        intra = SingleTierRunner(
            faas, spec, seed=base_seed, duration_s=duration_s,
            load_fraction=load_fraction,
            intra_task_parallelism=True).run()
        rows.append([spec.key,
                     round(fixed.median_latency_s, 3),
                     round(serverless.median_latency_s, 3),
                     round(intra.median_latency_s, 3)])
        data[spec.key] = {
            "fixed_s": fixed.median_latency_s,
            "serverless_s": serverless.median_latency_s,
            "intra_s": intra.median_latency_s,
        }
    return ExperimentResult(
        figure="fig05a",
        title="Median task latency (s): fixed vs serverless vs intra-task",
        headers=["job", "fixed_s", "serverless_s", "serverless_intra_s"],
        rows=rows,
        data=data,
    )


def run_elasticity(base_seed: int = 0) -> ExperimentResult:
    """Fig 5b: latency under a fluctuating load, three deployments."""
    spec = app("S1")
    deployments = {
        # Average-provisioned fixed pool: sized for half the peak.
        "fixed_avg": dict(config="centralized_iaas", iaas_headroom=0.55),
        # Max-provisioned fixed pool.
        "fixed_max": dict(config="centralized_iaas", iaas_headroom=1.3),
        "serverless": dict(config="centralized_faas"),
    }
    rows: List[List] = []
    data: Dict[str, Dict] = {}
    for name, options in deployments.items():
        kwargs = {k: v for k, v in options.items() if k != "config"}
        result = SingleTierRunner(
            platform_config(options["config"]), spec, seed=base_seed,
            duration_s=RAMP_DURATION_S, load_fraction=0.9,
            load_profile=ramp_profile, **kwargs).run()
        series = result.task_latencies
        # Median latency per 20 s window — the Fig 5b time series.
        windows = []
        times, values = series.times, series.values
        for start in np.arange(0, RAMP_DURATION_S, 20.0):
            mask = (times >= start) & (times < start + 20.0)
            windows.append(float(np.median(values[mask]))
                           if mask.any() else float("nan"))
        peak = float(np.nanmax(windows))
        rows.append([name, round(series.median, 3), round(series.p99, 3),
                     round(peak, 3)])
        data[name] = {"windows_s": windows, "median_s": series.median,
                      "p99_s": series.p99,
                      "utilization": result.extras.get("pool_utilization")}
    return ExperimentResult(
        figure="fig05b",
        title="S1 latency under fluctuating load",
        headers=["deployment", "median_s", "p99_s", "peak_window_median_s"],
        rows=rows,
        data=data,
    )


def run_fault_tolerance(fault_rates=(0.0, 0.05, 0.10, 0.20),
                        base_seed: int = 0) -> ExperimentResult:
    """Fig 5c: active tasks over time under function failures."""
    spec = app("S1")
    config = platform_config("centralized_faas")
    rows: List[List] = []
    data: Dict[str, Dict] = {}
    for fault_rate in fault_rates:
        result = SingleTierRunner(
            config, spec, seed=base_seed, duration_s=RAMP_DURATION_S,
            load_fraction=0.9, load_profile=ramp_profile,
            fault_rate=fault_rate).run()
        completed = len(result.task_latencies)
        respawns = result.extras["respawns"]
        peak_active = max(c for _, c in result.extras["active_samples"])
        label = f"{int(fault_rate * 100)}%"
        rows.append([label, completed, respawns, peak_active,
                     round(result.median_latency_s, 3)])
        data[label] = {
            "completed": completed,
            "respawns": respawns,
            "peak_active": peak_active,
            "active_samples": result.extras["active_samples"],
        }
    return ExperimentResult(
        figure="fig05c",
        title="Task population under function failures",
        headers=["fault_rate", "completed", "respawns", "peak_active",
                 "median_s"],
        rows=rows,
        data=data,
    )


def run(base_seed: int = 0) -> ExperimentResult:
    return run_concurrency(base_seed=base_seed)
