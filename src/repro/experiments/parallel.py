"""Parallel experiment executor.

The figure harnesses are embarrassingly parallel: every cell of a sweep
(and every replica of a repeated run) is an independent simulation with
its own seed. This module fans those cells out over a
:class:`~concurrent.futures.ProcessPoolExecutor` while keeping the results
**bit-identical** to a serial run:

- Seeds are assigned up front by *replica index* (``base_seed + 1000 *
  index``, the same schedule :func:`repro.experiments.common.summarize_runs`
  has always used), never by completion order.
- Results are returned ordered by task index, regardless of which worker
  finished first.
- Each simulation builds its own :class:`~repro.sim.RandomStreams` from its
  seed, so there is no shared mutable state between workers.

The pool degrades gracefully to in-process execution when ``max_workers``
is 1, when the callables are not picklable (e.g. closures), or when worker
processes cannot be spawned at all — sandboxes and test environments
routinely forbid ``fork``. Either path yields the same values in the same
order; only the wall-clock differs.
"""

from __future__ import annotations

import logging
import math
import os
import pickle
import time
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from .. import obs
from ..sim import kernel
from ..sim.accounting import layer_counts

__all__ = [
    "TaskResult",
    "available_cpus",
    "default_workers",
    "pool_degradations",
    "replica_seeds",
    "run_tasks",
    "run_replicas",
    "run_sweep",
    "total_events_consumed",
    "total_layer_counts",
]

_LOG = logging.getLogger("repro.parallel")

#: One (fn, args, kwargs) call description.
Call = Tuple[Callable[..., Any], Tuple, Dict[str, Any]]

#: Kernel events consumed inside pool workers on behalf of this process
#: (worker processes count their own events; the deltas are shipped back
#: in each TaskResult and accumulated here so
#: :func:`total_events_consumed` covers both execution paths).
_POOL_EVENTS = [0]

#: Per-layer event counts accumulated from pool workers (same pattern as
#: :data:`_POOL_EVENTS`: workers tally locally, deltas ship back in each
#: TaskResult).
_POOL_LAYERS: Dict[str, int] = {}

#: Unique reasons the process pool degraded to serial execution in this
#: process, in first-occurrence order. A silent fallback made bench
#: records unattributable — the same figure could be timed with or
#: without a pool and nothing said which — so each cause is logged once
#: and recorded here for the :class:`~repro.obs.manifest.RunManifest`.
_DEGRADATIONS: List[str] = []


def pool_degradations() -> List[str]:
    """Why (if at all) pooled execution fell back to serial here."""
    return list(_DEGRADATIONS)


def _note_degradation(cause: BaseException) -> None:
    reason = f"{type(cause).__name__}: {cause}".strip().rstrip(":")
    if reason not in _DEGRADATIONS:
        _DEGRADATIONS.append(reason)
        _LOG.warning(
            "process pool unavailable; running tasks in-process (%s)",
            reason)


@dataclass(frozen=True)
class TaskResult:
    """One task's value plus its execution telemetry."""

    index: int
    value: Any
    wall_s: float
    sim_events: int
    #: Per-layer share of ``sim_events`` (edge/network/serverless), from
    #: :mod:`repro.sim.accounting`; events outside any tagged layer are
    #: the difference from ``sim_events``.
    layer_events: Optional[Dict[str, int]] = None
    #: Causal spans recorded during this task (``repro.obs``); None when
    #: tracing is off. Pool workers ship their spans back here and the
    #: coordinator re-absorbs them under this task's replica index.
    spans: Optional[Tuple] = None


def replica_seeds(repeats: int, base_seed: int = 0) -> List[int]:
    """The deterministic seed fan-out: ``base_seed + 1000 * index``."""
    if repeats <= 0:
        raise ValueError("repeats must be positive")
    return [base_seed + 1000 * index for index in range(repeats)]


def default_workers() -> int:
    """Worker count: ``REPRO_MAX_WORKERS`` env var, else the cores this
    process may actually use.

    Containerized CI typically grants far fewer cores than the host
    exposes: a cgroup CPU quota (``cpu.max``) and/or a restricted
    affinity mask. Sizing the pool from raw ``os.cpu_count()`` there
    oversubscribes the workers — every shard/replica time-slices instead
    of running in parallel — so the effective limit is
    ``min(affinity mask, ceil(cgroup quota))``.
    """
    configured = os.environ.get("REPRO_MAX_WORKERS")
    if configured:
        return max(1, int(configured))
    return available_cpus()


def available_cpus() -> int:
    """CPUs this process can schedule on: affinity mask capped by any
    cgroup CPU quota (v2 ``cpu.max``, v1 ``cfs_quota_us``)."""
    try:
        cpus = len(os.sched_getaffinity(0))
    except (AttributeError, OSError):  # non-Linux / restricted
        cpus = os.cpu_count() or 1
    quota = _cgroup_cpu_quota()
    if quota is not None:
        cpus = min(cpus, quota)
    return max(1, cpus)


def _cgroup_cpu_quota() -> Optional[int]:
    """Whole-CPU ceiling from the cgroup CPU controller, if any."""
    try:  # cgroup v2: "max 100000" or "<quota_us> <period_us>"
        with open("/sys/fs/cgroup/cpu.max") as handle:
            quota_us, period_us = handle.read().split()[:2]
        if quota_us != "max" and int(period_us) > 0:
            return max(1, math.ceil(int(quota_us) / int(period_us)))
        return None
    except (OSError, ValueError, IndexError):
        pass
    try:  # cgroup v1 pair
        with open("/sys/fs/cgroup/cpu/cpu.cfs_quota_us") as handle:
            quota_us = int(handle.read())
        with open("/sys/fs/cgroup/cpu/cpu.cfs_period_us") as handle:
            period_us = int(handle.read())
        if quota_us > 0 and period_us > 0:
            return max(1, math.ceil(quota_us / period_us))
    except (OSError, ValueError):
        pass
    return None


def total_events_consumed() -> int:
    """Kernel events dispatched in this process *and* in pool workers."""
    return kernel.events_consumed() + _POOL_EVENTS[0]


def total_layer_counts() -> Dict[str, int]:
    """Per-layer event counts for this process *and* pool workers."""
    counts = layer_counts()
    for layer, n in _POOL_LAYERS.items():
        counts[layer] = counts.get(layer, 0) + n
    return counts


def absorb_worker_counts(sim_events: int,
                         layer_events: Optional[Dict[str, int]]) -> None:
    """Credit kernel events run in an external worker process.

    The shard runtime (:mod:`repro.sim.shard`) drives its own worker
    processes outside the task pool; it ships each worker's event deltas
    back through this hook so ``total_events_consumed`` /
    ``total_layer_counts`` keep covering every execution path.
    """
    _POOL_EVENTS[0] += int(sim_events)
    for layer, n in (layer_events or {}).items():
        _POOL_LAYERS[layer] = _POOL_LAYERS.get(layer, 0) + n


def _timed_call(task: Tuple[int, Callable, Tuple, Dict]) -> TaskResult:
    index, fn, args, kwargs = task
    tracer = obs.active_tracer()
    spans_before = len(tracer) if tracer is not None else 0
    profiler = _task_profiler()
    events_before = kernel.events_consumed()
    layers_before = layer_counts()
    start = time.perf_counter()
    value = fn(*args, **kwargs)
    layers_after = layer_counts()
    wall_s = time.perf_counter() - start
    if profiler is not None:
        profiler.disable()
        profiler.dump_stats(
            f"{os.environ['REPRO_PROFILE_OUT']}.r{index}")
    spans = None
    if tracer is not None:
        # Drain this task's span delta so the coordinator can re-absorb
        # it under the task's replica index (and so the serial fallback
        # does not double-record).
        spans = tuple(tracer.take_from(spans_before))
    return TaskResult(
        index=index,
        value=value,
        wall_s=wall_s,
        sim_events=kernel.events_consumed() - events_before,
        layer_events={layer: layers_after[layer] - layers_before[layer]
                      for layer in layers_after},
        spans=spans,
    )


def _task_profiler():
    """Per-task cProfile, armed by ``REPRO_PROFILE_OUT``.

    Each task dumps to ``<path>.r<index>``, so parallel replicas never
    clobber one profile file. Returns None when profiling is off or when
    another profiler is already active in this process (the main-process
    ``--profile`` run owns the slot there)."""
    if not os.environ.get("REPRO_PROFILE_OUT"):
        return None
    import cProfile
    profiler = cProfile.Profile()
    try:
        profiler.enable()
    except ValueError:
        return None  # a profiler is already running in this process
    return profiler


def _try_pool(tasks: List[Tuple[int, Callable, Tuple, Dict]],
              workers: int) -> Optional[List[TaskResult]]:
    """Run the tasks in a process pool; None if the pool is unusable."""
    try:
        pickle.dumps(tasks)
    except Exception:
        return None  # closures/lambdas: run in-process instead
    try:
        with ProcessPoolExecutor(max_workers=workers) as pool:
            # pool.map preserves input order, so results come back sorted
            # by task index no matter the completion order.
            results = list(pool.map(_timed_call, tasks))
    except (OSError, BrokenExecutor) as error:
        _note_degradation(error)  # no fork/spawn available here
        return None
    _POOL_EVENTS[0] += sum(r.sim_events for r in results)
    for result in results:
        for layer, n in (result.layer_events or {}).items():
            _POOL_LAYERS[layer] = _POOL_LAYERS.get(layer, 0) + n
    return results


def run_tasks(calls: Sequence[Call],
              max_workers: Optional[int] = None) -> List[TaskResult]:
    """Execute ``calls`` and return their results ordered by index.

    ``calls`` is a sequence of ``(fn, args, kwargs)``. With ``max_workers``
    greater than 1 (default: :func:`default_workers`) and picklable calls,
    execution fans out over a process pool; otherwise the calls run
    in-process, in order. Both paths return identical values.
    """
    tasks = [(index, fn, tuple(args), dict(kwargs or {}))
             for index, (fn, args, kwargs) in enumerate(calls)]
    if not tasks:
        return []
    workers = default_workers() if max_workers is None else max_workers
    if workers < 1:
        raise ValueError("max_workers must be at least 1")
    workers = min(workers, len(tasks))
    results = None
    if workers > 1:
        results = _try_pool(tasks, workers)
    if results is None:
        results = [_timed_call(task) for task in tasks]
    tracer = obs.active_tracer()
    if tracer is not None:
        # Merge every task's span delta (pool or serial path alike) into
        # the coordinator's tracer under its replica index.
        for result in results:
            if result.spans:
                tracer.absorb(result.spans, replica=result.index)
    return results


def run_replicas(fn: Callable[..., Any], repeats: int, base_seed: int = 0,
                 max_workers: Optional[int] = None,
                 args: Tuple = ()) -> List[TaskResult]:
    """Run ``fn(seed, *args)`` once per replica seed, results in order."""
    return run_tasks(
        [(fn, (seed,) + tuple(args), {})
         for seed in replica_seeds(repeats, base_seed)],
        max_workers=max_workers)


def run_sweep(fn: Callable[..., Any], cells: Sequence[Sequence[Any]],
              max_workers: Optional[int] = None,
              common: Optional[Dict[str, Any]] = None) -> List[TaskResult]:
    """Run ``fn(*cell, **common)`` for every cell, results in cell order."""
    return run_tasks([(fn, tuple(cell), dict(common or {}))
                      for cell in cells], max_workers=max_workers)
