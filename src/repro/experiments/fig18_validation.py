"""Fig 18: simulator validation.

The paper validates its event-driven simulator against the *real* 16-drone
testbed, reporting under 5% tail-latency deviation for every application
and platform. Without hardware, we apply the same methodology against an
independent reference: closed-form queueing predictions composed from the
calibration constants (``repro.analytical``). Each application runs on
each platform at a pinned low-utilization operating point (periodic
arrivals, warm containers), where the closed forms are exact up to the
service-time distribution — so simulator-vs-analytic deviation measures
the simulator's bookkeeping fidelity, exactly what the paper's validation
establishes for its simulator.

Expected shape: |simulated - predicted| tail-latency deviation < 5% for
all S1-S10 on all three platforms.
"""

from __future__ import annotations

import math
from typing import Dict, List, Tuple

import numpy as np

from ..analytical import lognormal_percentile
from ..apps import AppSpec, all_apps
from ..config import DEFAULT
from ..dsl import HiveMindCompiler
from ..network.rpc import EdgeCloudRpc
from ..platforms import SingleTierRunner, platform_config
from .common import ExperimentResult

PLATFORMS = ("centralized_faas", "distributed_edge", "hivemind")

#: Per-device task rate chosen so every resource sits near this
#: utilization — low enough for the closed forms to be exact.
TARGET_RHO = 0.15
#: Combined sigma: intrinsic service lognormal plus invoker jitter.
INVOKER_JITTER_SIGMA = 0.16
EDGE_JITTER_SIGMA = 0.18


def _validation_rate(app: AppSpec, platform: str) -> float:
    constants = DEFAULT
    n = constants.drone.count
    bounds = [app.rate_hz]
    if app.input_mb > 0:
        bounds.append(TARGET_RHO * constants.wireless.total_mbs /
                      (n * app.input_mb))
    if platform == "distributed_edge":
        bounds.append(TARGET_RHO /
                      (app.cloud_service_s * app.edge_slowdown))
    return min(bounds)


def _warm_management_s() -> float:
    s = DEFAULT.serverless
    return (s.frontend_latency_s + s.auth_check_s +
            s.controller_decision_s + s.controller_service_s +
            s.kafka_hop_s + s.warm_start_s)


def _hivemind_tier(app: AppSpec) -> str:
    """Where HiveMind's compiler places the app's processing stage."""
    graph, directives = app.dsl_graph()
    compiler = HiveMindCompiler(DEFAULT, n_devices=DEFAULT.drone.count,
                                accelerated=True)
    return compiler.compile(graph, directives).placement.tier_of("process")


def _accel_ap_mbs() -> float:
    wireless = DEFAULT.wireless
    return (wireless.ap_mbps / 8.0 *
            DEFAULT.accel.mac_efficiency_accel)


def _predict_edge(app: AppSpec, accelerated: bool) -> Tuple[float, float]:
    """Closed-form (median, p99) for on-board execution."""
    wireless = DEFAULT.wireless
    service_median = app.cloud_service_s * app.edge_slowdown
    sigma = math.sqrt(app.service_sigma ** 2 + EDGE_JITTER_SIGMA ** 2)
    marshal_factor = 0.25 if accelerated else 1.0
    cloud_proc = (EdgeCloudRpc.CLOUD_PROC_S *
                  (DEFAULT.accel.residual_cpu_fraction if accelerated
                   else 1.0))
    push_processing = (EdgeCloudRpc.EDGE_PROC_S + cloud_proc +
                       EdgeCloudRpc.PER_MB_MARSHAL_S * marshal_factor *
                       app.output_mb)
    ap_mbs = _accel_ap_mbs() if accelerated else wireless.ap_mbs
    push_wire = (app.output_mb / ap_mbs +
                 wireless.per_hop_latency_s + wireless.base_rtt_s)
    fixed = push_processing + push_wire
    median = service_median + fixed
    p99 = lognormal_percentile(service_median, sigma, 99) + fixed
    return median, p99


def _predict(app: AppSpec, platform: str) -> Tuple[float, float]:
    """(median, p99) end-to-end task latency from the closed forms."""
    constants = DEFAULT
    wireless = constants.wireless
    exec_sigma = math.sqrt(app.service_sigma ** 2 +
                           INVOKER_JITTER_SIGMA ** 2)
    if platform == "distributed_edge":
        return _predict_edge(app, accelerated=False)
    if platform == "hivemind" and _hivemind_tier(app) == "edge":
        return _predict_edge(app, accelerated=True)
    accelerated = (platform == "hivemind")
    upload_mb = app.input_mb
    filter_median = 0.0
    if accelerated and app.edge_filter_keep < 1.0:
        upload_mb = min(app.input_mb * app.edge_filter_keep, 8.0)
        filter_median = app.edge_filter_service_s * 1.5
    marshal_factor = 0.25 if accelerated else 1.0
    cloud_proc = (EdgeCloudRpc.CLOUD_PROC_S *
                  (DEFAULT.accel.residual_cpu_fraction if accelerated
                   else 1.0))
    push_processing = (EdgeCloudRpc.EDGE_PROC_S + cloud_proc +
                       EdgeCloudRpc.PER_MB_MARSHAL_S * marshal_factor *
                       upload_mb)
    ap_mbs = _accel_ap_mbs() if accelerated else wireless.ap_mbs
    serialization = upload_mb / ap_mbs
    push_wire = (serialization + wireless.per_hop_latency_s +
                 wireless.base_rtt_s)
    # Residual shared-uplink queueing at the validation operating point:
    # M/D/1-like tail wait ~ 2.2 * rho * service at low rho (calibrated).
    queue_tail = 1.6 * TARGET_RHO * serialization
    management = _warm_management_s()
    download = 0.0
    if app.response_to_device:
        download = (app.output_mb / ap_mbs +
                    wireless.per_hop_latency_s)
    fixed = (filter_median + push_processing + push_wire + management +
             download)
    median = fixed + app.cloud_service_s
    p99 = (fixed + queue_tail +
           lognormal_percentile(app.cloud_service_s, exec_sigma, 99))
    return median, p99


def run(min_samples: int = 2500, base_seed: int = 0) -> ExperimentResult:
    rows: List[List] = []
    data: Dict[str, Dict] = {}
    n = DEFAULT.drone.count
    for spec in all_apps():
        for platform in PLATFORMS:
            rate = _validation_rate(spec, platform)
            duration_s = min(3000.0, max(120.0, min_samples / (rate * n)))
            result = SingleTierRunner(
                platform_config(platform), spec, seed=base_seed,
                duration_s=duration_s, rate_override=rate,
                bursty=False, keepalive_s=3600.0).run()
            # Discard the warm-up window (first container creations) —
            # the steady state is what the closed forms describe.
            series = result.task_latencies
            steady = series.values[series.times > 60.0]
            sim_median = float(np.percentile(steady, 50, method="linear"))
            sim_tail = float(np.percentile(steady, 99, method="linear"))
            predicted_median, predicted_tail = _predict(spec, platform)
            median_dev = 100 * (sim_median - predicted_median) / \
                predicted_median
            tail_dev = 100 * (sim_tail - predicted_tail) / predicted_tail
            key = f"{spec.key}:{platform}"
            rows.append([key, round(sim_tail * 1000, 1),
                         round(predicted_tail * 1000, 1),
                         round(tail_dev, 2), round(median_dev, 2)])
            data[key] = {
                "sim_tail_s": sim_tail,
                "predicted_tail_s": predicted_tail,
                "tail_deviation_pct": tail_dev,
                "median_deviation_pct": median_dev,
            }
    return ExperimentResult(
        figure="fig18",
        title="Simulator vs analytical model: tail-latency deviation",
        headers=["key", "sim_p99_ms", "analytic_p99_ms",
                 "tail_dev_pct", "median_dev_pct"],
        rows=rows,
        data=data,
    )
