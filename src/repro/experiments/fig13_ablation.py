"""Fig 13: incremental benefit of each HiveMind technique (ablation).

Configurations, mirroring the paper's bars:

- ``hivemind``               — the full system.
- ``centralized_net_accel``  — all tasks in the cloud + RPC acceleration.
- ``centralized_net_remote`` — the above + remote-memory acceleration.
- ``distributed_edge``       — all tasks at the edge, no acceleration.
- ``distributed_net_accel``  — edge execution + accelerated result upload.
- ``hivemind_no_accel``      — hybrid placement without FPGA fabrics.

Expected shape: no single technique suffices. Network acceleration helps
the centralized system but it remains behind HiveMind; remote memory adds
a little more; the distributed system barely benefits from acceleration
(it hardly uses the network); HiveMind-without-acceleration keeps the
hybrid-placement benefit but reverts to software networking overheads.
"""

from __future__ import annotations

from typing import Dict, List

from ..apps import SCENARIO_A, SCENARIO_B, all_apps
from ..platforms import ScenarioRunner, SingleTierRunner, platform_config
from .common import ExperimentResult

ABLATION_ORDER = (
    "hivemind",
    "centralized_net_accel",
    "centralized_net_remote",
    "distributed_edge",
    "distributed_net_accel",
    "hivemind_no_accel",
)


def run(duration_s: float = 60.0, load_fraction: float = 0.6,
        base_seed: int = 0, include_scenarios: bool = True
        ) -> ExperimentResult:
    rows: List[List] = []
    data: Dict[str, Dict] = {}
    for spec in all_apps():
        for name in ABLATION_ORDER:
            result = SingleTierRunner(
                platform_config(name), spec, seed=base_seed,
                duration_s=duration_s, load_fraction=load_fraction).run()
            key = f"{spec.key}:{name}"
            rows.append([key, round(result.median_latency_s * 1000, 1),
                         round(result.tail_latency_s * 1000, 1)])
            data[key] = {"median_s": result.median_latency_s,
                         "p99_s": result.tail_latency_s}
    if include_scenarios:
        # The paper's right panel reports per-task latency for the
        # scenarios (the mission pipeline's batches), not the makespan.
        for scenario in (SCENARIO_A, SCENARIO_B):
            for name in ABLATION_ORDER:
                result = ScenarioRunner(
                    platform_config(name), scenario, seed=base_seed).run()
                key = f"{scenario.key}:{name}"
                rows.append([key,
                             round(result.median_latency_s * 1000, 1),
                             round(result.tail_latency_s * 1000, 1)])
                data[key] = {"median_s": result.median_latency_s,
                             "p99_s": result.tail_latency_s}
    return ExperimentResult(
        figure="fig13",
        title="Ablation: median/p99 latency (ms) per configuration",
        headers=["key", "median_ms", "p99_ms"],
        rows=rows,
        data=data,
    )
