"""Fig 13: incremental benefit of each HiveMind technique (ablation).

Configurations, mirroring the paper's bars:

- ``hivemind``               — the full system.
- ``centralized_net_accel``  — all tasks in the cloud + RPC acceleration.
- ``centralized_net_remote`` — the above + remote-memory acceleration.
- ``distributed_edge``       — all tasks at the edge, no acceleration.
- ``distributed_net_accel``  — edge execution + accelerated result upload.
- ``hivemind_no_accel``      — hybrid placement without FPGA fabrics.

Expected shape: no single technique suffices. Network acceleration helps
the centralized system but it remains behind HiveMind; remote memory adds
a little more; the distributed system barely benefits from acceleration
(it hardly uses the network); HiveMind-without-acceleration keeps the
hybrid-placement benefit but reverts to software networking overheads.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..apps import SCENARIO_A, SCENARIO_B, all_apps, app
from ..platforms import ScenarioRunner, SingleTierRunner, platform_config
from .common import ExperimentResult
from .parallel import run_tasks

ABLATION_ORDER = (
    "hivemind",
    "centralized_net_accel",
    "centralized_net_remote",
    "distributed_edge",
    "distributed_net_accel",
    "hivemind_no_accel",
)

_SCENARIOS = {s.key: s for s in (SCENARIO_A, SCENARIO_B)}


def _app_cell(app_key: str, name: str, seed: int, duration_s: float,
              load_fraction: float) -> Tuple[float, float]:
    """(median, p99) service latency — picklable pool cell."""
    result = SingleTierRunner(
        platform_config(name), app(app_key), seed=seed,
        duration_s=duration_s, load_fraction=load_fraction).run()
    return (result.median_latency_s, result.tail_latency_s)


def _scenario_cell(scenario_key: str, name: str,
                   seed: int) -> Tuple[float, float]:
    """(median, p99) task latency — picklable pool cell."""
    result = ScenarioRunner(
        platform_config(name), _SCENARIOS[scenario_key], seed=seed).run()
    return (result.median_latency_s, result.tail_latency_s)


def run(duration_s: float = 60.0, load_fraction: float = 0.6,
        base_seed: int = 0, include_scenarios: bool = True,
        max_workers: Optional[int] = None
        ) -> ExperimentResult:
    calls = [(_app_cell,
              (spec.key, name, base_seed, duration_s, load_fraction), {})
             for spec in all_apps()
             for name in ABLATION_ORDER]
    if include_scenarios:
        # The paper's right panel reports per-task latency for the
        # scenarios (the mission pipeline's batches), not the makespan.
        calls += [(_scenario_cell, (scenario.key, name, base_seed), {})
                  for scenario in (SCENARIO_A, SCENARIO_B)
                  for name in ABLATION_ORDER]
    samples = run_tasks(calls, max_workers=max_workers)

    rows: List[List] = []
    data: Dict[str, Dict] = {}
    for (_, cell_args, _kw), sample in zip(calls, samples):
        key = f"{cell_args[0]}:{cell_args[1]}"
        median_s, p99_s = sample.value
        rows.append([key, round(median_s * 1000, 1),
                     round(p99_s * 1000, 1)])
        data[key] = {"median_s": median_s, "p99_s": p99_s}
    return ExperimentResult(
        figure="fig13",
        title="Ablation: median/p99 latency (ms) per configuration",
        headers=["key", "median_ms", "p99_ms"],
        rows=rows,
        data=data,
    )
