"""Repository-specific micro-ablations of HiveMind's mechanisms.

Beyond the paper's Fig 13 system-level ablation, these isolate three
design choices section 4.3/4.6 argues for:

- **Colocation** — HiveMind scheduler (child into parent's container)
  vs stock placement, for a two-stage pipeline.
- **Keep-alive** — idle-container lifetime sweep: too short forces cold
  starts, long enough converges (the paper picks 10-30 s empirically).
- **Straggler mitigation** — p90 duplicate launches vs none, under a
  heavy-tailed service distribution.
"""

from __future__ import annotations

from typing import Dict, Generator, List

from ..cluster import Cluster
from ..config import DEFAULT
from ..core import StragglerMitigator
from ..serverless import FunctionSpec, InvocationRequest, OpenWhiskPlatform
from ..sim import Environment, RandomStreams
from ..telemetry import MetricSeries
from .common import ExperimentResult


def run_colocation(n_chains: int = 120,
                   base_seed: int = 0) -> ExperimentResult:
    """Parent->child pipeline latency with and without colocation."""
    rows: List[List] = []
    data: Dict[str, Dict] = {}
    for scheduler in ("openwhisk", "hivemind"):
        env = Environment()
        cluster = Cluster(env, DEFAULT.cluster)
        platform = OpenWhiskPlatform(
            env, cluster, RandomStreams(base_seed),
            scheduler=scheduler, keepalive_s=25.0)
        spec = FunctionSpec("stage", image="pipeline-image")
        series = MetricSeries(scheduler)
        colocated = {"count": 0}

        def chains() -> Generator:
            for _ in range(n_chains):
                start = env.now
                parent = yield env.process(platform.invoke(
                    InvocationRequest(spec, service_s=0.15,
                                      output_mb=2.0)))
                child = yield env.process(platform.invoke(
                    InvocationRequest(spec, service_s=0.10,
                                      parent=parent)))
                series.add(env.now - start)
                colocated["count"] += child.colocated
                yield env.timeout(0.4)

        env.run(env.process(chains()))
        rows.append([scheduler, round(series.median * 1000, 1),
                     round(series.p99 * 1000, 1), colocated["count"]])
        data[scheduler] = {"median_s": series.median,
                           "p99_s": series.p99,
                           "colocated": colocated["count"]}
    return ExperimentResult(
        figure="ablation_colocation",
        title="Two-stage pipeline latency (ms): scheduler colocation",
        headers=["scheduler", "median_ms", "p99_ms", "colocated_children"],
        rows=rows,
        data=data,
    )


def run_keepalive(keepalives=(0.2, 1.0, 5.0, 20.0, 60.0),
                  n_tasks: int = 150,
                  base_seed: int = 0) -> ExperimentResult:
    """Cold-start fraction and latency vs idle-container lifetime."""
    rows: List[List] = []
    data: Dict[str, Dict] = {}
    for keepalive in keepalives:
        env = Environment()
        cluster = Cluster(env, DEFAULT.cluster)
        platform = OpenWhiskPlatform(
            env, cluster, RandomStreams(base_seed),
            keepalive_s=keepalive)
        spec = FunctionSpec("job")
        rng = RandomStreams(base_seed).stream("keepalive.gaps")
        series = MetricSeries(str(keepalive))

        def tasks() -> Generator:
            for _ in range(n_tasks):
                invocation = yield env.process(platform.invoke(
                    InvocationRequest(spec, service_s=0.1)))
                series.add(invocation.latency_s)
                yield env.timeout(float(rng.exponential(2.0)))

        env.run(env.process(tasks()))
        cold_fraction = platform.cold_starts / max(
            1, platform.cold_starts + platform.warm_starts)
        rows.append([keepalive, round(100 * cold_fraction, 1),
                     round(series.median * 1000, 1)])
        data[str(keepalive)] = {"cold_fraction": cold_fraction,
                                "median_s": series.median}
    return ExperimentResult(
        figure="ablation_keepalive",
        title="Cold starts and latency vs idle-container keep-alive",
        headers=["keepalive_s", "cold_start_pct", "median_ms"],
        rows=rows,
        data=data,
    )


def run_straggler(n_tasks: int = 320,
                  base_seed: int = 0) -> ExperimentResult:
    """Tail latency with and without p90 duplicate launches."""
    rows: List[List] = []
    data: Dict[str, Dict] = {}
    for mitigated in (False, True):
        env = Environment()
        cluster = Cluster(env, DEFAULT.cluster)
        platform = OpenWhiskPlatform(
            env, cluster, RandomStreams(base_seed), keepalive_s=30.0)
        mitigator = (StragglerMitigator(env, platform, DEFAULT.control)
                     if mitigated else None)
        # One sick server: anything placed there runs 10x slower — the
        # machine-induced stragglers the p90 mitigation targets.
        platform.invokers[0].slow_factor = 10.0
        spec = FunctionSpec("job")
        series = MetricSeries(str(mitigated))
        workers = 8

        def worker() -> Generator:
            for _ in range(n_tasks // workers):
                request = InvocationRequest(spec, service_s=0.2,
                                            colocate_with_parent=False)
                if mitigator is not None:
                    invocation = yield env.process(
                        mitigator.invoke(request))
                else:
                    invocation = yield env.process(
                        platform.invoke(request))
                series.add(invocation.latency_s)
                yield env.timeout(0.25)

        procs = [env.process(worker()) for _ in range(workers)]
        env.run(env.all_of(procs))
        label = "mitigated" if mitigated else "baseline"
        probation = platform.invokers[0].server.on_probation
        rows.append([label, round(series.median * 1000, 1),
                     round(series.p99 * 1000, 1),
                     mitigator.duplicates_launched if mitigator else 0,
                     probation])
        data[label] = {"median_s": series.median, "p99_s": series.p99,
                       "duplicates": (mitigator.duplicates_launched
                                      if mitigator else 0),
                       "sick_server_on_probation": probation}
    return ExperimentResult(
        figure="ablation_straggler",
        title="Straggler mitigation: latency with/without p90 duplicates",
        headers=["config", "median_ms", "p99_ms", "duplicates",
                 "sick_on_probation"],
        rows=rows,
        data=data,
    )
