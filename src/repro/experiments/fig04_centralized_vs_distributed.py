"""Fig 4: task-latency distributions, centralized cloud vs distributed edge.

(a) Violin summaries (p5/p25/median/p75/p95) of per-task latency across
S1-S10. Expected shape: centralized is faster and tighter for most jobs;
S3 (drone detection) and S7 (weather analytics) are comparable on both
tiers; S4 (obstacle avoidance) wins at the edge by skipping the network
round trip.

(b) Job-latency distributions for the two end-to-end scenarios (one sample
per scenario repeat).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..apps import SCENARIO_A, SCENARIO_B, all_apps, app
from ..platforms import ScenarioRunner, SingleTierRunner, platform_config
from .common import ExperimentResult
from .parallel import replica_seeds, run_tasks

PLATFORMS = ("centralized_faas", "distributed_edge")

_SCENARIOS = {s.key: s for s in (SCENARIO_A, SCENARIO_B)}


def _tier_cell(app_key: str, platform: str, seed: int, duration_s: float,
               load_fraction: float):
    """Task-latency DistributionSummary — picklable pool cell."""
    result = SingleTierRunner(
        platform_config(platform), app(app_key), seed=seed,
        duration_s=duration_s, load_fraction=load_fraction).run()
    return result.task_latencies.summary()


def _scenario_makespan(seed: int, scenario_key: str,
                       platform: str) -> float:
    """One scenario-repeat makespan — picklable pool cell."""
    return ScenarioRunner(
        platform_config(platform), _SCENARIOS[scenario_key],
        seed=seed).run().extras["makespan_s"]


def run(duration_s: float = 60.0, scenario_repeats: int = 3,
        load_fraction: float = 0.6, base_seed: int = 0,
        max_workers: Optional[int] = None) -> ExperimentResult:
    app_cells = [(spec.key, platform)
                 for spec in all_apps() for platform in PLATFORMS]
    scenario_groups = [(scenario.key, platform)
                       for scenario in (SCENARIO_A, SCENARIO_B)
                       for platform in PLATFORMS]
    seeds = replica_seeds(scenario_repeats, base_seed)
    calls = [(_tier_cell,
              (app_key, platform, base_seed, duration_s, load_fraction), {})
             for app_key, platform in app_cells]
    calls += [(_scenario_makespan, (seed, scenario_key, platform), {})
              for scenario_key, platform in scenario_groups
              for seed in seeds]
    samples = iter(run_tasks(calls, max_workers=max_workers))

    rows: List[List] = []
    data: Dict[str, Dict] = {}
    for app_key, platform in app_cells:
        summary = next(samples).value
        key = f"{app_key}:{platform}"
        rows.append([key,
                     round(summary.p5 * 1000, 1),
                     round(summary.p25 * 1000, 1),
                     round(summary.median * 1000, 1),
                     round(summary.p75 * 1000, 1),
                     round(summary.p95 * 1000, 1)])
        data[key] = summary
    for scenario_key, platform in scenario_groups:
        makespans = sorted(next(samples).value for _ in seeds)
        key = f"{scenario_key}:{platform}"
        median = makespans[len(makespans) // 2]
        rows.append([key, round(min(makespans), 1), "", round(median, 1),
                     "", round(max(makespans), 1)])
        data[key] = {"makespans_s": makespans}
    return ExperimentResult(
        figure="fig04",
        title="Task latency (ms) / job latency (s): centralized vs edge",
        headers=["key", "p5", "p25", "median", "p75", "p95"],
        rows=rows,
        data=data,
    )
