"""Fig 4: task-latency distributions, centralized cloud vs distributed edge.

(a) Violin summaries (p5/p25/median/p75/p95) of per-task latency across
S1-S10. Expected shape: centralized is faster and tighter for most jobs;
S3 (drone detection) and S7 (weather analytics) are comparable on both
tiers; S4 (obstacle avoidance) wins at the edge by skipping the network
round trip.

(b) Job-latency distributions for the two end-to-end scenarios (one sample
per scenario repeat).
"""

from __future__ import annotations

from typing import Dict, List

from ..apps import SCENARIO_A, SCENARIO_B, all_apps
from ..platforms import ScenarioRunner, SingleTierRunner, platform_config
from .common import ExperimentResult, summarize_runs

PLATFORMS = ("centralized_faas", "distributed_edge")


def run(duration_s: float = 60.0, scenario_repeats: int = 3,
        load_fraction: float = 0.6, base_seed: int = 0) -> ExperimentResult:
    rows: List[List] = []
    data: Dict[str, Dict] = {}
    for spec in all_apps():
        for platform in PLATFORMS:
            result = SingleTierRunner(
                platform_config(platform), spec, seed=base_seed,
                duration_s=duration_s, load_fraction=load_fraction).run()
            summary = result.task_latencies.summary()
            key = f"{spec.key}:{platform}"
            rows.append([key,
                         round(summary.p5 * 1000, 1),
                         round(summary.p25 * 1000, 1),
                         round(summary.median * 1000, 1),
                         round(summary.p75 * 1000, 1),
                         round(summary.p95 * 1000, 1)])
            data[key] = summary
    for scenario in (SCENARIO_A, SCENARIO_B):
        for platform in PLATFORMS:
            results = summarize_runs(
                lambda seed: ScenarioRunner(
                    platform_config(platform), scenario, seed=seed).run(),
                scenario_repeats, base_seed)
            makespans = sorted(r.extras["makespan_s"] for r in results)
            key = f"{scenario.key}:{platform}"
            median = makespans[len(makespans) // 2]
            rows.append([key, round(min(makespans), 1), "", round(median, 1),
                         "", round(max(makespans), 1)])
            data[key] = {"makespans_s": makespans}
    return ExperimentResult(
        figure="fig04",
        title="Task latency (ms) / job latency (s): centralized vs edge",
        headers=["key", "p5", "p25", "median", "p75", "p95"],
        rows=rows,
        data=data,
    )
