"""Fig 14: battery and network-bandwidth consumption across platforms.

(a) Consumed battery (mean bars, worst-case markers): distributed burns
the most (on-board compute); HiveMind the least (offloads heavy compute
*and* avoids excessive transfer); S3/S4 are the exceptions where HiveMind
draws slightly more than centralized (they don't benefit from splitting).

(b) Wireless bandwidth (mean bars, p99 markers): centralized highest,
distributed lowest, HiveMind in between with a small mean-to-tail gap
(part of its predictability story).
"""

from __future__ import annotations

from typing import Dict, List

from ..apps import SCENARIO_A, SCENARIO_B, all_apps
from ..platforms import ScenarioRunner, SingleTierRunner, platform_config
from .common import ExperimentResult

PLATFORMS = ("centralized_faas", "distributed_edge", "hivemind")


def run(duration_s: float = 60.0, load_fraction: float = 0.6,
        base_seed: int = 0) -> ExperimentResult:
    rows: List[List] = []
    data: Dict[str, Dict] = {}

    def add(key: str, result) -> None:
        battery_mean, battery_worst = result.battery_summary()
        bw_mean, bw_tail = result.bandwidth_summary()
        rows.append([key, round(battery_mean, 1), round(battery_worst, 1),
                     round(bw_mean, 1), round(bw_tail, 1)])
        data[key] = {
            "battery_mean_pct": battery_mean,
            "battery_worst_pct": battery_worst,
            "bandwidth_mean_mbs": bw_mean,
            "bandwidth_p99_mbs": bw_tail,
        }

    for spec in all_apps():
        for platform in PLATFORMS:
            result = SingleTierRunner(
                platform_config(platform), spec, seed=base_seed,
                duration_s=duration_s, load_fraction=load_fraction).run()
            add(f"{spec.key}:{platform}", result)
    for scenario in (SCENARIO_A, SCENARIO_B):
        for platform in PLATFORMS:
            result = ScenarioRunner(
                platform_config(platform), scenario, seed=base_seed).run()
            add(f"{scenario.key}:{platform}", result)
    return ExperimentResult(
        figure="fig14",
        title="Battery (%) and wireless bandwidth (MB/s) per platform",
        headers=["key", "battery_mean_pct", "battery_worst_pct",
                 "bw_mean_mbs", "bw_p99_mbs"],
        rows=rows,
        data=data,
    )
