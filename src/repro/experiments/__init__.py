"""Experiment harness: one module per paper figure."""

from .common import ExperimentResult
from .registry import EXPERIMENTS, experiment_ids, run_experiment

__all__ = [
    "ExperimentResult",
    "EXPERIMENTS",
    "run_experiment",
    "experiment_ids",
]
